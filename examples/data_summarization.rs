//! Data summarization: pick `k` documents whose combined vocabulary is as
//! large as possible — the machine-learning use-case the paper's
//! introduction cites. Also demonstrates the Appendix D ℓ₀-sketch
//! baseline and why its `Õ(nk)` space loses to the sketch's `Õ(n)`.
//!
//! Run with:
//! ```text
//! cargo run --release --example data_summarization
//! ```

use coverage_suite::core::report::Table;
use coverage_suite::data::domains::summarization;
use coverage_suite::prelude::*;

fn main() {
    let inst = summarization(/*docs=*/ 250, /*vocab=*/ 30_000, /*seed=*/ 8);
    println!(
        "summarization: {} documents, {} vocabulary terms, {} (doc, term) pairs",
        inst.num_sets(),
        inst.num_elements(),
        inst.num_edges()
    );

    let mut stream = VecStream::from_instance(&inst);
    ArrivalOrder::Random(17).apply(stream.edges_mut());

    let mut t = Table::new(
        "summary quality and memory as k grows",
        &[
            "k",
            "H≤n terms",
            "H≤n space",
            "l0-greedy terms",
            "l0 space (words)",
            "offline terms",
        ],
    );
    for k in [3usize, 6, 12, 24] {
        let ours = k_cover_streaming(
            &stream,
            &KCoverConfig::new(k, 0.2, 2).with_sizing(SketchSizing::Budget(5_000)),
        );
        // Appendix D baseline, sized by its own theory: t = Õ(k/ε²).
        let t_kmv = L0Config::paper_t(inst.num_sets(), k, 0.5);
        let l0 = l0_greedy_k_cover(&stream, k, &L0Config::new(t_kmv, 6));
        let offline = lazy_greedy_k_cover(&inst, k);
        t.row(vec![
            format!("{k}"),
            format!("{}", inst.coverage(&ours.family)),
            format!("{}", ours.space.peak_edges),
            format!("{}", inst.coverage(&l0.family)),
            format!("{}", l0.space.peak_aux_words),
            format!("{}", offline.coverage()),
        ]);
    }
    println!("\n{}", t.render());
    println!(
        "the H≤n sketch keeps its footprint flat as k grows; the per-set\n\
         l0 sketches pay Õ(k) words in *every* of the n sets (Appendix D)."
    );
}
