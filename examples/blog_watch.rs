//! Multi-topic blog-watch — the motivating application of Saha & Getoor
//! (the paper's `[44]`): follow `k` blogs to maximize the number of topics
//! covered. Compares the paper's single-pass edge-arrival algorithm
//! against both set-arrival baselines on the same workload.
//!
//! Run with:
//! ```text
//! cargo run --release --example blog_watch
//! ```

use coverage_suite::core::report::Table;
use coverage_suite::data::domains::blog_watch;
use coverage_suite::prelude::*;

fn main() {
    let n_blogs = 300;
    let n_topics = 20_000;
    let k = 10;
    let inst = blog_watch(n_blogs, n_topics, /*seed=*/ 3);
    println!(
        "blog-watch: {} blogs, {} distinct topics, {} (blog, topic) pairs",
        inst.num_sets(),
        inst.num_elements(),
        inst.num_edges()
    );

    // Offline greedy = the quality ceiling (needs the whole input in RAM).
    let offline = lazy_greedy_k_cover(&inst, k);

    // The paper's algorithm works on a fully shuffled edge stream…
    let mut edge_stream = VecStream::from_instance(&inst);
    ArrivalOrder::Random(11).apply(edge_stream.edges_mut());
    let ours = k_cover_streaming(
        &edge_stream,
        &KCoverConfig::new(k, 0.2, 5).with_sizing(SketchSizing::Budget(6_000)),
    );

    // …while the baselines need each blog's topics to arrive together.
    let mut set_stream = VecStream::from_instance(&inst);
    ArrivalOrder::SetGrouped(11).apply(set_stream.edges_mut());
    let sg = saha_getoor_k_cover(&set_stream, k);
    let sieve = sieve_k_cover(&set_stream, k, 0.1);

    let mut t = Table::new(
        format!("pick k={k} blogs to cover the most topics"),
        &["algorithm", "arrival", "topics covered", "space (words)"],
    );
    let row = |name: &str, arrival: &str, family: &[SetId], space: u64| {
        vec![
            name.to_string(),
            arrival.to_string(),
            format!("{}", inst.coverage(family)),
            format!("{space}"),
        ]
    };
    t.row(row(
        "offline greedy (ceiling)",
        "none",
        &offline.family(),
        2 * inst.num_edges() as u64,
    ));
    t.row(row(
        "H≤n sketch (Alg 3)",
        "edge",
        &ours.family,
        ours.space.total_words(),
    ));
    t.row(row(
        "Saha–Getoor swap",
        "set",
        &sg.family,
        sg.space.total_words(),
    ));
    t.row(row(
        "SieveStreaming",
        "set",
        &sieve.family,
        sieve.space.total_words(),
    ));
    println!("\n{}", t.render());

    println!(
        "note: the sketch ran on a fully shuffled stream; the baselines\n\
         required set-grouped arrival and still used more memory."
    );
}
