//! Influence seeding: pick `k` accounts whose combined follower reach is
//! maximal — k-cover on a preferential-attachment follower graph, the
//! "identifying representative elements in massive data" application the
//! paper's introduction cites (`[38]`).
//!
//! Demonstrates three ways to solve the same instance and that they agree:
//!
//! 1. offline lazy greedy (needs the full graph in RAM),
//! 2. single-pass streaming (Algorithm 3, `Õ(n)` space),
//! 3. the distributed runner (sketches merged across 4 simulated
//!    machines via a fan-in-2 merge tree).
//!
//! Run with:
//! ```text
//! cargo run --release --example influence_seeding
//! ```

use coverage_suite::core::report::Table;
use coverage_suite::prelude::*;

fn main() {
    // Follower graph: 400 accounts (sets), ~120k follow edges over 60k
    // users (elements); preferential attachment gives the heavy-tailed
    // audience sizes real social graphs have.
    let n_accounts = 400;
    let inst = preferential_attachment(
        n_accounts, 60_000, 300, /*copy_prob=*/ 0.3, /*seed=*/ 21,
    );
    let k = 8;
    println!(
        "follower graph: {} accounts, {} users reached, {} follow edges",
        inst.num_sets(),
        inst.num_elements(),
        inst.num_edges()
    );

    // 1. Offline ceiling.
    let offline = lazy_greedy_k_cover(&inst, k);

    // 2. Streaming (edges in random order — the hard model).
    let mut stream = VecStream::from_instance(&inst);
    ArrivalOrder::Random(9).apply(stream.edges_mut());
    let cfg = KCoverConfig::new(k, 0.2, 4).with_sizing(SketchSizing::Budget(20_000));
    let streamed = k_cover_streaming(&stream, &cfg);

    // 3. Distributed: 4 machines, fan-in-2 merge tree.
    let dist_cfg = DistConfig::new(4, k, 0.2, 4).with_sizing(SketchSizing::Budget(20_000));
    let dist = distributed_k_cover(&stream, &dist_cfg);

    let mut t = Table::new(
        "influence seeding: reach of the chosen seed sets",
        &[
            "method",
            "reach",
            "fraction of offline",
            "peak edges stored",
        ],
    );
    let offline_reach = offline.coverage();
    let mut row = |name: &str, family: &[SetId], peak: u64| {
        let reach = inst.coverage(family);
        t.row(vec![
            name.into(),
            reach.to_string(),
            format!("{:.3}", reach as f64 / offline_reach as f64),
            peak.to_string(),
        ]);
    };
    row("offline greedy", &offline.family(), inst.num_edges() as u64);
    row(
        "streaming (Alg 3)",
        &streamed.family,
        streamed.space.peak_edges,
    );
    row(
        "distributed (4 machines)",
        &dist.family,
        dist.per_machine
            .iter()
            .map(|r| r.peak_edges)
            .max()
            .unwrap_or(0),
    );
    println!("\n{}", t.render());

    // The streamed and distributed answers must agree: the merged sketch
    // is identical to the single-machine sketch.
    assert_eq!(streamed.family, dist.family, "sketch composability");
    let reach = inst.coverage(&streamed.family);
    assert!(reach as f64 >= 0.75 * offline_reach as f64);
    println!("streaming reach within 25% of offline ceiling ✓");
    println!("distributed family identical to single-machine family ✓");
}
