//! Network monitoring as set cover with outliers (Algorithm 5): place as
//! few monitors as possible while observing at least `1 − λ` of all links
//! — tolerating a small unmonitored tail is what keeps the stream-side
//! memory at `Õ_λ(n)`.
//!
//! Run with:
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use coverage_suite::core::report::Table;
use coverage_suite::data::domains::network_monitoring;
use coverage_suite::prelude::*;

fn main() {
    let (inst, k_star) = network_monitoring(
        /*probes=*/ 200, /*links=*/ 30_000, /*k*=*/ 12, 9,
    );
    println!(
        "monitoring: {} candidate probes, {} links, optimal placement = {k_star} probes",
        inst.num_sets(),
        inst.num_elements()
    );

    let mut stream = VecStream::from_instance(&inst);
    ArrivalOrder::Random(4).apply(stream.edges_mut());

    let mut t = Table::new(
        "monitors needed vs tolerated outlier fraction λ",
        &[
            "lambda",
            "monitors",
            "links covered",
            "fraction",
            "paper bound (1+ε)·k*·ln(1/λ)",
            "space (edges)",
        ],
    );
    for lambda in [0.25, 0.15, 0.10, 0.05, 0.02] {
        let cfg = OutlierConfig::new(lambda, 0.4, 21).with_sizing(SketchSizing::Budget(5_000));
        let res = set_cover_outliers(&stream, &cfg);
        let covered = inst.coverage(&res.family);
        let bound = (1.0 + 0.4) * k_star as f64 * (1.0 / lambda).ln();
        t.row(vec![
            format!("{lambda:.2}"),
            format!("{}", res.family.len()),
            format!("{covered}"),
            format!("{:.3}", covered as f64 / inst.num_elements() as f64),
            format!("{bound:.1}"),
            format!("{}", res.space.peak_edges),
        ]);
    }
    println!("\n{}", t.render());
    println!(
        "fewer tolerated outliers → more monitors and a bigger sketch bank,\n\
         tracking the (1+ε)·ln(1/λ) factor of Theorem 3.3."
    );
}
