//! Quickstart: stream a coverage instance edge by edge and solve k-cover
//! in one pass with `Õ(n)` memory (Algorithm 3 of the paper).
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use coverage_suite::prelude::*;

fn main() {
    // --- 1. A workload ---------------------------------------------------
    // 5 "golden" sets partition 50_000 elements; 95 decoy sets of 1_000
    // random elements each try to distract the algorithm. The optimal
    // 5-cover therefore covers all 50_000 elements.
    let planted = planted_k_cover(
        /*n=*/ 100, /*m=*/ 50_000, /*k=*/ 5, 1_000, /*seed=*/ 7,
    );
    let optimal = planted.optimal_value;

    // --- 2. An edge-arrival stream ---------------------------------------
    // Edges arrive in uniformly random order — neither sets nor elements
    // are grouped; this is the model where set-arrival algorithms cannot
    // even run.
    let mut stream = VecStream::from_instance(&planted.instance);
    ArrivalOrder::Random(42).apply(stream.edges_mut());
    println!(
        "instance: n={} sets, m={} elements, |E|={} edges",
        planted.instance.num_sets(),
        planted.instance.num_elements(),
        planted.instance.num_edges()
    );

    // --- 3. One pass, one sketch, one greedy -----------------------------
    let config = KCoverConfig::new(/*k=*/ 5, /*epsilon=*/ 0.2, /*seed=*/ 1)
        .with_sizing(SketchSizing::Budget(8_000));
    let result = k_cover_streaming(&stream, &config);

    let achieved = planted.instance.coverage(&result.family);
    println!("\npicked family : {:?}", result.family);
    println!("true coverage : {achieved} / {optimal} optimal");
    println!(
        "estimated     : {:.0} (sketch's own inverse-probability estimate)",
        result.estimated_coverage
    );
    println!(
        "space         : {} edges stored ({}x smaller than the input)",
        result.space.peak_edges,
        planted.instance.num_edges() as u64 / result.space.peak_edges.max(1)
    );
    println!(
        "sampling p*   : {:.5} (the sketch kept elements hashing below this)",
        result.sampling_p
    );

    assert!(achieved as f64 >= (1.0 - 1.0 / std::f64::consts::E - 0.2) * optimal as f64);
    println!("\n(1 − 1/e − ε) guarantee satisfied ✓");
}
