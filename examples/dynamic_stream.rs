//! Dynamic streams: insert *and delete* edges, then solve k-cover on
//! whatever survives — in one pass, without ever storing the stream.
//!
//! Run with:
//! ```text
//! cargo run --release --example dynamic_stream
//! ```
//!
//! The scenario is the adversarial insert-then-delete workload: a
//! planted instance whose stream prefix inflates every decoy set to
//! golden-set size before retracting all of that mass. An
//! insertion-only sketch that committed its budget to the prefix
//! answers for a graph that no longer exists; the dynamic sketch's
//! linear cells net the retraction away exactly.

use coverage_suite::prelude::*;

fn main() {
    // --- 1. A deletion workload ------------------------------------------
    // Surviving graph: 4 golden sets partition 20_000 elements, 76 small
    // decoys. The *stream*, however, first inserts a huge transient block
    // into every decoy and deletes it again before the end.
    let workload = adversarial_insert_delete(
        /*n=*/ 80, /*m=*/ 20_000, /*k=*/ 4, /*decoy_size=*/ 400,
        /*seed=*/ 7,
    );
    let stream = &workload.stream;
    println!(
        "stream : {} updates = {} inserts + {} deletes",
        stream.updates().len(),
        stream.num_inserts(),
        stream.num_deletes()
    );
    println!(
        "net    : {} surviving edges (hint: {:?})",
        workload.planted.instance.num_edges(),
        stream.net_len_hint()
    );

    // The generators promise — and the sketch requires — the strict
    // turnstile contract: no delete of an absent edge, no double insert.
    validate_turnstile(stream).expect("workload violates the turnstile contract");

    // --- 2. One pass over the signed stream ------------------------------
    // The dynamic sketch is linear: a delete is the exact inverse of its
    // insert, so the sketch state depends only on the surviving multiset.
    let config = DynamicKCoverConfig::new(/*k=*/ 4, /*epsilon=*/ 0.25, /*seed=*/ 1)
        .with_sizing(SketchSizing::Budget(6_000));
    let result = dynamic_k_cover(stream, &config);

    let achieved = workload.planted.instance.coverage(&result.family);
    let optimal = workload.planted.optimal_value;
    println!("\npicked family : {:?}", result.family);
    println!("true coverage : {achieved} / {optimal} optimal (on the SURVIVING graph)");
    println!(
        "estimate      : {:.0} (inverse-probability, level-{} sample at p = {:.4})",
        result.estimated_coverage, result.sample_level, result.sampling_p
    );
    println!(
        "recovered     : {} surviving edges decoded from the level's cells",
        result.recovered_edges
    );
    println!(
        "space         : {} words of linear cells (fixed, deletion-proof)",
        result.space.total_words()
    );

    // --- 3. The insertion-only pipeline, for contrast ---------------------
    // Run Algorithm 3 over the surviving edges only (what an oracle would
    // hand a static algorithm after the fact): the dynamic cover must be
    // within the paper's (1 − 1/e − ε) bound of it.
    let survivors = surviving_stream(stream);
    let ins = k_cover_streaming(
        &survivors,
        &KCoverConfig::new(4, 0.25, 1).with_sizing(SketchSizing::Budget(6_000)),
    );
    let ins_achieved = workload.planted.instance.coverage(&ins.family);
    println!("\ninsertion-only on survivors: {ins_achieved} covered");
    let bound = (1.0 - 1.0 / std::f64::consts::E - 0.25) * ins_achieved as f64;
    assert!(
        achieved as f64 >= bound,
        "dynamic cover {achieved} below bound {bound:.0}"
    );
    println!("dynamic cover within the (1 − 1/e − ε) bound of it ✓");
}
