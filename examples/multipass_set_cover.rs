//! The pass/space trade-off of Algorithm 6: full set cover in `2r−1`
//! passes using `Õ(n·m^{3/(2+r)} + m)` space — more passes, smaller
//! residual, less memory.
//!
//! Run with:
//! ```text
//! cargo run --release --example multipass_set_cover
//! ```

use coverage_suite::core::report::Table;
use coverage_suite::prelude::*;

fn main() {
    let planted = planted_set_cover(
        /*n=*/ 150, /*m=*/ 40_000, /*k*=*/ 10, 800, /*seed=*/ 5,
    );
    let inst = &planted.instance;
    println!(
        "set cover: n={} sets, m={} elements, |E|={}, optimal cover = {} sets",
        inst.num_sets(),
        inst.num_elements(),
        inst.num_edges(),
        planted.optimal_value
    );

    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(13).apply(stream.edges_mut());

    let mut t = Table::new(
        "Algorithm 6: rounds r vs cover size and space",
        &[
            "r",
            "passes",
            "cover size",
            "residual edges stored",
            "peak edges",
            "is cover?",
        ],
    );
    for r in [1usize, 2, 3, 4, 6] {
        let cfg = MultiPassConfig::new(r, 0.5, 31)
            .with_m(inst.num_elements())
            .with_sizing(SketchSizing::Budget(6_000));
        let res = set_cover_multipass(&stream, &cfg);
        t.row(vec![
            format!("{r}"),
            format!("{}", res.passes),
            format!("{}", res.family.len()),
            format!("{}", res.residual_edges),
            format!("{}", res.space.peak_edges),
            format!("{}", inst.is_cover(&res.family)),
        ]);
    }
    println!("\n{}", t.render());
    println!(
        "r=1 stores the entire input (the trivial algorithm); each extra\n\
         round multiplies the stored residual down by ≈ m^(-1/(2+r)),\n\
         while the cover stays within (1+ε)·ln(m) of optimal."
    );
}
