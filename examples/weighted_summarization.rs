//! Weighted data summarization: select `k` documents maximizing the
//! *frequency-weighted* vocabulary they cover. Elements (terms) carry
//! weights; the weighted extension (future-work direction in the paper's
//! conclusion) handles them two ways:
//!
//! 1. **offline** — weighted lazy greedy directly on the instance;
//! 2. **streaming** — unit replication: a term of weight `w` becomes `w`
//!    unit pseudo-terms, and the unmodified `H≤n` pipeline runs on the
//!    replicated edge stream.
//!
//! Run with:
//! ```text
//! cargo run --release --example weighted_summarization
//! ```

use coverage_suite::data::domains::summarization;
use coverage_suite::prelude::*;

fn main() {
    // 200 documents over a 30k-term vocabulary.
    let inst = summarization(200, 30_000, /*seed=*/ 5);
    let k = 12;

    // Term weights ~ Zipf-ish importance: hash-derived, 1..=9.
    let weights = ElementWeights::from_fn(&inst, |id| 1 + (id.0.wrapping_mul(2654435761) % 9));
    println!(
        "summarization: {} docs, {} terms (total weight {}), {} edges",
        inst.num_sets(),
        inst.num_elements(),
        weights.total(),
        inst.num_edges()
    );

    // 1. Offline weighted greedy — the (1 − 1/e) reference.
    let offline = weighted_greedy_k_cover(&inst, &weights, k);
    println!(
        "\noffline weighted greedy: {} docs cover weight {}",
        offline.len(),
        offline.covered_weight()
    );

    // 2. Streaming via unit replication.
    let max_w = 9u64;
    let mut b = CoverageInstance::builder(inst.num_sets());
    for s in inst.set_ids() {
        for &d in inst.dense_set(s) {
            let base = inst.element_id(d).0 * max_w;
            for c in 0..weights.get(d) {
                b.add_edge(Edge::new(s.0, base + c));
            }
        }
    }
    let replicated = b.build();
    let mut stream = VecStream::from_instance(&replicated);
    ArrivalOrder::Random(17).apply(stream.edges_mut());
    let cfg = KCoverConfig::new(k, 0.2, 8)
        .with_sizing(SketchSizing::Budget(replicated.num_edges() / 4 + 64));
    let streamed = k_cover_streaming(&stream, &cfg);
    let streamed_weight = weighted_coverage(&inst, &weights, &streamed.family);
    println!(
        "streamed (unit replication): {} docs cover weight {} \
         ({} replicated edges, {} stored)",
        streamed.family.len(),
        streamed_weight,
        replicated.num_edges(),
        streamed.space.peak_edges
    );

    let ratio = streamed_weight as f64 / offline.covered_weight() as f64;
    println!("\nstreamed / offline weighted coverage = {ratio:.3}");
    assert!(ratio > 0.7, "streaming should track offline quality");
    println!("weighted extension tracks offline greedy ✓");
}
