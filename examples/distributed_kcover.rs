//! Distributed k-cover via composable sketches — the extension the
//! paper's conclusion points to (companion work `[10]`): shard the edge
//! stream across machines, sketch each shard independently, merge, solve.
//! The output is bit-identical to the single-machine Algorithm 3.
//!
//! Run with:
//! ```text
//! cargo run --release --example distributed_kcover
//! ```

use coverage_suite::core::report::Table;
use coverage_suite::prelude::*;

fn main() {
    let planted = planted_k_cover(
        /*n=*/ 250, /*m=*/ 60_000, /*k=*/ 6, 800, /*seed=*/ 4,
    );
    let inst = &planted.instance;
    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(12).apply(stream.edges_mut());
    println!(
        "workload: n={} sets, m={} elements, |E|={} edges",
        inst.num_sets(),
        inst.num_elements(),
        inst.num_edges()
    );

    let mut t = Table::new(
        "map (shard sketches) -> reduce (merge) -> solve (greedy)",
        &[
            "machines",
            "coverage/OPT",
            "max per-machine edges",
            "merged edges",
            "family",
        ],
    );
    for machines in [1usize, 8, 64] {
        let cfg = DistConfig::new(machines, 6, 0.25, 33).with_sizing(SketchSizing::Budget(2_000));
        let res = distributed_k_cover(&stream, &cfg);
        let ratio = inst.coverage(&res.family) as f64 / planted.optimal_value as f64;
        t.row(vec![
            machines.to_string(),
            format!("{ratio:.3}"),
            res.per_machine
                .iter()
                .map(|r| r.peak_edges)
                .max()
                .unwrap_or(0)
                .to_string(),
            res.merged_edges.to_string(),
            format!("{:?}", res.family),
        ]);
    }
    println!("\n{}", t.render());
    println!(
        "identical families on every row: sketches of edge shards merge into\n\
         exactly the sketch of the whole stream (the hash-prefix property\n\
         composes), so distribution is free of quality loss."
    );
}
