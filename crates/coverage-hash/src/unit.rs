//! Seeded element → unit-interval hashing.
//!
//! Algorithm 1 of the paper draws `h : E → [0,1]` uniformly and
//! independently. We realize `h(u)` as a 64-bit value `H(u)` and interpret
//! it as the fixed-point fraction `H(u) / 2^64`. Comparisons against a
//! threshold `p` become exact integer comparisons `H(u) ≤ ⌊p·2^64⌋`, and
//! `p*` recovery (Definition 2.1) is exact division at reporting time only.

use crate::splitmix::mix64;

/// A seeded uniform hash from 64-bit element keys to `[0, 2^64)`.
///
/// Two `UnitHash`es with the same seed agree on every input; different
/// seeds give (empirically) independent functions. All sketches built for
/// the *same* run share one seed so they sample the same sub-universe —
/// exactly the paper's single global `h`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnitHash {
    seed: u64,
}

impl UnitHash {
    /// A hash function determined by `seed`.
    pub fn new(seed: u64) -> Self {
        // Pre-mix the seed so consecutive seeds give unrelated functions.
        UnitHash { seed: mix64(seed) }
    }

    /// Rebuild a hash function from a previously exported post-mix seed
    /// (see [`seed`](Self::seed)) — used when deserializing sketches, where
    /// the *exact* same function must be restored.
    pub fn from_raw_seed(raw: u64) -> Self {
        UnitHash { seed: raw }
    }

    /// The 64-bit hash of `key` (fixed-point fraction of `[0,1)`).
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        mix64(key ^ self.seed)
    }

    /// How many lanes [`hash_batch`](Self::hash_batch) unrolls by. The
    /// scalar-equivalence property suite sweeps remainder lengths up to
    /// twice this width, so the value is part of the test contract.
    pub const BATCH_LANES: usize = 8;

    /// Hash a batch of keys, appending one hash per key to `out` —
    /// the batched form of [`hash`](Self::hash).
    ///
    /// The sketch bank's shared-hash ingestion path hashes whole edge
    /// batches through this before touching any per-sketch state: a
    /// straight-line loop lets the mixer pipeline across iterations
    /// instead of alternating with branchy table probes, and — more
    /// importantly — lets *one* hash pass serve every sketch sharing
    /// the seed (the paper's single global `h` of Algorithm 1). Taking
    /// any key iterator lets callers hash directly out of their edge
    /// batches with no intermediate key buffer.
    ///
    /// Internally the loop is unrolled [`BATCH_LANES`](Self::BATCH_LANES)
    /// wide: `mix64` is a pure 3-round xor/multiply chain with no memory
    /// traffic, so eight independent chains keep the multiplier ports
    /// busy instead of serializing on one chain's latency (stable-rust
    /// ILP — the vendored toolchain has no nightly SIMD). Bit-identical
    /// to [`hash_batch_scalar`](Self::hash_batch_scalar) by the
    /// `unrolled_hash_batch_matches_scalar` property suite.
    #[inline]
    pub fn hash_batch(&self, keys: impl IntoIterator<Item = u64>, out: &mut Vec<u64>) {
        let seed = self.seed;
        let mut it = keys.into_iter();
        let (lower, upper) = it.size_hint();
        out.reserve(upper.unwrap_or(lower));
        // Exact-size sources (slices, ranges — every hot caller) take the
        // unrolled chunk loop; irregular iterators drain lane-by-lane.
        loop {
            let k0 = match it.next() {
                Some(k) => k,
                None => return,
            };
            let (k1, k2, k3, k4, k5, k6, k7) = match (
                it.next(),
                it.next(),
                it.next(),
                it.next(),
                it.next(),
                it.next(),
                it.next(),
            ) {
                (Some(a), Some(b), Some(c), Some(d), Some(e), Some(f), Some(g)) => {
                    (a, b, c, d, e, f, g)
                }
                (a, b, c, d, e, f, g) => {
                    // Short tail: fewer than BATCH_LANES keys remain. Stop
                    // at the first `None`, exactly as a plain `extend` would.
                    out.push(mix64(k0 ^ seed));
                    for k in [a, b, c, d, e, f, g] {
                        match k {
                            Some(k) => out.push(mix64(k ^ seed)),
                            None => break,
                        }
                    }
                    return;
                }
            };
            let h0 = mix64(k0 ^ seed);
            let h1 = mix64(k1 ^ seed);
            let h2 = mix64(k2 ^ seed);
            let h3 = mix64(k3 ^ seed);
            let h4 = mix64(k4 ^ seed);
            let h5 = mix64(k5 ^ seed);
            let h6 = mix64(k6 ^ seed);
            let h7 = mix64(k7 ^ seed);
            out.extend_from_slice(&[h0, h1, h2, h3, h4, h5, h6, h7]);
        }
    }

    /// The retained straight-line form of [`hash_batch`](Self::hash_batch):
    /// one `mix64` per iteration, no unrolling. This is the executable
    /// specification the unrolled path is property-tested against, and the
    /// baseline the `BENCH_8` ingest gate measures from.
    #[inline]
    pub fn hash_batch_scalar(&self, keys: impl IntoIterator<Item = u64>, out: &mut Vec<u64>) {
        let seed = self.seed;
        out.extend(keys.into_iter().map(|k| mix64(k ^ seed)));
    }

    /// The hash as an `f64` in `[0,1)` — reporting/diagnostics only.
    #[inline]
    pub fn hash_unit_f64(&self, key: u64) -> f64 {
        self.hash(key) as f64 / (2f64).powi(64)
    }

    /// The seed this function was built from (post-mix).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Convert a probability `p ∈ [0,1]` to its fixed-point threshold
/// `⌊p·2^64⌋` (saturating at `u64::MAX` for `p = 1`).
#[inline]
pub fn threshold_from_p(p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0,1], got {p}");
    if p >= 1.0 {
        u64::MAX
    } else {
        (p * 2f64.powi(64)) as u64
    }
}

/// Convert a fixed-point threshold back to a probability.
#[inline]
pub fn p_from_threshold(t: u64) -> f64 {
    if t == u64::MAX {
        1.0
    } else {
        t as f64 / 2f64.powi(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = UnitHash::new(1);
        let b = UnitHash::new(1);
        let c = UnitHash::new(2);
        assert_eq!(a.hash(42), b.hash(42));
        assert_ne!(a.hash(42), c.hash(42));
    }

    #[test]
    fn hash_batch_matches_scalar_hash() {
        let h = UnitHash::new(41);
        let keys: Vec<u64> = (0..257u64).map(|k| k.wrapping_mul(0x9E37_79B9)).collect();
        let mut out = vec![0xDEAD]; // appended after existing content
        h.hash_batch(keys.iter().copied(), &mut out);
        assert_eq!(out.len(), keys.len() + 1);
        assert_eq!(out[0], 0xDEAD);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(out[i + 1], h.hash(k), "key {k}");
        }
    }

    #[test]
    fn unrolled_batch_matches_scalar_on_all_remainders() {
        // Every remainder length around the unroll width, including the
        // empty batch: the unrolled loop and the scalar loop must append
        // identical sequences.
        let h = UnitHash::new(13);
        for len in 0..=(2 * UnitHash::BATCH_LANES + 1) {
            let keys: Vec<u64> = (0..len as u64)
                .map(|k| k.wrapping_mul(0x100_0001))
                .collect();
            let mut unrolled = vec![42u64];
            let mut scalar = vec![42u64];
            h.hash_batch(keys.iter().copied(), &mut unrolled);
            h.hash_batch_scalar(keys.iter().copied(), &mut scalar);
            assert_eq!(unrolled, scalar, "len={len}");
        }
    }

    #[test]
    fn unrolled_batch_handles_inexact_size_hints() {
        // A filtered iterator reports a loose size hint; the unrolled
        // chunking must still match the scalar path element-for-element.
        let h = UnitHash::new(29);
        let mut unrolled = Vec::new();
        let mut scalar = Vec::new();
        h.hash_batch((0..100u64).filter(|k| k % 3 != 0), &mut unrolled);
        h.hash_batch_scalar((0..100u64).filter(|k| k % 3 != 0), &mut scalar);
        assert_eq!(unrolled, scalar);
    }

    #[test]
    fn unit_f64_in_range() {
        let h = UnitHash::new(7);
        for k in 0..1000u64 {
            let x = h.hash_unit_f64(k);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn empirical_uniformity_deciles() {
        // 10k keys must spread ~evenly over 10 buckets of the hash range.
        let h = UnitHash::new(99);
        let mut counts = [0u32; 10];
        for k in 0..10_000u64 {
            let bucket = ((h.hash(k) as u128 * 10) >> 64) as usize;
            counts[bucket] += 1;
        }
        for c in counts {
            assert!((850..1150).contains(&c), "decile count {c} far from 1000");
        }
    }

    #[test]
    fn threshold_sampling_rate_matches_p() {
        // Fraction of keys below threshold(p) should approximate p.
        let h = UnitHash::new(3);
        for &p in &[0.1f64, 0.25, 0.5, 0.9] {
            let t = threshold_from_p(p);
            let hits = (0..20_000u64).filter(|&k| h.hash(k) <= t).count();
            let rate = hits as f64 / 20_000.0;
            assert!((rate - p).abs() < 0.02, "p={p}: empirical rate {rate}");
        }
    }

    #[test]
    fn threshold_roundtrip() {
        for &p in &[0.0f64, 0.125, 0.5, 0.999, 1.0] {
            let t = threshold_from_p(p);
            let back = p_from_threshold(t);
            assert!((back - p).abs() < 1e-12, "p={p} back={back}");
        }
    }

    #[test]
    #[should_panic(expected = "p must lie in [0,1]")]
    fn threshold_rejects_out_of_range() {
        threshold_from_p(1.5);
    }
}
