//! Simple tabulation hashing.
//!
//! The paper's analysis assumes a *fully independent* uniform hash
//! `h : E → [0,1]` — an idealization no implementation provides. Our
//! default [`crate::UnitHash`] is a SplitMix64 finalizer (no independence
//! guarantee, excellent empirical behaviour). Simple tabulation hashing is
//! the theoretically principled alternative: it is 3-wise independent, and
//! Pătraşcu & Thorup ("The Power of Simple Tabulation Hashing", J. ACM
//! 2012) prove it gives Chernoff-style concentration for exactly the kind
//! of threshold-sampling statistics the sketch relies on (Lemma 2.2).
//!
//! The hash of a 64-bit key is the XOR of eight table lookups, one per
//! key byte:
//!
//! ```text
//! h(x) = T₀[x₀] ⊕ T₁[x₁] ⊕ … ⊕ T₇[x₇]
//! ```
//!
//! where each `Tᵢ` is a table of 256 random 64-bit words derived from the
//! seed. The `exp_hash_ablation` experiment compares sketch quality under
//! SplitMix64 vs tabulation and finds them indistinguishable — evidence
//! that the idealized-hash assumption is harmless in practice.

use crate::splitmix::SplitMix64;
use crate::unit::UnitHash;

/// A hash family member mapping 64-bit element keys to 64-bit values
/// interpreted as fixed-point fractions of `[0,1)` — the common interface
/// of every element hash in this crate.
pub trait ElementHasher {
    /// The 64-bit hash of `key`.
    fn hash64(&self, key: u64) -> u64;

    /// The hash as an `f64` in `[0,1)` (diagnostics only).
    fn hash_unit(&self, key: u64) -> f64 {
        self.hash64(key) as f64 / 2f64.powi(64)
    }
}

impl ElementHasher for UnitHash {
    #[inline]
    fn hash64(&self, key: u64) -> u64 {
        self.hash(key)
    }
}

/// Simple tabulation hashing over 8 key bytes (3-wise independent).
#[derive(Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; 256]; 8]>,
}

impl std::fmt::Debug for TabulationHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabulationHash")
            .field("fingerprint", &self.tables[0][0])
            .finish()
    }
}

impl TabulationHash {
    /// A tabulation hash with tables filled from `seed`.
    pub fn new(seed: u64) -> Self {
        // Domain-separate from other seed users with a fixed tweak.
        let mut gen = SplitMix64::new(seed ^ 0x7AB7_1A71_0000_0001);
        let mut tables = Box::new([[0u64; 256]; 8]);
        for t in tables.iter_mut() {
            for slot in t.iter_mut() {
                *slot = gen.next_u64();
            }
        }
        TabulationHash { tables }
    }
}

impl ElementHasher for TabulationHash {
    #[inline]
    fn hash64(&self, key: u64) -> u64 {
        let b = key.to_le_bytes();
        self.tables[0][b[0] as usize]
            ^ self.tables[1][b[1] as usize]
            ^ self.tables[2][b[2] as usize]
            ^ self.tables[3][b[3] as usize]
            ^ self.tables[4][b[4] as usize]
            ^ self.tables[5][b[5] as usize]
            ^ self.tables[6][b[6] as usize]
            ^ self.tables[7][b[7] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{chi_square_critical, chi_square_uniform};

    #[test]
    fn deterministic_per_seed() {
        let a = TabulationHash::new(1);
        let b = TabulationHash::new(1);
        let c = TabulationHash::new(2);
        assert_eq!(a.hash64(42), b.hash64(42));
        assert_ne!(a.hash64(42), c.hash64(42));
    }

    #[test]
    fn xor_structure_holds() {
        // h(x) for single-byte keys must equal T0[x] ^ T1[0] ^ ... ^ T7[0];
        // verify via the 3-point identity h(a) ^ h(b) ^ h(a^b) ^ h(0) = 0
        // when a and b touch disjoint bytes.
        let h = TabulationHash::new(9);
        let a = 0x00FFu64; // bytes 0–1
        let b = 0xFF_0000u64; // byte 2
        assert_eq!(
            h.hash64(a) ^ h.hash64(b) ^ h.hash64(a | b) ^ h.hash64(0),
            0,
            "tabulation must be linear over disjoint byte masks"
        );
    }

    #[test]
    fn uniformity_chi_square() {
        let h = TabulationHash::new(123);
        let buckets = 64usize;
        let n = 64_000u64;
        let mut counts = vec![0u64; buckets];
        for k in 0..n {
            let b = ((h.hash64(k) as u128 * buckets as u128) >> 64) as usize;
            counts[b] += 1;
        }
        let stat = chi_square_uniform(&counts);
        let crit = chi_square_critical(buckets - 1);
        assert!(stat < crit, "chi^2 {stat} >= critical {crit}");
    }

    #[test]
    fn avalanche_is_near_half() {
        let h = TabulationHash::new(77);
        let mut total = 0u32;
        for bit in 0..64 {
            let d = h.hash64(0xDEAD_BEEF) ^ h.hash64(0xDEAD_BEEF ^ (1u64 << bit));
            total += d.count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..=40.0).contains(&avg), "avalanche {avg} not near 32");
    }

    #[test]
    fn unit_interface_matches_hash64() {
        let h = TabulationHash::new(5);
        let x = h.hash_unit(1234);
        assert!((0.0..1.0).contains(&x));
        assert_eq!(h.hash64(1234) as f64 / 2f64.powi(64), x);
    }

    #[test]
    fn unit_hash_implements_trait() {
        let u = crate::UnitHash::new(3);
        let via_trait: &dyn ElementHasher = &u;
        assert_eq!(via_trait.hash64(10), u.hash(10));
    }
}
