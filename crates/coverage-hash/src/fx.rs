//! An FxHash-style fast hasher for interior hash maps.
//!
//! The sketch keeps a `HashMap<ElementId, …>` that is touched once per
//! stream edge; SipHash's keying is wasted there (keys are already opaque
//! ids, not attacker-controlled strings). This is the rustc-hash
//! multiply-rotate scheme: low quality by cryptographic standards, several
//! times faster than SipHash on integer keys, and exactly what the
//! performance guide recommends for this situation.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x517c_c1b7_2722_0a95;

/// The rustc-hash style hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100u64 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hasher_is_deterministic() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn write_bytes_with_remainder() {
        let mut a = FxHasher::default();
        a.write(b"hello world"); // 11 bytes: one full chunk + remainder
        let mut b = FxHasher::default();
        b.write(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn integer_keys_spread_over_buckets() {
        // Fx is weak but must not collapse sequential keys to one bucket.
        let mut buckets = [0u32; 16];
        for i in 0..16_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() >> 60) as usize] += 1;
        }
        for b in buckets {
            assert!(b > 400, "bucket too empty: {b}");
        }
    }
}
