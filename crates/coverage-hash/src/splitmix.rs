//! SplitMix64: a tiny, high-quality 64-bit mixer and generator.
//!
//! Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
//! Generators" (OOPSLA 2014); constants are the standard Murmur3-finalizer
//! variant. SplitMix64 passes BigCrush when used as a generator, and its
//! finalizer has full avalanche — each input bit flips each output bit with
//! probability ≈ 1/2 — which is what the sketch's "uniform and independent"
//! hash assumption needs in practice.

/// One application of the SplitMix64 finalizer to `x` (stateless mix).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A sequential SplitMix64 generator (used for seeding and for cheap
/// reproducible randomness inside substrates; workload generation proper
/// uses the `rand` crate).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0,1)` (53 bits of precision).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// (slightly biased for astronomically large bounds; fine here).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn generator_matches_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut g = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| g.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6_457_827_717_110_365_317,
                3_203_168_211_198_807_973,
                9_817_491_932_198_370_423,
            ]
        );
    }

    #[test]
    fn avalanche_single_bit_flip() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        let trials = 64;
        for b in 0..trials {
            let d = mix64(42) ^ mix64(42 ^ (1u64 << b));
            total += d.count_ones();
        }
        let avg = total as f64 / trials as f64;
        assert!(
            (24.0..=40.0).contains(&avg),
            "average flipped bits {avg} not near 32"
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = SplitMix64::new(7);
        for bound in [1u64, 2, 10, 1_000_003] {
            for _ in 0..100 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut g = SplitMix64::new(5);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[g.next_below(8) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
