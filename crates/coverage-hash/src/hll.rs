//! A LogLog-family distinct counter (HyperLogLog estimator).
//!
//! Used only as an **ablation alternative** to [`crate::kmv::KmvSketch`] in
//! the Appendix D baseline: HLL uses `O(2^b)` bytes instead of `O(t)`
//! words, trading memory for a small constant bias. The experiment
//! comparing the two shows the baseline's `Õ(nk)` scaling is inherent to
//! *any* per-set mergeable counter, not an artifact of KMV.
//!
//! Standard HyperLogLog (Flajolet et al., 2007): `2^b` registers, each the
//! maximum "leading-zeros + 1" of the hash suffix routed to it; harmonic
//! mean estimator with the usual small-range (linear counting) correction.

use crate::unit::UnitHash;

/// A HyperLogLog counter with `2^b` one-byte registers.
#[derive(Clone, Debug)]
pub struct LogLogCounter {
    hash: UnitHash,
    b: u32,
    registers: Vec<u8>,
}

impl LogLogCounter {
    /// A counter with `2^b` registers, `4 ≤ b ≤ 16`.
    pub fn new(b: u32, hash: UnitHash) -> Self {
        assert!((4..=16).contains(&b), "b must be in 4..=16, got {b}");
        LogLogCounter {
            hash,
            b,
            registers: vec![0; 1 << b],
        }
    }

    /// Number of registers (`2^b`), the counter's space in bytes.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Insert a key (idempotent).
    pub fn insert(&mut self, key: u64) {
        let h = self.hash.hash(key);
        let idx = (h >> (64 - self.b)) as usize;
        let suffix = h << self.b;
        // rank = leading zeros of the suffix + 1, capped by suffix width.
        let rank = (suffix.leading_zeros() + 1).min(64 - self.b + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct keys inserted.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting on empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merge another counter (same hash, same `b`) into `self`.
    pub fn merge_from(&mut self, other: &LogLogCounter) {
        assert_eq!(self.hash, other.hash, "HLL merge requires matching hash");
        assert_eq!(self.b, other.b, "HLL merge requires matching b");
        for (a, &o) in self.registers.iter_mut().zip(&other.registers) {
            if o > *a {
                *a = o;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> UnitHash {
        UnitHash::new(0xBEEF)
    }

    #[test]
    fn small_counts_are_close() {
        let mut c = LogLogCounter::new(10, h());
        for k in 0..100u64 {
            c.insert(k);
        }
        let est = c.estimate();
        assert!(
            (est - 100.0).abs() < 15.0,
            "small-range estimate {est} too far from 100"
        );
    }

    #[test]
    fn large_counts_within_few_percent() {
        let mut c = LogLogCounter::new(12, h());
        let n = 200_000u64;
        for k in 0..n {
            c.insert(k);
        }
        let est = c.estimate();
        let err = (est - n as f64).abs() / n as f64;
        // RSE ≈ 1.04/sqrt(4096) ≈ 1.6%; allow 5 sigma.
        assert!(err < 0.08, "relative error {err} too large (est {est})");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut c = LogLogCounter::new(8, h());
        for _ in 0..10 {
            for k in 0..500u64 {
                c.insert(k);
            }
        }
        let est = c.estimate();
        assert!((est - 500.0).abs() < 75.0, "estimate {est} far from 500");
    }

    #[test]
    fn merge_approximates_union() {
        let mut a = LogLogCounter::new(12, h());
        let mut b = LogLogCounter::new(12, h());
        for k in 0..50_000u64 {
            a.insert(k);
        }
        for k in 25_000..75_000u64 {
            b.insert(k);
        }
        a.merge_from(&b);
        let est = a.estimate();
        let err = (est - 75_000.0).abs() / 75_000.0;
        assert!(err < 0.08, "union estimate {est}, err {err}");
    }

    #[test]
    #[should_panic(expected = "matching b")]
    fn merge_rejects_mismatched_b() {
        let mut a = LogLogCounter::new(8, h());
        let b = LogLogCounter::new(9, h());
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "b must be in 4..=16")]
    fn rejects_bad_b() {
        LogLogCounter::new(2, h());
    }
}
