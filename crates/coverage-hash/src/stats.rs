//! Statistical test helpers for hash quality and estimator calibration.
//!
//! The sketch's guarantees (Lemma 2.2 and everything downstream) rest on
//! the hash behaving like a uniform random function. These small,
//! dependency-free statistics let tests and the `exp_hash_ablation`
//! experiment *measure* that premise instead of assuming it:
//!
//! * [`chi_square_uniform`] / [`chi_square_critical`] — goodness-of-fit of
//!   bucket counts against the uniform law (critical value at the 99.9%
//!   level via the Wilson–Hilferty cube-root approximation, accurate to a
//!   few percent for df ≥ 10);
//! * [`ks_statistic_uniform`] / [`ks_critical`] — Kolmogorov–Smirnov
//!   distance of unit-interval samples from `U[0,1]`;
//! * [`summarize`] — mean / variance / extremes of an estimate series,
//!   used to report estimator bias and concentration envelopes.

/// Pearson's χ² statistic of observed bucket `counts` against the uniform
/// expectation. Panics on an empty slice or zero total.
pub fn chi_square_uniform(counts: &[u64]) -> f64 {
    assert!(!counts.is_empty(), "need at least one bucket");
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "need at least one observation");
    let expected = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// Approximate 99.9%-level critical value of the χ² distribution with
/// `df` degrees of freedom (Wilson–Hilferty: χ²_q ≈ df·(1 − 2/(9df) +
/// z_q·√(2/(9df)))³ with z_{0.999} ≈ 3.0902).
pub fn chi_square_critical(df: usize) -> f64 {
    assert!(df > 0, "degrees of freedom must be positive");
    let df = df as f64;
    let z = 3.0902;
    let a = 2.0 / (9.0 * df);
    df * (1.0 - a + z * a.sqrt()).powi(3)
}

/// Kolmogorov–Smirnov statistic `D_n = sup |F_emp(x) − x|` of samples
/// against `U[0,1]`. Sorts a copy of the input; panics if empty or if any
/// sample falls outside `[0,1]`.
pub fn ks_statistic_uniform(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    let mut xs = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let n = xs.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        assert!((0.0..=1.0).contains(&x), "sample {x} outside [0,1]");
        let upper = (i as f64 + 1.0) / n - x;
        let lower = x - i as f64 / n;
        d = d.max(upper).max(lower);
    }
    d
}

/// Approximate critical KS distance at significance `alpha ∈ {0.1, 0.05,
/// 0.01, 0.001}` for `n` samples (asymptotic `c(α)/√n` formula).
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    assert!(n > 0, "need at least one sample");
    let c = if alpha <= 0.001 {
        1.95
    } else if alpha <= 0.01 {
        1.63
    } else if alpha <= 0.05 {
        1.36
    } else {
        1.22
    };
    c / (n as f64).sqrt()
}

/// Summary statistics of a sample of estimates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (0 for n < 2).
    pub variance: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Mean relative error against a reference value.
    pub fn relative_bias(&self, truth: f64) -> f64 {
        assert!(truth != 0.0, "reference value must be nonzero");
        (self.mean - truth) / truth
    }
}

/// Compute [`Summary`] statistics. Panics on an empty slice.
pub fn summarize(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "need at least one sample");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let variance = if n < 2 {
        0.0
    } else {
        samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n as f64 - 1.0)
    };
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Summary {
        n,
        mean,
        variance,
        min,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitmix::SplitMix64;

    #[test]
    fn chi_square_zero_for_perfectly_uniform() {
        assert_eq!(chi_square_uniform(&[100, 100, 100, 100]), 0.0);
    }

    #[test]
    fn chi_square_grows_with_skew() {
        let balanced = chi_square_uniform(&[90, 110, 100, 100]);
        let skewed = chi_square_uniform(&[10, 190, 100, 100]);
        assert!(skewed > balanced);
    }

    #[test]
    fn chi_square_critical_increases_with_df() {
        assert!(chi_square_critical(20) > chi_square_critical(10));
        // Known reference: χ²_{0.999, 63} ≈ 103.4; approximation within 3%.
        let approx = chi_square_critical(63);
        assert!((100.0..107.0).contains(&approx), "got {approx}");
    }

    #[test]
    fn uniform_generator_passes_chi_square() {
        let mut g = SplitMix64::new(5);
        let mut counts = vec![0u64; 32];
        for _ in 0..32_000 {
            counts[g.next_below(32) as usize] += 1;
        }
        assert!(chi_square_uniform(&counts) < chi_square_critical(31));
    }

    #[test]
    fn constant_generator_fails_chi_square() {
        let mut counts = vec![0u64; 32];
        counts[0] = 32_000;
        assert!(chi_square_uniform(&counts) > chi_square_critical(31));
    }

    #[test]
    fn ks_detects_uniform_and_nonuniform() {
        let mut g = SplitMix64::new(11);
        let uniform: Vec<f64> = (0..2000).map(|_| g.next_f64()).collect();
        let d = ks_statistic_uniform(&uniform);
        assert!(d < ks_critical(2000, 0.001), "uniform rejected: D={d}");

        let squashed: Vec<f64> = uniform.iter().map(|&x| x * x).collect();
        let d2 = ks_statistic_uniform(&squashed);
        assert!(d2 > ks_critical(2000, 0.001), "x^2 law accepted: D={d2}");
    }

    #[test]
    fn ks_exact_on_tiny_sample() {
        // Single sample at 0.5: D = max(1 − 0.5, 0.5 − 0) = 0.5.
        assert!((ks_statistic_uniform(&[0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.relative_bias(2.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = summarize(&[7.0]);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn summary_empty_panics() {
        summarize(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn chi_square_empty_panics() {
        chi_square_uniform(&[]);
    }
}
