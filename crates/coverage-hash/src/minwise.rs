//! Min-wise hashing: fixed-size set signatures for Jaccard similarity.
//!
//! The classic Broder construction: for `h` independent hash functions,
//! a set's signature is the vector of per-function minima over its
//! elements. For two sets `A`, `B` each signature coordinate collides
//! with probability exactly `J(A,B) = |A∩B| / |A∪B|`, so the fraction of
//! agreeing coordinates is an unbiased Jaccard estimator with standard
//! error `O(1/√h)`.
//!
//! Role in this repository: coverage instances from real pipelines often
//! contain *near-duplicate* sets (mirrored pages, reposted blogs — the
//! paper's motivating data). Near-duplicates cannot change `Opt_k` by
//! much but inflate `n`, and every `Õ(n)`-space structure pays for them.
//! `coverage-algs::preprocess` uses these signatures to prune them ahead
//! of sketching.

use crate::splitmix::mix64;

/// A family of `h` min-wise hash functions (seeded, stateless).
#[derive(Clone, Debug)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

/// A set's min-wise signature (one minimum per hash function).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinHashSignature {
    mins: Vec<u64>,
}

impl MinHasher {
    /// A family of `h ≥ 1` functions derived from `seed`.
    pub fn new(h: usize, seed: u64) -> Self {
        assert!(h >= 1, "need at least one hash function");
        let mut seeds = Vec::with_capacity(h);
        let mut s = mix64(seed ^ 0x3147_B00C);
        for _ in 0..h {
            s = mix64(s);
            seeds.push(s);
        }
        MinHasher { seeds }
    }

    /// Number of hash functions (signature length).
    pub fn width(&self) -> usize {
        self.seeds.len()
    }

    /// Signature of the set given by `elements`. An empty set yields the
    /// all-`u64::MAX` signature (Jaccard 1.0 with other empty sets).
    pub fn signature(&self, elements: impl IntoIterator<Item = u64>) -> MinHashSignature {
        let mut mins = vec![u64::MAX; self.seeds.len()];
        for e in elements {
            for (m, &s) in mins.iter_mut().zip(&self.seeds) {
                let v = mix64(e ^ s);
                if v < *m {
                    *m = v;
                }
            }
        }
        MinHashSignature { mins }
    }
}

impl MinHashSignature {
    /// Estimated Jaccard similarity: the fraction of agreeing coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the signatures have different widths (different
    /// families must not be compared).
    pub fn jaccard(&self, other: &MinHashSignature) -> f64 {
        assert_eq!(
            self.mins.len(),
            other.mins.len(),
            "signatures from different families"
        );
        let agree = self
            .mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.mins.len() as f64
    }

    /// Signature width.
    pub fn width(&self) -> usize {
        self.mins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn true_jaccard(a: &[u64], b: &[u64]) -> f64 {
        let sa: std::collections::HashSet<u64> = a.iter().copied().collect();
        let sb: std::collections::HashSet<u64> = b.iter().copied().collect();
        let inter = sa.intersection(&sb).count();
        let uni = sa.union(&sb).count();
        inter as f64 / uni.max(1) as f64
    }

    #[test]
    fn identical_sets_have_similarity_one() {
        let h = MinHasher::new(64, 7);
        let a: Vec<u64> = (0..500).collect();
        let sig1 = h.signature(a.iter().copied());
        let sig2 = h.signature(a.iter().copied());
        assert_eq!(sig1.jaccard(&sig2), 1.0);
    }

    #[test]
    fn disjoint_sets_have_similarity_near_zero() {
        let h = MinHasher::new(128, 3);
        let a = h.signature(0..500u64);
        let b = h.signature(10_000..10_500u64);
        assert!(a.jaccard(&b) < 0.05, "got {}", a.jaccard(&b));
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let h = MinHasher::new(256, 11);
        for overlap in [100u64, 250, 400] {
            let a: Vec<u64> = (0..500).collect();
            let b: Vec<u64> = (500 - overlap..1000 - overlap).collect();
            let truth = true_jaccard(&a, &b);
            let est = h
                .signature(a.iter().copied())
                .jaccard(&h.signature(b.iter().copied()));
            assert!(
                (est - truth).abs() < 0.12,
                "overlap {overlap}: est {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn signature_is_order_and_duplicate_invariant() {
        let h = MinHasher::new(32, 5);
        let fwd = h.signature(0..100u64);
        let rev = h.signature((0..100u64).rev());
        let dup = h.signature((0..100u64).chain(0..100u64));
        assert_eq!(fwd, rev);
        assert_eq!(fwd, dup);
    }

    #[test]
    fn empty_sets_match_each_other() {
        let h = MinHasher::new(16, 9);
        let a = h.signature(std::iter::empty());
        let b = h.signature(std::iter::empty());
        assert_eq!(a.jaccard(&b), 1.0);
        let c = h.signature(0..10u64);
        assert_eq!(a.jaccard(&c), 0.0);
    }

    #[test]
    #[should_panic(expected = "different families")]
    fn width_mismatch_panics() {
        let a = MinHasher::new(8, 1).signature(0..5u64);
        let b = MinHasher::new(16, 1).signature(0..5u64);
        let _ = a.jaccard(&b);
    }

    #[test]
    fn wider_signatures_reduce_variance() {
        // Repeat an estimate with narrow and wide signatures across seeds;
        // the wide family must have smaller spread.
        let a: Vec<u64> = (0..400).collect();
        let b: Vec<u64> = (200..600).collect();
        let truth = true_jaccard(&a, &b);
        let spread = |width: usize| {
            let mut worst: f64 = 0.0;
            for seed in 0..12u64 {
                let h = MinHasher::new(width, seed);
                let est = h
                    .signature(a.iter().copied())
                    .jaccard(&h.signature(b.iter().copied()));
                worst = worst.max((est - truth).abs());
            }
            worst
        };
        assert!(spread(512) < spread(8) + 1e-9);
    }
}
