//! K-Minimum-Values (bottom-k) distinct-count sketch.
//!
//! This is the mergeable `ℓ₀` estimator of Appendix D ("`ℓ₀` sketch",
//! citing Cormode, Datar, Indyk & Muthukrishnan `[16]`). Keep the `t`
//! smallest *distinct* hash values of the inserted keys; then the `t`-th
//! smallest normalized hash `h_(t)` estimates the distinct count as
//! `(t−1)/h_(t)`, with relative standard error `≈ 1/√(t−2)`.
//!
//! Two KMV sketches (with the same hash function) merge by uniting their
//! value sets and re-truncating to the `t` smallest — which is exactly the
//! sketch of the union of the underlying sets. The Appendix D baseline
//! keeps one KMV per input set and evaluates a candidate family by merging
//! the family's sketches, so its space is `Θ(n·t) = Õ(nk)` once `t` is
//! chosen large enough to union-bound over the `(n choose k)` candidate
//! families.

use std::collections::BTreeSet;

use crate::unit::UnitHash;

/// A bottom-`t` distinct-count sketch over 64-bit keys.
#[derive(Clone, Debug)]
pub struct KmvSketch {
    hash: UnitHash,
    t: usize,
    /// The up-to-`t` smallest distinct hash values seen so far.
    values: BTreeSet<u64>,
}

impl KmvSketch {
    /// A sketch of size `t ≥ 2` using the hash function `hash`.
    ///
    /// Sketches that will be merged must share the same `hash`.
    pub fn new(t: usize, hash: UnitHash) -> Self {
        assert!(t >= 2, "KMV needs t ≥ 2, got {t}");
        KmvSketch {
            hash,
            t,
            values: BTreeSet::new(),
        }
    }

    /// Size parameter `t` that yields relative standard error ≤ `eps`.
    pub fn t_for_epsilon(eps: f64) -> usize {
        assert!(eps > 0.0, "epsilon must be positive");
        ((1.0 / (eps * eps)).ceil() as usize + 2).max(2)
    }

    /// Insert a key (idempotent: duplicates never change the sketch).
    pub fn insert(&mut self, key: u64) {
        let h = self.hash.hash(key);
        if self.values.len() < self.t {
            self.values.insert(h);
        } else if let Some(&max) = self.values.iter().next_back() {
            if h < max && self.values.insert(h) {
                self.values.remove(&max);
            }
        }
    }

    /// Number of stored hash values (≤ `t`). This is the sketch's space in
    /// words, the quantity the E6 experiment measures.
    pub fn stored(&self) -> usize {
        self.values.len()
    }

    /// Size parameter `t`.
    pub fn capacity(&self) -> usize {
        self.t
    }

    /// The hash function in use (for compatibility checks).
    pub fn unit_hash(&self) -> UnitHash {
        self.hash
    }

    /// Estimated number of distinct keys inserted.
    ///
    /// Exact (the sketch stores every distinct hash) while fewer than `t`
    /// distinct keys have been seen; the `(t−1)/h_(t)` estimator afterwards.
    pub fn estimate(&self) -> f64 {
        if self.values.len() < self.t {
            self.values.len() as f64
        } else {
            let kth = *self
                .values
                .iter()
                .next_back()
                .expect("t ≥ 2 values present");
            // Normalized t-th minimum: (kth+1)/2^64 to avoid divide-by-zero.
            let h_t = (kth as f64 + 1.0) / 2f64.powi(64);
            (self.t as f64 - 1.0) / h_t
        }
    }

    /// Merge `other` into `self`. Both must use the same hash function and
    /// the same `t` (merging different sizes would silently change the
    /// estimator's accuracy, so we refuse).
    pub fn merge_from(&mut self, other: &KmvSketch) {
        assert_eq!(
            self.hash, other.hash,
            "KMV sketches must share a hash function to merge"
        );
        assert_eq!(self.t, other.t, "KMV sketches must share t to merge");
        for &v in &other.values {
            if self.values.len() < self.t {
                self.values.insert(v);
            } else {
                let max = *self.values.iter().next_back().unwrap();
                if v < max && self.values.insert(v) {
                    self.values.remove(&max);
                }
            }
        }
    }

    /// The merge of an iterator of sketches (union estimate), without
    /// mutating the inputs. Panics on an empty iterator.
    pub fn merged<'a>(mut sketches: impl Iterator<Item = &'a KmvSketch>) -> KmvSketch {
        let first = sketches.next().expect("merged() needs at least one sketch");
        let mut acc = first.clone();
        for s in sketches {
            acc.merge_from(s);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> UnitHash {
        UnitHash::new(0xC0FFEE)
    }

    #[test]
    fn exact_below_capacity() {
        let mut s = KmvSketch::new(64, h());
        for k in 0..50u64 {
            s.insert(k);
        }
        assert_eq!(s.estimate(), 50.0);
        // Duplicates change nothing.
        for k in 0..50u64 {
            s.insert(k);
        }
        assert_eq!(s.estimate(), 50.0);
        assert_eq!(s.stored(), 50);
    }

    #[test]
    fn estimate_within_error_bounds() {
        // t = 1026 → RSE ≈ 3.1%; allow 4 sigma.
        let t = 1026;
        let mut s = KmvSketch::new(t, h());
        let n = 100_000u64;
        for k in 0..n {
            s.insert(k);
        }
        let est = s.estimate();
        let rse = 1.0 / ((t - 2) as f64).sqrt();
        assert!(
            (est - n as f64).abs() < 4.0 * rse * n as f64,
            "estimate {est} too far from {n}"
        );
        assert_eq!(s.stored(), t);
    }

    #[test]
    fn merge_equals_union() {
        let t = 512;
        let mut a = KmvSketch::new(t, h());
        let mut b = KmvSketch::new(t, h());
        let mut u = KmvSketch::new(t, h());
        for k in 0..30_000u64 {
            a.insert(k);
            u.insert(k);
        }
        for k in 15_000..45_000u64 {
            b.insert(k);
            u.insert(k);
        }
        let merged = KmvSketch::merged([&a, &b].into_iter());
        // Merge must equal the sketch of the union *exactly* (same stored
        // hash values), not merely approximately.
        assert_eq!(merged.values, u.values);
        assert_eq!(merged.estimate(), u.estimate());
    }

    #[test]
    fn merge_is_commutative() {
        let t = 128;
        let mut a = KmvSketch::new(t, h());
        let mut b = KmvSketch::new(t, h());
        for k in 0..5000u64 {
            if k % 2 == 0 {
                a.insert(k);
            } else {
                b.insert(k);
            }
        }
        let ab = KmvSketch::merged([&a, &b].into_iter());
        let ba = KmvSketch::merged([&b, &a].into_iter());
        assert_eq!(ab.values, ba.values);
    }

    #[test]
    fn t_for_epsilon_monotone() {
        assert!(KmvSketch::t_for_epsilon(0.1) < KmvSketch::t_for_epsilon(0.05));
        assert!(KmvSketch::t_for_epsilon(0.5) >= 2);
    }

    #[test]
    #[should_panic(expected = "share a hash function")]
    fn merge_rejects_mismatched_hash() {
        let mut a = KmvSketch::new(16, UnitHash::new(1));
        let b = KmvSketch::new(16, UnitHash::new(2));
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "t ≥ 2")]
    fn rejects_tiny_t() {
        KmvSketch::new(1, h());
    }
}
