//! # coverage-hash
//!
//! Hashing substrate for the streaming-coverage reproduction.
//!
//! The paper's sketch needs a hash function `h: E → [0,1]` that behaves
//! uniformly and independently per element (Section 2, Algorithm 1 line 2),
//! plus — for the Appendix D baseline — mergeable `ℓ₀` (distinct-count)
//! sketches in the style of Cormode et al. `[16]`. Nothing suitable exists
//! in the sanctioned dependency set, so this crate implements:
//!
//! * [`splitmix`] — the SplitMix64 generator/finalizer, our seeded
//!   avalanche mixer;
//! * [`unit`](mod@unit) — [`UnitHash`]: seeded element→`u64` hashing interpreted as a
//!   fixed-point fraction of `[0,1)` (thresholds stay exact integers — no
//!   floating point in the hot path);
//! * [`fx`] — an FxHash-style `BuildHasher` for fast interior hash maps;
//! * [`kmv`] — the K-Minimum-Values (bottom-k) distinct-count sketch: the
//!   mergeable `(1±ε)` `ℓ₀` estimator behind the `Õ(nk)` baseline;
//! * [`hll`] — a LogLog-family counter used only as an ablation
//!   alternative to KMV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fx;
pub mod hll;
pub mod kmv;
pub mod minwise;
pub mod splitmix;
pub mod stats;
pub mod tabulation;
pub mod unit;

pub use fx::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hll::LogLogCounter;
pub use kmv::KmvSketch;
pub use minwise::{MinHashSignature, MinHasher};
pub use splitmix::{mix64, SplitMix64};
pub use stats::{
    chi_square_critical, chi_square_uniform, ks_critical, ks_statistic_uniform, summarize, Summary,
};
pub use tabulation::{ElementHasher, TabulationHash};
pub use unit::{p_from_threshold, threshold_from_p, UnitHash};
