//! The serving daemon: a [`ServeEngine`] driven by framed
//! [`proto`](crate::proto) requests over a byte pipe.
//!
//! The CLI's `coverage serve` mode runs [`run_stdio`] — the daemon
//! body over this process's stdin/stdout. Protocol handling is
//! strictly in order on the daemon thread while ingest and publication
//! run on the engine's ingest thread, so an update burst applies
//! concurrently with the *previous* request's reply being written, and
//! a full engine queue exerts backpressure through the OS pipe back to
//! the client.
//!
//! Shutdown paths: a [`Request::Shutdown`] drains the engine (all
//! buffered updates applied, final epoch published) and answers one
//! final [`Reply::Stats`]; a clean pipe close (EOF between frames)
//! drains the same way without a reply. Both return the final stats.

use std::io::{BufReader, BufWriter, Read, Write};

use crate::engine::{QueryHandle, ServeConfig, ServeEngine, ServeError, ServeStats};
use crate::proto::{read_request, write_reply, ProtoError, Reply, Request};

/// Journal restarts a single session will attempt before giving up on
/// an engine that keeps dying (e.g. a persistent injected fault).
const MAX_RECOVERIES: u32 = 8;

/// If the engine degraded and the config allows it, replace the dead
/// engine with a journal-replay restart pinned to the last published
/// epoch ([`ServeEngine::recover_from_journal`]). Returns whether a
/// recovery happened (the caller retries its operation once).
fn try_recover(
    engine: &mut ServeEngine,
    queries: &mut QueryHandle,
    config: &ServeConfig,
    recoveries: &mut u32,
) -> bool {
    if !config.auto_recover || *recoveries >= MAX_RECOVERIES {
        return false;
    }
    // The dying ingest thread drops its queue receiver while unwinding,
    // so a submit/flush can observe `Closed` a beat before the degraded
    // flag lands; grant the unwind a bounded grace period.
    let mut waited = 0u32;
    while !engine.is_degraded() && waited < 2000 {
        std::thread::sleep(std::time::Duration::from_millis(1));
        waited += 1;
    }
    if !engine.is_degraded() {
        return false;
    }
    *recoveries += 1;
    let journal = engine.journal_snapshot();
    let epoch = engine.stats().epoch;
    let recovered = ServeEngine::recover_from_journal(config.clone(), journal, epoch);
    *queries = recovered.query_handle();
    drop(std::mem::replace(engine, recovered));
    true
}

/// Consecutive malformed frames tolerated before the daemon gives up
/// on a stream it can no longer resynchronize with.
const MAX_CONSECUTIVE_BAD_FRAMES: u32 = 8;

/// Serve framed requests from `input` until shutdown or client hangup;
/// replies go to `output` in request order. Returns the final stats
/// after the graceful drain.
pub fn serve_loop(
    input: &mut impl Read,
    output: &mut impl Write,
    config: ServeConfig,
) -> Result<ServeStats, ProtoError> {
    let mut engine = ServeEngine::start(config.clone());
    let mut queries = engine.query_handle();
    let mut bad_frames = 0u32;
    let mut recoveries = 0u32;
    let shutdown_id = loop {
        let request = match read_request(input) {
            Ok((request, _)) => {
                bad_frames = 0;
                request
            }
            Err(ProtoError::Eof) => break None,
            // A corrupt, oversized, or malformed frame is the client's
            // fault, not a daemon-fatal condition: answer a typed error
            // (id 0 — the frame never yielded one) and keep serving.
            // Checksum failures consume the whole bad frame, so the
            // stream stays in sync; a run of undecodable frames means
            // we lost framing and the stream is abandoned.
            Err(ProtoError::Wire(e)) => {
                bad_frames += 1;
                write_reply(
                    output,
                    &Reply::Error {
                        id: 0,
                        message: format!("bad frame: {e}"),
                    },
                )?;
                if bad_frames >= MAX_CONSECUTIVE_BAD_FRAMES {
                    return Err(ProtoError::Wire(e));
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        match request {
            Request::Update { id, updates } => {
                let backup = config.auto_recover.then(|| updates.clone());
                match engine.submit(updates) {
                    Ok(()) => {}
                    Err(ServeError::DeleteInInsertOnly) => {
                        write_reply(
                            output,
                            &Reply::Error {
                                id,
                                message: ServeError::DeleteInInsertOnly.to_string(),
                            },
                        )?;
                    }
                    Err(e) => {
                        if try_recover(&mut engine, &mut queries, &config, &mut recoveries) {
                            engine
                                .submit(backup.expect("auto_recover keeps a batch copy"))
                                .map_err(ProtoError::from)?;
                        } else {
                            return Err(e.into());
                        }
                    }
                }
            }
            Request::Query { id, k } => {
                let answer = queries.query(k);
                write_reply(output, &Reply::Query { id, answer })?;
            }
            Request::Stats { id } => {
                write_reply(
                    output,
                    &Reply::Stats {
                        id,
                        stats: engine.stats(),
                    },
                )?;
            }
            Request::Flush { id } => {
                let epoch = match engine.flush() {
                    Ok(epoch) => epoch,
                    Err(e) => {
                        if try_recover(&mut engine, &mut queries, &config, &mut recoveries) {
                            engine.flush().map_err(ProtoError::from)?
                        } else {
                            return Err(e.into());
                        }
                    }
                };
                let updates_applied = engine.stats().published_updates;
                write_reply(
                    output,
                    &Reply::Flush {
                        id,
                        epoch,
                        updates_applied,
                    },
                )?;
            }
            Request::Snapshot { id } => {
                let (epoch, frames) = match engine.ship_snapshots() {
                    Ok(r) => r,
                    Err(e) => {
                        if try_recover(&mut engine, &mut queries, &config, &mut recoveries) {
                            engine.ship_snapshots().map_err(ProtoError::from)?
                        } else {
                            return Err(e.into());
                        }
                    }
                };
                write_reply(output, &Reply::Snapshot { id, epoch, frames })?;
            }
            Request::Shutdown { id } => break Some(id),
        }
    };
    let fin = engine.finish();
    if let Some(id) = shutdown_id {
        write_reply(
            output,
            &Reply::Stats {
                id,
                stats: fin.stats.clone(),
            },
        )?;
    }
    Ok(fin.stats)
}

/// Run [`serve_loop`] over this process's stdin/stdout — the body of
/// the CLI's `coverage serve` mode. Returns the process exit code.
pub fn run_stdio(config: ServeConfig) -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = BufWriter::new(stdout.lock());
    match serve_loop(&mut input, &mut output, config) {
        Ok(stats) => {
            eprintln!(
                "serve: drained at epoch {} ({} updates applied, {} queries served)",
                stats.epoch, stats.updates_applied, stats.queries_served
            );
            0
        }
        Err(e) => {
            eprintln!("serve: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::read_reply;
    use coverage_core::Edge;
    use coverage_sketch::SketchSnapshot;
    use coverage_stream::SignedEdge;

    fn inserts(range: std::ops::Range<u64>) -> Vec<SignedEdge> {
        range
            .map(|e| SignedEdge::insert(Edge::new((e % 5) as u32, e * 11 % 300)))
            .collect()
    }

    fn cfg() -> ServeConfig {
        ServeConfig::bank_ladder(5, 3, 0.4, 500, 21)
            .with_publish_every(64)
            .with_journal(true)
    }

    fn drive(requests: &[Request]) -> (Vec<Reply>, ServeStats) {
        drive_with(cfg(), requests)
    }

    fn drive_with(config: ServeConfig, requests: &[Request]) -> (Vec<Reply>, ServeStats) {
        let mut pipe_in = Vec::new();
        for r in requests {
            crate::proto::write_request(&mut pipe_in, r).unwrap();
        }
        let mut pipe_out = Vec::new();
        let stats = serve_loop(&mut &pipe_in[..], &mut pipe_out, config).unwrap();
        let mut replies = Vec::new();
        let mut cursor = &pipe_out[..];
        loop {
            match read_reply(&mut cursor) {
                Ok((reply, _)) => replies.push(reply),
                Err(ProtoError::Eof) => break,
                Err(e) => panic!("bad reply stream: {e}"),
            }
        }
        (replies, stats)
    }

    #[test]
    fn full_conversation_in_request_order() {
        let (replies, stats) = drive(&[
            Request::Update {
                id: 1,
                updates: inserts(0..500),
            },
            Request::Flush { id: 2 },
            Request::Query { id: 3, k: 2 },
            Request::Stats { id: 4 },
            Request::Snapshot { id: 5 },
            Request::Shutdown { id: 6 },
        ]);
        assert_eq!(replies.len(), 5, "update succeeds silently");
        match &replies[0] {
            Reply::Flush {
                id,
                epoch,
                updates_applied,
            } => {
                assert_eq!(*id, 2);
                assert!(*epoch >= 1);
                assert_eq!(*updates_applied, 500);
            }
            other => panic!("wrong reply: {other:?}"),
        }
        match &replies[1] {
            Reply::Query { id, answer } => {
                assert_eq!(*id, 3);
                assert_eq!(answer.updates_applied, 500);
                assert!(!answer.family.is_empty());
            }
            other => panic!("wrong reply: {other:?}"),
        }
        assert!(matches!(&replies[2], Reply::Stats { id: 4, .. }));
        match &replies[3] {
            Reply::Snapshot { id, frames, .. } => {
                assert_eq!(*id, 5);
                assert_eq!(frames.len(), 3);
                for frame in frames {
                    SketchSnapshot::decode_binary(frame).expect("shipped frame must decode");
                }
            }
            other => panic!("wrong reply: {other:?}"),
        }
        match &replies[4] {
            Reply::Stats { id, stats: fin } => {
                assert_eq!(*id, 6);
                assert_eq!(fin.updates_applied, 500);
                assert_eq!(fin.staleness(), 0);
            }
            other => panic!("wrong reply: {other:?}"),
        }
        assert_eq!(stats.queries_served, 1);
    }

    #[test]
    fn rejected_update_answers_an_error_and_serving_continues() {
        let (replies, stats) = drive(&[
            Request::Update {
                id: 7,
                updates: vec![SignedEdge::delete(Edge::new(1u32, 2u64))],
            },
            Request::Update {
                id: 8,
                updates: inserts(0..50),
            },
            Request::Query { id: 9, k: 1 },
        ]);
        assert_eq!(replies.len(), 2);
        match &replies[0] {
            Reply::Error { id, message } => {
                assert_eq!(*id, 7);
                assert!(message.contains("insertion-only"));
            }
            other => panic!("wrong reply: {other:?}"),
        }
        assert!(matches!(&replies[1], Reply::Query { id: 9, .. }));
        assert_eq!(stats.updates_applied, 50, "rejected batch never applied");
    }

    #[test]
    fn injected_ingest_crash_recovers_from_journal_and_keeps_serving() {
        // The first batch of 120 crashes the ingest thread (injected
        // after 100 applied updates, checked post-batch, so all 120 are
        // journaled). The next flush observes the dead engine, replays
        // the journal, and serving continues as if nothing happened.
        let config = cfg().with_ingest_panic_after(100).with_auto_recover(true);
        let (replies, stats) = drive_with(
            config,
            &[
                Request::Update {
                    id: 1,
                    updates: inserts(0..120),
                },
                Request::Flush { id: 2 },
                Request::Update {
                    id: 3,
                    updates: inserts(120..150),
                },
                Request::Flush { id: 4 },
                Request::Query { id: 5, k: 2 },
                Request::Shutdown { id: 6 },
            ],
        );
        assert_eq!(replies.len(), 4, "updates succeed silently");
        match &replies[0] {
            Reply::Flush {
                id,
                updates_applied,
                ..
            } => {
                assert_eq!(*id, 2);
                assert_eq!(
                    *updates_applied, 120,
                    "journal replay covers the crash batch"
                );
            }
            other => panic!("wrong reply: {other:?}"),
        }
        match &replies[1] {
            Reply::Flush {
                id,
                updates_applied,
                ..
            } => {
                assert_eq!(*id, 4);
                assert_eq!(*updates_applied, 150);
            }
            other => panic!("wrong reply: {other:?}"),
        }
        match &replies[2] {
            Reply::Query { id, answer } => {
                assert_eq!(*id, 5);
                assert_eq!(answer.updates_applied, 150);
                assert!(!answer.family.is_empty());
            }
            other => panic!("wrong reply: {other:?}"),
        }
        assert!(matches!(&replies[3], Reply::Stats { id: 6, .. }));
        assert_eq!(stats.updates_applied, 150);
        assert!(
            !stats.degraded,
            "the recovered engine serves at full fidelity"
        );
    }

    #[test]
    fn eof_drains_without_a_reply() {
        let (replies, stats) = drive(&[Request::Update {
            id: 1,
            updates: inserts(0..80),
        }]);
        assert!(replies.is_empty());
        assert_eq!(stats.updates_applied, 80);
        assert_eq!(stats.staleness(), 0, "EOF drain publishes the tail");
    }
}
