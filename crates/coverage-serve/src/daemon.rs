//! The serving daemon: a [`ServeEngine`] driven by framed
//! [`proto`](crate::proto) requests over a byte pipe.
//!
//! The CLI's `coverage serve` mode runs [`run_stdio`] — the daemon
//! body over this process's stdin/stdout. Protocol handling is
//! strictly in order on the daemon thread while ingest and publication
//! run on the engine's ingest thread, so an update burst applies
//! concurrently with the *previous* request's reply being written, and
//! a full engine queue exerts backpressure through the OS pipe back to
//! the client.
//!
//! Shutdown paths: a [`Request::Shutdown`] drains the engine (all
//! buffered updates applied, final epoch published) and answers one
//! final [`Reply::Stats`]; a clean pipe close (EOF between frames)
//! drains the same way without a reply. Both return the final stats.

use std::io::{BufReader, BufWriter, Read, Write};

use crate::engine::{ServeConfig, ServeEngine, ServeError, ServeStats};
use crate::proto::{read_request, write_reply, ProtoError, Reply, Request};

/// Serve framed requests from `input` until shutdown or client hangup;
/// replies go to `output` in request order. Returns the final stats
/// after the graceful drain.
pub fn serve_loop(
    input: &mut impl Read,
    output: &mut impl Write,
    config: ServeConfig,
) -> Result<ServeStats, ProtoError> {
    let engine = ServeEngine::start(config);
    let mut queries = engine.query_handle();
    let shutdown_id = loop {
        let request = match read_request(input) {
            Ok((request, _)) => request,
            Err(ProtoError::Eof) => break None,
            Err(e) => return Err(e),
        };
        match request {
            Request::Update { id, updates } => match engine.submit(updates) {
                Ok(()) => {}
                Err(ServeError::DeleteInInsertOnly) => {
                    write_reply(
                        output,
                        &Reply::Error {
                            id,
                            message: ServeError::DeleteInInsertOnly.to_string(),
                        },
                    )?;
                }
                Err(e) => return Err(e.into()),
            },
            Request::Query { id, k } => {
                let answer = queries.query(k);
                write_reply(output, &Reply::Query { id, answer })?;
            }
            Request::Stats { id } => {
                write_reply(
                    output,
                    &Reply::Stats {
                        id,
                        stats: engine.stats(),
                    },
                )?;
            }
            Request::Flush { id } => {
                let epoch = engine.flush()?;
                let updates_applied = engine.stats().published_updates;
                write_reply(
                    output,
                    &Reply::Flush {
                        id,
                        epoch,
                        updates_applied,
                    },
                )?;
            }
            Request::Snapshot { id } => {
                let (epoch, frames) = engine.ship_snapshots()?;
                write_reply(output, &Reply::Snapshot { id, epoch, frames })?;
            }
            Request::Shutdown { id } => break Some(id),
        }
    };
    let fin = engine.finish();
    if let Some(id) = shutdown_id {
        write_reply(
            output,
            &Reply::Stats {
                id,
                stats: fin.stats.clone(),
            },
        )?;
    }
    Ok(fin.stats)
}

/// Run [`serve_loop`] over this process's stdin/stdout — the body of
/// the CLI's `coverage serve` mode. Returns the process exit code.
pub fn run_stdio(config: ServeConfig) -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = BufReader::new(stdin.lock());
    let mut output = BufWriter::new(stdout.lock());
    match serve_loop(&mut input, &mut output, config) {
        Ok(stats) => {
            eprintln!(
                "serve: drained at epoch {} ({} updates applied, {} queries served)",
                stats.epoch, stats.updates_applied, stats.queries_served
            );
            0
        }
        Err(e) => {
            eprintln!("serve: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::read_reply;
    use coverage_core::Edge;
    use coverage_sketch::SketchSnapshot;
    use coverage_stream::SignedEdge;

    fn inserts(range: std::ops::Range<u64>) -> Vec<SignedEdge> {
        range
            .map(|e| SignedEdge::insert(Edge::new((e % 5) as u32, e * 11 % 300)))
            .collect()
    }

    fn cfg() -> ServeConfig {
        ServeConfig::bank_ladder(5, 3, 0.4, 500, 21)
            .with_publish_every(64)
            .with_journal(true)
    }

    fn drive(requests: &[Request]) -> (Vec<Reply>, ServeStats) {
        let mut pipe_in = Vec::new();
        for r in requests {
            crate::proto::write_request(&mut pipe_in, r).unwrap();
        }
        let mut pipe_out = Vec::new();
        let stats = serve_loop(&mut &pipe_in[..], &mut pipe_out, cfg()).unwrap();
        let mut replies = Vec::new();
        let mut cursor = &pipe_out[..];
        loop {
            match read_reply(&mut cursor) {
                Ok((reply, _)) => replies.push(reply),
                Err(ProtoError::Eof) => break,
                Err(e) => panic!("bad reply stream: {e}"),
            }
        }
        (replies, stats)
    }

    #[test]
    fn full_conversation_in_request_order() {
        let (replies, stats) = drive(&[
            Request::Update {
                id: 1,
                updates: inserts(0..500),
            },
            Request::Flush { id: 2 },
            Request::Query { id: 3, k: 2 },
            Request::Stats { id: 4 },
            Request::Snapshot { id: 5 },
            Request::Shutdown { id: 6 },
        ]);
        assert_eq!(replies.len(), 5, "update succeeds silently");
        match &replies[0] {
            Reply::Flush {
                id,
                epoch,
                updates_applied,
            } => {
                assert_eq!(*id, 2);
                assert!(*epoch >= 1);
                assert_eq!(*updates_applied, 500);
            }
            other => panic!("wrong reply: {other:?}"),
        }
        match &replies[1] {
            Reply::Query { id, answer } => {
                assert_eq!(*id, 3);
                assert_eq!(answer.updates_applied, 500);
                assert!(!answer.family.is_empty());
            }
            other => panic!("wrong reply: {other:?}"),
        }
        assert!(matches!(&replies[2], Reply::Stats { id: 4, .. }));
        match &replies[3] {
            Reply::Snapshot { id, frames, .. } => {
                assert_eq!(*id, 5);
                assert_eq!(frames.len(), 3);
                for frame in frames {
                    SketchSnapshot::decode_binary(frame).expect("shipped frame must decode");
                }
            }
            other => panic!("wrong reply: {other:?}"),
        }
        match &replies[4] {
            Reply::Stats { id, stats: fin } => {
                assert_eq!(*id, 6);
                assert_eq!(fin.updates_applied, 500);
                assert_eq!(fin.staleness(), 0);
            }
            other => panic!("wrong reply: {other:?}"),
        }
        assert_eq!(stats.queries_served, 1);
    }

    #[test]
    fn rejected_update_answers_an_error_and_serving_continues() {
        let (replies, stats) = drive(&[
            Request::Update {
                id: 7,
                updates: vec![SignedEdge::delete(Edge::new(1u32, 2u64))],
            },
            Request::Update {
                id: 8,
                updates: inserts(0..50),
            },
            Request::Query { id: 9, k: 1 },
        ]);
        assert_eq!(replies.len(), 2);
        match &replies[0] {
            Reply::Error { id, message } => {
                assert_eq!(*id, 7);
                assert!(message.contains("insertion-only"));
            }
            other => panic!("wrong reply: {other:?}"),
        }
        assert!(matches!(&replies[1], Reply::Query { id: 9, .. }));
        assert_eq!(stats.updates_applied, 50, "rejected batch never applied");
    }

    #[test]
    fn eof_drains_without_a_reply() {
        let (replies, stats) = drive(&[Request::Update {
            id: 1,
            updates: inserts(0..80),
        }]);
        assert!(replies.is_empty());
        assert_eq!(stats.updates_applied, 80);
        assert_eq!(stats.staleness(), 0, "EOF drain publishes the tail");
    }
}
