//! The epoch-tagged snapshot cell: one writer publishes immutable
//! views, many readers consume them without locking in steady state.
//!
//! The serving daemon separates the *live* store (a [`SketchBank`] or
//! [`DynamicSketch`] owned exclusively by the ingest thread — see
//! [`engine`](crate::engine)) from the *published* store: an immutable
//! [`EpochSnapshot`] holding one packed [`CsrInstance`] per guess.
//! Publishing swaps an `Arc` under a write lock and **then** bumps an
//! atomic epoch counter with `Release` ordering. A [`SnapshotReader`]
//! caches the `Arc` it last saw and re-reads the slot only when the
//! atomic epoch (loaded with `Acquire`) differs from its cached copy —
//! so between publishes the query hot path is one atomic load and zero
//! locks, and the rare refresh takes a read lock that a publisher holds
//! only for the duration of an `Arc` store.
//!
//! Ordering argument: the slot store happens-before the epoch store
//! (program order + `Release`), and a reader that observes the new
//! epoch with `Acquire` then acquires the read lock, which synchronizes
//! with the writer's unlock — so the reader can never load a snapshot
//! *older* than the epoch it observed (it may load a newer one, which
//! is fine: epochs only move forward).
//!
//! [`SketchBank`]: coverage_sketch::SketchBank
//! [`DynamicSketch`]: coverage_sketch::DynamicSketch

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use coverage_core::{CoverageView, CsrInstance, SetId};

/// One guess's published view: the packed CSR export of a live sketch
/// plus the metadata a query needs to turn a greedy trace into a
/// coverage estimate.
#[derive(Clone, Debug)]
pub struct GuessView {
    /// The guess's target family size `k` (bank mode: the geometric
    /// ladder value; dynamic mode: the configured `k`).
    pub k: usize,
    /// Sampling probability at export time: estimates scale a covered
    /// count by `1 / sampling_p`.
    pub sampling_p: f64,
    /// Edges retained by the live sketch when the view was exported.
    pub edges_stored: usize,
    /// Distinct elements retained when the view was exported.
    pub elements_stored: usize,
    /// The immutable packed view the bucket-queue greedy solves on.
    pub view: CsrInstance,
}

/// An immutable published snapshot: everything a query thread touches.
#[derive(Clone, Debug)]
pub struct EpochSnapshot {
    /// Monotone publish counter; `0` is the empty pre-ingest snapshot.
    pub epoch: u64,
    /// Exact number of signed updates applied to the live store when
    /// this snapshot was exported — the journal prefix that rebuilds it.
    pub updates_applied: u64,
    /// Ground-set size `n` (sets `0..n`).
    pub num_sets: usize,
    /// One view per guess, in the live store's guess order. Empty when
    /// the dynamic sketch could not decode a level (see
    /// [`ServeStats::publish_failures`](crate::ServeStats)).
    pub guesses: Vec<GuessView>,
}

impl EpochSnapshot {
    /// The empty epoch-0 snapshot a cell starts from before any
    /// publish: no guesses, nothing applied.
    pub fn empty(num_sets: usize) -> Self {
        EpochSnapshot {
            epoch: 0,
            updates_applied: 0,
            num_sets,
            guesses: Vec::new(),
        }
    }

    /// Structural bit-equality of two snapshots: identical epochs,
    /// applied counts, and per-guess views (metadata, element id maps,
    /// and every per-set dense slice). This is the consistency oracle
    /// used by the torn-state tests and the BENCH_7 gate — a rebuilt
    /// snapshot must match the published one exactly, not merely
    /// produce the same greedy family.
    pub fn content_eq(&self, other: &EpochSnapshot) -> bool {
        self.epoch == other.epoch
            && self.updates_applied == other.updates_applied
            && self.num_sets == other.num_sets
            && self.guesses.len() == other.guesses.len()
            && self
                .guesses
                .iter()
                .zip(&other.guesses)
                .all(|(a, b)| guess_views_eq(a, b))
    }
}

fn guess_views_eq(a: &GuessView, b: &GuessView) -> bool {
    a.k == b.k
        && a.sampling_p.to_bits() == b.sampling_p.to_bits()
        && a.edges_stored == b.edges_stored
        && a.elements_stored == b.elements_stored
        && csr_eq(&a.view, &b.view)
}

fn csr_eq(a: &CsrInstance, b: &CsrInstance) -> bool {
    a.num_sets() == b.num_sets()
        && a.element_ids() == b.element_ids()
        && a.num_edges() == b.num_edges()
        && (0..a.num_sets() as u32).all(|s| a.dense_set(SetId(s)) == b.dense_set(SetId(s)))
}

/// The single-writer / many-reader publication point.
///
/// Exactly one thread (the ingest thread) calls [`publish`]; any number
/// of threads read via [`SnapshotReader`] or [`load`]. Epochs must be
/// published in strictly increasing order (enforced).
///
/// [`publish`]: SnapshotCell::publish
/// [`load`]: SnapshotCell::load
#[derive(Debug)]
pub struct SnapshotCell {
    epoch: AtomicU64,
    slot: RwLock<Arc<EpochSnapshot>>,
}

impl SnapshotCell {
    /// A cell holding `initial` (normally [`EpochSnapshot::empty`]).
    pub fn new(initial: EpochSnapshot) -> Self {
        SnapshotCell {
            epoch: AtomicU64::new(initial.epoch),
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    /// Atomically replace the published snapshot. Store first, then
    /// bump the epoch tag (`Release`) — see the module ordering note.
    ///
    /// # Panics
    ///
    /// Panics if `snap.epoch` does not strictly exceed the published
    /// epoch: regressing or duplicate epochs would break the readers'
    /// "refresh only on tag change" contract.
    pub fn publish(&self, snap: EpochSnapshot) {
        let next = snap.epoch;
        let current = self.epoch.load(Ordering::Relaxed);
        assert!(
            next > current,
            "epoch must advance: published {next} after {current}"
        );
        *self.slot.write().expect("snapshot slot poisoned") = Arc::new(snap);
        self.epoch.store(next, Ordering::Release);
    }

    /// The currently published epoch tag (`Acquire`).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clone out the current snapshot handle (takes the read lock —
    /// query loops should prefer a cached [`SnapshotReader`]).
    pub fn load(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.slot.read().expect("snapshot slot poisoned"))
    }

    /// A reader with its own cached handle for lock-free steady state.
    pub fn reader(self: &Arc<Self>) -> SnapshotReader {
        SnapshotReader {
            cached: self.load(),
            cell: Arc::clone(self),
        }
    }
}

/// A per-thread read handle: holds the last snapshot it saw and
/// refreshes only when the cell's epoch tag moves.
#[derive(Debug)]
pub struct SnapshotReader {
    cell: Arc<SnapshotCell>,
    cached: Arc<EpochSnapshot>,
}

impl SnapshotReader {
    /// The freshest published snapshot. One `Acquire` load when nothing
    /// changed; a read-lock refresh when the tag moved.
    pub fn current(&mut self) -> &Arc<EpochSnapshot> {
        if self.cell.epoch() != self.cached.epoch {
            self.cached = self.cell.load();
        }
        &self.cached
    }

    /// The snapshot this reader last refreshed to (no synchronization —
    /// may be stale).
    pub fn cached(&self) -> &Arc<EpochSnapshot> {
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, updates: u64) -> EpochSnapshot {
        EpochSnapshot {
            epoch,
            updates_applied: updates,
            num_sets: 3,
            guesses: Vec::new(),
        }
    }

    #[test]
    fn reader_sees_publishes_in_order() {
        let cell = Arc::new(SnapshotCell::new(EpochSnapshot::empty(3)));
        let mut reader = cell.reader();
        assert_eq!(reader.current().epoch, 0);
        cell.publish(snap(1, 10));
        cell.publish(snap(2, 25));
        let cur = reader.current();
        assert_eq!(cur.epoch, 2);
        assert_eq!(cur.updates_applied, 25);
    }

    #[test]
    fn reader_does_not_refresh_without_a_tag_change() {
        let cell = Arc::new(SnapshotCell::new(EpochSnapshot::empty(1)));
        cell.publish(snap(1, 5));
        let mut reader = cell.reader();
        let first = Arc::as_ptr(reader.current());
        let second = Arc::as_ptr(reader.current());
        assert_eq!(first, second, "same epoch must reuse the cached Arc");
    }

    #[test]
    #[should_panic(expected = "epoch must advance")]
    fn regressed_epoch_panics() {
        let cell = SnapshotCell::new(EpochSnapshot::empty(1));
        cell.publish(snap(2, 5));
        cell.publish(snap(2, 6));
    }

    #[test]
    fn old_handles_stay_valid_after_publish() {
        let cell = Arc::new(SnapshotCell::new(EpochSnapshot::empty(2)));
        cell.publish(snap(1, 7));
        let held = cell.load();
        cell.publish(snap(2, 9));
        // The superseded snapshot is still fully readable: queries that
        // started on epoch 1 finish on epoch 1.
        assert_eq!(held.epoch, 1);
        assert_eq!(held.updates_applied, 7);
        assert_eq!(cell.load().epoch, 2);
    }

    #[test]
    fn concurrent_readers_never_see_torn_tags() {
        // Epoch and updates_applied move in lockstep (updates = 10 ×
        // epoch); a torn read would decouple them.
        let cell = Arc::new(SnapshotCell::new(EpochSnapshot::empty(1)));
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move |_| {
                    let mut reader = cell.reader();
                    for _ in 0..10_000 {
                        let s = reader.current();
                        assert_eq!(s.updates_applied, s.epoch * 10);
                    }
                });
            }
            for e in 1..=100 {
                cell.publish(snap(e, e * 10));
            }
        })
        .expect("reader threads must not panic");
    }
}
