//! The serving engine: one ingest thread owning the live store, a
//! bounded update queue in front of it, and epoch publication.
//!
//! ## Threading model
//!
//! ```text
//!  submitters ──sync_channel──▶ ingest thread ──publish──▶ SnapshotCell
//!  (backpressure: full queue      (owns the live store,        │
//!   blocks the submitter)          journal, epoch counter)     ▼
//!                                                      query threads
//!                                                      (lock-free reads)
//! ```
//!
//! The live [`SketchBank`] / [`DynamicSketch`] is owned *exclusively*
//! by the ingest thread — no lock ever guards the ingest hot loop.
//! Every `publish_every` applied updates (and on flush/drain) it
//! exports the store as an immutable [`EpochSnapshot`] and swaps it
//! into the [`SnapshotCell`]; queries solve the bucket-queue greedy on
//! whatever epoch is published, so answers are *consistent* (one store
//! state) and *bounded-stale* (at most [`ServeStats::staleness`]
//! applied-but-unpublished updates behind the live store).
//!
//! ## Determinism contract
//!
//! `SketchBank::update_batch` and `DynamicSketch::update_batch` are
//! batch-split-independent (property-tested in coverage-sketch), so
//! replaying the journal prefix of length `updates_applied` into a
//! fresh store rebuilds the published snapshot **bit-identically** —
//! [`EpochSnapshot::content_eq`] — regardless of how submitters
//! interleaved their batches. That replay is the consistency oracle of
//! the torn-state property tests and the BENCH_7 CI gate.
//!
//! [`SketchBank`]: coverage_sketch::SketchBank
//! [`DynamicSketch`]: coverage_sketch::DynamicSketch

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use coverage_core::offline::bucket_greedy_k_cover;
use coverage_core::SetId;
use coverage_dist::{Composable, RoundCost, RoundsReport};
use coverage_sketch::{
    DynamicSketch, DynamicSketchParams, DynamicSnapshot, SketchBank, SketchParams, SketchSnapshot,
};
use coverage_stream::{SignedEdge, UpdateKind};

use crate::epoch::{EpochSnapshot, GuessView, SnapshotCell, SnapshotReader};

/// Which live store the engine runs.
#[derive(Clone, Debug)]
pub enum StoreConfig {
    /// Insertion-only serving: an `H≤n` [`SketchBank`] (one threshold
    /// sketch per `k`-guess). Deletes are rejected at submit time.
    ///
    /// [`SketchBank`]: coverage_sketch::SketchBank
    Bank(Vec<SketchParams>),
    /// Fully dynamic serving: an ℓ₀-sampler [`DynamicSketch`] that
    /// accepts interleaved inserts and deletes.
    ///
    /// [`DynamicSketch`]: coverage_sketch::DynamicSketch
    Dynamic(DynamicSketchParams),
}

/// Engine configuration: store shape, seed, publication cadence,
/// queue bound, and journaling.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The live store to run.
    pub store: StoreConfig,
    /// Shared hash seed for every sketch in the store.
    pub seed: u64,
    /// Publish a fresh epoch after this many applied updates (a flush
    /// or drain publishes early). Smaller = fresher answers, more
    /// export work on the ingest thread.
    pub publish_every: u64,
    /// Capacity of the bounded update queue, in *batches*. A full
    /// queue blocks the submitter — backpressure, never unbounded
    /// buffering.
    pub queue_batches: usize,
    /// Record every applied update in arrival order. Required by the
    /// consistency oracle ([`replay prefix`](LiveStore::apply) →
    /// [`EpochSnapshot::content_eq`]); off by default for serving.
    pub journal: bool,
    /// Test-only fault injection: panic the ingest thread after this
    /// many applied updates (the panic fires *after* the update is
    /// journaled, so recovery replay is exact). `None` (the default)
    /// injects nothing.
    pub ingest_panic_after: Option<u64>,
    /// Let the daemon loop restart a degraded engine from its journal
    /// ([`ServeEngine::recover_from_journal`]) instead of failing the
    /// session. Requires [`journal`](Self::journal); off by default.
    pub auto_recover: bool,
}

impl ServeConfig {
    /// A bank-mode config over explicit per-guess parameters.
    pub fn bank(params: impl IntoIterator<Item = SketchParams>, seed: u64) -> Self {
        ServeConfig {
            store: StoreConfig::Bank(params.into_iter().collect()),
            seed,
            publish_every: 65_536,
            queue_batches: 16,
            journal: false,
            ingest_panic_after: None,
            auto_recover: false,
        }
    }

    /// A bank-mode config on the standard geometric guess ladder:
    /// `guesses` sketches with `k = 1, 2, 4, …`, each sized by
    /// [`SketchParams::with_budget`] with `budget` edges.
    pub fn bank_ladder(
        num_sets: usize,
        guesses: usize,
        epsilon: f64,
        budget: usize,
        seed: u64,
    ) -> Self {
        let params =
            (0..guesses).map(|g| SketchParams::with_budget(num_sets, 1usize << g, epsilon, budget));
        Self::bank(params, seed)
    }

    /// A dynamic-mode (insert + delete) config.
    pub fn dynamic(params: DynamicSketchParams, seed: u64) -> Self {
        ServeConfig {
            store: StoreConfig::Dynamic(params),
            seed,
            publish_every: 65_536,
            queue_batches: 16,
            journal: false,
            ingest_panic_after: None,
            auto_recover: false,
        }
    }

    /// Set the publication cadence (applied updates per epoch).
    pub fn with_publish_every(mut self, updates: u64) -> Self {
        self.publish_every = updates.max(1);
        self
    }

    /// Set the bounded queue capacity, in batches.
    pub fn with_queue_batches(mut self, batches: usize) -> Self {
        self.queue_batches = batches.max(1);
        self
    }

    /// Enable or disable the applied-update journal.
    pub fn with_journal(mut self, on: bool) -> Self {
        self.journal = on;
        self
    }

    /// Deterministic fault injection: panic the ingest thread once it
    /// has applied at least `updates` updates. The engine contains the
    /// panic ([`ServeEngine::is_degraded`]) and keeps serving the last
    /// published epoch. Test-only.
    pub fn with_ingest_panic_after(mut self, updates: u64) -> Self {
        self.ingest_panic_after = Some(updates);
        self
    }

    /// Enable daemon-level journal recovery: a degraded engine is
    /// replaced by [`ServeEngine::recover_from_journal`] mid-session
    /// instead of ending it. Implies journaling.
    pub fn with_auto_recover(mut self, on: bool) -> Self {
        self.auto_recover = on;
        if on {
            self.journal = true;
        }
        self
    }

    /// Ground-set size `n` the store was configured for.
    pub fn num_sets(&self) -> usize {
        match &self.store {
            StoreConfig::Bank(params) => params.first().map_or(0, |p| p.num_sets),
            StoreConfig::Dynamic(params) => params.base.num_sets,
        }
    }

    /// True when the store cannot apply deletes (bank mode).
    pub fn insert_only(&self) -> bool {
        matches!(self.store, StoreConfig::Bank(_))
    }
}

/// Errors surfaced by the engine's public API.
#[derive(Debug)]
pub enum ServeError {
    /// A delete update was submitted to an insertion-only (bank) store.
    DeleteInInsertOnly,
    /// The engine is shut down (or its ingest thread died).
    Closed,
    /// A deadline-bounded query ran out of time before covering every
    /// guess ladder entry.
    DeadlineExceeded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DeleteInInsertOnly => {
                write!(f, "delete update submitted to an insertion-only store")
            }
            ServeError::Closed => write!(f, "serve engine is closed"),
            ServeError::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The live store, owned by the ingest thread. Public so the
/// consistency oracle (tests, BENCH_7) can rebuild snapshots by
/// journal replay outside an engine.
#[derive(Debug)]
pub enum LiveStore {
    /// Insertion-only `H≤n` bank.
    Bank(SketchBank),
    /// Dynamic ℓ₀-sampler sketch.
    Dynamic(DynamicSketch),
}

impl LiveStore {
    /// A fresh store per `config` (same params + seed ⇒ same store).
    pub fn new(config: &ServeConfig) -> Self {
        match &config.store {
            StoreConfig::Bank(params) => {
                LiveStore::Bank(SketchBank::new(params.iter().copied(), config.seed))
            }
            StoreConfig::Dynamic(params) => {
                LiveStore::Dynamic(DynamicSketch::new(*params, config.seed))
            }
        }
    }

    /// Apply a batch of signed updates. Batch boundaries do not affect
    /// the resulting store (split-independence is property-tested in
    /// coverage-sketch), which is what makes journal-prefix replay an
    /// exact oracle.
    ///
    /// # Panics
    ///
    /// Panics if a delete reaches a bank store — the engine rejects
    /// those at submit time, so this is a caller bug.
    pub fn apply(&mut self, updates: &[SignedEdge]) {
        match self {
            LiveStore::Bank(bank) => {
                let edges: Vec<_> = updates
                    .iter()
                    .map(|u| {
                        assert!(
                            u.kind == UpdateKind::Insert,
                            "delete update reached an insertion-only store"
                        );
                        u.edge
                    })
                    .collect();
                bank.update_batch(&edges);
            }
            LiveStore::Dynamic(sketch) => sketch.update_batch(updates),
        }
    }

    /// Export the store as an immutable epoch snapshot: one
    /// [`GuessView`] per live sketch (bank) or one for the recovered
    /// ℓ₀ sample (dynamic). Returns `None` when the dynamic sketch has
    /// no decodable level — the publisher keeps the previous epoch and
    /// counts a failure.
    pub fn snapshot(&self, epoch: u64, updates_applied: u64) -> Option<EpochSnapshot> {
        let guesses = match self {
            LiveStore::Bank(bank) => bank
                .sketches()
                .iter()
                .map(|s| GuessView {
                    k: s.params().k,
                    sampling_p: s.sampling_p(),
                    edges_stored: s.edges_stored(),
                    elements_stored: s.elements_stored(),
                    view: s.csr_view(),
                })
                .collect(),
            LiveStore::Dynamic(sketch) => {
                let sample = sketch.recover()?;
                vec![GuessView {
                    k: sketch.params().base.k,
                    sampling_p: sample.sampling_p,
                    edges_stored: sample.edges.len(),
                    elements_stored: 0,
                    view: sketch.csr_view(&sample),
                }]
            }
        };
        Some(EpochSnapshot {
            epoch,
            updates_applied,
            num_sets: self.num_sets(),
            guesses,
        })
    }

    /// Ground-set size `n`.
    pub fn num_sets(&self) -> usize {
        match self {
            LiveStore::Bank(bank) => bank.sketches().first().map_or(0, |s| s.params().num_sets),
            LiveStore::Dynamic(sketch) => sketch.params().base.num_sets,
        }
    }

    /// Number of live sketches (bank guesses, or 1).
    pub fn num_sketches(&self) -> usize {
        match self {
            LiveStore::Bank(bank) => bank.sketches().len(),
            LiveStore::Dynamic(_) => 1,
        }
    }

    /// Model-word ship size of the whole store (the
    /// [`Composable::ship_words`] accounting used by the dist layer).
    pub fn ship_words(&self) -> u64 {
        match self {
            LiveStore::Bank(bank) => bank.sketches().iter().map(Composable::ship_words).sum(),
            LiveStore::Dynamic(sketch) => Composable::ship_words(sketch),
        }
    }

    /// Encode the store as `coverage_sketch::wire` binary snapshot
    /// frames (one per sketch) — the payloads a `snapshot` protocol
    /// request ships.
    pub fn ship_binary_frames(&self) -> Vec<Vec<u8>> {
        match self {
            LiveStore::Bank(bank) => bank
                .sketches()
                .iter()
                .map(|s| SketchSnapshot::of(s).encode_binary())
                .collect(),
            LiveStore::Dynamic(sketch) => vec![DynamicSnapshot::of(sketch).encode_binary()],
        }
    }
}

/// One query's deterministic answer, tagged with the epoch it was
/// served from.
#[derive(Clone, Debug)]
pub struct QueryAnswer {
    /// Epoch of the snapshot that produced this answer.
    pub epoch: u64,
    /// Updates applied at that epoch (the journal prefix length).
    pub updates_applied: u64,
    /// Index of the winning guess in the snapshot's guess list (0 when
    /// the snapshot has no guesses).
    pub guess_index: usize,
    /// The winning guess's configured `k` (0 when no guesses).
    pub guess_k: usize,
    /// The greedy family chosen on the winning guess's view.
    pub family: Vec<SetId>,
    /// Sketch elements the family covers on that view.
    pub sketch_coverage: usize,
    /// Coverage estimate: `sketch_coverage / sampling_p` of the
    /// winning guess (0 when no guesses).
    pub estimate: f64,
    /// The winning guess's sampling probability (0 when no guesses).
    pub sampling_p: f64,
}

impl QueryAnswer {
    /// Bit-exact equality (floats compared by bits — the consistency
    /// gate's notion of "identical answer").
    pub fn bit_eq(&self, other: &QueryAnswer) -> bool {
        self.epoch == other.epoch
            && self.updates_applied == other.updates_applied
            && self.guess_index == other.guess_index
            && self.guess_k == other.guess_k
            && self.family == other.family
            && self.sketch_coverage == other.sketch_coverage
            && self.estimate.to_bits() == other.estimate.to_bits()
            && self.sampling_p.to_bits() == other.sampling_p.to_bits()
    }
}

/// Answer a `k`-cover query on a published snapshot: run the exact
/// bucket-queue greedy on every guess view, estimate coverage as
/// `covered / sampling_p`, and return the guess with the largest
/// estimate (ties → smallest guess index). Pure and deterministic —
/// the same function answers live queries and replay verification.
pub fn answer_query(snapshot: &EpochSnapshot, k: usize) -> QueryAnswer {
    answer_query_inner(snapshot, k, None).expect("unbounded query cannot miss a deadline")
}

/// [`answer_query`] with a wall-clock budget: the deadline is checked
/// before each guess's greedy solve (the unit of query work), and a
/// query that runs out of time returns [`ServeError::DeadlineExceeded`]
/// instead of a torn partial answer. A query that completes is
/// bit-identical to the unbounded [`answer_query`] — the deadline never
/// changes an answer, only refuses one.
pub fn answer_query_deadline(
    snapshot: &EpochSnapshot,
    k: usize,
    deadline: Duration,
) -> Result<QueryAnswer, ServeError> {
    answer_query_inner(snapshot, k, Some(deadline))
}

fn answer_query_inner(
    snapshot: &EpochSnapshot,
    k: usize,
    deadline: Option<Duration>,
) -> Result<QueryAnswer, ServeError> {
    let start = Instant::now();
    let mut best: Option<QueryAnswer> = None;
    for (idx, guess) in snapshot.guesses.iter().enumerate() {
        if let Some(limit) = deadline {
            if start.elapsed() >= limit {
                return Err(ServeError::DeadlineExceeded);
            }
        }
        let trace = bucket_greedy_k_cover(&guess.view, k);
        let family = trace.family();
        let covered = trace.coverage();
        let estimate = if guess.sampling_p > 0.0 {
            covered as f64 / guess.sampling_p
        } else {
            0.0
        };
        let better = match &best {
            Some(b) => estimate > b.estimate,
            None => true,
        };
        if better {
            best = Some(QueryAnswer {
                epoch: snapshot.epoch,
                updates_applied: snapshot.updates_applied,
                guess_index: idx,
                guess_k: guess.k,
                family,
                sketch_coverage: covered,
                estimate,
                sampling_p: guess.sampling_p,
            });
        }
    }
    Ok(best.unwrap_or(QueryAnswer {
        epoch: snapshot.epoch,
        updates_applied: snapshot.updates_applied,
        guess_index: 0,
        guess_k: 0,
        family: Vec::new(),
        sketch_coverage: 0,
        estimate: 0.0,
        sampling_p: 0.0,
    }))
}

/// Counters shared between the ingest thread and the API surface.
#[derive(Debug, Default)]
struct SharedStats {
    updates_enqueued: AtomicU64,
    updates_applied: AtomicU64,
    epochs_published: AtomicU64,
    publish_failures: AtomicU64,
    published_updates: AtomicU64,
    queries_served: AtomicU64,
    degraded: AtomicBool,
}

/// A point-in-time view of the engine's counters, with per-epoch
/// publication costs reported through the dist layer's
/// [`RoundsReport`] so shipped-bytes accounting is uniform across
/// `dist` reduces and `serve` publishes: each published epoch is one
/// [`RoundCost`] round (`words_shipped` = the live store's
/// [`Composable::ship_words`] model count at publish; `bytes_shipped`
/// = actual binary snapshot frame bytes shipped to clients from that
/// epoch, 0 when nothing left the process — the same convention as
/// `ShipFormat::InMemory`).
#[derive(Clone, Debug)]
pub struct ServeStats {
    /// Currently published epoch.
    pub epoch: u64,
    /// Successful publishes (equals `epoch` by construction).
    pub epochs_published: u64,
    /// Publish attempts that found no decodable ℓ₀ level (dynamic
    /// mode only); the previous epoch stayed published.
    pub publish_failures: u64,
    /// Updates accepted into the queue.
    pub updates_enqueued: u64,
    /// Updates applied to the live store.
    pub updates_applied: u64,
    /// Updates visible at the published epoch.
    pub published_updates: u64,
    /// Queries answered from published snapshots.
    pub queries_served: u64,
    /// True once the ingest thread has died (panic contained by the
    /// engine): the last published epoch stays frozen, queries keep
    /// answering from it (stale), and submits fail typed
    /// ([`ServeError::Closed`]).
    pub degraded: bool,
    /// One round per published epoch (see type-level docs).
    pub report: RoundsReport,
}

impl ServeStats {
    /// Staleness bound: applied-but-unpublished updates — how far a
    /// fresh query may trail the live store.
    pub fn staleness(&self) -> u64 {
        self.updates_applied.saturating_sub(self.published_updates)
    }

    /// Enqueued-but-unapplied updates (queue depth in updates).
    pub fn queue_lag(&self) -> u64 {
        self.updates_enqueued.saturating_sub(self.updates_applied)
    }
}

enum Command {
    Update(Vec<SignedEdge>),
    /// Publish now (if anything changed); reply with the published epoch.
    Flush(mpsc::SyncSender<u64>),
    /// Publish, then ship binary snapshot frames of the live store.
    Ship(mpsc::SyncSender<(u64, Vec<Vec<u8>>)>),
}

/// What [`ServeEngine::finish`] hands back after the drain.
#[derive(Debug)]
pub struct ServeFinish {
    /// Final counters (epoch = the last published epoch, which covers
    /// every applied update).
    pub stats: ServeStats,
    /// The live store, fully drained. If the ingest thread died
    /// (`degraded`), this is the journal-replay rebuild — bit-identical
    /// to the lost live store when journaling was on, a fresh store
    /// otherwise.
    pub store: LiveStore,
    /// The applied-update journal in exact application order (empty
    /// unless [`ServeConfig::journal`] was set). The journal survives
    /// an ingest-thread panic: every applied update was journaled
    /// before the panic could observe it.
    pub journal: Vec<SignedEdge>,
    /// True when the ingest thread panicked and the engine degraded to
    /// frozen-epoch serving.
    pub degraded: bool,
}

/// The serving engine: spawn with [`start`](ServeEngine::start),
/// submit updates from any number of threads, query from any number
/// of threads, then [`finish`](ServeEngine::finish) to drain.
#[derive(Debug)]
pub struct ServeEngine {
    config: ServeConfig,
    cell: Arc<SnapshotCell>,
    stats: Arc<SharedStats>,
    rounds: Arc<Mutex<Vec<RoundCost>>>,
    journal: Arc<Mutex<Vec<SignedEdge>>>,
    tx: Option<mpsc::SyncSender<Command>>,
    handle: Option<JoinHandle<Option<LiveStore>>>,
}

impl ServeEngine {
    /// Build the store, publish epoch 0 (the empty store's real
    /// export, so a zero-length journal replay reproduces it exactly),
    /// and spawn the ingest thread.
    pub fn start(config: ServeConfig) -> Self {
        let store = LiveStore::new(&config);
        Self::start_inner(config, store, Vec::new(), 0, 0)
    }

    /// Journal-backed restart: rebuild the live store by replaying
    /// `journal` (the exact application order a crashed engine's
    /// [`ServeFinish::journal`] preserves), publish it as `epoch` with
    /// `updates_applied = journal.len()`, and resume serving from
    /// there. Passing the crashed engine's last published epoch makes
    /// the recovered initial snapshot [`content_eq`] to the pre-crash
    /// one when the journal prefix matches — the bit-identity contract
    /// the chaos suite property-tests.
    ///
    /// [`content_eq`]: EpochSnapshot::content_eq
    pub fn recover_from_journal(config: ServeConfig, journal: Vec<SignedEdge>, epoch: u64) -> Self {
        let mut store = LiveStore::new(&config);
        store.apply(&journal);
        let applied = journal.len() as u64;
        Self::start_inner(config, store, journal, applied, epoch)
    }

    fn start_inner(
        config: ServeConfig,
        store: LiveStore,
        journal0: Vec<SignedEdge>,
        applied0: u64,
        epoch0: u64,
    ) -> Self {
        let initial = store
            .snapshot(epoch0, applied0)
            .unwrap_or_else(|| EpochSnapshot::empty(config.num_sets()));
        let cell = Arc::new(SnapshotCell::new(initial));
        let stats = Arc::new(SharedStats::default());
        stats.updates_applied.store(applied0, Ordering::Relaxed);
        stats.published_updates.store(applied0, Ordering::Relaxed);
        let rounds = Arc::new(Mutex::new(Vec::new()));
        let journal = Arc::new(Mutex::new(journal0));
        let (tx, rx) = mpsc::sync_channel::<Command>(config.queue_batches);
        let handle = {
            let cell = Arc::clone(&cell);
            let stats = Arc::clone(&stats);
            let rounds = Arc::clone(&rounds);
            let journal = Arc::clone(&journal);
            let config = config.clone();
            std::thread::spawn(move || {
                // Contain ingest panics: the engine degrades to serving
                // the last published epoch instead of wedging every
                // queue peer on a join of a dead thread.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    ingest_loop(
                        &config, store, &cell, &stats, &rounds, &journal, applied0, &rx,
                    )
                }));
                match result {
                    Ok(store) => Some(store),
                    Err(_) => {
                        stats.degraded.store(true, Ordering::Release);
                        None
                    }
                }
            })
        };
        ServeEngine {
            config,
            cell,
            stats,
            rounds,
            journal,
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Submit a batch of updates. Blocks when the bounded queue is
    /// full (backpressure). Rejects deletes in bank mode *before*
    /// enqueueing, so the ingest thread never sees an invalid update.
    pub fn submit(&self, updates: Vec<SignedEdge>) -> Result<(), ServeError> {
        if self.config.insert_only() && updates.iter().any(|u| u.kind == UpdateKind::Delete) {
            return Err(ServeError::DeleteInInsertOnly);
        }
        let n = updates.len() as u64;
        let tx = self.tx.as_ref().ok_or(ServeError::Closed)?;
        tx.send(Command::Update(updates))
            .map_err(|_| ServeError::Closed)?;
        self.stats.updates_enqueued.fetch_add(n, Ordering::Relaxed);
        Ok(())
    }

    /// Force a publish of everything applied so far; returns the
    /// published epoch once the ingest thread has caught up.
    pub fn flush(&self) -> Result<u64, ServeError> {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        let tx = self.tx.as_ref().ok_or(ServeError::Closed)?;
        tx.send(Command::Flush(ack_tx))
            .map_err(|_| ServeError::Closed)?;
        ack_rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Publish, then encode the live store as binary snapshot frames
    /// (`coverage_sketch::wire`, one frame per sketch). The shipped
    /// bytes are charged to the published epoch's [`RoundCost`].
    pub fn ship_snapshots(&self) -> Result<(u64, Vec<Vec<u8>>), ServeError> {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        let tx = self.tx.as_ref().ok_or(ServeError::Closed)?;
        tx.send(Command::Ship(ack_tx))
            .map_err(|_| ServeError::Closed)?;
        ack_rx.recv().map_err(|_| ServeError::Closed)
    }

    /// A lock-free query handle for a reader thread (cached snapshot
    /// `Arc`, refreshed only on epoch change).
    pub fn query_handle(&self) -> QueryHandle {
        QueryHandle {
            reader: self.cell.reader(),
            stats: Arc::clone(&self.stats),
        }
    }

    /// One-shot query on the current snapshot (takes the cell's read
    /// lock; loops should hold a [`QueryHandle`] instead).
    pub fn query(&self, k: usize) -> QueryAnswer {
        let answer = answer_query(&self.cell.load(), k);
        self.stats.queries_served.fetch_add(1, Ordering::Relaxed);
        answer
    }

    /// One-shot query with a wall-clock budget (see
    /// [`answer_query_deadline`]). Only completed queries count toward
    /// `queries_served`.
    pub fn query_deadline(&self, k: usize, timeout: Duration) -> Result<QueryAnswer, ServeError> {
        let answer = answer_query_deadline(&self.cell.load(), k, timeout)?;
        self.stats.queries_served.fetch_add(1, Ordering::Relaxed);
        Ok(answer)
    }

    /// True once the ingest thread has died and the engine froze the
    /// last published epoch (stale-but-consistent serving).
    pub fn is_degraded(&self) -> bool {
        self.stats.degraded.load(Ordering::Acquire)
    }

    /// A copy of the applied-update journal so far (empty unless
    /// [`ServeConfig::journal`] is on). Available even while the engine
    /// runs — and, crucially, after an ingest panic — so a supervisor
    /// can feed [`ServeEngine::recover_from_journal`].
    pub fn journal_snapshot(&self) -> Vec<SignedEdge> {
        self.journal.lock().expect("journal poisoned").clone()
    }

    /// Current counters (see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            epoch: self.cell.epoch(),
            epochs_published: self.stats.epochs_published.load(Ordering::Relaxed),
            publish_failures: self.stats.publish_failures.load(Ordering::Relaxed),
            updates_enqueued: self.stats.updates_enqueued.load(Ordering::Relaxed),
            updates_applied: self.stats.updates_applied.load(Ordering::Relaxed),
            published_updates: self.stats.published_updates.load(Ordering::Relaxed),
            queries_served: self.stats.queries_served.load(Ordering::Relaxed),
            degraded: self.stats.degraded.load(Ordering::Acquire),
            report: RoundsReport {
                rounds: self.rounds.lock().expect("rounds poisoned").clone(),
            },
        }
    }

    /// Graceful drain: close the queue, let the ingest thread apply
    /// everything still buffered, publish a final epoch covering all
    /// applied updates, and hand back the store + journal + stats. If
    /// the ingest thread died, the store is rebuilt by replaying the
    /// surviving journal instead of propagating the panic.
    pub fn finish(mut self) -> ServeFinish {
        drop(self.tx.take());
        let handle = self.handle.take().expect("finish called once");
        let store = match handle.join() {
            Ok(Some(store)) => store,
            // Panic contained (or the thread died before the catch):
            // degrade, then rebuild from the journal.
            _ => {
                self.stats.degraded.store(true, Ordering::Release);
                let journal = self.journal.lock().expect("journal poisoned");
                let mut store = LiveStore::new(&self.config);
                store.apply(&journal);
                store
            }
        };
        let journal = self.journal.lock().expect("journal poisoned").clone();
        ServeFinish {
            stats: self.stats(),
            store,
            journal,
            degraded: self.stats.degraded.load(Ordering::Acquire),
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A reader-thread handle: lock-free queries in steady state.
#[derive(Debug)]
pub struct QueryHandle {
    reader: SnapshotReader,
    stats: Arc<SharedStats>,
}

impl QueryHandle {
    /// Answer `k`-cover on the freshest published snapshot.
    pub fn query(&mut self, k: usize) -> QueryAnswer {
        let answer = answer_query(self.reader.current(), k);
        self.stats.queries_served.fetch_add(1, Ordering::Relaxed);
        answer
    }

    /// Deadline-bounded query on the freshest published snapshot (see
    /// [`answer_query_deadline`]).
    pub fn query_deadline(
        &mut self,
        k: usize,
        timeout: Duration,
    ) -> Result<QueryAnswer, ServeError> {
        let answer = answer_query_deadline(self.reader.current(), k, timeout)?;
        self.stats.queries_served.fetch_add(1, Ordering::Relaxed);
        Ok(answer)
    }

    /// The freshest published snapshot itself.
    pub fn snapshot(&mut self) -> Arc<EpochSnapshot> {
        Arc::clone(self.reader.current())
    }
}

struct Publisher<'a> {
    cell: &'a SnapshotCell,
    stats: &'a SharedStats,
    rounds: &'a Mutex<Vec<RoundCost>>,
    published_once: bool,
}

impl Publisher<'_> {
    /// Attempt one publish; returns whether the epoch advanced.
    fn publish(&mut self, store: &LiveStore, applied: u64) -> bool {
        let next = self.cell.epoch() + 1;
        match store.snapshot(next, applied) {
            Some(snap) => {
                let cost = RoundCost {
                    sketches_in: store.num_sketches(),
                    sketches_out: snap.guesses.len(),
                    words_shipped: store.ship_words(),
                    bytes_shipped: 0,
                };
                self.rounds.lock().expect("rounds poisoned").push(cost);
                self.cell.publish(snap);
                self.stats.epochs_published.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .published_updates
                    .store(applied, Ordering::Relaxed);
                self.published_once = true;
                true
            }
            None => {
                self.stats.publish_failures.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Charge shipped snapshot bytes to the current epoch's round.
    fn charge_bytes(&self, bytes: u64) {
        if let Some(last) = self.rounds.lock().expect("rounds poisoned").last_mut() {
            last.bytes_shipped += bytes;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn ingest_loop(
    config: &ServeConfig,
    mut store: LiveStore,
    cell: &SnapshotCell,
    stats: &SharedStats,
    rounds: &Mutex<Vec<RoundCost>>,
    journal: &Mutex<Vec<SignedEdge>>,
    applied0: u64,
    rx: &mpsc::Receiver<Command>,
) -> LiveStore {
    let mut applied: u64 = applied0;
    let mut since_publish: u64 = 0;
    let mut publisher = Publisher {
        cell,
        stats,
        rounds,
        published_once: false,
    };
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Update(batch) => {
                store.apply(&batch);
                applied += batch.len() as u64;
                since_publish += batch.len() as u64;
                if config.journal {
                    journal
                        .lock()
                        .expect("journal poisoned")
                        .extend_from_slice(&batch);
                }
                stats.updates_applied.store(applied, Ordering::Relaxed);
                // Deterministic fault injection: the update is applied
                // AND journaled before the panic fires, so replaying
                // the surviving journal rebuilds the lost store.
                if let Some(limit) = config.ingest_panic_after {
                    if applied >= limit + applied0 {
                        panic!("injected ingest fault after {applied} applied updates");
                    }
                }
                if since_publish >= config.publish_every {
                    publisher.publish(&store, applied);
                    since_publish = 0;
                }
            }
            Command::Flush(ack) => {
                if (since_publish > 0 || !publisher.published_once)
                    && publisher.publish(&store, applied)
                {
                    since_publish = 0;
                }
                let _ = ack.send(cell.epoch());
            }
            Command::Ship(ack) => {
                if (since_publish > 0 || !publisher.published_once)
                    && publisher.publish(&store, applied)
                {
                    since_publish = 0;
                }
                let frames = store.ship_binary_frames();
                let bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();
                publisher.charge_bytes(bytes);
                let _ = ack.send((cell.epoch(), frames));
            }
        }
    }
    // Queue closed: final publish so the last epoch covers everything.
    if since_publish > 0 || !publisher.published_once {
        publisher.publish(&store, applied);
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::Edge;

    fn inserts(range: std::ops::Range<u64>) -> Vec<SignedEdge> {
        range
            .map(|e| SignedEdge::insert(Edge::new((e % 7) as u32, e * 13 % 400)))
            .collect()
    }

    fn bank_cfg() -> ServeConfig {
        ServeConfig::bank_ladder(7, 3, 0.4, 600, 42)
            .with_publish_every(100)
            .with_journal(true)
    }

    #[test]
    fn serves_queries_and_publishes_epochs() {
        let engine = ServeEngine::start(bank_cfg());
        engine.submit(inserts(0..350)).unwrap();
        let epoch = engine.flush().unwrap();
        assert!(epoch >= 1);
        let answer = engine.query(2);
        assert_eq!(answer.updates_applied, 350);
        assert!(!answer.family.is_empty());
        assert!(answer.estimate > 0.0);
        let stats = engine.stats();
        assert_eq!(stats.updates_applied, 350);
        assert_eq!(stats.epoch as usize, stats.report.rounds.len());
        assert!(stats.report.total_words() > 0);
        let fin = engine.finish();
        assert_eq!(fin.journal.len(), 350);
        assert_eq!(fin.stats.staleness(), 0, "drain publishes the tail");
    }

    #[test]
    fn journal_prefix_replay_rebuilds_the_published_snapshot() {
        let cfg = bank_cfg();
        let engine = ServeEngine::start(cfg.clone());
        for chunk in inserts(0..730).chunks(90) {
            engine.submit(chunk.to_vec()).unwrap();
        }
        engine.flush().unwrap();
        let answer = engine.query(4);
        let fin = engine.finish();
        let mut rebuilt = LiveStore::new(&cfg);
        rebuilt.apply(&fin.journal[..answer.updates_applied as usize]);
        let snap = rebuilt
            .snapshot(answer.epoch, answer.updates_applied)
            .unwrap();
        assert!(answer.bit_eq(&answer_query(&snap, 4)));
    }

    #[test]
    fn deletes_are_rejected_in_bank_mode() {
        let engine = ServeEngine::start(bank_cfg());
        let err = engine
            .submit(vec![SignedEdge::delete(Edge::new(0u32, 5u64))])
            .unwrap_err();
        assert!(matches!(err, ServeError::DeleteInInsertOnly));
        // The engine keeps serving after a rejected batch.
        engine.submit(inserts(0..10)).unwrap();
        assert!(engine.flush().unwrap() >= 1);
    }

    #[test]
    fn dynamic_mode_serves_churn() {
        let params = DynamicSketchParams::new(SketchParams::with_budget(6, 2, 0.4, 400));
        let cfg = ServeConfig::dynamic(params, 9)
            .with_publish_every(64)
            .with_journal(true);
        let engine = ServeEngine::start(cfg.clone());
        let mut updates = inserts(0..300);
        // Delete every third inserted edge again.
        let deletes: Vec<_> = updates
            .iter()
            .step_by(3)
            .map(|u| SignedEdge::delete(u.edge))
            .collect();
        updates.extend(deletes);
        engine.submit(updates).unwrap();
        engine.flush().unwrap();
        let answer = engine.query(2);
        let fin = engine.finish();
        assert!(fin.stats.epoch >= 1);
        let mut rebuilt = LiveStore::new(&cfg);
        rebuilt.apply(&fin.journal[..answer.updates_applied as usize]);
        let snap = rebuilt
            .snapshot(answer.epoch, answer.updates_applied)
            .unwrap();
        assert!(answer.bit_eq(&answer_query(&snap, 2)));
    }

    #[test]
    fn shipped_snapshot_frames_decode_and_are_charged() {
        let engine = ServeEngine::start(bank_cfg());
        engine.submit(inserts(0..200)).unwrap();
        let (epoch, frames) = engine.ship_snapshots().unwrap();
        assert!(epoch >= 1);
        assert_eq!(frames.len(), 3, "one frame per guess");
        for frame in &frames {
            SketchSnapshot::decode_binary(frame).expect("frame must decode");
        }
        let stats = engine.stats();
        let shipped: u64 = frames.iter().map(|f| f.len() as u64).sum();
        assert_eq!(stats.report.total_bytes(), shipped);
        drop(engine);
    }

    fn wait_degraded(engine: &ServeEngine) {
        for _ in 0..2_000 {
            if engine.is_degraded() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("engine never degraded");
    }

    #[test]
    fn ingest_panic_freezes_the_published_epoch_and_stays_queryable() {
        // One big batch: the injected panic fires after apply+journal
        // but before any publish, so the frozen epoch is the initial
        // empty one.
        let cfg = bank_cfg().with_ingest_panic_after(200);
        let engine = ServeEngine::start(cfg);
        engine.submit(inserts(0..300)).unwrap();
        wait_degraded(&engine);
        // Queries still answer, from the frozen (stale) epoch.
        let answer = engine.query(2);
        assert_eq!(answer.epoch, 0);
        // Mutation APIs fail typed, not by panic or hang.
        assert!(matches!(engine.flush(), Err(ServeError::Closed)));
        assert!(matches!(
            engine.submit(inserts(0..1)),
            Err(ServeError::Closed)
        ));
        let stats = engine.stats();
        assert!(stats.degraded);
        // Every applied update made it into the surviving journal.
        let fin = engine.finish();
        assert!(fin.degraded);
        assert_eq!(fin.journal.len(), 300);
    }

    #[test]
    fn journal_recovery_is_bit_identical_to_the_pre_crash_epoch() {
        let cfg = bank_cfg().with_ingest_panic_after(500);
        let engine = ServeEngine::start(cfg.clone());
        for chunk in inserts(0..630).chunks(90) {
            if engine.submit(chunk.to_vec()).is_err() {
                break;
            }
        }
        wait_degraded(&engine);
        let pre = engine.query_handle().snapshot();
        assert!(pre.epoch >= 1, "a publish must precede the crash");
        let fin = engine.finish();
        assert!(fin.degraded);
        assert!(fin.journal.len() >= pre.updates_applied as usize);
        // Replay the journal prefix the pre-crash epoch covered.
        let recovered = ServeEngine::recover_from_journal(
            cfg,
            fin.journal[..pre.updates_applied as usize].to_vec(),
            pre.epoch,
        );
        let snap = recovered.query_handle().snapshot();
        assert!(
            snap.content_eq(&pre),
            "recovered snapshot must be bit-identical to the pre-crash epoch"
        );
        // The recovered engine is live: it keeps ingesting and
        // publishing past the restored epoch.
        recovered.submit(inserts(1_000..1_100)).unwrap();
        let epoch = recovered.flush().unwrap();
        assert!(epoch > pre.epoch);
        let after = recovered.query(2);
        assert_eq!(after.updates_applied, pre.updates_applied + 100);
        assert!(!recovered.finish().degraded);
    }

    #[test]
    fn zero_deadline_query_is_refused_not_torn() {
        let engine = ServeEngine::start(bank_cfg());
        engine.submit(inserts(0..200)).unwrap();
        engine.flush().unwrap();
        let err = engine
            .query_deadline(2, std::time::Duration::ZERO)
            .unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded));
        // A generous deadline changes nothing about the answer.
        let bounded = engine
            .query_deadline(2, std::time::Duration::from_secs(60))
            .unwrap();
        assert!(bounded.bit_eq(&engine.query(2)));
        let mut handle = engine.query_handle();
        let via_handle = handle
            .query_deadline(2, std::time::Duration::from_secs(60))
            .unwrap();
        assert!(via_handle.bit_eq(&bounded));
    }

    #[test]
    fn empty_snapshot_answers_cleanly() {
        let engine = ServeEngine::start(bank_cfg());
        let answer = engine.query(3);
        assert_eq!(answer.epoch, 0);
        assert!(answer.family.is_empty());
        assert_eq!(answer.estimate, 0.0);
        let fin = engine.finish();
        // Drain publishes epoch 1 even with nothing applied, so a
        // final flush-level snapshot always exists.
        assert_eq!(fin.stats.epoch, 1);
    }
}
