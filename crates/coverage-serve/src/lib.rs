//! # coverage-serve
//!
//! The sketch-serving subsystem: a long-lived process where writers
//! stream signed membership edges into the live `H≤n` sketch bank (or
//! the dynamic ℓ₀ sketch) while readers answer coverage queries
//! concurrently — the serving shape the streaming coverage sketches of
//! Bateni–Esfandiari–Mirrokni (SPAA 2017) were designed for.
//!
//! The design splits the store in two:
//!
//! * the **live store** ([`LiveStore`]) is owned exclusively by one
//!   ingest thread behind a bounded update queue (backpressure, never
//!   unbounded buffering) — no lock guards the ingest hot loop;
//! * the **published store** ([`EpochSnapshot`]) is an immutable,
//!   epoch-tagged export (one packed CSR view per guess) swapped
//!   atomically into a [`SnapshotCell`] every
//!   [`publish_every`](ServeConfig::publish_every) applied updates.
//!
//! Query threads hold a [`QueryHandle`] whose cached snapshot refreshes
//! only when the epoch tag moves, so steady-state queries are lock-free
//! and always see one consistent store state, at most
//! [`ServeStats::staleness`] updates behind the live store. Because
//! sketch ingestion is batch-split-independent, replaying the
//! applied-update journal prefix of length
//! [`updates_applied`](EpochSnapshot::updates_applied) rebuilds any
//! published snapshot bit-identically ([`EpochSnapshot::content_eq`]) —
//! the consistency oracle behind the serve test suites and the BENCH_7
//! CI gate.
//!
//! The [`daemon`] module speaks a framed stdin/stdout protocol
//! ([`proto`], magic `CVSV`) with update/query/stats/flush/snapshot/
//! shutdown frames; snapshot replies reuse the `coverage_sketch::wire`
//! binary format. The CLI front end is `coverage serve`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod engine;
pub mod epoch;
pub mod proto;

pub use daemon::{run_stdio, serve_loop};
pub use engine::{
    answer_query, answer_query_deadline, LiveStore, QueryAnswer, QueryHandle, ServeConfig,
    ServeEngine, ServeError, ServeFinish, ServeStats, StoreConfig,
};
pub use epoch::{EpochSnapshot, GuessView, SnapshotCell, SnapshotReader};
pub use proto::{read_reply, read_request, write_reply, write_request, ProtoError, Reply, Request};
