//! The client↔daemon pipe protocol of the serving subsystem.
//!
//! Same envelope discipline as the snapshot wire format
//! (`coverage_sketch::wire`) and the dist worker protocol
//! (`coverage_dist::proto`), under its own magic so a serve frame can
//! never be confused with either.
//!
//! ## Frame layout (version 2)
//!
//! | offset   | size | field                                   |
//! |----------|------|-----------------------------------------|
//! | 0        | 4    | magic `b"CVSV"`                         |
//! | 4        | 2    | protocol version, `u16` LE (currently 2)|
//! | 6        | 1    | frame kind                              |
//! | 7        | 1    | reserved (0)                            |
//! | 8        | 8    | payload length `u64` LE                 |
//! | 16       | len  | payload                                 |
//! | 16 + len | 8    | FNV-1a 64 checksum of bytes `0..16+len` |
//!
//! ## Conversation
//!
//! Clients send [`Request`] frames; the daemon answers with [`Reply`]
//! frames matched by the request's `id`. [`Request::Update`] is
//! fire-and-forget (no reply on success; a rejected batch — e.g. a
//! delete in insertion-only mode — answers [`Reply::Error`]). Requests
//! are handled strictly in arrival order, so replies arrive in request
//! order. [`Request::Shutdown`] drains the engine and answers one
//! final [`Reply::Stats`]; closing the pipe drains without a reply.
//! Snapshot responses carry `coverage_sketch::wire` binary frames
//! (magic `CVSK`) as opaque payload bytes.

use std::io::{Read, Write};

use coverage_core::SetId;
use coverage_dist::{RoundCost, RoundsReport};
use coverage_sketch::wire::{checksum64, WireReader, WireWriter};
use coverage_sketch::WireError;
use coverage_stream::SignedEdge;

use crate::engine::{QueryAnswer, ServeError, ServeStats};

/// Serve frame magic (distinct from snapshot `CVSK` and dist `CVPR`).
pub const SERVE_MAGIC: [u8; 4] = *b"CVSV";
/// Current serve protocol version (2 added the degraded-mode flag to
/// stats payloads).
pub const SERVE_VERSION: u16 = 2;

/// Hard ceiling on a frame's declared payload length, checked *before*
/// the payload buffer is allocated so a corrupt or hostile length field
/// cannot trigger an enormous allocation.
pub const MAX_SERVE_PAYLOAD: u64 = 1 << 28;

const KIND_UPDATE: u8 = 1;
const KIND_QUERY: u8 = 2;
const KIND_STATS: u8 = 3;
const KIND_FLUSH: u8 = 4;
const KIND_SNAPSHOT: u8 = 5;
const KIND_SHUTDOWN: u8 = 6;
const KIND_REPLY_QUERY: u8 = 64;
const KIND_REPLY_STATS: u8 = 65;
const KIND_REPLY_FLUSH: u8 = 66;
const KIND_REPLY_SNAPSHOT: u8 = 67;
const KIND_REPLY_ERROR: u8 = 68;

/// A serve protocol failure.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying pipe failed mid-frame.
    Io(std::io::Error),
    /// A frame or its payload failed validation.
    Wire(WireError),
    /// The pipe closed cleanly between frames (client hangup).
    Eof,
    /// The engine refused an operation (e.g. already shut down).
    Engine(ServeError),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "pipe error: {e}"),
            ProtoError::Wire(e) => write!(f, "serve frame error: {e}"),
            ProtoError::Eof => write!(f, "pipe closed"),
            ProtoError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl From<WireError> for ProtoError {
    fn from(e: WireError) -> Self {
        ProtoError::Wire(e)
    }
}

impl From<ServeError> for ProtoError {
    fn from(e: ServeError) -> Self {
        ProtoError::Engine(e)
    }
}

/// Client → daemon.
#[derive(Clone, Debug)]
pub enum Request {
    /// Stream a batch of signed updates into the live store. No reply
    /// on success; [`Reply::Error`] (same `id`) on rejection.
    Update {
        /// Echoed in an error reply if the batch is rejected.
        id: u64,
        /// The signed updates, in intended application order.
        updates: Vec<SignedEdge>,
    },
    /// Answer `k`-cover on the freshest published snapshot.
    Query {
        /// Reply correlation id.
        id: u64,
        /// Target family size.
        k: usize,
    },
    /// Report the engine's counters.
    Stats {
        /// Reply correlation id.
        id: u64,
    },
    /// Publish everything applied so far as a fresh epoch.
    Flush {
        /// Reply correlation id.
        id: u64,
    },
    /// Publish, then ship binary snapshots of the live store.
    Snapshot {
        /// Reply correlation id.
        id: u64,
    },
    /// Drain the queue, publish a final epoch, answer [`Reply::Stats`],
    /// and exit.
    Shutdown {
        /// Reply correlation id.
        id: u64,
    },
}

/// Daemon → client.
#[derive(Clone, Debug)]
pub enum Reply {
    /// Answer to a [`Request::Query`].
    Query {
        /// The request's id.
        id: u64,
        /// The epoch-tagged deterministic answer.
        answer: QueryAnswer,
    },
    /// Answer to a [`Request::Stats`] or [`Request::Shutdown`].
    Stats {
        /// The request's id.
        id: u64,
        /// Counters at reply time (final counters for a shutdown).
        stats: ServeStats,
    },
    /// Answer to a [`Request::Flush`].
    Flush {
        /// The request's id.
        id: u64,
        /// The epoch now published.
        epoch: u64,
        /// Updates visible at that epoch.
        updates_applied: u64,
    },
    /// Answer to a [`Request::Snapshot`].
    Snapshot {
        /// The request's id.
        id: u64,
        /// The epoch the snapshots were exported at.
        epoch: u64,
        /// One `coverage_sketch::wire` binary frame per live sketch.
        frames: Vec<Vec<u8>>,
    },
    /// A rejected request (bad update batch, unknown operation, …).
    Error {
        /// The offending request's id.
        id: u64,
        /// Human-readable rejection reason.
        message: String,
    },
}

fn put_updates(w: &mut WireWriter, updates: &[SignedEdge]) {
    w.put_varint(updates.len() as u64);
    for u in updates {
        w.put_u8(if u.sign() >= 0 { 0 } else { 1 });
        w.put_varint(u.edge.set.0 as u64);
        w.put_varint(u.edge.element.0);
    }
}

fn get_updates(r: &mut WireReader<'_>) -> Result<Vec<SignedEdge>, ProtoError> {
    let n = r.get_len()?;
    if n > r.remaining() {
        return Err(WireError::Malformed("update count exceeds payload size").into());
    }
    let mut updates = Vec::with_capacity(n);
    for _ in 0..n {
        let sign = r.get_u8()?;
        let set = u32::try_from(r.get_varint()?)
            .map_err(|_| WireError::Malformed("set id exceeds u32"))?;
        let edge = coverage_core::Edge::new(set, r.get_varint()?);
        updates.push(match sign {
            0 => SignedEdge::insert(edge),
            1 => SignedEdge::delete(edge),
            _ => return Err(WireError::Malformed("unknown update sign").into()),
        });
    }
    Ok(updates)
}

fn put_answer(w: &mut WireWriter, a: &QueryAnswer) {
    w.put_varint(a.epoch);
    w.put_varint(a.updates_applied);
    w.put_varint(a.guess_index as u64);
    w.put_varint(a.guess_k as u64);
    w.put_varint(a.family.len() as u64);
    for s in &a.family {
        w.put_varint(s.0 as u64);
    }
    w.put_varint(a.sketch_coverage as u64);
    w.put_u64(a.estimate.to_bits());
    w.put_u64(a.sampling_p.to_bits());
}

fn get_answer(r: &mut WireReader<'_>) -> Result<QueryAnswer, ProtoError> {
    let epoch = r.get_varint()?;
    let updates_applied = r.get_varint()?;
    let guess_index = r.get_len()?;
    let guess_k = r.get_len()?;
    let len = r.get_len()?;
    if len > r.remaining() {
        return Err(WireError::Malformed("family length exceeds payload size").into());
    }
    let mut family = Vec::with_capacity(len);
    for _ in 0..len {
        let s = u32::try_from(r.get_varint()?)
            .map_err(|_| WireError::Malformed("set id exceeds u32"))?;
        family.push(SetId(s));
    }
    Ok(QueryAnswer {
        epoch,
        updates_applied,
        guess_index,
        guess_k,
        family,
        sketch_coverage: r.get_len()?,
        estimate: f64::from_bits(r.get_u64()?),
        sampling_p: f64::from_bits(r.get_u64()?),
    })
}

fn put_stats(w: &mut WireWriter, s: &ServeStats) {
    w.put_varint(s.epoch);
    w.put_varint(s.epochs_published);
    w.put_varint(s.publish_failures);
    w.put_varint(s.updates_enqueued);
    w.put_varint(s.updates_applied);
    w.put_varint(s.published_updates);
    w.put_varint(s.queries_served);
    w.put_u8(u8::from(s.degraded));
    w.put_varint(s.report.rounds.len() as u64);
    for r in &s.report.rounds {
        w.put_varint(r.sketches_in as u64);
        w.put_varint(r.sketches_out as u64);
        w.put_varint(r.words_shipped);
        w.put_varint(r.bytes_shipped);
    }
}

fn get_stats(r: &mut WireReader<'_>) -> Result<ServeStats, ProtoError> {
    let epoch = r.get_varint()?;
    let epochs_published = r.get_varint()?;
    let publish_failures = r.get_varint()?;
    let updates_enqueued = r.get_varint()?;
    let updates_applied = r.get_varint()?;
    let published_updates = r.get_varint()?;
    let queries_served = r.get_varint()?;
    let degraded = match r.get_u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("unknown degraded flag").into()),
    };
    let n = r.get_len()?;
    if n > r.remaining() {
        return Err(WireError::Malformed("round count exceeds payload size").into());
    }
    let mut rounds = Vec::with_capacity(n);
    for _ in 0..n {
        rounds.push(RoundCost {
            sketches_in: r.get_len()?,
            sketches_out: r.get_len()?,
            words_shipped: r.get_varint()?,
            bytes_shipped: r.get_varint()?,
        });
    }
    Ok(ServeStats {
        epoch,
        epochs_published,
        publish_failures,
        updates_enqueued,
        updates_applied,
        published_updates,
        queries_served,
        degraded,
        report: RoundsReport { rounds },
    })
}

fn encode_request(msg: &Request) -> (u8, Vec<u8>) {
    let mut w = WireWriter::new();
    match msg {
        Request::Update { id, updates } => {
            w.put_varint(*id);
            put_updates(&mut w, updates);
            (KIND_UPDATE, w.into_bytes())
        }
        Request::Query { id, k } => {
            w.put_varint(*id);
            w.put_varint(*k as u64);
            (KIND_QUERY, w.into_bytes())
        }
        Request::Stats { id } => {
            w.put_varint(*id);
            (KIND_STATS, w.into_bytes())
        }
        Request::Flush { id } => {
            w.put_varint(*id);
            (KIND_FLUSH, w.into_bytes())
        }
        Request::Snapshot { id } => {
            w.put_varint(*id);
            (KIND_SNAPSHOT, w.into_bytes())
        }
        Request::Shutdown { id } => {
            w.put_varint(*id);
            (KIND_SHUTDOWN, w.into_bytes())
        }
    }
}

fn decode_request(kind: u8, payload: &[u8]) -> Result<Request, ProtoError> {
    let mut r = WireReader::new(payload);
    let msg = match kind {
        KIND_UPDATE => {
            let id = r.get_varint()?;
            let updates = get_updates(&mut r)?;
            Request::Update { id, updates }
        }
        KIND_QUERY => Request::Query {
            id: r.get_varint()?,
            k: r.get_len()?,
        },
        KIND_STATS => Request::Stats {
            id: r.get_varint()?,
        },
        KIND_FLUSH => Request::Flush {
            id: r.get_varint()?,
        },
        KIND_SNAPSHOT => Request::Snapshot {
            id: r.get_varint()?,
        },
        KIND_SHUTDOWN => Request::Shutdown {
            id: r.get_varint()?,
        },
        other => return Err(WireError::UnknownKind { found: other }.into()),
    };
    if !r.is_done() {
        return Err(WireError::Malformed("leftover payload bytes").into());
    }
    Ok(msg)
}

fn encode_reply(msg: &Reply) -> (u8, Vec<u8>) {
    let mut w = WireWriter::new();
    match msg {
        Reply::Query { id, answer } => {
            w.put_varint(*id);
            put_answer(&mut w, answer);
            (KIND_REPLY_QUERY, w.into_bytes())
        }
        Reply::Stats { id, stats } => {
            w.put_varint(*id);
            put_stats(&mut w, stats);
            (KIND_REPLY_STATS, w.into_bytes())
        }
        Reply::Flush {
            id,
            epoch,
            updates_applied,
        } => {
            w.put_varint(*id);
            w.put_varint(*epoch);
            w.put_varint(*updates_applied);
            (KIND_REPLY_FLUSH, w.into_bytes())
        }
        Reply::Snapshot { id, epoch, frames } => {
            w.put_varint(*id);
            w.put_varint(*epoch);
            w.put_varint(frames.len() as u64);
            for frame in frames {
                w.put_varint(frame.len() as u64);
                w.put_bytes(frame);
            }
            (KIND_REPLY_SNAPSHOT, w.into_bytes())
        }
        Reply::Error { id, message } => {
            w.put_varint(*id);
            w.put_varint(message.len() as u64);
            w.put_bytes(message.as_bytes());
            (KIND_REPLY_ERROR, w.into_bytes())
        }
    }
}

fn decode_reply(kind: u8, payload: &[u8]) -> Result<Reply, ProtoError> {
    let mut r = WireReader::new(payload);
    let msg = match kind {
        KIND_REPLY_QUERY => {
            let id = r.get_varint()?;
            let answer = get_answer(&mut r)?;
            Reply::Query { id, answer }
        }
        KIND_REPLY_STATS => {
            let id = r.get_varint()?;
            let stats = get_stats(&mut r)?;
            Reply::Stats { id, stats }
        }
        KIND_REPLY_FLUSH => Reply::Flush {
            id: r.get_varint()?,
            epoch: r.get_varint()?,
            updates_applied: r.get_varint()?,
        },
        KIND_REPLY_SNAPSHOT => {
            let id = r.get_varint()?;
            let epoch = r.get_varint()?;
            let n = r.get_len()?;
            if n > r.remaining() {
                return Err(WireError::Malformed("frame count exceeds payload size").into());
            }
            let mut frames = Vec::with_capacity(n);
            for _ in 0..n {
                let len = r.get_len()?;
                frames.push(r.get_bytes(len)?.to_vec());
            }
            Reply::Snapshot { id, epoch, frames }
        }
        KIND_REPLY_ERROR => {
            let id = r.get_varint()?;
            let len = r.get_len()?;
            let bytes = r.get_bytes(len)?;
            let message = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Malformed("error message is not UTF-8"))?
                .to_string();
            Reply::Error { id, message }
        }
        other => return Err(WireError::UnknownKind { found: other }.into()),
    };
    if !r.is_done() {
        return Err(WireError::Malformed("leftover payload bytes").into());
    }
    Ok(msg)
}

fn write_frame(out: &mut impl Write, kind: u8, payload: &[u8]) -> Result<u64, ProtoError> {
    let mut w = WireWriter::new();
    w.put_bytes(&SERVE_MAGIC);
    w.put_u16(SERVE_VERSION);
    w.put_u8(kind);
    w.put_u8(0);
    w.put_u64(payload.len() as u64);
    w.put_bytes(payload);
    let frame_body = w.into_bytes();
    let sum = checksum64(&frame_body);
    out.write_all(&frame_body)?;
    out.write_all(&sum.to_le_bytes())?;
    out.flush()?;
    Ok(frame_body.len() as u64 + 8)
}

fn read_frame(input: &mut impl Read) -> Result<(u8, Vec<u8>, u64), ProtoError> {
    let mut header = [0u8; 16];
    // Distinguish clean EOF (no bytes at all) from a mid-frame cut.
    let mut got = 0usize;
    while got < header.len() {
        match input.read(&mut header[got..])? {
            0 if got == 0 => return Err(ProtoError::Eof),
            0 => {
                return Err(ProtoError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "pipe closed mid-frame",
                )))
            }
            n => got += n,
        }
    }
    if header[0..4] != SERVE_MAGIC {
        return Err(WireError::BadMagic.into());
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != SERVE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version }.into());
    }
    let kind = header[6];
    let payload_len = u64::from_le_bytes(header[8..16].try_into().unwrap());
    if payload_len > MAX_SERVE_PAYLOAD {
        return Err(WireError::Malformed("payload length exceeds the frame cap").into());
    }
    let payload_len = usize::try_from(payload_len)
        .map_err(|_| WireError::Malformed("payload length exceeds the address space"))?;
    let mut payload = vec![0u8; payload_len];
    input.read_exact(&mut payload)?;
    let mut sum = [0u8; 8];
    input.read_exact(&mut sum)?;
    let mut body = Vec::with_capacity(16 + payload_len);
    body.extend_from_slice(&header);
    body.extend_from_slice(&payload);
    if checksum64(&body) != u64::from_le_bytes(sum) {
        return Err(WireError::ChecksumMismatch.into());
    }
    Ok((kind, payload, 16 + payload_len as u64 + 8))
}

/// Write one framed request; returns the bytes put on the pipe.
pub fn write_request(out: &mut impl Write, msg: &Request) -> Result<u64, ProtoError> {
    let (kind, payload) = encode_request(msg);
    write_frame(out, kind, &payload)
}

/// Read one framed request ([`ProtoError::Eof`] on clean hangup).
pub fn read_request(input: &mut impl Read) -> Result<(Request, u64), ProtoError> {
    let (kind, payload, total) = read_frame(input)?;
    Ok((decode_request(kind, &payload)?, total))
}

/// Write one framed reply; returns the bytes put on the pipe.
pub fn write_reply(out: &mut impl Write, msg: &Reply) -> Result<u64, ProtoError> {
    let (kind, payload) = encode_reply(msg);
    write_frame(out, kind, &payload)
}

/// Read one framed reply ([`ProtoError::Eof`] on clean hangup).
pub fn read_reply(input: &mut impl Read) -> Result<(Reply, u64), ProtoError> {
    let (kind, payload, total) = read_frame(input)?;
    Ok((decode_reply(kind, &payload)?, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::Edge;

    fn roundtrip_request(msg: &Request) -> Request {
        let mut buf = Vec::new();
        let written = write_request(&mut buf, msg).unwrap();
        assert_eq!(written as usize, buf.len());
        let mut cursor = &buf[..];
        let (back, read) = read_request(&mut cursor).unwrap();
        assert_eq!(read, written);
        assert!(cursor.is_empty());
        back
    }

    fn roundtrip_reply(msg: &Reply) -> Reply {
        let mut buf = Vec::new();
        let written = write_reply(&mut buf, msg).unwrap();
        let (back, read) = read_reply(&mut &buf[..]).unwrap();
        assert_eq!(read, written);
        back
    }

    #[test]
    fn update_roundtrips_signs() {
        let msg = Request::Update {
            id: 9,
            updates: vec![
                SignedEdge::insert(Edge::new(3u32, 17u64)),
                SignedEdge::delete(Edge::new(3u32, 17u64)),
                SignedEdge::insert(Edge::new(0u32, u64::MAX)),
            ],
        };
        match roundtrip_request(&msg) {
            Request::Update { id, updates } => {
                assert_eq!(id, 9);
                assert_eq!(updates.len(), 3);
                assert!(updates[0].sign() > 0);
                assert!(updates[1].sign() < 0);
                assert_eq!(updates[2].edge, Edge::new(0u32, u64::MAX));
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn control_requests_roundtrip() {
        for (msg, want_id) in [
            (Request::Query { id: 1, k: 4 }, 1),
            (Request::Stats { id: 2 }, 2),
            (Request::Flush { id: 3 }, 3),
            (Request::Snapshot { id: 4 }, 4),
            (Request::Shutdown { id: 5 }, 5),
        ] {
            let back = roundtrip_request(&msg);
            let id = match back {
                Request::Update { id, .. }
                | Request::Query { id, .. }
                | Request::Stats { id }
                | Request::Flush { id }
                | Request::Snapshot { id }
                | Request::Shutdown { id } => id,
            };
            assert_eq!(id, want_id);
        }
    }

    #[test]
    fn query_reply_roundtrips_bit_exactly() {
        let answer = QueryAnswer {
            epoch: 7,
            updates_applied: 4_000,
            guess_index: 2,
            guess_k: 4,
            family: vec![SetId(5), SetId(0), SetId(31)],
            sketch_coverage: 1234,
            estimate: 9876.5,
            sampling_p: 0.125,
        };
        match roundtrip_reply(&Reply::Query {
            id: 11,
            answer: answer.clone(),
        }) {
            Reply::Query { id, answer: back } => {
                assert_eq!(id, 11);
                assert!(back.bit_eq(&answer));
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn stats_reply_roundtrips_rounds() {
        let stats = ServeStats {
            epoch: 3,
            epochs_published: 3,
            publish_failures: 1,
            updates_enqueued: 500,
            updates_applied: 480,
            published_updates: 400,
            queries_served: 42,
            degraded: true,
            report: RoundsReport {
                rounds: vec![
                    RoundCost {
                        sketches_in: 8,
                        sketches_out: 8,
                        words_shipped: 999,
                        bytes_shipped: 0,
                    },
                    RoundCost {
                        sketches_in: 8,
                        sketches_out: 8,
                        words_shipped: 1234,
                        bytes_shipped: 777,
                    },
                ],
            },
        };
        match roundtrip_reply(&Reply::Stats {
            id: 1,
            stats: stats.clone(),
        }) {
            Reply::Stats { stats: back, .. } => {
                assert_eq!(back.epoch, 3);
                assert!(back.degraded);
                assert_eq!(back.staleness(), 80);
                assert_eq!(back.queue_lag(), 20);
                assert_eq!(back.report.rounds, stats.report.rounds);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn snapshot_and_error_replies_roundtrip() {
        match roundtrip_reply(&Reply::Snapshot {
            id: 2,
            epoch: 5,
            frames: vec![vec![1, 2, 3], vec![], vec![255; 64]],
        }) {
            Reply::Snapshot { epoch, frames, .. } => {
                assert_eq!(epoch, 5);
                assert_eq!(frames.len(), 3);
                assert_eq!(frames[2].len(), 64);
            }
            other => panic!("wrong message: {other:?}"),
        }
        match roundtrip_reply(&Reply::Error {
            id: 3,
            message: "no deletes in insert-only mode".into(),
        }) {
            Reply::Error { id, message } => {
                assert_eq!(id, 3);
                assert!(message.contains("insert-only"));
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn corrupt_frames_are_typed_errors() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Stats { id: 1 }).unwrap();
        let mut empty: &[u8] = &[];
        assert!(matches!(read_request(&mut empty), Err(ProtoError::Eof)));
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            read_request(&mut &bad[..]),
            Err(ProtoError::Wire(WireError::BadMagic))
        ));
        let mut bad = buf.clone();
        bad[4] = 7;
        assert!(matches!(
            read_request(&mut &bad[..]),
            Err(ProtoError::Wire(WireError::UnsupportedVersion { found: 7 }))
        ));
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            read_request(&mut &bad[..]),
            Err(ProtoError::Wire(WireError::ChecksumMismatch))
        ));
        let cut = &buf[..buf.len() - 3];
        assert!(matches!(
            read_request(&mut &cut[..]),
            Err(ProtoError::Io(_))
        ));
        // A dist worker frame (CVPR) must be rejected by magic.
        let mut cvpr = buf.clone();
        cvpr[0..4].copy_from_slice(b"CVPR");
        assert!(matches!(
            read_request(&mut &cvpr[..]),
            Err(ProtoError::Wire(_))
        ));
    }
}
