//! # coverage-lb
//!
//! Hardness artifacts of the paper, made executable:
//!
//! * [`purification`] — the **k-purification** problem of Appendix A:
//!   `n` items, `k` hidden gold ones, and the promise-style `Pure_ε`
//!   oracle. Theorem A.2: any algorithm finding a witness set needs
//!   `δ·exp(Ω(ε²k²/n))` queries to succeed with probability δ. The
//!   experiment measures success rates of query strategies.
//! * [`oracle_hardness`] — the Theorem 1.3 reduction: a k-cover instance
//!   with coverage `C(S) = k + (n/k)·Gold(S)` and an adversarial
//!   `(1±ε)`-approximate oracle `C_ε'` that answers `k + |S|` whenever the
//!   purification oracle is silent. Any algorithm that only sees `C_ε'`
//!   cannot beat `O(k/n)`-approximation in subexponential queries — while
//!   Algorithm 3, which sees the *stream* instead of the oracle, solves
//!   the same instance near-optimally. This is the paper's case for
//!   sketching the *graph* rather than the *function*.
//! * [`disjointness`] — the Theorem 1.2 reduction from set disjointness:
//!   two-element instances on which any `(1/2+ε)`-approximate streaming
//!   k-cover algorithm must pay `Ω(n)` bits. The experiment probes the
//!   sketch's accuracy/space phase transition on exactly these instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disjointness;
pub mod oracle_hardness;
pub mod purification;

pub use disjointness::{disjointness_instance, DisjointnessInstance};
pub use oracle_hardness::{GoldBrassInstance, NoisyOracle};
pub use purification::{
    doubling_strategy, hill_climb_strategy, random_subset_strategy, theoretical_query_bound,
    PureOracle, PurificationInstance,
};
