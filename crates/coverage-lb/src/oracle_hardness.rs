//! The Theorem 1.3 construction: coverage cannot be solved through a
//! `(1±ε)`-approximate oracle.
//!
//! From a k-purification instance build a k-cover instance:
//!
//! * `k` elements are **common** to all `n` sets;
//! * each **gold** set additionally owns `n/k` exclusive elements;
//! * brass sets own nothing else.
//!
//! Hence `C(S) = k + (n/k)·Gold(S)` for non-empty `S`, and the optimum
//! (all gold sets) covers `k + n` elements. The adversarial oracle
//!
//! ```text
//! C_ε'(S) = k + |S|   if Pure_ε(S) = 0      (a (1±2ε)-accurate answer!)
//!           C(S)      otherwise
//! ```
//!
//! is a legitimate `(1±ε')`-approximate oracle, yet every query answered
//! in the first branch is *predetermined* — it carries zero information
//! about which sets are gold. An oracle-only algorithm therefore cannot
//! find a good family without first finding a purification witness, which
//! Theorem A.2 prices at exponentially many queries. Meanwhile the same
//! instance streamed edge-by-edge is easy — Algorithm 3 recovers the gold
//! sets — which is the paper's argument that sketching the *graph* beats
//! sketching the *function*.

use coverage_core::{CoverageInstance, CoverageOracle, Edge, InstanceBuilder, SetId};

use crate::purification::{PureOracle, PurificationInstance};

/// The gold/brass k-cover instance of Theorem 1.3.
#[derive(Clone, Debug)]
pub struct GoldBrassInstance {
    purification: PurificationInstance,
    /// Exclusive elements per gold set (`⌈n/k⌉` in the paper; any positive
    /// count preserves the structure).
    exclusive_per_gold: usize,
}

impl GoldBrassInstance {
    /// Build from a random purification instance.
    pub fn random(n: usize, k: usize, seed: u64) -> Self {
        assert!(k >= 1 && k <= n);
        GoldBrassInstance {
            purification: PurificationInstance::random(n, k, seed),
            exclusive_per_gold: n.div_ceil(k),
        }
    }

    /// Number of sets `n`.
    pub fn n(&self) -> usize {
        self.purification.n()
    }

    /// Number of gold sets `k`.
    pub fn k(&self) -> usize {
        self.purification.k()
    }

    /// The underlying purification instance.
    pub fn purification(&self) -> &PurificationInstance {
        &self.purification
    }

    /// True coverage `C(S) = k + (n/k)·Gold(S)` (0 for the empty family).
    pub fn true_coverage(&self, family: &[SetId]) -> usize {
        if family.is_empty() {
            return 0;
        }
        let idx: Vec<usize> = family.iter().map(|s| s.index()).collect();
        self.k() + self.exclusive_per_gold * self.purification.gold_count(&idx)
    }

    /// The optimal k-cover value: all gold sets → `k + k·⌈n/k⌉ ≈ k + n`.
    pub fn optimal_value(&self) -> usize {
        self.k() + self.k() * self.exclusive_per_gold
    }

    /// Materialize the instance as an explicit bipartite graph (this is
    /// what streaming algorithms get to see, element by element).
    ///
    /// Element key layout: `0..k` = common elements; gold set `i` owns
    /// keys `k + i·e .. k + (i+1)·e`.
    pub fn to_instance(&self) -> CoverageInstance {
        let n = self.n();
        let k = self.k();
        let e = self.exclusive_per_gold;
        let mut b = InstanceBuilder::new(n);
        let mut gold_rank = 0usize;
        for s in 0..n {
            for c in 0..k {
                b.add_edge(Edge::new(s as u32, c as u64));
            }
            if self.purification.gold_count(&[s]) == 1 {
                let base = (k + gold_rank * e) as u64;
                for x in 0..e as u64 {
                    b.add_edge(Edge::new(s as u32, base + x));
                }
                gold_rank += 1;
            }
        }
        b.build()
    }

    /// The adversarial `(1±ε')`-approximate oracle (ε' = 2ε, where ε is
    /// the purification tolerance).
    pub fn noisy_oracle(&self, epsilon: f64) -> NoisyOracle<'_> {
        NoisyOracle {
            inst: self,
            pure: self.purification.oracle(epsilon),
        }
    }
}

/// The adversarial oracle `C_ε'` of Theorem 1.3.
pub struct NoisyOracle<'a> {
    inst: &'a GoldBrassInstance,
    pure: PureOracle<'a>,
}

impl NoisyOracle<'_> {
    /// Oracle queries spent so far.
    pub fn queries(&self) -> u64 {
        self.pure.queries_used()
    }
}

impl CoverageOracle for NoisyOracle<'_> {
    fn num_sets(&self) -> usize {
        self.inst.n()
    }

    fn coverage_estimate(&self, family: &[SetId]) -> f64 {
        if family.is_empty() {
            return 0.0;
        }
        let idx: Vec<usize> = family.iter().map(|s| s.index()).collect();
        if self.pure.pure(&idx) {
            self.inst.true_coverage(family) as f64
        } else {
            // The predetermined answer: k + |S|, within (1±2ε) of the
            // truth whenever Pure = 0 (proved in Appendix A).
            (self.inst.k() + family.len()) as f64
        }
    }

    fn queries_used(&self) -> Option<u64> {
        Some(self.pure.queries_used())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::oracle_greedy_k_cover;

    #[test]
    fn coverage_formula_matches_materialized_instance() {
        let gb = GoldBrassInstance::random(40, 4, 1);
        let inst = gb.to_instance();
        assert_eq!(inst.num_sets(), 40);
        assert_eq!(inst.num_elements(), 4 + 4 * 10);
        // Sample some families and compare C(S) with the formula.
        for family in [
            vec![SetId(0)],
            vec![SetId(0), SetId(1)],
            (0..10u32).map(SetId).collect::<Vec<_>>(),
            (0..40u32).map(SetId).collect::<Vec<_>>(),
        ] {
            assert_eq!(
                inst.coverage(&family),
                gb.true_coverage(&family),
                "family {family:?}"
            );
        }
    }

    #[test]
    fn optimal_family_is_all_gold() {
        let gb = GoldBrassInstance::random(30, 3, 2);
        let inst = gb.to_instance();
        let golds: Vec<SetId> = (0..30)
            .filter(|&i| gb.purification().gold_count(&[i]) == 1)
            .map(|i| SetId(i as u32))
            .collect();
        assert_eq!(golds.len(), 3);
        assert_eq!(inst.coverage(&golds), gb.optimal_value());
        let (_, opt) = coverage_core::offline::exact_k_cover(&inst, 3);
        assert_eq!(opt, gb.optimal_value());
    }

    #[test]
    fn noisy_oracle_is_accurate_within_contract() {
        // Whenever Pure = 0, the fabricated answer k+|S| must be within
        // (1±2ε) of the truth — verify the Appendix A algebra empirically.
        let gb = GoldBrassInstance::random(100, 10, 3);
        let eps = 0.3;
        let oracle = gb.noisy_oracle(eps);
        let mut rng = coverage_hash::SplitMix64::new(7);
        for _ in 0..200 {
            let size = 1 + rng.next_below(100) as usize;
            let mut family: Vec<SetId> = Vec::new();
            for s in 0..100u32 {
                if (rng.next_below(100) as usize) < size {
                    family.push(SetId(s));
                }
            }
            if family.is_empty() {
                continue;
            }
            let est = oracle.coverage_estimate(&family);
            let truth = gb.true_coverage(&family) as f64;
            let ratio = est / truth;
            assert!(
                (1.0 - 2.0 * eps - 1e-9..=1.0 + 2.0 * eps + 1e-9).contains(&ratio),
                "ratio {ratio} outside (1±2ε)"
            );
        }
    }

    #[test]
    fn greedy_through_noisy_oracle_collapses() {
        // Theorem 1.3's regime needs the Pure band to dominate binomial
        // fluctuations along greedy's whole query trajectory (ε·k²/n far
        // above √(k²/n), i.e. k = Ω(√n/ε)) while k/n stays small enough
        // that predetermined answers force a collapse. n=2000, k=200,
        // ε=0.5: the band slack at |S|=s is 0.05s+5 versus σ ≈ √(0.1s).
        let gb = GoldBrassInstance::random(2000, 200, 4);
        let oracle = gb.noisy_oracle(0.5);
        let family = oracle_greedy_k_cover(&oracle, 200);
        let achieved = gb.true_coverage(&family) as f64;
        let opt = gb.optimal_value() as f64;
        assert!(
            achieved / opt < 0.35,
            "noisy-oracle greedy reached {achieved}/{opt} — should collapse"
        );
        // Meanwhile greedy on the true instance finds the optimum.
        let inst = gb.to_instance();
        let offline = coverage_core::offline::lazy_greedy_k_cover(&inst, 200);
        assert_eq!(offline.coverage(), gb.optimal_value());
    }
}
