//! The Theorem 1.2 hard instances: set disjointness → streaming k-cover.
//!
//! Alice holds `A ⊆ [n]`, Bob holds `B ⊆ [n]`. Build a two-element
//! instance: set `i` contains element `a` iff `i ∈ A` and element `b` iff
//! `i ∈ B`; the stream presents all of Alice's edges first, then Bob's.
//! The 1-cover optimum is `2` iff some set contains both elements, i.e.
//! iff `A ∩ B ≠ ∅`. A `(1/2+ε)`-approximate streaming algorithm
//! distinguishes optimum 1 from 2, hence solves disjointness, hence needs
//! `Ω(n)` bits (Razborov `[43]`; Kalyanasundaram–Schnitger `[29]`) — even
//! across multiple passes.
//!
//! An information-theoretic bound cannot be "run", but its *prediction*
//! can: any fixed-budget sketch must start failing on these instances
//! once its budget drops below `≈ n` edges. Experiment E8 measures the
//! success probability of the `H≤n` pipeline as the budget shrinks and
//! finds the phase transition exactly where the bound says it must be.

use coverage_core::{CoverageInstance, Edge, InstanceBuilder};
use coverage_hash::SplitMix64;
use coverage_stream::VecStream;

/// One disjointness-derived k-cover instance.
#[derive(Clone, Debug)]
pub struct DisjointnessInstance {
    /// Alice's set `A` (membership per index).
    pub alice: Vec<bool>,
    /// Bob's set `B`.
    pub bob: Vec<bool>,
    /// Whether `A ∩ B ≠ ∅` (the hidden answer; optimum is 2 iff true).
    pub intersecting: bool,
    edges: Vec<Edge>,
    n: usize,
}

/// Element key for Alice's element `a`.
pub const ELEMENT_A: u64 = 0;
/// Element key for Bob's element `b`.
pub const ELEMENT_B: u64 = 1;

/// Generate a hard instance in the unique-intersection style of the DISJ
/// lower bound: `A` and `B` are random sets of density ~1/2 that are
/// either disjoint (`intersect = false`) or share **exactly one** index.
pub fn disjointness_instance(n: usize, intersect: bool, seed: u64) -> DisjointnessInstance {
    assert!(n >= 2, "need at least two sets");
    let mut rng = SplitMix64::new(seed ^ 0xD15C);
    let mut alice = vec![false; n];
    let mut bob = vec![false; n];
    for i in 0..n {
        // Partition candidates: Alice-only, Bob-only, neither.
        match rng.next_below(3) {
            0 => alice[i] = true,
            1 => bob[i] = true,
            _ => {}
        }
    }
    if intersect {
        let shared = rng.next_below(n as u64) as usize;
        alice[shared] = true;
        bob[shared] = true;
    }
    // Ensure neither side is empty (the reduction assumes no isolated
    // element).
    if !alice.iter().any(|&x| x) {
        alice[0] = true;
        if intersect {
            bob[0] = true;
        }
    }
    if !bob.iter().any(|&x| x) {
        let i = if intersect { 0 } else { 1 % n };
        bob[i] = true;
    }
    let mut edges = Vec::new();
    // Alice's half of the stream, then Bob's.
    for (i, &m) in alice.iter().enumerate() {
        if m {
            edges.push(Edge::new(i as u32, ELEMENT_A));
        }
    }
    for (i, &m) in bob.iter().enumerate() {
        if m {
            edges.push(Edge::new(i as u32, ELEMENT_B));
        }
    }
    let intersecting = alice.iter().zip(&bob).any(|(&a, &b)| a && b);
    DisjointnessInstance {
        alice,
        bob,
        intersecting,
        edges,
        n,
    }
}

impl DisjointnessInstance {
    /// The instance as an edge stream (Alice's edges then Bob's, matching
    /// the communication-protocol order).
    pub fn stream(&self) -> VecStream {
        VecStream::new(self.n, self.edges.clone())
    }

    /// The instance as a materialized graph.
    pub fn instance(&self) -> CoverageInstance {
        let mut b = InstanceBuilder::new(self.n);
        for &e in &self.edges {
            b.add_edge(e);
        }
        b.build()
    }

    /// The true 1-cover optimum: 2 iff the sets intersect.
    pub fn optimum(&self) -> usize {
        if self.intersecting {
            2
        } else {
            1
        }
    }

    /// Number of sets `n`.
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersecting_instances_have_optimum_two() {
        for seed in 0..10 {
            let d = disjointness_instance(50, true, seed);
            assert!(d.intersecting);
            assert_eq!(d.optimum(), 2);
            let inst = d.instance();
            let (_, opt) = coverage_core::offline::exact_k_cover(&inst, 1);
            assert_eq!(opt, 2, "seed {seed}");
        }
    }

    #[test]
    fn disjoint_instances_have_optimum_one() {
        for seed in 0..10 {
            let d = disjointness_instance(50, false, seed);
            assert!(!d.intersecting);
            let inst = d.instance();
            let (_, opt) = coverage_core::offline::exact_k_cover(&inst, 1);
            assert_eq!(opt, 1, "seed {seed}");
        }
    }

    #[test]
    fn stream_is_alice_then_bob() {
        use coverage_stream::EdgeStream;
        let d = disjointness_instance(30, true, 3);
        let mut seen_b = false;
        EdgeStream::for_each(&d.stream(), &mut |e| {
            if e.element.0 == ELEMENT_B {
                seen_b = true;
            } else {
                assert!(!seen_b, "Alice edge after Bob's half");
            }
        });
    }

    #[test]
    fn two_elements_only() {
        let d = disjointness_instance(40, false, 5);
        let inst = d.instance();
        assert!(inst.num_elements() <= 2);
        assert!(inst.num_edges() >= 2);
    }
}
