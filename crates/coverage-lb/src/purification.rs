//! The k-purification problem (Appendix A).
//!
//! A random permutation of `n` items contains `k` gold and `n−k` brass
//! items; the types are hidden. The only access is the promise oracle
//!
//! ```text
//! Pure_ε(S) = 0  if  k|S|/n − ε(k|S|/n + k²/n) ≤ Gold(S) ≤ k|S|/n + ε(k|S|/n + k²/n)
//!             1  otherwise
//! ```
//!
//! i.e. the oracle only "lights up" on sets whose gold count deviates
//! noticeably from its expectation. The goal is to find any `S` with
//! `Pure_ε(S) = 1`. Theorem A.2 shows `δ·exp(Ω(ε²k²/n))` queries are
//! needed to succeed with probability δ — the quantitative engine behind
//! Theorem 1.3.

use std::cell::Cell;

use coverage_hash::SplitMix64;

/// A k-purification instance with its hidden gold assignment.
#[derive(Clone, Debug)]
pub struct PurificationInstance {
    n: usize,
    k: usize,
    /// `gold[i]` = item `i` is gold (hidden from solvers; exposed to the
    /// harness for verification).
    gold: Vec<bool>,
}

impl PurificationInstance {
    /// Draw a uniformly random gold assignment of `k` golds among `n`
    /// items.
    pub fn random(n: usize, k: usize, seed: u64) -> Self {
        assert!(k <= n, "cannot have more gold than items");
        let mut gold = vec![false; n];
        // Floyd-style reservoir: choose k distinct indices.
        let mut rng = SplitMix64::new(seed ^ 0x601D);
        let mut chosen = 0usize;
        for (i, slot) in gold.iter_mut().enumerate() {
            let remaining = n - i;
            let need = k - chosen;
            if need > 0 && rng.next_below(remaining as u64) < need as u64 {
                *slot = true;
                chosen += 1;
            }
        }
        debug_assert_eq!(gold.iter().filter(|&&g| g).count(), k);
        PurificationInstance { n, k, gold }
    }

    /// Number of items `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of gold items `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Gold count of a set (harness-side ground truth).
    pub fn gold_count(&self, subset: &[usize]) -> usize {
        subset.iter().filter(|&&i| self.gold[i]).count()
    }

    /// The `Pure_ε` tolerance band `(lo, hi)` for a set of size `s`:
    /// `k·s/n ± ε(k·s/n + k²/n)`.
    pub fn band(&self, s: usize, epsilon: f64) -> (f64, f64) {
        let expect = self.k as f64 * s as f64 / self.n as f64;
        let slack = epsilon * (expect + (self.k * self.k) as f64 / self.n as f64);
        (expect - slack, expect + slack)
    }

    /// Wrap the instance in a query-counting oracle.
    pub fn oracle(&self, epsilon: f64) -> PureOracle<'_> {
        PureOracle {
            inst: self,
            epsilon,
            queries: Cell::new(0),
        }
    }
}

/// The `Pure_ε` oracle with a query counter.
pub struct PureOracle<'a> {
    inst: &'a PurificationInstance,
    epsilon: f64,
    queries: Cell<u64>,
}

impl PureOracle<'_> {
    /// Query the oracle: `true` iff the set's gold count escapes the band.
    pub fn pure(&self, subset: &[usize]) -> bool {
        self.queries.set(self.queries.get() + 1);
        let g = self.inst.gold_count(subset) as f64;
        let (lo, hi) = self.inst.band(subset.len(), self.epsilon);
        !(lo <= g && g <= hi)
    }

    /// Oracle accuracy parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Queries made so far.
    pub fn queries_used(&self) -> u64 {
        self.queries.get()
    }
}

/// A natural query strategy: try `budget` uniformly random subsets of size
/// `subset_size`; return the first witness found (if any).
///
/// Theorem A.2 predicts the success probability is at most
/// `2·budget·exp(−ε²k²/3n)` — the experiment plots exactly this decay.
pub fn random_subset_strategy(
    oracle: &PureOracle<'_>,
    subset_size: usize,
    budget: u64,
    seed: u64,
) -> Option<Vec<usize>> {
    let n = oracle.inst.n();
    let mut rng = SplitMix64::new(seed ^ 0x57AB);
    for _ in 0..budget {
        // Sample subset_size distinct indices (Floyd's algorithm).
        let mut set: Vec<usize> = Vec::with_capacity(subset_size);
        for j in (n - subset_size.min(n))..n {
            let t = rng.next_below(j as u64 + 1) as usize;
            if set.contains(&t) {
                set.push(j);
            } else {
                set.push(t);
            }
        }
        if oracle.pure(&set) {
            return Some(set);
        }
    }
    None
}

/// An *adaptive* strategy: start from a random size-`k` seed and hill-climb
/// by swapping one item at a time, querying after each swap. Adaptivity
/// does not help — the oracle answers 0 on everything inside the band, so
/// there is no gradient to follow; the walk is blind until (if ever) it
/// stumbles on a witness. Theorem A.2's bound applies unchanged (it counts
/// queries, adaptive or not).
pub fn hill_climb_strategy(oracle: &PureOracle<'_>, budget: u64, seed: u64) -> Option<Vec<usize>> {
    let n = oracle.inst.n();
    let k = oracle.inst.k().min(n).max(1);
    let mut rng = SplitMix64::new(seed ^ 0xC11B);
    let mut current: Vec<usize> = Vec::with_capacity(k);
    while current.len() < k {
        let cand = rng.next_below(n as u64) as usize;
        if !current.contains(&cand) {
            current.push(cand);
        }
    }
    for _ in 0..budget {
        if oracle.pure(&current) {
            return Some(current);
        }
        // Blind swap: no signal to exploit, so this is a random walk on
        // size-k subsets.
        let out = rng.next_below(current.len() as u64) as usize;
        loop {
            let cand = rng.next_below(n as u64) as usize;
            if !current.contains(&cand) {
                current[out] = cand;
                break;
            }
        }
    }
    None
}

/// A *doubling* strategy: query nested prefixes of a random permutation at
/// sizes 1, 2, 4, … n, repeating with fresh permutations until the budget
/// runs out. Covers every subset size scale — and still fails, because no
/// size helps: the band is calibrated to the hypergeometric deviation at
/// every `|S|` simultaneously.
pub fn doubling_strategy(oracle: &PureOracle<'_>, budget: u64, seed: u64) -> Option<Vec<usize>> {
    let n = oracle.inst.n();
    let mut rng = SplitMix64::new(seed ^ 0xD0B1);
    let mut used = 0u64;
    while used < budget {
        // Fresh random permutation (Fisher–Yates).
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let mut size = 1usize;
        while size <= n && used < budget {
            let prefix = &perm[..size];
            used += 1;
            if oracle.pure(prefix) {
                return Some(prefix.to_vec());
            }
            size *= 2;
        }
    }
    None
}

/// Theorem A.2's query lower bound: to succeed with probability `delta`
/// an algorithm needs at least `(delta/2)·exp(ε²k²/(3n))` queries.
pub fn theoretical_query_bound(n: usize, k: usize, epsilon: f64, delta: f64) -> f64 {
    (delta / 2.0) * (epsilon * epsilon * (k * k) as f64 / (3.0 * n as f64)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_assignment_has_exactly_k() {
        for seed in 0..10 {
            let p = PurificationInstance::random(200, 17, seed);
            assert_eq!(p.gold_count(&(0..200).collect::<Vec<_>>()), 17);
        }
    }

    #[test]
    fn full_set_is_never_a_witness() {
        // Gold([n]) = k = k·n/n exactly: always inside the band.
        let p = PurificationInstance::random(100, 10, 1);
        let o = p.oracle(0.1);
        let all: Vec<usize> = (0..100).collect();
        assert!(!o.pure(&all));
        assert_eq!(o.queries_used(), 1);
    }

    #[test]
    fn pure_gold_set_is_a_witness() {
        // A set of all gold items deviates maximally (for small ε).
        let p = PurificationInstance::random(100, 10, 2);
        let golds: Vec<usize> = (0..100).filter(|&i| p.gold[i]).collect();
        let o = p.oracle(0.2);
        assert!(o.pure(&golds), "all-gold set must escape the band");
    }

    #[test]
    fn band_matches_formula() {
        let p = PurificationInstance::random(100, 10, 3);
        let (lo, hi) = p.band(50, 0.1);
        let expect = 5.0;
        let slack = 0.1 * (5.0 + 1.0);
        assert!((lo - (expect - slack)).abs() < 1e-12);
        assert!((hi - (expect + slack)).abs() < 1e-12);
    }

    #[test]
    fn random_strategy_fails_in_the_hard_regime() {
        // Theorem A.2's regime: ε²k²/n large → the Pure band dwarfs the
        // hypergeometric fluctuation of Gold(S) (here ≈ 5.4σ), so random
        // probing essentially never finds a witness. n=400, k=60, ε=0.5:
        // for |S|=200 the band is 30 ± 19.5 while σ(Gold) ≈ 3.6.
        let mut successes = 0;
        for seed in 0..20u64 {
            let p = PurificationInstance::random(400, 60, seed);
            let o = p.oracle(0.5);
            if random_subset_strategy(&o, 200, 25, seed).is_some() {
                successes += 1;
            }
        }
        assert!(
            successes <= 2,
            "random strategy succeeded {successes}/20 — too easy"
        );
    }

    #[test]
    fn random_strategy_succeeds_in_the_easy_regime() {
        // Contrast: ε²k²/n ≪ 1 → the band is barely wider than one item,
        // so random sets stray outside it easily. This is why the paper's
        // hardness needs k = Ω(√n): the test documents the boundary.
        let mut successes = 0;
        for seed in 0..20u64 {
            let p = PurificationInstance::random(400, 8, seed);
            let o = p.oracle(0.5);
            if random_subset_strategy(&o, 200, 25, seed).is_some() {
                successes += 1;
            }
        }
        assert!(
            successes >= 10,
            "easy regime should usually find witnesses, got {successes}/20"
        );
    }

    #[test]
    fn query_counter_counts() {
        let p = PurificationInstance::random(50, 5, 4);
        let o = p.oracle(0.3);
        let _ = random_subset_strategy(&o, 10, 7, 1);
        assert!(o.queries_used() >= 1 && o.queries_used() <= 7);
    }

    #[test]
    fn adaptive_strategies_respect_budget() {
        let p = PurificationInstance::random(300, 60, 9);
        let o = p.oracle(0.4);
        let _ = hill_climb_strategy(&o, 25, 3);
        assert!(o.queries_used() <= 25);
        let o2 = p.oracle(0.4);
        let _ = doubling_strategy(&o2, 25, 3);
        assert!(o2.queries_used() <= 25);
    }

    #[test]
    fn all_strategies_fail_in_the_hard_regime() {
        // ε²k²/n large: witnesses are exponentially rare; tiny budgets
        // must fail for every strategy class (nonadaptive, hill-climb,
        // doubling). 10 seeds × 3 strategies × budget 20 — the theorem
        // bound allows ≪ 1 expected success.
        let mut successes = 0;
        for seed in 0..10u64 {
            let p = PurificationInstance::random(256, 128, seed);
            for strat in 0..3 {
                let o = p.oracle(0.5);
                let hit = match strat {
                    0 => random_subset_strategy(&o, 128, 20, seed).is_some(),
                    1 => hill_climb_strategy(&o, 20, seed).is_some(),
                    _ => doubling_strategy(&o, 20, seed).is_some(),
                };
                successes += hit as usize;
            }
        }
        assert_eq!(
            successes,
            0,
            "hard regime: ε²k²/3n = {} → bound {} queries needed",
            0.25 * 128.0 * 128.0 / 256.0 / 3.0,
            theoretical_query_bound(256, 128, 0.5, 0.5)
        );
    }

    #[test]
    fn doubling_finds_witness_when_band_is_trivial() {
        // ε = 0: any deviation at all is a witness; prefixes of a random
        // permutation deviate from the exact expectation almost surely.
        let p = PurificationInstance::random(128, 16, 11);
        let o = p.oracle(0.0);
        assert!(doubling_strategy(&o, 64, 5).is_some());
    }

    #[test]
    fn theoretical_bound_shape() {
        // Exponential in k²/n, linear in δ.
        let a = theoretical_query_bound(1_000, 100, 0.5, 0.5);
        let b = theoretical_query_bound(1_000, 200, 0.5, 0.5);
        assert!(b > a * a / 1.0_f64.max(a), "quadratic k exponent");
        let c = theoretical_query_bound(1_000, 100, 0.5, 0.25);
        assert!((c * 2.0 - a).abs() < 1e-9);
    }
}
