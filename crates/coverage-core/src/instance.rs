//! In-memory coverage instances.
//!
//! A [`CoverageInstance`] is the bipartite graph `G` of the paper: `n` sets
//! over `m` distinct elements, stored as per-set adjacency lists. Instances
//! are built from an arbitrary multiset of membership [`Edge`]s (duplicates
//! are deduplicated), so the same type backs
//!
//! * full offline inputs (ground truth for experiments),
//! * the *content of a sketch* (a sketch is itself a small coverage
//!   instance, per Section 2 of the paper), and
//! * residual graphs in the multi-pass set-cover algorithm.
//!
//! Besides the raw [`ElementId`] adjacency, an instance maintains a dense
//! compaction `E → 0..m` so that offline algorithms can run on bitsets and
//! `u32` index lists regardless of how sparse the original universe is.

use std::collections::HashMap;

use crate::bitset::BitSet;
use crate::ids::{Edge, ElementId, SetId};

/// An immutable coverage instance (bipartite set–element graph).
#[derive(Clone, Debug)]
pub struct CoverageInstance {
    /// `dense_sets[s]` = sorted dense element indices of set `s`.
    dense_sets: Vec<Vec<u32>>,
    /// Dense index → original element id.
    elements: Vec<ElementId>,
    /// Original element id → dense index.
    elem_index: HashMap<ElementId, u32>,
    /// Total number of (deduplicated) edges.
    num_edges: usize,
}

impl CoverageInstance {
    /// Start building an instance with `n` sets.
    pub fn builder(num_sets: usize) -> InstanceBuilder {
        InstanceBuilder::new(num_sets)
    }

    /// Build directly from an edge list. Duplicate edges are merged.
    pub fn from_edges(num_sets: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut b = InstanceBuilder::new(num_sets);
        for e in edges {
            b.add_edge(e);
        }
        b.build()
    }

    /// Number of sets `n` (including empty sets).
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.dense_sets.len()
    }

    /// Number of distinct elements `m` that appear in at least one set.
    ///
    /// The paper assumes no isolated elements, so `m` is exactly the number
    /// of elements incident to an edge.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Number of distinct membership edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// All set ids `S0..S(n-1)`.
    pub fn set_ids(&self) -> impl Iterator<Item = SetId> + '_ {
        (0..self.dense_sets.len() as u32).map(SetId)
    }

    /// Sorted dense element indices of `set`.
    #[inline]
    pub fn dense_set(&self, set: SetId) -> &[u32] {
        &self.dense_sets[set.index()]
    }

    /// Size (degree) of `set`.
    #[inline]
    pub fn set_size(&self, set: SetId) -> usize {
        self.dense_sets[set.index()].len()
    }

    /// Original ids of the elements of `set` (in dense-index order).
    pub fn set_elements(&self, set: SetId) -> impl Iterator<Item = ElementId> + '_ {
        self.dense_sets[set.index()]
            .iter()
            .map(move |&d| self.elements[d as usize])
    }

    /// Original element id for a dense index.
    #[inline]
    pub fn element_id(&self, dense: u32) -> ElementId {
        self.elements[dense as usize]
    }

    /// Dense index for an element id, if the element occurs in the instance.
    #[inline]
    pub fn dense_index(&self, element: ElementId) -> Option<u32> {
        self.elem_index.get(&element).copied()
    }

    /// All element ids, in dense-index order.
    pub fn element_ids(&self) -> &[ElementId] {
        &self.elements
    }

    /// Iterate over every deduplicated edge (set-major order).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.dense_sets.iter().enumerate().flat_map(move |(s, es)| {
            es.iter().map(move |&d| Edge {
                set: SetId(s as u32),
                element: self.elements[d as usize],
            })
        })
    }

    /// The coverage function `C(S) = |∪_{s∈S} s|` for a family of sets.
    ///
    /// Marks every member with branch-free or-stores and popcounts the
    /// mark words once at the end, instead of probing each bit for
    /// newness on insert.
    pub fn coverage(&self, family: &[SetId]) -> usize {
        let mut mark = BitSet::new(self.num_elements());
        for &s in family {
            mark.insert_indices(&self.dense_sets[s.index()]);
        }
        mark.count()
    }

    /// Coverage as a fraction of `m`. Returns 1.0 on an empty ground set.
    pub fn coverage_fraction(&self, family: &[SetId]) -> f64 {
        if self.num_elements() == 0 {
            1.0
        } else {
            self.coverage(family) as f64 / self.num_elements() as f64
        }
    }

    /// Does `family` cover every element?
    pub fn is_cover(&self, family: &[SetId]) -> bool {
        self.coverage(family) == self.num_elements()
    }

    /// The set of dense element indices covered by `family`, as a bitset.
    pub fn covered_bitset(&self, family: &[SetId]) -> BitSet {
        let mut mark = BitSet::new(self.num_elements());
        for &s in family {
            mark.insert_indices(&self.dense_sets[s.index()]);
        }
        mark
    }

    /// Per-set bitsets over the dense element space (used by exact solvers
    /// and by greedy variants that prefer word-parallel marginals).
    pub fn set_bitsets(&self) -> Vec<BitSet> {
        let m = self.num_elements();
        self.dense_sets
            .iter()
            .map(|es| {
                let mut b = BitSet::new(m);
                b.insert_indices(es);
                b
            })
            .collect()
    }

    /// Element degrees: `degree[d]` = number of sets containing dense
    /// element `d`.
    pub fn element_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_elements()];
        for es in &self.dense_sets {
            for &d in es {
                deg[d as usize] += 1;
            }
        }
        deg
    }

    /// Restrict the instance to elements for which `keep` returns true.
    ///
    /// Set ids are preserved; elements are re-compacted. This implements the
    /// residual graph `G_{i+1}` of Algorithm 6 ("remove covered elements").
    pub fn restrict_elements(&self, mut keep: impl FnMut(ElementId) -> bool) -> CoverageInstance {
        let mut b = InstanceBuilder::new(self.num_sets());
        for (s, es) in self.dense_sets.iter().enumerate() {
            for &d in es {
                let id = self.elements[d as usize];
                if keep(id) {
                    b.add_edge(Edge {
                        set: SetId(s as u32),
                        element: id,
                    });
                }
            }
        }
        b.build()
    }
}

/// Incremental builder: feed edges in any order, then [`build`](Self::build).
#[derive(Clone, Debug)]
pub struct InstanceBuilder {
    num_sets: usize,
    /// Raw per-set element lists (possibly with duplicates until `build`).
    raw: Vec<Vec<ElementId>>,
}

impl InstanceBuilder {
    /// A builder for an instance with exactly `num_sets` sets.
    pub fn new(num_sets: usize) -> Self {
        InstanceBuilder {
            num_sets,
            raw: vec![Vec::new(); num_sets],
        }
    }

    /// Record one membership edge. Edges referring to sets `≥ num_sets`
    /// grow the family (useful when `n` is not known up front).
    pub fn add_edge(&mut self, e: Edge) {
        let idx = e.set.index();
        if idx >= self.raw.len() {
            self.raw.resize_with(idx + 1, Vec::new);
            self.num_sets = idx + 1;
        }
        self.raw[idx].push(e.element);
    }

    /// Record a whole set at once.
    pub fn add_set(&mut self, set: SetId, elements: impl IntoIterator<Item = ElementId>) {
        for el in elements {
            self.add_edge(Edge { set, element: el });
        }
    }

    /// Finalize: dedup, compact elements densely, sort adjacency lists.
    ///
    /// The element index and id table are pre-sized from the total edge
    /// count (an upper bound on the distinct-element count), so the
    /// compaction loop never rehashes the map or regrows the id table
    /// mid-build.
    pub fn build(self) -> CoverageInstance {
        let total_edges: usize = self.raw.iter().map(Vec::len).sum();
        let mut elem_index: HashMap<ElementId, u32> = HashMap::with_capacity(total_edges);
        let mut elements: Vec<ElementId> = Vec::with_capacity(total_edges);
        let mut dense_sets: Vec<Vec<u32>> = Vec::with_capacity(self.raw.len());
        let mut num_edges = 0usize;
        for list in self.raw {
            let mut dense: Vec<u32> = Vec::with_capacity(list.len());
            dense.extend(list.into_iter().map(|id| {
                *elem_index.entry(id).or_insert_with(|| {
                    let d = elements.len() as u32;
                    elements.push(id);
                    d
                })
            }));
            dense.sort_unstable();
            dense.dedup();
            num_edges += dense.len();
            dense_sets.push(dense);
        }
        // The pre-sizing above is an upper bound; give back the slack so
        // the finished (immutable) instance is resident-tight.
        elements.shrink_to_fit();
        elem_index.shrink_to_fit();
        CoverageInstance {
            dense_sets,
            elements,
            elem_index,
            num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CoverageInstance {
        // S0 = {a, b}, S1 = {b, c}, S2 = {d}
        CoverageInstance::from_edges(
            3,
            [
                Edge::new(0u32, 10u64),
                Edge::new(0u32, 11u64),
                Edge::new(1u32, 11u64),
                Edge::new(1u32, 12u64),
                Edge::new(2u32, 13u64),
            ],
        )
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(g.num_sets(), 3);
        assert_eq!(g.num_elements(), 4);
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn duplicates_are_merged() {
        let g = CoverageInstance::from_edges(
            1,
            [
                Edge::new(0u32, 5u64),
                Edge::new(0u32, 5u64),
                Edge::new(0u32, 5u64),
            ],
        );
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.set_size(SetId(0)), 1);
    }

    #[test]
    fn coverage_function() {
        let g = tiny();
        assert_eq!(g.coverage(&[SetId(0)]), 2);
        assert_eq!(g.coverage(&[SetId(0), SetId(1)]), 3);
        assert_eq!(g.coverage(&[SetId(0), SetId(1), SetId(2)]), 4);
        assert_eq!(g.coverage(&[]), 0);
        // Repeating a set does not double-count.
        assert_eq!(g.coverage(&[SetId(0), SetId(0)]), 2);
    }

    #[test]
    fn is_cover_and_fraction() {
        let g = tiny();
        assert!(g.is_cover(&[SetId(0), SetId(1), SetId(2)]));
        assert!(!g.is_cover(&[SetId(0), SetId(1)]));
        let f = g.coverage_fraction(&[SetId(0)]);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dense_compaction_roundtrip() {
        let g = tiny();
        for id in g.element_ids() {
            let d = g.dense_index(*id).expect("element must be indexed");
            assert_eq!(g.element_id(d), *id);
        }
        assert_eq!(g.dense_index(ElementId(999)), None);
    }

    #[test]
    fn edges_iterator_matches_counts() {
        let g = tiny();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
        // Rebuilding from the iterator yields an identical instance.
        let g2 = CoverageInstance::from_edges(g.num_sets(), edges);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.num_elements(), g.num_elements());
        for s in g.set_ids() {
            let a: Vec<ElementId> = g.set_elements(s).collect();
            let b: Vec<ElementId> = g2.set_elements(s).collect();
            let mut a = a;
            let mut b = b;
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn builder_grows_family_on_demand() {
        let mut b = InstanceBuilder::new(1);
        b.add_edge(Edge::new(5u32, 1u64));
        let g = b.build();
        assert_eq!(g.num_sets(), 6);
        assert_eq!(g.set_size(SetId(5)), 1);
        assert_eq!(g.set_size(SetId(0)), 0);
    }

    #[test]
    fn restrict_elements_builds_residual() {
        let g = tiny();
        // Remove element 11 (shared by S0 and S1).
        let r = g.restrict_elements(|e| e != ElementId(11));
        assert_eq!(r.num_sets(), 3);
        assert_eq!(r.num_elements(), 3);
        assert_eq!(r.set_size(SetId(0)), 1);
        assert_eq!(r.set_size(SetId(1)), 1);
        assert_eq!(r.set_size(SetId(2)), 1);
    }

    #[test]
    fn element_degrees_count_incidence() {
        let g = tiny();
        let d11 = g.dense_index(ElementId(11)).unwrap();
        let degs = g.element_degrees();
        assert_eq!(degs[d11 as usize], 2);
        assert_eq!(degs.iter().sum::<u32>() as usize, g.num_edges());
    }

    #[test]
    fn set_bitsets_agree_with_coverage() {
        let g = tiny();
        let bs = g.set_bitsets();
        let mut u = BitSet::new(g.num_elements());
        u.union_with(&bs[0]);
        u.union_with(&bs[1]);
        assert_eq!(u.count(), g.coverage(&[SetId(0), SetId(1)]));
    }
}
