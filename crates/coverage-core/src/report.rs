//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints aligned ASCII tables shaped like the
//! paper's Table 1; keeping the renderer here lets tests assert on layout
//! without pulling a formatting dependency into the workspace.

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Shorter rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table with aligned columns, a title line and a rule.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let c = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{:<width$}", c, width = w + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(
                widths
                    .iter()
                    .map(|w| w + 2)
                    .sum::<usize>()
                    .saturating_sub(2),
            ),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{:.*}", prec, x)
}

/// Format a count with SI-style thousands grouping (`1_234_567`).
pub fn fmt_count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    let bytes = s.as_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(*b as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["alg", "space", "ratio"]);
        t.row(vec!["ours".into(), "1_000".into(), "0.63".into()]);
        t.row(vec![
            "baseline-with-long-name".into(),
            "99".into(),
            "0.25".into(),
        ]);
        let s = t.render();
        assert!(s.starts_with("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "title, header, rule, 2 rows");
        // The "space" column starts at the same offset in both data rows.
        let off1 = lines[3].find("1_000").unwrap();
        let off2 = lines[4].find("99").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1_000");
        assert_eq!(fmt_count(1_234_567), "1_234_567");
    }

    #[test]
    fn fmt_f_precision() {
        assert_eq!(fmt_f(0.126, 2), "0.13");
        assert_eq!(fmt_f(1.0, 3), "1.000");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
