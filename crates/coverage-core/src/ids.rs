//! Strongly-typed identifiers for sets, elements, and membership edges.
//!
//! The paper models a coverage instance as a bipartite graph `G` between a
//! family `S` of `n` sets and a ground set `E` of `m` elements; information
//! arrives as *edges* `(S, u)` denoting `u ∈ S`. We mirror that model with
//! two newtypes and an [`Edge`] pair.
//!
//! Sets are indexed densely by `u32` (the paper's regime of interest is
//! `n ≪ m`, and all algorithms store per-set state, so a dense index is both
//! natural and cache-friendly). Elements come from a potentially enormous
//! universe and are identified by sparse `u64` keys that are only ever
//! hashed or compared, never used as array indices.

use serde::{Deserialize, Serialize};

/// Identifier of a set `S ∈ S` (dense index in `0..n`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SetId(pub u32);

/// Identifier of a ground-set element `u ∈ E` (sparse 64-bit key).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElementId(pub u64);

impl SetId {
    /// The dense index of this set, usable for `Vec` indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ElementId {
    /// The raw 64-bit key of this element.
    #[inline]
    pub fn key(self) -> u64 {
        self.0
    }
}

impl From<u32> for SetId {
    #[inline]
    fn from(v: u32) -> Self {
        SetId(v)
    }
}

impl From<usize> for SetId {
    #[inline]
    fn from(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "set index exceeds u32 range");
        SetId(v as u32)
    }
}

impl From<u64> for ElementId {
    #[inline]
    fn from(v: u64) -> Self {
        ElementId(v)
    }
}

impl From<usize> for ElementId {
    #[inline]
    fn from(v: usize) -> Self {
        ElementId(v as u64)
    }
}

impl std::fmt::Debug for SetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl std::fmt::Display for SetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl std::fmt::Debug for ElementId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for ElementId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One membership relation `element ∈ set`, the unit of the edge-arrival
/// stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// The set endpoint.
    pub set: SetId,
    /// The element endpoint.
    pub element: ElementId,
}

impl Edge {
    /// Construct an edge from raw indices.
    #[inline]
    pub fn new(set: impl Into<SetId>, element: impl Into<ElementId>) -> Self {
        Edge {
            set: set.into(),
            element: element.into(),
        }
    }
}

impl From<(u32, u64)> for Edge {
    #[inline]
    fn from((s, e): (u32, u64)) -> Self {
        Edge::new(s, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_id_roundtrip() {
        let s = SetId::from(17usize);
        assert_eq!(s.index(), 17);
        assert_eq!(s, SetId(17));
    }

    #[test]
    fn element_id_roundtrip() {
        let e = ElementId::from(123_456_789_012u64);
        assert_eq!(e.key(), 123_456_789_012);
    }

    #[test]
    fn edge_construction_from_tuple() {
        let e: Edge = (3u32, 9u64).into();
        assert_eq!(e.set, SetId(3));
        assert_eq!(e.element, ElementId(9));
    }

    #[test]
    fn ids_order_by_value() {
        assert!(SetId(1) < SetId(2));
        assert!(ElementId(1) < ElementId(2));
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", SetId(4)), "S4");
        assert_eq!(format!("{:?}", ElementId(7)), "e7");
        assert_eq!(format!("{}", SetId(4)), "S4");
    }
}
