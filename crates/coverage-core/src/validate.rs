//! Solution validation helpers shared by tests, examples and experiments.

use crate::ids::SetId;
use crate::instance::CoverageInstance;

/// Why a proposed solution is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolutionError {
    /// A set id ≥ n was referenced.
    SetOutOfRange(SetId),
    /// The same set appears twice.
    DuplicateSet(SetId),
    /// More than `k` sets were returned for a k-cover query.
    TooManySets {
        /// Number of sets in the proposed solution.
        got: usize,
        /// The cardinality limit `k`.
        limit: usize,
    },
    /// A cover was required but `uncovered` elements remain.
    NotACover {
        /// How many elements the proposed cover misses.
        uncovered: usize,
    },
    /// Partial cover required `required` covered elements, got `covered`.
    InsufficientCoverage {
        /// Elements covered by the proposed solution.
        covered: usize,
        /// Elements that had to be covered (`⌈(1−λ)·m⌉`).
        required: usize,
    },
}

impl std::fmt::Display for SolutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolutionError::SetOutOfRange(s) => write!(f, "set {s} out of range"),
            SolutionError::DuplicateSet(s) => write!(f, "set {s} appears more than once"),
            SolutionError::TooManySets { got, limit } => {
                write!(f, "solution has {got} sets, limit {limit}")
            }
            SolutionError::NotACover { uncovered } => {
                write!(f, "{uncovered} elements left uncovered")
            }
            SolutionError::InsufficientCoverage { covered, required } => {
                write!(f, "covered {covered} < required {required}")
            }
        }
    }
}

impl std::error::Error for SolutionError {}

/// Check that `family` is a well-formed family: ids in range, no
/// duplicates, and (if `limit` is given) at most `limit` sets.
pub fn check_family(
    inst: &CoverageInstance,
    family: &[SetId],
    limit: Option<usize>,
) -> Result<(), SolutionError> {
    if let Some(k) = limit {
        if family.len() > k {
            return Err(SolutionError::TooManySets {
                got: family.len(),
                limit: k,
            });
        }
    }
    let mut seen = vec![false; inst.num_sets()];
    for &s in family {
        if s.index() >= inst.num_sets() {
            return Err(SolutionError::SetOutOfRange(s));
        }
        if seen[s.index()] {
            return Err(SolutionError::DuplicateSet(s));
        }
        seen[s.index()] = true;
    }
    Ok(())
}

/// Check that `family` is a valid k-cover solution (well-formed, ≤ k sets).
pub fn check_k_cover(
    inst: &CoverageInstance,
    family: &[SetId],
    k: usize,
) -> Result<(), SolutionError> {
    check_family(inst, family, Some(k))
}

/// Check that `family` fully covers the instance.
pub fn check_set_cover(inst: &CoverageInstance, family: &[SetId]) -> Result<(), SolutionError> {
    check_family(inst, family, None)?;
    let covered = inst.coverage(family);
    if covered < inst.num_elements() {
        return Err(SolutionError::NotACover {
            uncovered: inst.num_elements() - covered,
        });
    }
    Ok(())
}

/// Check that `family` covers at least a `1−λ` fraction of the elements.
pub fn check_partial_cover(
    inst: &CoverageInstance,
    family: &[SetId],
    lambda: f64,
) -> Result<(), SolutionError> {
    check_family(inst, family, None)?;
    let required = ((1.0 - lambda) * inst.num_elements() as f64).ceil() as usize;
    let covered = inst.coverage(family);
    if covered < required {
        return Err(SolutionError::InsufficientCoverage { covered, required });
    }
    Ok(())
}

/// Measured approximation ratio of a maximization solution (`achieved /
/// optimum`, in `[0,1]` when the optimum is correct).
pub fn approx_ratio(achieved: usize, optimum: usize) -> f64 {
    if optimum == 0 {
        1.0
    } else {
        achieved as f64 / optimum as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Edge;

    fn g() -> CoverageInstance {
        CoverageInstance::from_edges(
            2,
            [
                Edge::new(0u32, 0u64),
                Edge::new(0u32, 1u64),
                Edge::new(1u32, 2u64),
            ],
        )
    }

    #[test]
    fn accepts_valid_k_cover() {
        assert!(check_k_cover(&g(), &[SetId(0)], 1).is_ok());
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            check_k_cover(&g(), &[SetId(9)], 3),
            Err(SolutionError::SetOutOfRange(SetId(9)))
        );
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            check_k_cover(&g(), &[SetId(0), SetId(0)], 3),
            Err(SolutionError::DuplicateSet(SetId(0)))
        );
    }

    #[test]
    fn rejects_oversized_family() {
        assert_eq!(
            check_k_cover(&g(), &[SetId(0), SetId(1)], 1),
            Err(SolutionError::TooManySets { got: 2, limit: 1 })
        );
    }

    #[test]
    fn set_cover_requires_full_coverage() {
        assert_eq!(
            check_set_cover(&g(), &[SetId(0)]),
            Err(SolutionError::NotACover { uncovered: 1 })
        );
        assert!(check_set_cover(&g(), &[SetId(0), SetId(1)]).is_ok());
    }

    #[test]
    fn partial_cover_threshold() {
        // m=3, λ=0.5 → required = ceil(1.5) = 2; S0 covers 2.
        assert!(check_partial_cover(&g(), &[SetId(0)], 0.5).is_ok());
        // S1 covers 1 < 2.
        assert!(check_partial_cover(&g(), &[SetId(1)], 0.5).is_err());
    }

    #[test]
    fn ratio_handles_zero_optimum() {
        assert_eq!(approx_ratio(0, 0), 1.0);
        assert!((approx_ratio(3, 4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn errors_display() {
        let e = SolutionError::NotACover { uncovered: 2 };
        assert!(e.to_string().contains("2"));
    }
}
