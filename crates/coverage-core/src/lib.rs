//! # coverage-core
//!
//! Problem model and offline algorithms for *coverage problems* — the
//! shared substrate of a Rust reproduction of
//!
//! > Bateni, Esfandiari, Mirrokni.
//! > **Almost Optimal Streaming Algorithms for Coverage Problems.**
//! > SPAA 2017 (arXiv:1610.08096).
//!
//! A coverage instance is a bipartite graph between a family `S` of `n`
//! sets and a ground set `E` of `m` elements. This crate provides:
//!
//! * [`ids`] — strongly-typed [`SetId`]/[`ElementId`]/[`Edge`] identifiers;
//! * [`instance`] — the in-memory [`CoverageInstance`] graph with dense
//!   element compaction;
//! * [`bitset`] — the [`BitSet`] used by offline solvers;
//! * [`view`] — the borrowed [`CoverageView`] trait and the packed
//!   [`CsrInstance`] every offline solver is generic over (sketches
//!   export their content as CSR views without rebuilding);
//! * [`func`] — the [`CoverageOracle`] abstraction (exact, sketched, or
//!   adversarially noisy coverage functions behind one interface);
//! * [`offline`] — greedy (`1−1/e` / `ln m`), lazy greedy, partial cover,
//!   and exact branch-and-bound solvers;
//! * [`validate`] — solution checking used by tests and experiments;
//! * [`report`] — ASCII table rendering for experiment binaries;
//! * [`plot`] — ASCII chart rendering for curve-shaped experiments.
//!
//! Streaming algorithms live in `coverage-algs`; the paper's sketch lives
//! in `coverage-sketch`. This crate is deliberately free of randomness: all
//! stochastic machinery (hashing, sampling, workload generation) sits in
//! sibling crates so the core model stays deterministic.
//!
//! ## Quick example
//!
//! ```
//! use coverage_core::{CoverageInstance, SetId, Edge, offline};
//!
//! // S0 = {1,2,3}, S1 = {3,4}, S2 = {5}
//! let inst = CoverageInstance::from_edges(3, [
//!     Edge::new(0u32, 1u64), Edge::new(0u32, 2u64), Edge::new(0u32, 3u64),
//!     Edge::new(1u32, 3u64), Edge::new(1u32, 4u64),
//!     Edge::new(2u32, 5u64),
//! ]);
//! let sol = offline::lazy_greedy_k_cover(&inst, 2);
//! assert_eq!(sol.family()[0], SetId(0));
//! assert_eq!(sol.coverage(), 4); // S0 then S1 (or S2): 4 elements
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod func;
pub mod ids;
pub mod instance;
pub mod offline;
pub mod plot;
pub mod report;
pub mod validate;
pub mod view;

pub use bitset::BitSet;
pub use func::{oracle_greedy_k_cover, CoverageOracle};
pub use ids::{Edge, ElementId, SetId};
pub use instance::{CoverageInstance, InstanceBuilder};
pub use view::{CoverageView, CsrInstance};
