//! Offline (in-memory) algorithms for coverage problems.
//!
//! These serve three roles in the reproduction:
//!
//! 1. **Substrate for the streaming algorithms.** The paper's Algorithms
//!    3–6 all run an offline greedy *on the sketch*; Algorithm 6
//!    additionally runs an offline greedy set cover on the stored residual
//!    graph `G_r`.
//! 2. **Baselines.** Offline greedy is the `1−1/e` (k-cover) and `ln m`
//!    (set cover) yardstick the streaming results are measured against.
//! 3. **Ground truth.** Exact branch-and-bound solvers provide true optima
//!    on small instances so tests and experiments can report *measured*
//!    approximation ratios.
//!
//! Three output-identical greedy engines coexist, all generic over
//! [`CoverageView`](crate::CoverageView): the naive rescanning greedy
//! (spec), the lazy (Minoux) engine (reference for the heap-based
//! approach), and the exact decremental **bucket-queue** engine
//! (`bucket_greedy_*`) the hot query paths use — `O(Σ|S|)` total work
//! via per-set gain counters, an element→sets inverted index, and a
//! gain-indexed bucket priority queue.

mod bucket;
mod engine;
mod exact;
mod greedy;
mod local_search;
mod parallel;
mod set_cover;
mod stochastic;
mod weighted;

pub use bucket::{bucket_greedy_budgeted_cover, bucket_greedy_k_cover, bucket_greedy_set_cover};
pub use engine::{GreedyStep, GreedyTrace};
pub use exact::{exact_k_cover, exact_set_cover};
pub use greedy::{greedy_k_cover, lazy_greedy_k_cover};
pub use local_search::{
    best_improving_swap, local_search_k_cover, local_search_k_cover_with, LocalSearchConfig,
    LocalSearchResult,
};
pub use parallel::{parallel_greedy_k_cover, parallel_marginals};
pub use set_cover::{
    greedy_budgeted_cover, greedy_partial_cover, greedy_set_cover, PartialCoverResult,
};
pub use stochastic::stochastic_greedy_k_cover;
pub use weighted::{
    exact_weighted_k_cover, weighted_coverage, weighted_greedy_k_cover,
    weighted_greedy_partial_cover, ElementWeights, WeightedStep, WeightedTrace,
};
