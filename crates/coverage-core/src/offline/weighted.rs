//! Weighted coverage: element-weighted k-cover and partial cover.
//!
//! The paper treats the unweighted coverage function `C(S) = |∪ S|`; its
//! conclusion points at extensions as future work. Weighted ground sets
//! (each element `e` has a weight `w(e) ≥ 0`, and
//! `C_w(S) = Σ_{e ∈ ∪S} w(e)`) are the most common such extension in the
//! data-summarization applications the introduction motivates — documents
//! scored by PageRank, queries by frequency, nodes by activity.
//!
//! Weighted coverage is still monotone submodular, so
//!
//! * greedy is a `(1 − 1/e)`-approximation (Nemhauser–Wolsey–Fisher,
//!   the paper's `[40]`) — implemented lazily here;
//! * the `H≤n` sketch machinery applies *unchanged* whenever weights are
//!   bounded integers, by conceptually replicating an element of weight
//!   `w` into `w` unit copies (the experiment `exp_weighted` exercises
//!   this reduction).
//!
//! Weights are `u64` so that gains are exact and runs are deterministic —
//! float weights can be scaled to integers by the caller.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bitset::BitSet;
use crate::ids::SetId;
use crate::instance::CoverageInstance;

/// Per-element weights, indexed by the instance's *dense* element index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElementWeights {
    w: Vec<u64>,
}

impl ElementWeights {
    /// Uniform weight 1 for every element — weighted coverage collapses to
    /// the unweighted coverage function.
    pub fn uniform(inst: &CoverageInstance) -> Self {
        ElementWeights {
            w: vec![1; inst.num_elements()],
        }
    }

    /// Weights from a function of the original [`crate::ElementId`].
    pub fn from_fn(inst: &CoverageInstance, mut f: impl FnMut(crate::ElementId) -> u64) -> Self {
        ElementWeights {
            w: inst.element_ids().iter().map(|&id| f(id)).collect(),
        }
    }

    /// Weights from a dense vector (must have length `inst.num_elements()`).
    pub fn from_dense(w: Vec<u64>) -> Self {
        ElementWeights { w }
    }

    /// Weight of dense element `d`.
    #[inline]
    pub fn get(&self, d: u32) -> u64 {
        self.w[d as usize]
    }

    /// Number of weighted elements.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Total weight of the ground set.
    pub fn total(&self) -> u64 {
        self.w.iter().sum()
    }
}

/// One selection made by a weighted greedy run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightedStep {
    /// The chosen set.
    pub set: SetId,
    /// Marginal weighted gain at selection time.
    pub gain: u64,
    /// Total covered weight after this selection.
    pub covered_after: u64,
}

/// Record of a weighted greedy run.
#[derive(Clone, Debug, Default)]
pub struct WeightedTrace {
    /// Selections in order.
    pub steps: Vec<WeightedStep>,
}

impl WeightedTrace {
    /// The selected family in selection order.
    pub fn family(&self) -> Vec<SetId> {
        self.steps.iter().map(|s| s.set).collect()
    }

    /// Total covered weight.
    pub fn covered_weight(&self) -> u64 {
        self.steps.last().map_or(0, |s| s.covered_after)
    }

    /// Number of selected sets.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if no set was selected.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The weighted coverage function `C_w(family) = Σ_{e covered} w(e)`.
pub fn weighted_coverage(
    inst: &CoverageInstance,
    weights: &ElementWeights,
    family: &[SetId],
) -> u64 {
    assert_eq!(weights.len(), inst.num_elements(), "weight vector length");
    let mut mark = BitSet::new(inst.num_elements());
    let mut total = 0u64;
    for &s in family {
        for &d in inst.dense_set(s) {
            if mark.insert(d as usize) {
                total += weights.get(d);
            }
        }
    }
    total
}

/// Weighted greedy k-cover with lazy (Minoux) evaluation.
///
/// Output-identical to a naive rescanning weighted greedy with
/// smallest-id tie-breaking; `(1 − 1/e)`-approximate for `C_w`.
pub fn weighted_greedy_k_cover(
    inst: &CoverageInstance,
    weights: &ElementWeights,
    k: usize,
) -> WeightedTrace {
    weighted_greedy_until(inst, weights, |picked, _| picked >= k)
}

/// Weighted partial cover: select sets greedily until the covered weight
/// reaches `(1 − lambda)` of the total ground-set weight.
pub fn weighted_greedy_partial_cover(
    inst: &CoverageInstance,
    weights: &ElementWeights,
    lambda: f64,
) -> WeightedTrace {
    let need = ((1.0 - lambda) * weights.total() as f64).ceil() as u64;
    weighted_greedy_until(inst, weights, |_, covered| covered >= need)
}

fn weighted_greedy_until(
    inst: &CoverageInstance,
    weights: &ElementWeights,
    mut stop: impl FnMut(usize, u64) -> bool,
) -> WeightedTrace {
    assert_eq!(weights.len(), inst.num_elements(), "weight vector length");
    let m = inst.num_elements();
    let mut covered_mark = BitSet::new(m);
    let mut covered = 0u64;
    let mut trace = WeightedTrace::default();

    let initial_gain =
        |s: SetId| -> u64 { inst.dense_set(s).iter().map(|&d| weights.get(d)).sum() };
    let mut heap: BinaryHeap<(u64, Reverse<u32>)> = inst
        .set_ids()
        .map(|s| (initial_gain(s), Reverse(s.0)))
        .collect();

    let fresh_gain = |covered_mark: &BitSet, s: SetId| -> u64 {
        inst.dense_set(s)
            .iter()
            .filter(|&&d| !covered_mark.contains(d as usize))
            .map(|&d| weights.get(d))
            .sum()
    };

    while !stop(trace.steps.len(), covered) {
        let chosen = loop {
            let Some((cached, Reverse(sid))) = heap.pop() else {
                break None;
            };
            if cached == 0 {
                break None;
            }
            let set = SetId(sid);
            let fresh = fresh_gain(&covered_mark, set);
            debug_assert!(fresh <= cached, "weighted gains must not increase");
            if fresh == cached {
                break Some((set, fresh));
            }
            match heap.peek() {
                Some(&(next_g, Reverse(next_id)))
                    if fresh < next_g || (fresh == next_g && sid > next_id) =>
                {
                    if fresh > 0 {
                        heap.push((fresh, Reverse(sid)));
                    }
                }
                _ => {
                    if fresh == 0 {
                        break None;
                    }
                    break Some((set, fresh));
                }
            }
        };
        let Some((set, gain)) = chosen else { break };
        for &d in inst.dense_set(set) {
            covered_mark.insert(d as usize);
        }
        covered += gain;
        trace.steps.push(WeightedStep {
            set,
            gain,
            covered_after: covered,
        });
    }
    trace
}

/// Exact weighted k-cover by exhaustive enumeration (tests/ground truth;
/// exponential in `k`, only for small instances).
pub fn exact_weighted_k_cover(
    inst: &CoverageInstance,
    weights: &ElementWeights,
    k: usize,
) -> (Vec<SetId>, u64) {
    let n = inst.num_sets();
    let k = k.min(n);
    let mut best: (Vec<SetId>, u64) = (Vec::new(), 0);
    let mut current: Vec<SetId> = Vec::with_capacity(k);
    fn rec(
        inst: &CoverageInstance,
        weights: &ElementWeights,
        k: usize,
        start: u32,
        current: &mut Vec<SetId>,
        best: &mut (Vec<SetId>, u64),
    ) {
        if current.len() == k {
            let v = weighted_coverage(inst, weights, current);
            if v > best.1 {
                *best = (current.clone(), v);
            }
            return;
        }
        let remaining = k - current.len();
        let n = inst.num_sets() as u32;
        if start + remaining as u32 > n {
            return;
        }
        for s in start..n {
            current.push(SetId(s));
            rec(inst, weights, k, s + 1, current, best);
            current.pop();
        }
    }
    rec(inst, weights, k, 0, &mut current, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Edge;
    use crate::offline::lazy_greedy_k_cover;

    fn pseudo_random_instance(n: usize, m: u64, avg_deg: u64, seed: u64) -> CoverageInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        let mut b = CoverageInstance::builder(n);
        for s in 0..n as u32 {
            let deg = 1 + next() % (2 * avg_deg);
            for _ in 0..deg {
                b.add_edge(Edge::new(s, next() % m));
            }
        }
        b.build()
    }

    fn pseudo_weights(inst: &CoverageInstance, seed: u64) -> ElementWeights {
        let mut state = seed | 1;
        ElementWeights::from_dense(
            (0..inst.num_elements())
                .map(|_| {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
                    1 + state % 9
                })
                .collect(),
        )
    }

    #[test]
    fn uniform_weights_reduce_to_unweighted() {
        for seed in 1..=6u64 {
            let g = pseudo_random_instance(18, 50, 6, seed);
            let w = ElementWeights::uniform(&g);
            for k in [1usize, 3, 5] {
                let wt = weighted_greedy_k_cover(&g, &w, k);
                let ut = lazy_greedy_k_cover(&g, k);
                assert_eq!(wt.family(), ut.family(), "seed={seed} k={k}");
                assert_eq!(wt.covered_weight(), ut.coverage() as u64);
            }
        }
    }

    #[test]
    fn greedy_meets_one_minus_one_over_e_weighted() {
        for seed in 1..=6u64 {
            let g = pseudo_random_instance(12, 36, 5, seed);
            let w = pseudo_weights(&g, seed * 7 + 1);
            for k in [2usize, 4] {
                let greedy = weighted_greedy_k_cover(&g, &w, k).covered_weight();
                let (_, opt) = exact_weighted_k_cover(&g, &w, k);
                assert!(
                    greedy as f64 >= (1.0 - 1.0 / std::f64::consts::E) * opt as f64 - 1e-9,
                    "seed={seed} k={k}: greedy={greedy} opt={opt}"
                );
                assert!(greedy <= opt);
            }
        }
    }

    #[test]
    fn heavy_element_dominates_choice() {
        // S0 has many light elements; S1 holds one heavy element.
        let mut b = CoverageInstance::builder(2);
        b.add_set(SetId(0), (0u64..10).map(Into::into));
        b.add_set(SetId(1), [100u64.into()]);
        let g = b.build();
        let w = ElementWeights::from_fn(&g, |id| if id.0 == 100 { 1000 } else { 1 });
        let t = weighted_greedy_k_cover(&g, &w, 1);
        assert_eq!(t.family(), vec![SetId(1)]);
        assert_eq!(t.covered_weight(), 1000);
    }

    #[test]
    fn zero_weight_elements_are_ignored() {
        let mut b = CoverageInstance::builder(2);
        b.add_set(SetId(0), (0u64..5).map(Into::into)); // all weight 0
        b.add_set(SetId(1), [10u64.into()]); // weight 3
        let g = b.build();
        let w = ElementWeights::from_fn(&g, |id| if id.0 == 10 { 3 } else { 0 });
        let t = weighted_greedy_k_cover(&g, &w, 2);
        // S1 first (gain 3); S0 has zero gain and is never selected.
        assert_eq!(t.family(), vec![SetId(1)]);
        assert_eq!(t.covered_weight(), 3);
    }

    #[test]
    fn weighted_coverage_matches_manual_sum() {
        let g = pseudo_random_instance(8, 30, 4, 2);
        let w = pseudo_weights(&g, 5);
        let family = vec![SetId(0), SetId(3), SetId(5)];
        let mut seen = std::collections::HashSet::new();
        let mut manual = 0u64;
        for &s in &family {
            for &d in g.dense_set(s) {
                if seen.insert(d) {
                    manual += w.get(d);
                }
            }
        }
        assert_eq!(weighted_coverage(&g, &w, &family), manual);
    }

    #[test]
    fn partial_cover_reaches_weight_threshold() {
        for seed in 1..=4u64 {
            let g = pseudo_random_instance(20, 50, 8, seed);
            let w = pseudo_weights(&g, seed + 11);
            let lambda = 0.2;
            let t = weighted_greedy_partial_cover(&g, &w, lambda);
            let need = ((1.0 - lambda) * w.total() as f64).ceil() as u64;
            // The whole family covers everything, so the threshold is
            // reachable and greedy must reach it.
            assert!(
                t.covered_weight() >= need,
                "seed={seed}: covered {} < need {need}",
                t.covered_weight()
            );
        }
    }

    #[test]
    fn total_and_get_are_consistent() {
        let g = pseudo_random_instance(5, 20, 3, 1);
        let w = pseudo_weights(&g, 3);
        let sum: u64 = (0..g.num_elements() as u32).map(|d| w.get(d)).sum();
        assert_eq!(w.total(), sum);
        assert_eq!(w.len(), g.num_elements());
    }

    #[test]
    fn exact_weighted_on_tiny_instance() {
        // S0={a(5)}, S1={b(3),c(3)}, S2={a(5),b(3)}
        let mut b = CoverageInstance::builder(3);
        b.add_set(SetId(0), [0u64.into()]);
        b.add_set(SetId(1), [1u64.into(), 2u64.into()]);
        b.add_set(SetId(2), [0u64.into(), 1u64.into()]);
        let g = b.build();
        let w = ElementWeights::from_fn(&g, |id| if id.0 == 0 { 5 } else { 3 });
        let (fam, v) = exact_weighted_k_cover(&g, &w, 2);
        // {S0,S1} and {S1,S2} both cover {a,b,c} = 11; enumeration keeps
        // the lexicographically first maximizer.
        assert_eq!(v, 11);
        assert_eq!(fam, vec![SetId(0), SetId(1)]);
    }

    #[test]
    #[should_panic(expected = "weight vector length")]
    fn length_mismatch_panics() {
        let g = pseudo_random_instance(5, 20, 3, 1);
        let w = ElementWeights::from_dense(vec![1; 3]);
        weighted_coverage(&g, &w, &[SetId(0)]);
    }
}
