//! Greedy set cover and partial ("with outliers") set cover.
//!
//! Greedy set cover is the classical `ln m`-approximation; stopping at a
//! `(1−λ)` coverage fraction gives the `⌈k*·ln(1/λ)⌉` bound the paper uses
//! throughout (`C(Greedy(k·log(1/λ), G)) ≥ (1−λ)·Opt_k(G)`, Section 3).
//! Algorithm 4 runs the partial variant on a sketch; Algorithm 6 runs the
//! full variant offline on the stored residual graph `G_r`.

use super::engine::{lazy_greedy_until, GreedyTrace};
use crate::ids::SetId;
use crate::view::CoverageView;

/// Result of a partial-cover greedy run.
#[derive(Clone, Debug)]
pub struct PartialCoverResult {
    /// The selected family with per-step marginals.
    pub trace: GreedyTrace,
    /// Elements the family had to cover (`⌈(1−λ)·m⌉`).
    pub required: usize,
    /// Whether the requirement was met (greedy can fall short only if even
    /// the full family covers fewer than `required` elements).
    pub satisfied: bool,
}

impl PartialCoverResult {
    /// Selected sets in selection order.
    pub fn family(&self) -> Vec<SetId> {
        self.trace.family()
    }
}

/// Greedy set cover: select sets until everything is covered.
///
/// If the family cannot cover all of `E` (possible for residual graphs with
/// isolated elements removed upstream, never for well-formed instances) the
/// trace simply ends when gains vanish.
pub fn greedy_set_cover<V: CoverageView + ?Sized>(inst: &V) -> GreedyTrace {
    let m = inst.num_elements();
    lazy_greedy_until(inst, |_, covered| covered >= m)
}

/// Greedy with *both* a coverage target and a set budget: select sets
/// until `required` elements are covered or `max_sets` sets were chosen.
///
/// This is the exact loop Algorithm 4 runs on the sketch: greedy for
/// `k'·ln(1/λ')` rounds, then check whether the coverage target was met.
pub fn greedy_budgeted_cover<V: CoverageView + ?Sized>(
    inst: &V,
    required: usize,
    max_sets: usize,
) -> PartialCoverResult {
    let trace = lazy_greedy_until(inst, |picked, covered| {
        picked >= max_sets || covered >= required
    });
    let satisfied = trace.coverage() >= required;
    PartialCoverResult {
        trace,
        required,
        satisfied,
    }
}

/// Greedy partial cover: select sets until at least `1 − λ` of the elements
/// are covered.
pub fn greedy_partial_cover<V: CoverageView + ?Sized>(inst: &V, lambda: f64) -> PartialCoverResult {
    assert!((0.0..=1.0).contains(&lambda), "λ must lie in [0,1]");
    let m = inst.num_elements();
    let required = ((1.0 - lambda) * m as f64).ceil() as usize;
    let trace = lazy_greedy_until(inst, |_, covered| covered >= required);
    let satisfied = trace.coverage() >= required;
    PartialCoverResult {
        trace,
        required,
        satisfied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::CoverageInstance;
    use crate::offline::exact_set_cover;

    fn blocks() -> CoverageInstance {
        // Three disjoint blocks of 4 elements each, plus small noise sets.
        let mut b = CoverageInstance::builder(6);
        b.add_set(SetId(0), (0u64..4).map(Into::into));
        b.add_set(SetId(1), (4u64..8).map(Into::into));
        b.add_set(SetId(2), (8u64..12).map(Into::into));
        b.add_set(SetId(3), [0u64.into(), 4u64.into()]);
        b.add_set(SetId(4), [8u64.into()]);
        b.add_set(SetId(5), [1u64.into(), 9u64.into()]);
        b.build()
    }

    #[test]
    fn set_cover_covers_everything() {
        let g = blocks();
        let t = greedy_set_cover(&g);
        assert!(g.is_cover(&t.family()));
        assert_eq!(t.len(), 3, "three blocks suffice and greedy finds them");
    }

    #[test]
    fn greedy_matches_exact_on_blocks() {
        let g = blocks();
        let greedy = greedy_set_cover(&g).len();
        let exact = exact_set_cover(&g).len();
        assert_eq!(exact, 3);
        assert!(greedy >= exact);
        // ln(m) bound: greedy ≤ exact * ln(12) + 1.
        assert!((greedy as f64) <= exact as f64 * (12f64).ln() + 1.0);
    }

    #[test]
    fn partial_cover_stops_early() {
        let g = blocks();
        // 50% of 12 elements = 6; one block (4) is not enough, two (8) are.
        let r = greedy_partial_cover(&g, 0.5);
        assert!(r.satisfied);
        assert_eq!(r.required, 6);
        assert_eq!(r.trace.len(), 2);
        assert!(g.coverage(&r.family()) >= 6);
    }

    #[test]
    fn partial_cover_lambda_zero_is_full_cover() {
        let g = blocks();
        let r = greedy_partial_cover(&g, 0.0);
        assert!(r.satisfied);
        assert!(g.is_cover(&r.family()));
    }

    #[test]
    fn partial_cover_lambda_one_is_empty() {
        let g = blocks();
        let r = greedy_partial_cover(&g, 1.0);
        assert!(r.satisfied);
        assert!(r.trace.is_empty());
    }

    #[test]
    fn uncoverable_residual_terminates() {
        // Build an instance, then restrict to a single element present in
        // no set: impossible here because instances only contain incident
        // elements — instead check an empty-set family.
        let g = CoverageInstance::builder(3).build();
        let t = greedy_set_cover(&g);
        assert!(t.is_empty());
    }
}
