//! Exact solvers (branch and bound) for ground truth on small instances.
//!
//! Experiments report *measured* approximation ratios, which requires the
//! true optimum. Both problems are NP-hard, so these solvers are only
//! invoked on instances small enough for exhaustive reasoning (tests use
//! `n ≤ ~25`); planted workloads with known optima cover the large-scale
//! experiments instead.

use crate::bitset::BitSet;
use crate::ids::SetId;
use crate::instance::CoverageInstance;

/// Exact k-cover via branch and bound over set-inclusion decisions.
///
/// Returns `(optimal_family, optimal_coverage)`. Sets are pre-sorted by
/// decreasing size; the bound at a node adds the sizes of the next
/// `k - chosen` largest remaining sets (a valid upper bound because
/// marginal gains never exceed set sizes).
pub fn exact_k_cover(inst: &CoverageInstance, k: usize) -> (Vec<SetId>, usize) {
    let n = inst.num_sets();
    let k = k.min(n);
    if k == 0 || n == 0 {
        return (Vec::new(), 0);
    }
    let bitsets = inst.set_bitsets();
    // Order sets by decreasing size for tighter bounds.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(bitsets[s].count()));
    let sizes: Vec<usize> = order.iter().map(|&s| bitsets[s].count()).collect();
    // suffix_best[i][j] = sum of j largest set sizes among order[i..]
    // Since sizes are sorted descending, that's just the next j sizes.
    let mut state = Search {
        inst,
        bitsets: &bitsets,
        order: &order,
        sizes: &sizes,
        k,
        best_cov: 0,
        best_family: Vec::new(),
        chosen: Vec::new(),
    };
    let m = inst.num_elements();
    let covered = BitSet::new(m);
    state.recurse(0, &covered, 0);
    let mut family: Vec<SetId> = state.best_family;
    family.sort();
    (family, state.best_cov)
}

struct Search<'a> {
    inst: &'a CoverageInstance,
    bitsets: &'a [BitSet],
    order: &'a [usize],
    sizes: &'a [usize],
    k: usize,
    best_cov: usize,
    best_family: Vec<SetId>,
    chosen: Vec<SetId>,
}

impl Search<'_> {
    fn recurse(&mut self, idx: usize, covered: &BitSet, cov: usize) {
        if cov > self.best_cov {
            self.best_cov = cov;
            self.best_family = self.chosen.clone();
        }
        if self.chosen.len() == self.k || idx == self.order.len() {
            return;
        }
        // Upper bound: current coverage + sizes of the next (k - chosen)
        // sets in the (descending) size order.
        let remaining = self.k - self.chosen.len();
        let bound: usize = cov
            + self.sizes[idx..]
                .iter()
                .take(remaining)
                .sum::<usize>()
                .min(self.inst.num_elements() - cov);
        if bound <= self.best_cov {
            return;
        }
        let s = self.order[idx];
        // Branch 1: include set s (only if it adds something).
        let gain = covered.gain_count(&self.bitsets[s]);
        if gain > 0 {
            let mut with = covered.clone();
            with.union_with(&self.bitsets[s]);
            self.chosen.push(SetId(s as u32));
            self.recurse(idx + 1, &with, cov + gain);
            self.chosen.pop();
        }
        // Branch 2: exclude set s.
        self.recurse(idx + 1, covered, cov);
    }
}

/// Exact minimum set cover: smallest family covering every element.
///
/// Implemented by binary-searching the cover size via [`exact_k_cover`]
/// feasibility (a family of size `k` covering all `m` elements exists iff
/// `exact_k_cover(k) = m`). Panics if the instance is not coverable, which
/// cannot happen for instances built from their own edges.
pub fn exact_set_cover(inst: &CoverageInstance) -> Vec<SetId> {
    let m = inst.num_elements();
    if m == 0 {
        return Vec::new();
    }
    let n = inst.num_sets();
    // Greedy gives an upper bound to seed the search.
    let upper = super::greedy_set_cover(inst).len();
    assert!(
        inst.coverage(&inst.set_ids().collect::<Vec<_>>()) == m,
        "instance is not coverable by its own family"
    );
    let mut lo = 1usize;
    let mut hi = upper.max(1).min(n);
    let mut best: Option<Vec<SetId>> = None;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        let (family, cov) = exact_k_cover(inst, mid);
        if cov == m {
            best = Some(family);
            if mid == 1 {
                break;
            }
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }
    best.expect("coverable instance must admit a cover")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Edge;

    #[test]
    fn exact_beats_or_ties_greedy() {
        // Classic greedy-trap: greedy takes the big middle set, optimum is
        // the two halves.
        // Elements 0..8. S0 = {0..6} (size 6, the trap),
        // S1 = {0,1,2,6}, S2 = {3,4,5,7}.
        let mut b = CoverageInstance::builder(3);
        b.add_set(SetId(0), (0u64..6).map(Into::into));
        b.add_set(SetId(1), [0u64, 1, 2, 6].map(Into::into));
        b.add_set(SetId(2), [3u64, 4, 5, 7].map(Into::into));
        let g = b.build();
        let (fam, cov) = exact_k_cover(&g, 2);
        assert_eq!(cov, 8);
        assert_eq!(fam, vec![SetId(1), SetId(2)]);
        let greedy = crate::offline::greedy_k_cover(&g, 2).coverage();
        assert!(greedy < cov, "greedy is trapped: {greedy} vs {cov}");
    }

    #[test]
    fn exact_k_cover_edge_cases() {
        let g = CoverageInstance::from_edges(2, [Edge::new(0u32, 0u64), Edge::new(1u32, 0u64)]);
        assert_eq!(exact_k_cover(&g, 0), (vec![], 0));
        let (_, c1) = exact_k_cover(&g, 1);
        assert_eq!(c1, 1);
        let (_, c5) = exact_k_cover(&g, 5);
        assert_eq!(c5, 1);
    }

    #[test]
    fn exact_set_cover_finds_minimum() {
        // Optimal cover is {S1, S2} (size 2); greedy would need 3 sets.
        let mut b = CoverageInstance::builder(3);
        b.add_set(SetId(0), (0u64..6).map(Into::into));
        b.add_set(SetId(1), [0u64, 1, 2, 6].map(Into::into));
        b.add_set(SetId(2), [3u64, 4, 5, 7].map(Into::into));
        let g = b.build();
        let cover = exact_set_cover(&g);
        assert_eq!(cover.len(), 2);
        assert!(g.is_cover(&cover));
    }

    #[test]
    fn exact_set_cover_single_set() {
        let g = CoverageInstance::from_edges(1, (0u64..5).map(|e| Edge::new(0u32, e)));
        let cover = exact_set_cover(&g);
        assert_eq!(cover, vec![SetId(0)]);
    }

    #[test]
    fn exhaustive_cross_check_small() {
        // Brute-force all families of size k and compare with the solver.
        let mut b = CoverageInstance::builder(6);
        b.add_set(SetId(0), [0u64, 1, 2].map(Into::into));
        b.add_set(SetId(1), [2u64, 3].map(Into::into));
        b.add_set(SetId(2), [4u64].map(Into::into));
        b.add_set(SetId(3), [0u64, 3, 4].map(Into::into));
        b.add_set(SetId(4), [5u64, 6].map(Into::into));
        b.add_set(SetId(5), [1u64, 6].map(Into::into));
        let g = b.build();
        for k in 1..=4usize {
            let mut brute = 0usize;
            let n = g.num_sets();
            // Iterate over all subsets of size ≤ k via bitmasks.
            for mask in 0u32..(1 << n) {
                if (mask.count_ones() as usize) > k {
                    continue;
                }
                let fam: Vec<SetId> = (0..n as u32)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(SetId)
                    .collect();
                brute = brute.max(g.coverage(&fam));
            }
            let (_, solver) = exact_k_cover(&g, k);
            assert_eq!(solver, brute, "k={k}");
        }
    }
}
