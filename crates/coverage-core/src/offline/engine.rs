//! Shared lazy-greedy engine.
//!
//! Every greedy variant in this crate (k-cover, set cover, partial cover)
//! is one stopping rule away from the same loop: repeatedly select the set
//! with the largest marginal coverage gain. We implement the loop once,
//! with Minoux's lazy evaluation: cached gains only ever shrink
//! (submodularity), so a heap entry that is still maximal after
//! recomputation is the true argmax and stale entries are re-pushed instead
//! of rescanned.
//!
//! Tie-breaking is deterministic — among equal gains the smallest set id
//! wins — so the lazy engine is *output-identical* to a naive rescanning
//! greedy, which the tests exploit.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bitset::BitSet;
use crate::ids::SetId;
use crate::view::CoverageView;

/// One selection made by a greedy run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GreedyStep {
    /// The set chosen in this round.
    pub set: SetId,
    /// Its marginal gain (newly covered elements) at selection time.
    pub gain: usize,
    /// Total elements covered after this selection.
    pub covered_after: usize,
}

/// Full record of a greedy run: the chosen family plus per-step marginals.
#[derive(Clone, Debug, Default)]
pub struct GreedyTrace {
    /// Selections in order.
    pub steps: Vec<GreedyStep>,
}

impl GreedyTrace {
    /// The selected family, in selection order.
    pub fn family(&self) -> Vec<SetId> {
        self.steps.iter().map(|s| s.set).collect()
    }

    /// Number of elements covered by the family.
    pub fn coverage(&self) -> usize {
        self.steps.last().map_or(0, |s| s.covered_after)
    }

    /// Number of sets selected.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Run lazy greedy until `stop(selected_count, covered)` says to halt or no
/// set has positive marginal gain.
///
/// `stop` is consulted *before* each selection; returning `true` ends the
/// run. Zero-gain sets are never selected (they cannot change coverage).
pub(crate) fn lazy_greedy_until<V: CoverageView + ?Sized>(
    inst: &V,
    mut stop: impl FnMut(usize, usize) -> bool,
) -> GreedyTrace {
    let m = inst.num_elements();
    let mut covered_mark = BitSet::new(m);
    let mut covered = 0usize;
    let mut trace = GreedyTrace::default();

    // Heap of (cached_gain, Reverse(set_id)): max gain first, then min id.
    let mut heap: BinaryHeap<(usize, Reverse<u32>)> = (0..inst.num_sets() as u32)
        .map(|s| (inst.set_size(SetId(s)), Reverse(s)))
        .collect();

    while !stop(trace.steps.len(), covered) {
        // Lazy selection: pop, recompute, accept if still maximal.
        let chosen = loop {
            let Some((cached, Reverse(sid))) = heap.pop() else {
                break None;
            };
            if cached == 0 {
                // All remaining gains are 0 (heap is max-first).
                break None;
            }
            let set = SetId(sid);
            let fresh = fresh_gain(inst, &covered_mark, set);
            debug_assert!(fresh <= cached, "gains must be monotone non-increasing");
            if fresh == cached {
                break Some((set, fresh));
            }
            // Peek: if the recomputed gain still beats (or ties with a
            // smaller id than) the next candidate, accept without re-push.
            match heap.peek() {
                Some(&(next_g, Reverse(next_id)))
                    if fresh < next_g || (fresh == next_g && sid > next_id) =>
                {
                    if fresh > 0 {
                        heap.push((fresh, Reverse(sid)));
                    }
                }
                _ => {
                    if fresh == 0 {
                        break None;
                    }
                    break Some((set, fresh));
                }
            }
        };

        let Some((set, gain)) = chosen else { break };
        covered_mark.insert_indices(inst.dense_set(set));
        covered += gain;
        trace.steps.push(GreedyStep {
            set,
            gain,
            covered_after: covered,
        });
    }
    trace
}

/// Marginal gain of `set` against the current covered mark.
#[inline]
fn fresh_gain<V: CoverageView + ?Sized>(inst: &V, covered: &BitSet, set: SetId) -> usize {
    inst.dense_set(set)
        .iter()
        .filter(|&&d| !covered.contains(d as usize))
        .count()
}

/// Naive greedy (full rescan each round) — reference implementation used by
/// tests to validate the lazy engine, and by benches to quantify the
/// speedup of lazy evaluation.
pub(crate) fn naive_greedy_until<V: CoverageView + ?Sized>(
    inst: &V,
    mut stop: impl FnMut(usize, usize) -> bool,
) -> GreedyTrace {
    let m = inst.num_elements();
    let mut covered_mark = BitSet::new(m);
    let mut covered = 0usize;
    let mut trace = GreedyTrace::default();
    let mut remaining: Vec<bool> = vec![true; inst.num_sets()];

    while !stop(trace.steps.len(), covered) {
        let mut best: Option<(usize, u32)> = None;
        for s in 0..inst.num_sets() as u32 {
            if !remaining[s as usize] {
                continue;
            }
            let g = fresh_gain(inst, &covered_mark, SetId(s));
            let better = match best {
                None => g > 0,
                Some((bg, bs)) => g > bg || (g == bg && s < bs && g > 0),
            };
            if better {
                best = Some((g, s));
            }
        }
        let Some((gain, sid)) = best else { break };
        let set = SetId(sid);
        remaining[sid as usize] = false;
        covered_mark.insert_indices(inst.dense_set(set));
        covered += gain;
        trace.steps.push(GreedyStep {
            set,
            gain,
            covered_after: covered,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::CoverageInstance;

    fn chain_instance() -> CoverageInstance {
        // S0={0,1,2,3}, S1={3,4,5}, S2={5,6}, S3={6}
        let mut b = CoverageInstance::builder(4);
        b.add_set(SetId(0), (0u64..4).map(Into::into));
        b.add_set(SetId(1), (3u64..6).map(Into::into));
        b.add_set(SetId(2), (5u64..7).map(Into::into));
        b.add_set(SetId(3), [6u64.into()]);
        b.build()
    }

    #[test]
    fn lazy_matches_naive_on_chain() {
        let g = chain_instance();
        for k in 0..=4 {
            let lazy = lazy_greedy_until(&g, |picked, _| picked >= k);
            let naive = naive_greedy_until(&g, |picked, _| picked >= k);
            assert_eq!(lazy.family(), naive.family(), "k={k}");
            assert_eq!(lazy.coverage(), naive.coverage(), "k={k}");
        }
    }

    #[test]
    fn greedy_chain_order() {
        let g = chain_instance();
        let t = lazy_greedy_until(&g, |picked, _| picked >= 3);
        // Round 1: S0 (4). Round 2: S1 gains {4,5}=2. Round 3: S2 gains {6}=1.
        assert_eq!(t.family(), vec![SetId(0), SetId(1), SetId(2)]);
        assert_eq!(
            t.steps.iter().map(|s| s.gain).collect::<Vec<_>>(),
            vec![4, 2, 1]
        );
        assert_eq!(t.coverage(), 7);
    }

    #[test]
    fn stops_on_zero_gain() {
        let g = chain_instance();
        // Ask for 10 sets; only 3 have positive marginal gain along the
        // greedy path (S3 ⊂ S2's residual coverage).
        let t = lazy_greedy_until(&g, |picked, _| picked >= 10);
        assert_eq!(t.len(), 3);
        assert_eq!(t.coverage(), 7);
    }

    #[test]
    fn stop_by_coverage_threshold() {
        let g = chain_instance();
        let t = lazy_greedy_until(&g, |_, covered| covered >= 5);
        assert!(t.coverage() >= 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_instance() {
        let g = CoverageInstance::builder(0).build();
        let t = lazy_greedy_until(&g, |picked, _| picked >= 3);
        assert!(t.is_empty());
    }

    #[test]
    fn ties_break_to_smaller_id() {
        // S0 and S1 both have 2 fresh elements; S0 must be chosen first.
        let mut b = CoverageInstance::builder(2);
        b.add_set(SetId(0), [0u64.into(), 1u64.into()]);
        b.add_set(SetId(1), [2u64.into(), 3u64.into()]);
        let g = b.build();
        let t = lazy_greedy_until(&g, |picked, _| picked >= 2);
        assert_eq!(t.family(), vec![SetId(0), SetId(1)]);
    }
}
