//! Thread-parallel greedy for k-cover.
//!
//! The greedy selection loop is inherently sequential across *rounds*
//! (each choice changes the marginals), but within a round the `n` gain
//! evaluations are independent. This module parallelizes the per-round
//! scan with `crossbeam` scoped threads: the set range is chunked, each
//! worker finds its chunk's best `(gain, id)` against the shared covered
//! bitset (read-only during the scan), and a deterministic reduction
//! (max gain, ties to the smallest id) picks the winner.
//!
//! The result is **output-identical** to the sequential naive greedy —
//! the tests assert this for every thread count — so the parallel engine
//! can substitute for the sequential one anywhere, including inside the
//! streaming algorithms when sketches are large. `bench_greedy`
//! quantifies the speedup.

use crossbeam::thread;

use crate::bitset::BitSet;
use crate::ids::SetId;
use crate::instance::CoverageInstance;

use super::engine::{GreedyStep, GreedyTrace};

/// Parallel greedy k-cover over `threads` workers.
///
/// `threads = 1` degenerates to the sequential scan (no threads spawned).
/// Panics if `threads == 0`.
pub fn parallel_greedy_k_cover(inst: &CoverageInstance, k: usize, threads: usize) -> GreedyTrace {
    assert!(threads > 0, "need at least one worker thread");
    let n = inst.num_sets();
    let m = inst.num_elements();
    let mut covered_mark = BitSet::new(m);
    let mut covered = 0usize;
    let mut remaining: Vec<bool> = vec![true; n];
    let mut trace = GreedyTrace::default();

    while trace.steps.len() < k {
        let best = if threads == 1 || n < 2 * threads {
            scan_chunk(inst, &covered_mark, &remaining, 0, n)
        } else {
            parallel_scan(inst, &covered_mark, &remaining, threads)
        };
        let Some((gain, sid)) = best else { break };
        if gain == 0 {
            break;
        }
        let set = SetId(sid);
        remaining[sid as usize] = false;
        for &d in inst.dense_set(set) {
            covered_mark.insert(d as usize);
        }
        covered += gain;
        trace.steps.push(GreedyStep {
            set,
            gain,
            covered_after: covered,
        });
    }
    trace
}

/// Best `(gain, set_id)` in `[lo, hi)`, ties to the smallest id. Returns
/// `None` when every candidate has zero gain (or the range is empty).
fn scan_chunk(
    inst: &CoverageInstance,
    covered: &BitSet,
    remaining: &[bool],
    lo: usize,
    hi: usize,
) -> Option<(usize, u32)> {
    let mut best: Option<(usize, u32)> = None;
    for (s, &alive) in remaining.iter().enumerate().take(hi).skip(lo) {
        if !alive {
            continue;
        }
        let g = inst
            .dense_set(SetId(s as u32))
            .iter()
            .filter(|&&d| !covered.contains(d as usize))
            .count();
        if g == 0 {
            continue;
        }
        let better = match best {
            None => true,
            Some((bg, _)) => g > bg,
        };
        if better {
            best = Some((g, s as u32));
        }
    }
    best
}

fn parallel_scan(
    inst: &CoverageInstance,
    covered: &BitSet,
    remaining: &[bool],
    threads: usize,
) -> Option<(usize, u32)> {
    let n = inst.num_sets();
    let chunk = n.div_ceil(threads);
    let locals: Vec<Option<(usize, u32)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move |_| {
                    if lo >= hi {
                        None
                    } else {
                        scan_chunk(inst, covered, remaining, lo, hi)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");
    // Deterministic reduction: max gain, then smallest id. Chunks are in
    // id order, so the first chunk achieving the max gain holds the
    // smallest qualifying id.
    let mut best: Option<(usize, u32)> = None;
    for cand in locals.into_iter().flatten() {
        let better = match best {
            None => true,
            Some((bg, bs)) => cand.0 > bg || (cand.0 == bg && cand.1 < bs),
        };
        if better {
            best = Some(cand);
        }
    }
    best
}

/// All marginal gains of `family ∪ {s}` over `family`, computed in
/// parallel — used by experiment harnesses that inspect full marginal
/// profiles (e.g. the oracle-hardness comparison).
pub fn parallel_marginals(inst: &CoverageInstance, family: &[SetId], threads: usize) -> Vec<usize> {
    assert!(threads > 0, "need at least one worker thread");
    let covered = inst.covered_bitset(family);
    let n = inst.num_sets();
    if threads == 1 || n < 2 * threads {
        return (0..n as u32)
            .map(|s| {
                inst.dense_set(SetId(s))
                    .iter()
                    .filter(|&&d| !covered.contains(d as usize))
                    .count()
            })
            .collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out = vec![0usize; n];
    thread::scope(|scope| {
        for (t, slice) in out.chunks_mut(chunk).enumerate() {
            let lo = t * chunk;
            let covered = &covered;
            scope.spawn(move |_| {
                for (i, o) in slice.iter_mut().enumerate() {
                    let s = (lo + i) as u32;
                    *o = inst
                        .dense_set(SetId(s))
                        .iter()
                        .filter(|&&d| !covered.contains(d as usize))
                        .count();
                }
            });
        }
    })
    .expect("crossbeam scope");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Edge;
    use crate::offline::greedy_k_cover;

    fn pseudo_random_instance(n: usize, m: u64, avg_deg: u64, seed: u64) -> CoverageInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        let mut b = CoverageInstance::builder(n);
        for s in 0..n as u32 {
            let deg = 1 + next() % (2 * avg_deg);
            for _ in 0..deg {
                b.add_edge(Edge::new(s, next() % m));
            }
        }
        b.build()
    }

    #[test]
    fn identical_to_sequential_for_all_thread_counts() {
        for seed in 1..=5u64 {
            let g = pseudo_random_instance(40, 120, 8, seed);
            let reference = greedy_k_cover(&g, 8);
            for threads in [1usize, 2, 3, 4, 7] {
                let par = parallel_greedy_k_cover(&g, 8, threads);
                assert_eq!(
                    par.family(),
                    reference.family(),
                    "seed={seed} threads={threads}"
                );
                assert_eq!(par.coverage(), reference.coverage());
            }
        }
    }

    #[test]
    fn small_instance_fewer_sets_than_threads() {
        let g = pseudo_random_instance(3, 10, 2, 1);
        let par = parallel_greedy_k_cover(&g, 2, 16);
        let seq = greedy_k_cover(&g, 2);
        assert_eq!(par.family(), seq.family());
    }

    #[test]
    fn stops_at_zero_gain() {
        // One set covers everything; further picks would add nothing.
        let mut b = CoverageInstance::builder(3);
        b.add_set(SetId(0), (0u64..10).map(Into::into));
        b.add_set(SetId(1), (0u64..5).map(Into::into));
        b.add_set(SetId(2), (3u64..8).map(Into::into));
        let g = b.build();
        let t = parallel_greedy_k_cover(&g, 3, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.family(), vec![SetId(0)]);
    }

    #[test]
    fn marginals_match_direct_computation() {
        let g = pseudo_random_instance(25, 60, 6, 3);
        let family = vec![SetId(1), SetId(4)];
        for threads in [1usize, 3, 8] {
            let par = parallel_marginals(&g, &family, threads);
            for s in 0..g.num_sets() as u32 {
                let direct =
                    g.coverage(&[family.clone(), vec![SetId(s)]].concat()) - g.coverage(&family);
                assert_eq!(par[s as usize], direct, "set {s} threads {threads}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let g = pseudo_random_instance(4, 10, 2, 1);
        parallel_greedy_k_cover(&g, 1, 0);
    }

    #[test]
    fn empty_instance_is_fine() {
        let g = CoverageInstance::builder(0).build();
        let t = parallel_greedy_k_cover(&g, 3, 4);
        assert!(t.is_empty());
    }
}
