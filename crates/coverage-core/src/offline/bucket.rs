//! Exact decremental greedy on a bucket priority queue.
//!
//! The lazy (Minoux) engine of `engine.rs` re-derives marginal gains on
//! demand: every pop re-scans the popped set's adjacency against the
//! covered bitset, so a run costs `O(pops · |S|)` bit probes on top of
//! the heap churn. This engine inverts the bookkeeping: it maintains
//! every set's gain **exactly** at all times and pays for updates only
//! when coverage actually changes.
//!
//! * `gains[s]` starts at `|S_s|` and is decremented once per
//!   (set, newly-covered-element) incidence, found through an
//!   element→sets inverted index (a CSR transpose built by counting
//!   sort). Each membership edge is touched at most once over the whole
//!   run, because an element is newly covered at most once.
//! * The priority queue is an array of buckets indexed by gain — gains
//!   are bounded by the maximum set size, so `O(max |S|)` buckets
//!   suffice and "decrease-key" is a push into the next bucket down.
//!   Superseded entries are recognized lazily (`gains[s]` disagrees
//!   with the bucket's level) and discarded on pop.
//! * **Tie-breaking is identical to the lazy and naive engines**: among
//!   maximal gains the smallest set id wins. Gains only ever decrease
//!   and the max gain is monotone non-increasing, so a bucket can no
//!   longer *receive* entries once the cursor reaches it; sorting it by
//!   descending id at that moment makes every later `pop()` from its
//!   tail yield the smallest live id. The engines are therefore
//!   *output-identical*, step for step — the trace-equality contract
//!   the property tests pin down.
//!
//! Total work is `O(Σ|S| + n + max|S|)` plus the one-time activation
//! sorts (`O(b log b)` per bucket, `Σb ≤ n + Σ|S|`) — independent of
//! how many gain re-evaluations the lazy engine would have paid.

use crate::bitset::BitSet;
use crate::ids::SetId;
use crate::view::CoverageView;

use super::engine::{GreedyStep, GreedyTrace};
use super::set_cover::PartialCoverResult;

/// Run exact decremental greedy until `stop(selected_count, covered)`
/// says to halt or no set has positive gain. Stopping-rule semantics
/// match `lazy_greedy_until` exactly: `stop` is consulted *before* each
/// selection and zero-gain sets are never selected.
pub(crate) fn bucket_greedy_until<V: CoverageView + ?Sized>(
    view: &V,
    mut stop: impl FnMut(usize, usize) -> bool,
) -> GreedyTrace {
    let n = view.num_sets();
    let m = view.num_elements();
    let mut trace = GreedyTrace::default();
    if n == 0 {
        return trace;
    }

    // Exact per-set gains start at the set sizes (nothing covered yet);
    // element degrees are tallied in the same pass over the adjacency,
    // so setup walks the edge arena exactly twice (here + the transpose
    // fill below).
    let mut gains: Vec<u32> = Vec::with_capacity(n);
    let mut degrees: Vec<u32> = vec![0; m];
    for s in 0..n as u32 {
        let slice = view.dense_set(SetId(s));
        gains.push(slice.len() as u32);
        for &d in slice {
            degrees[d as usize] += 1;
        }
    }
    let max_gain = gains.iter().copied().max().unwrap_or(0) as usize;

    // Element → sets inverted index (CSR transpose), by counting sort.
    let mut inv_off: Vec<u32> = Vec::with_capacity(m + 1);
    inv_off.push(0);
    let mut acc = 0u32;
    for &d in &degrees {
        acc += d;
        inv_off.push(acc);
    }
    let mut inv_sets: Vec<u32> = vec![0; acc as usize];
    let mut cursor: Vec<u32> = inv_off[..m].to_vec();
    for s in 0..n as u32 {
        for &d in view.dense_set(SetId(s)) {
            let c = &mut cursor[d as usize];
            inv_sets[*c as usize] = s;
            *c += 1;
        }
    }

    // Bucket queue: buckets[g] holds candidate sets whose gain was `g`
    // when pushed. Initial fill iterates ids ascending; activation sorts
    // keep that invariant for buckets that later receive pushes.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_gain + 1];
    for (s, &g) in gains.iter().enumerate() {
        if g > 0 {
            buckets[g as usize].push(s as u32);
        }
    }

    let mut covered = BitSet::new(m);
    let mut covered_count = 0usize;
    let mut cur = max_gain;
    // Levels ≥ `activated` are sorted and can only shrink; `cur` enters
    // a level exactly once (the max gain is monotone non-increasing).
    let mut activated = max_gain + 1;

    while !stop(trace.steps.len(), covered_count) {
        // Pop the smallest-id set whose exact gain equals the level.
        let chosen = loop {
            if cur == 0 {
                break None;
            }
            if activated > cur {
                // First visit: no future push can target this level, so
                // one descending-id sort makes tail pops min-id-first.
                buckets[cur].sort_unstable_by(|a, b| b.cmp(a));
                activated = cur;
            }
            match buckets[cur].pop() {
                None => cur -= 1,
                Some(s) => {
                    if gains[s as usize] as usize == cur {
                        break Some(s);
                    }
                    // Stale: the set was selected (gain forced to 0
                    // below) or its gain moved to a lower bucket. Drop
                    // the superseded entry.
                }
            }
        };
        let Some(sid) = chosen else { break };

        let set = SetId(sid);
        let gain = cur;
        // Retire the chosen set: gain 0 makes every one of its stale
        // bucket entries unpoppable and exempts it from decrements.
        gains[sid as usize] = 0;
        // Decrement-on-cover: every set sharing a newly covered element
        // loses exactly one unit of gain, moving one bucket down. A
        // zero gain means retired-or-exhausted — an uncovered member
        // implies gain ≥ 1, so live sets never underflow.
        for &d in view.dense_set(set) {
            if !covered.insert(d as usize) {
                continue;
            }
            covered_count += 1;
            let lo = inv_off[d as usize] as usize;
            let hi = inv_off[d as usize + 1] as usize;
            for &t in &inv_sets[lo..hi] {
                let t = t as usize;
                let g = gains[t];
                if g == 0 {
                    continue;
                }
                gains[t] = g - 1;
                if g > 1 {
                    buckets[g as usize - 1].push(t as u32);
                }
            }
        }
        trace.steps.push(GreedyStep {
            set,
            gain,
            covered_after: covered_count,
        });
    }
    trace
}

/// Greedy k-cover on the exact decremental bucket-queue engine.
/// Output-identical (full trace) to
/// [`lazy_greedy_k_cover`](super::lazy_greedy_k_cover) and
/// [`greedy_k_cover`](super::greedy_k_cover); total work `O(Σ|S|)`
/// instead of heap churn × per-element bitset probes.
pub fn bucket_greedy_k_cover<V: CoverageView + ?Sized>(view: &V, k: usize) -> GreedyTrace {
    bucket_greedy_until(view, |picked, _| picked >= k)
}

/// Greedy set cover on the bucket-queue engine. Output-identical to
/// [`greedy_set_cover`](super::greedy_set_cover).
pub fn bucket_greedy_set_cover<V: CoverageView + ?Sized>(view: &V) -> GreedyTrace {
    let m = view.num_elements();
    bucket_greedy_until(view, |_, covered| covered >= m)
}

/// Greedy with a coverage target and a set budget on the bucket-queue
/// engine — the Algorithm 4 inner loop. Output-identical to
/// [`greedy_budgeted_cover`](super::greedy_budgeted_cover).
pub fn bucket_greedy_budgeted_cover<V: CoverageView + ?Sized>(
    view: &V,
    required: usize,
    max_sets: usize,
) -> PartialCoverResult {
    let trace = bucket_greedy_until(view, |picked, covered| {
        picked >= max_sets || covered >= required
    });
    let satisfied = trace.coverage() >= required;
    PartialCoverResult {
        trace,
        required,
        satisfied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Edge;
    use crate::instance::CoverageInstance;
    use crate::offline::engine::{lazy_greedy_until, naive_greedy_until};
    use crate::offline::{greedy_budgeted_cover, greedy_set_cover, lazy_greedy_k_cover};
    use crate::view::CsrInstance;

    /// Deterministic pseudo-random instance without external crates.
    fn pseudo_random_instance(n: usize, m: u64, avg_deg: u64, seed: u64) -> CoverageInstance {
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        let mut b = CoverageInstance::builder(n);
        for s in 0..n as u32 {
            let deg = 1 + next() % (2 * avg_deg);
            for _ in 0..deg {
                b.add_edge(Edge::new(s, next() % m));
            }
        }
        b.build()
    }

    fn assert_traces_equal(a: &GreedyTrace, b: &GreedyTrace, ctx: &str) {
        assert_eq!(a.steps, b.steps, "{ctx}: full trace must coincide");
    }

    #[test]
    fn matches_lazy_and_naive_on_random_instances() {
        for seed in 1..=10u64 {
            let g = pseudo_random_instance(24, 60, 6, seed);
            let csr = CsrInstance::from_instance(&g);
            for k in [0usize, 1, 3, 7, 24] {
                let lazy = lazy_greedy_until(&g, |p, _| p >= k);
                let naive = naive_greedy_until(&g, |p, _| p >= k);
                let bucket = bucket_greedy_until(&g, |p, _| p >= k);
                let bucket_csr = bucket_greedy_until(&csr, |p, _| p >= k);
                assert_traces_equal(&lazy, &naive, &format!("seed={seed} k={k} lazy/naive"));
                assert_traces_equal(&bucket, &lazy, &format!("seed={seed} k={k} bucket/lazy"));
                assert_traces_equal(
                    &bucket_csr,
                    &lazy,
                    &format!("seed={seed} k={k} bucket-csr/lazy"),
                );
            }
        }
    }

    #[test]
    fn ties_break_to_smaller_id() {
        // S0 and S1 both gain 2, then S2 and S3 both gain 1.
        let mut b = CoverageInstance::builder(4);
        b.add_set(SetId(0), [0u64.into(), 1u64.into()]);
        b.add_set(SetId(1), [2u64.into(), 3u64.into()]);
        b.add_set(SetId(2), [4u64.into()]);
        b.add_set(SetId(3), [5u64.into()]);
        let g = b.build();
        let t = bucket_greedy_k_cover(&g, 4);
        assert_eq!(
            t.family(),
            vec![SetId(0), SetId(1), SetId(2), SetId(3)],
            "equal gains must resolve to ascending ids"
        );
    }

    #[test]
    fn stops_on_zero_gain_and_exhaustion() {
        // S1 ⊆ S0: after S0 nothing has positive gain.
        let mut b = CoverageInstance::builder(2);
        b.add_set(SetId(0), (0u64..4).map(Into::into));
        b.add_set(SetId(1), (1u64..3).map(Into::into));
        let g = b.build();
        let t = bucket_greedy_k_cover(&g, 5);
        assert_eq!(t.family(), vec![SetId(0)]);
        assert_eq!(t.coverage(), 4);
    }

    #[test]
    fn empty_and_edgeless_views() {
        let empty = CoverageInstance::builder(0).build();
        assert!(bucket_greedy_k_cover(&empty, 3).is_empty());
        let edgeless = CoverageInstance::builder(4).build();
        assert!(bucket_greedy_k_cover(&edgeless, 3).is_empty());
    }

    #[test]
    fn set_cover_and_budgeted_match_lazy_wrappers() {
        for seed in 1..=6u64 {
            let g = pseudo_random_instance(18, 40, 5, seed);
            assert_traces_equal(
                &bucket_greedy_set_cover(&g),
                &greedy_set_cover(&g),
                &format!("seed={seed} set-cover"),
            );
            for (required, max_sets) in [(10usize, 4usize), (30, 8), (40, 18)] {
                let a = bucket_greedy_budgeted_cover(&g, required, max_sets);
                let b = greedy_budgeted_cover(&g, required, max_sets);
                assert_traces_equal(
                    &a.trace,
                    &b.trace,
                    &format!("seed={seed} budgeted {required}/{max_sets}"),
                );
                assert_eq!(a.satisfied, b.satisfied);
                assert_eq!(a.required, b.required);
            }
        }
    }

    #[test]
    fn csr_relabeling_does_not_change_the_trace() {
        // Emit the same graph with a permuted dense-element labeling:
        // families and gains must be unaffected (greedy only sees set
        // identities and union cardinalities).
        let g = pseudo_random_instance(16, 50, 5, 9);
        let m = CoverageInstance::num_elements(&g);
        let relabel: Vec<u32> = (0..m as u32).map(|d| (m as u32 - 1) - d).collect();
        let elements: Vec<crate::ElementId> = (0..m).map(|d| g.element_id(relabel[d])).collect();
        let csr = CsrInstance::from_edge_fn(
            CoverageInstance::num_sets(&g),
            elements,
            |emit: &mut dyn FnMut(u32, u32)| {
                for s in g.set_ids() {
                    for &d in CoverageInstance::dense_set(&g, s) {
                        emit(s.0, relabel[d as usize]);
                    }
                }
            },
        );
        for k in [2usize, 5, 16] {
            let a = bucket_greedy_k_cover(&csr, k);
            let b = lazy_greedy_k_cover(&g, k);
            assert_traces_equal(&a, &b, &format!("k={k}"));
        }
    }
}
