//! Greedy maximum coverage (`k-cover`).
//!
//! The classical result of Nemhauser, Wolsey & Fisher (paper's `[40]`): the
//! greedy algorithm that repeatedly adds the set with the largest marginal
//! coverage is a `(1 − 1/e)`-approximation for k-cover. The paper's
//! Algorithm 3 runs exactly this procedure *on the sketch* `H≤n`, and
//! Theorem 2.7 transfers the guarantee back to the original input at a cost
//! of `12ε`.

use super::engine::{lazy_greedy_until, naive_greedy_until, GreedyTrace};
use crate::view::CoverageView;

/// Greedy k-cover with lazy (Minoux) evaluation. `O(E + n log n)`-ish in
/// practice; output-identical to [`greedy_k_cover`] and to
/// [`bucket_greedy_k_cover`](super::bucket_greedy_k_cover) (which the
/// hot query paths use — the lazy engine is retained as the executable
/// reference spec the bucket engine is property-tested against).
pub fn lazy_greedy_k_cover<V: CoverageView + ?Sized>(inst: &V, k: usize) -> GreedyTrace {
    lazy_greedy_until(inst, |picked, _| picked >= k)
}

/// Greedy k-cover with a full rescan per round (reference implementation,
/// `O(n·k)` gain evaluations).
pub fn greedy_k_cover<V: CoverageView + ?Sized>(inst: &V, k: usize) -> GreedyTrace {
    naive_greedy_until(inst, |picked, _| picked >= k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SetId;
    use crate::instance::CoverageInstance;
    use crate::offline::exact_k_cover;

    /// Deterministic pseudo-random instance without external crates.
    fn pseudo_random_instance(n: usize, m: u64, avg_deg: u64, seed: u64) -> CoverageInstance {
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        let mut b = CoverageInstance::builder(n);
        for s in 0..n as u32 {
            let deg = 1 + next() % (2 * avg_deg);
            for _ in 0..deg {
                b.add_edge(crate::ids::Edge::new(s, next() % m));
            }
        }
        b.build()
    }

    #[test]
    fn lazy_equals_naive_on_random_instances() {
        for seed in 1..=8u64 {
            let g = pseudo_random_instance(24, 60, 6, seed);
            for k in [1usize, 3, 7] {
                let a = lazy_greedy_k_cover(&g, k);
                let b = greedy_k_cover(&g, k);
                assert_eq!(a.family(), b.family(), "seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn greedy_respects_one_minus_one_over_e() {
        // Greedy coverage must be ≥ (1−1/e)·OPT; check against exact OPT.
        for seed in 1..=6u64 {
            let g = pseudo_random_instance(14, 40, 5, seed);
            for k in [2usize, 4] {
                let greedy = lazy_greedy_k_cover(&g, k).coverage();
                let (_, opt) = exact_k_cover(&g, k);
                assert!(
                    greedy as f64 >= (1.0 - 1.0 / std::f64::consts::E) * opt as f64 - 1e-9,
                    "seed={seed} k={k}: greedy={greedy} opt={opt}"
                );
                assert!(greedy <= opt);
            }
        }
    }

    #[test]
    fn greedy_on_disjoint_sets_is_optimal() {
        let mut b = CoverageInstance::builder(4);
        for s in 0..4u32 {
            let base = (s as u64) * 10;
            b.add_set(SetId(s), (base..base + (s as u64) + 1).map(Into::into));
        }
        let g = b.build();
        // Sizes 1,2,3,4 and disjoint → greedy picks S3,S2 for k=2, total 7.
        let t = lazy_greedy_k_cover(&g, 2);
        assert_eq!(t.family(), vec![SetId(3), SetId(2)]);
        assert_eq!(t.coverage(), 7);
        let (_, opt) = exact_k_cover(&g, 2);
        assert_eq!(opt, 7);
    }
}
