//! Swap-based local search for k-cover.
//!
//! The classical alternative to greedy: start from any family of `k` sets
//! and repeatedly apply the best improving *swap* (drop one chosen set,
//! add one unchosen set) until no swap improves coverage. A swap-stable
//! solution covers at least `OPT/2` (folklore; see e.g. Nemhauser, Wolsey
//! & Fisher's analysis of interchange heuristics, the paper's `[40]`).
//!
//! In the reproduction this serves two purposes:
//!
//! * an additional α-approximation algorithm to feed through the sketch —
//!   Theorem 2.7 is algorithm-agnostic ("*any* α-approximate solution on
//!   `H≤n` is an (α−12ε)-approximate solution on `G`"), so running a
//!   different offline solver on the sketch exercises the theorem beyond
//!   greedy;
//! * a quality ceiling between Saha–Getoor's swap streaming (which is a
//!   *single* left-to-right swap pass, factor 1/4) and greedy (1−1/e):
//!   the Table 1 experiment shows where full swap convergence lands.

use crate::bitset::BitSet;
use crate::ids::SetId;
use crate::instance::CoverageInstance;

/// Outcome of a local-search run.
#[derive(Clone, Debug)]
pub struct LocalSearchResult {
    /// The final family (size ≤ k), in ascending set-id order.
    pub family: Vec<SetId>,
    /// Elements covered by the final family.
    pub coverage: usize,
    /// Number of improving swaps applied.
    pub swaps: usize,
    /// True if the run stopped because no improving swap exists (a genuine
    /// local optimum) rather than by the iteration cap.
    pub converged: bool,
}

/// Configuration for [`local_search_k_cover`].
#[derive(Clone, Copy, Debug)]
pub struct LocalSearchConfig {
    /// Maximum number of swaps before giving up (safety valve; the default
    /// is practically never hit because each swap raises coverage by ≥ 1
    /// and coverage ≤ m).
    pub max_swaps: usize,
    /// Minimum coverage improvement a swap must achieve to be applied.
    /// `1` (the default) yields an exact local optimum with the `OPT/2`
    /// guarantee; larger values trade quality for convergence speed.
    pub min_gain: usize,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_swaps: usize::MAX,
            min_gain: 1,
        }
    }
}

/// Swap local search for k-cover, seeded with the `k` largest sets.
///
/// Each iteration applies the *best* improving swap (steepest ascent) with
/// deterministic tie-breaking (smallest outgoing id, then smallest incoming
/// id), so runs are reproducible. A pruning bound — a swap's gain is at
/// most `fresh(b) − unique(a) + min(unique(a), |b|)` — skips most pairs
/// without evaluating the exact intersection.
pub fn local_search_k_cover(inst: &CoverageInstance, k: usize) -> LocalSearchResult {
    local_search_k_cover_with(inst, k, &LocalSearchConfig::default())
}

/// [`local_search_k_cover`] with explicit configuration.
pub fn local_search_k_cover_with(
    inst: &CoverageInstance,
    k: usize,
    cfg: &LocalSearchConfig,
) -> LocalSearchResult {
    let n = inst.num_sets();
    let m = inst.num_elements();
    let k = k.min(n);

    // Seed: the k largest sets (ties to smaller id).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&s| (std::cmp::Reverse(inst.set_size(SetId(s))), s));
    let mut in_solution = vec![false; n];
    for &s in order.iter().take(k) {
        in_solution[s as usize] = true;
    }

    // cnt[d] = how many chosen sets contain dense element d.
    let mut cnt = vec![0u32; m];
    for s in 0..n as u32 {
        if in_solution[s as usize] {
            for &d in inst.dense_set(SetId(s)) {
                cnt[d as usize] += 1;
            }
        }
    }
    let mut coverage = cnt.iter().filter(|&&c| c > 0).count();

    let mut swaps = 0usize;
    let mut converged = false;
    while swaps < cfg.max_swaps {
        // Per-iteration profiles:
        //   fresh[b]  = |{d ∈ b : cnt[d] = 0}|    (gain of adding b alone)
        //   unique[a] = |{d ∈ a : cnt[d] = 1}|    (loss of dropping a alone)
        // Exact swap delta: Δ(a→b) = fresh(b) − |{d ∈ a\b : cnt[d] = 1}|,
        // so fresh(b) − unique(a) ≤ Δ ≤ fresh(b) − unique(a) + unique(a∩b).
        let mut fresh = vec![0usize; n];
        let mut unique = vec![0usize; n];
        for s in 0..n {
            let sid = SetId(s as u32);
            if in_solution[s] {
                unique[s] = inst
                    .dense_set(sid)
                    .iter()
                    .filter(|&&d| cnt[d as usize] == 1)
                    .count();
            } else {
                fresh[s] = inst
                    .dense_set(sid)
                    .iter()
                    .filter(|&&d| cnt[d as usize] == 0)
                    .count();
            }
        }

        // Candidate outgoing sets sorted by unique loss ascending; incoming
        // by fresh gain descending. Scan with the upper bound as a prune.
        let mut outs: Vec<u32> = (0..n as u32).filter(|&s| in_solution[s as usize]).collect();
        outs.sort_by_key(|&s| (unique[s as usize], s));
        let mut ins: Vec<u32> = (0..n as u32)
            .filter(|&s| !in_solution[s as usize])
            .collect();
        ins.sort_by_key(|&s| (std::cmp::Reverse(fresh[s as usize]), s));

        let mut best: Option<(usize, u32, u32)> = None; // (delta, out, in)
        for &a in &outs {
            let ua = unique[a as usize];
            for &b in &ins {
                let fb = fresh[b as usize];
                // Upper bound on Δ: lost ≥ ua − min(ua, |b|), so
                // Δ ≤ fb − ua + min(ua, |b|) (computed without underflow).
                let optimistic = fb.saturating_sub(ua) + ua.min(inst.set_size(SetId(b)));
                if let Some((bd, _, _)) = best {
                    if optimistic <= bd {
                        // `ins` is sorted by fresh desc, but the optimistic
                        // bound also involves |b|, so only skip this pair.
                        continue;
                    }
                }
                // Exact Δ: lost = |{d ∈ a\b : cnt[d]=1}|.
                let bset = inst.dense_set(SetId(b));
                let mut lost = 0usize;
                for &d in inst.dense_set(SetId(a)) {
                    if cnt[d as usize] == 1 && bset.binary_search(&d).is_err() {
                        lost += 1;
                    }
                }
                if fb < lost {
                    continue;
                }
                let delta = fb - lost;
                let better = match best {
                    None => delta >= cfg.min_gain.max(1),
                    Some((bd, ba, bb)) => {
                        delta > bd || (delta == bd && (a < ba || (a == ba && b < bb)))
                    }
                };
                if better && delta >= cfg.min_gain.max(1) {
                    best = Some((delta, a, b));
                }
            }
        }

        let Some((delta, a, b)) = best else {
            converged = true;
            break;
        };
        // Apply swap a → b.
        in_solution[a as usize] = false;
        for &d in inst.dense_set(SetId(a)) {
            cnt[d as usize] -= 1;
        }
        in_solution[b as usize] = true;
        for &d in inst.dense_set(SetId(b)) {
            cnt[d as usize] += 1;
        }
        coverage += delta;
        debug_assert_eq!(coverage, cnt.iter().filter(|&&c| c > 0).count());
        swaps += 1;
    }
    if swaps >= cfg.max_swaps && !converged {
        // Cap hit; result is still a valid (if not locally optimal) family.
        converged = false;
    }

    let family: Vec<SetId> = (0..n as u32)
        .filter(|&s| in_solution[s as usize])
        .map(SetId)
        .collect();
    LocalSearchResult {
        family,
        coverage,
        swaps,
        converged,
    }
}

/// Verify swap-stability of a family: returns the best improving swap
/// `(out, in, delta)` if one exists (test helper; `None` means the family
/// is a genuine local optimum).
pub fn best_improving_swap(
    inst: &CoverageInstance,
    family: &[SetId],
) -> Option<(SetId, SetId, usize)> {
    let n = inst.num_sets();
    let m = inst.num_elements();
    let mut cnt = vec![0u32; m];
    for &s in family {
        for &d in inst.dense_set(s) {
            cnt[d as usize] += 1;
        }
    }
    let base = cnt.iter().filter(|&&c| c > 0).count();
    let chosen: BitSet = {
        let mut b = BitSet::new(n);
        for &s in family {
            b.insert(s.index());
        }
        b
    };
    let mut best: Option<(SetId, SetId, usize)> = None;
    for &a in family {
        for s in 0..n as u32 {
            if chosen.contains(s as usize) {
                continue;
            }
            let b = SetId(s);
            let mut probe: Vec<SetId> = family.iter().copied().filter(|&x| x != a).collect();
            probe.push(b);
            let v = inst.coverage(&probe);
            if v > base {
                let delta = v - base;
                let better = match best {
                    None => true,
                    Some((_, _, bd)) => delta > bd,
                };
                if better {
                    best = Some((a, b, delta));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::exact_k_cover;

    fn pseudo_random_instance(n: usize, m: u64, avg_deg: u64, seed: u64) -> CoverageInstance {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        let mut b = CoverageInstance::builder(n);
        for s in 0..n as u32 {
            let deg = 1 + next() % (2 * avg_deg);
            for _ in 0..deg {
                b.add_edge(crate::ids::Edge::new(s, next() % m));
            }
        }
        b.build()
    }

    #[test]
    fn local_optimum_has_no_improving_swap() {
        for seed in 1..=6u64 {
            let g = pseudo_random_instance(16, 50, 6, seed);
            let r = local_search_k_cover(&g, 4);
            assert!(r.converged, "seed={seed}");
            assert_eq!(
                best_improving_swap(&g, &r.family),
                None,
                "seed={seed}: converged solution must be swap-stable"
            );
        }
    }

    #[test]
    fn respects_half_of_opt() {
        for seed in 1..=8u64 {
            let g = pseudo_random_instance(14, 40, 5, seed);
            for k in [2usize, 4] {
                let r = local_search_k_cover(&g, k);
                let (_, opt) = exact_k_cover(&g, k);
                assert!(
                    2 * r.coverage >= opt,
                    "seed={seed} k={k}: local={} opt={opt}",
                    r.coverage
                );
                assert!(r.coverage <= opt);
            }
        }
    }

    #[test]
    fn coverage_matches_instance_recount() {
        for seed in 1..=5u64 {
            let g = pseudo_random_instance(20, 60, 7, seed);
            let r = local_search_k_cover(&g, 5);
            assert_eq!(r.coverage, g.coverage(&r.family), "seed={seed}");
            assert!(r.family.len() <= 5);
        }
    }

    #[test]
    fn disjoint_sets_yield_optimal() {
        // Disjoint sets of sizes 1..=5: the k largest are optimal already,
        // so zero swaps happen.
        let mut b = CoverageInstance::builder(5);
        for s in 0..5u32 {
            let base = (s as u64) * 100;
            b.add_set(SetId(s), (base..base + (s as u64) + 1).map(Into::into));
        }
        let g = b.build();
        let r = local_search_k_cover(&g, 2);
        assert_eq!(r.swaps, 0);
        assert_eq!(r.coverage, 9); // sizes 5 + 4
        assert!(r.converged);
    }

    #[test]
    fn swap_escapes_bad_seed() {
        // S0 is the largest set but overlaps S1 entirely; the seed family
        // {S0, S1} must swap S1 for the disjoint S2.
        let mut b = CoverageInstance::builder(3);
        b.add_set(SetId(0), (0u64..6).map(Into::into));
        b.add_set(SetId(1), (0u64..5).map(Into::into)); // ⊂ S0
        b.add_set(SetId(2), (10u64..13).map(Into::into)); // disjoint
        let g = b.build();
        let r = local_search_k_cover(&g, 2);
        assert_eq!(r.family, vec![SetId(0), SetId(2)]);
        assert_eq!(r.coverage, 9);
        assert_eq!(r.swaps, 1);
    }

    #[test]
    fn max_swaps_cap_is_respected() {
        let g = pseudo_random_instance(30, 100, 8, 3);
        let cfg = LocalSearchConfig {
            max_swaps: 1,
            min_gain: 1,
        };
        let r = local_search_k_cover_with(&g, 6, &cfg);
        assert!(r.swaps <= 1);
    }

    #[test]
    fn k_zero_and_k_beyond_n() {
        let g = pseudo_random_instance(5, 20, 3, 1);
        let r0 = local_search_k_cover(&g, 0);
        assert!(r0.family.is_empty());
        assert_eq!(r0.coverage, 0);
        let rall = local_search_k_cover(&g, 50);
        assert_eq!(rall.family.len(), 5);
        assert_eq!(rall.coverage, g.coverage(&rall.family));
    }

    #[test]
    fn min_gain_threshold_coarsens_convergence() {
        let g = pseudo_random_instance(20, 60, 6, 9);
        let fine = local_search_k_cover(&g, 4);
        let coarse = local_search_k_cover_with(
            &g,
            4,
            &LocalSearchConfig {
                max_swaps: usize::MAX,
                min_gain: 3,
            },
        );
        // Coarse convergence can stop earlier, never better.
        assert!(coarse.coverage <= fine.coverage);
        assert!(coarse.swaps <= fine.swaps + 1);
    }
}
