//! Stochastic ("lazier than lazy") greedy for k-cover.
//!
//! Mirzasoleiman, Badanidiyuru, Karbasi, Vondrák, Krause (AAAI 2015), the
//! fast variant of the greedy the paper's data-summarization motivation
//! (its `[38]` line of work) popularized: each round evaluates only a
//! random sample of `⌈(n/k)·ln(1/ε)⌉` candidate sets instead of all `n`,
//! and picks the best of the sample. In expectation this is a
//! `(1 − 1/e − ε)`-approximation with `O(n·ln(1/ε))` total marginal
//! evaluations — independent of `k`.
//!
//! In this repository it is an **extension**: Algorithm 3's offline step
//! can swap `lazy_greedy_k_cover` for this when `k` is large and the
//! sketch is big; `bench_greedy` quantifies the trade.

use crate::bitset::BitSet;
use crate::ids::SetId;
use crate::instance::CoverageInstance;

use super::engine::{GreedyStep, GreedyTrace};

/// Deterministic xorshift-style generator local to this module (keeps
/// `coverage-core` free of external randomness dependencies).
struct Rng(u64);

impl Rng {
    #[inline]
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

/// Stochastic greedy: `(1 − 1/e − ε)`-approximate k-cover in expectation,
/// evaluating `⌈(n/k)·ln(1/ε)⌉` random candidates per round.
pub fn stochastic_greedy_k_cover(
    inst: &CoverageInstance,
    k: usize,
    epsilon: f64,
    seed: u64,
) -> GreedyTrace {
    assert!(epsilon > 0.0 && epsilon < 1.0, "ε must lie in (0,1)");
    let n = inst.num_sets();
    let k = k.min(n);
    let mut trace = GreedyTrace::default();
    if k == 0 || n == 0 {
        return trace;
    }
    let sample_size = (((n as f64 / k as f64) * (1.0 / epsilon).ln()).ceil() as usize).clamp(1, n);
    let mut rng = Rng(seed | 1);
    let mut covered_mark = BitSet::new(inst.num_elements());
    let mut covered = 0usize;
    let mut in_solution = vec![false; n];

    for _ in 0..k {
        // Sample candidates (with replacement — duplicates waste a probe,
        // matching the paper's analysis) and take the best marginal.
        let mut best: Option<(usize, u32)> = None;
        for _ in 0..sample_size {
            let s = rng.below(n as u64) as u32;
            if in_solution[s as usize] {
                continue;
            }
            let gain = inst
                .dense_set(SetId(s))
                .iter()
                .filter(|&&d| !covered_mark.contains(d as usize))
                .count();
            let better = match best {
                None => gain > 0,
                Some((bg, bs)) => gain > bg || (gain == bg && s < bs && gain > 0),
            };
            if better {
                best = Some((gain, s));
            }
        }
        let Some((gain, sid)) = best else { continue };
        let set = SetId(sid);
        in_solution[sid as usize] = true;
        for &d in inst.dense_set(set) {
            covered_mark.insert(d as usize);
        }
        covered += gain;
        trace.steps.push(GreedyStep {
            set,
            gain,
            covered_after: covered,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{exact_k_cover, lazy_greedy_k_cover};

    fn instance(n: usize, m: u64, deg: u64, seed: u64) -> CoverageInstance {
        let mut rng = Rng(seed | 1);
        let mut b = CoverageInstance::builder(n);
        for s in 0..n as u32 {
            for _ in 0..deg {
                b.add_edge(crate::ids::Edge::new(s, rng.below(m)));
            }
        }
        b.build()
    }

    #[test]
    fn quality_near_full_greedy_on_average() {
        // Average over seeds: stochastic greedy should be within a few
        // percent of full greedy (its guarantee is in expectation).
        let g = instance(60, 3_000, 120, 7);
        let k = 8;
        let full = lazy_greedy_k_cover(&g, k).coverage() as f64;
        let mut sum = 0.0;
        let runs = 10;
        for seed in 0..runs {
            sum += stochastic_greedy_k_cover(&g, k, 0.1, seed).coverage() as f64;
        }
        let avg = sum / runs as f64;
        assert!(
            avg >= 0.92 * full,
            "stochastic greedy too weak: avg {avg} vs full {full}"
        );
    }

    #[test]
    fn respects_expectation_bound_on_small_instances() {
        let g = instance(16, 200, 20, 3);
        let k = 4;
        let (_, opt) = exact_k_cover(&g, k);
        let mut sum = 0.0;
        let runs = 20;
        for seed in 0..runs {
            sum += stochastic_greedy_k_cover(&g, k, 0.1, seed).coverage() as f64;
        }
        let avg = sum / runs as f64;
        let bound = (1.0 - 1.0 / std::f64::consts::E - 0.1) * opt as f64;
        assert!(avg >= bound, "avg {avg} below expectation bound {bound}");
    }

    #[test]
    fn never_selects_duplicates_or_overshoots_k() {
        let g = instance(30, 500, 25, 9);
        for seed in 0..5 {
            let t = stochastic_greedy_k_cover(&g, 6, 0.2, seed);
            assert!(t.len() <= 6);
            let mut fam = t.family();
            fam.sort();
            fam.dedup();
            assert_eq!(fam.len(), t.len());
        }
    }

    #[test]
    fn degenerate_inputs() {
        let g = instance(5, 50, 5, 1);
        assert!(stochastic_greedy_k_cover(&g, 0, 0.2, 1).is_empty());
        let empty = CoverageInstance::builder(0).build();
        assert!(stochastic_greedy_k_cover(&empty, 3, 0.2, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "ε must lie in (0,1)")]
    fn rejects_bad_epsilon() {
        let g = instance(5, 50, 5, 1);
        stochastic_greedy_k_cover(&g, 2, 0.0, 1);
    }
}
