//! A fixed-capacity bitset over dense indices.
//!
//! Offline algorithms (exact solvers, greedy over compacted instances) need
//! fast membership sets over `0..m`. The standard library has no bitset and
//! external bitset crates are outside the sanctioned dependency list, so we
//! implement the small amount we need: set/clear/test, popcount, union,
//! intersection-count, difference-count, and iteration over set bits.

/// A fixed-size bitset over indices `0..len`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// An empty bitset of capacity `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Capacity in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the capacity is zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` to one. Returns the previous value.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was = *w & mask != 0;
        *w |= mask;
        !was
    }

    /// Set bit `i` to one without reporting the previous value — the
    /// branch-free half of [`insert`](Self::insert) for bulk marking,
    /// where the caller recovers counts word-parallel via
    /// [`count`](Self::count) afterwards.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Mark every dense index of `idx`. Bulk form of
    /// [`set`](Self::set): no per-bit read-back, so marking a whole
    /// adjacency slice compiles to straight or-stores.
    #[inline]
    pub fn insert_indices(&mut self, idx: &[u32]) {
        for &d in idx {
            self.set(d as usize);
        }
    }

    /// Clear bit `i`. Returns true if the bit was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let was = *w & mask != 0;
        *w &= !mask;
        was
    }

    /// Test bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set all bits to zero, keeping capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// `self |= other`. Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `|self ∪ other|` without materializing the union.
    pub fn union_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// `|other \ self|`: how many bits of `other` are not already in `self`.
    ///
    /// This is the *marginal gain* primitive of every greedy pass.
    pub fn gain_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (b & !a).count_ones() as usize)
            .sum()
    }

    /// `|self ∩ other|`.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.intersection_count_words(&other.words)
    }

    /// `|self ∩ words|` against a raw word slice: 64 membership tests
    /// per `and` + popcount. Shorter operands are zero-extended, so a
    /// prefix-sized mask can be intersected without reallocation.
    /// Backs [`intersection_count`](Self::intersection_count) and the
    /// diagnostic overlap counts that hold one side as a plain mask.
    pub fn intersection_count_words(&self, words: &[u64]) -> usize {
        self.words
            .iter()
            .zip(words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// The backing words, low bits first (word-parallel callers; pair
    /// with [`intersection_count_words`](Self::intersection_count_words)).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterate over the indices of set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &w)| BitIter { word: w }.map(move |b| wi * WORD_BITS + b))
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect indices into a bitset sized to the maximum index + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let idx: Vec<usize> = iter.into_iter().collect();
        let len = idx.iter().copied().max().map_or(0, |x| x + 1);
        let mut bs = BitSet::new(len);
        for i in idx {
            bs.insert(i);
        }
        bs
    }
}

/// Iterator over set-bit positions within one word.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            None
        } else {
            let b = self.word.trailing_zeros() as usize;
            self.word &= self.word - 1;
            Some(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut b = BitSet::new(130);
        assert!(b.insert(0));
        assert!(b.insert(63));
        assert!(b.insert(64));
        assert!(b.insert(129));
        assert!(!b.insert(129), "second insert reports existing bit");
        assert!(b.contains(0) && b.contains(63) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1));
        assert_eq!(b.count(), 4);
        assert!(b.remove(63));
        assert!(!b.remove(63));
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn union_and_counts() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for i in [1usize, 5, 70] {
            a.insert(i);
        }
        for i in [5usize, 70, 99] {
            b.insert(i);
        }
        assert_eq!(a.union_count(&b), 4);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.gain_count(&b), 1, "only bit 99 is new to a");
        a.union_with(&b);
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let mut b = BitSet::new(200);
        let want = [3usize, 64, 65, 127, 128, 199];
        for &i in &want {
            b.insert(i);
        }
        let got: Vec<usize> = b.iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let b: BitSet = [2usize, 9, 4].into_iter().collect();
        assert_eq!(b.len(), 10);
        assert_eq!(b.count(), 3);
        assert!(b.contains(9));
    }

    #[test]
    fn clear_resets_all() {
        let mut b = BitSet::new(70);
        b.insert(69);
        b.clear();
        assert_eq!(b.count(), 0);
        assert_eq!(b.len(), 70);
    }

    #[test]
    fn set_and_insert_indices_match_insert() {
        let mut a = BitSet::new(150);
        let mut b = BitSet::new(150);
        let idx = [0u32, 63, 64, 65, 149, 63];
        for &i in &idx {
            a.insert(i as usize);
        }
        b.insert_indices(&idx);
        assert_eq!(a, b);
        assert_eq!(b.count(), 5);
        let mut c = BitSet::new(150);
        c.set(149);
        c.set(149);
        assert!(c.contains(149));
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn intersection_count_words_zero_extends() {
        let mut a = BitSet::new(200);
        for i in [1usize, 64, 130, 199] {
            a.insert(i);
        }
        // Full-width slice agrees with the bitset-to-bitset count.
        let mut b = BitSet::new(200);
        b.insert(64);
        b.insert(199);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.intersection_count_words(b.words()), 2);
        // A one-word prefix mask only sees bits 0..64.
        assert_eq!(a.intersection_count_words(&[u64::MAX]), 1);
        assert_eq!(a.intersection_count_words(&[]), 0);
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter().count(), 0);
    }
}
