//! The coverage function and oracle abstractions.
//!
//! Section 1.1 of the paper defines the coverage function
//! `C(S) = |∪_{U∈S} U|` and, for the negative result of Theorem 1.3, a
//! `(1±ε)`-approximate oracle `C_ε` with
//! `(1−ε)·C(S) ≤ C_ε(S) ≤ (1+ε)·C(S)`.
//!
//! [`CoverageOracle`] is the common interface: exact instances, sketches,
//! and adversarial noisy oracles all implement it, which lets the same
//! greedy code run against any of them (and lets the Theorem 1.3 experiment
//! swap an adversarial oracle under an unchanged algorithm).

use crate::ids::SetId;
use crate::instance::CoverageInstance;

/// Black-box (possibly approximate) access to a coverage function over a
/// fixed family of `num_sets` sets.
pub trait CoverageOracle {
    /// Number of sets `n` in the family.
    fn num_sets(&self) -> usize;

    /// An estimate of `C(family)`, the number of distinct elements covered
    /// by the union of the given sets.
    ///
    /// Exact implementations return the true value; `(1±ε)` oracles return
    /// anything within relative error ε; adversarial oracles (Theorem 1.3)
    /// return the worst value consistent with their contract.
    fn coverage_estimate(&self, family: &[SetId]) -> f64;

    /// Number of oracle evaluations performed so far, if the oracle counts
    /// them (hardness experiments do). Defaults to `None`.
    fn queries_used(&self) -> Option<u64> {
        None
    }
}

impl CoverageOracle for CoverageInstance {
    fn num_sets(&self) -> usize {
        CoverageInstance::num_sets(self)
    }

    fn coverage_estimate(&self, family: &[SetId]) -> f64 {
        self.coverage(family) as f64
    }
}

/// Greedy k-cover against an arbitrary [`CoverageOracle`].
///
/// This is the "algorithm that only sees the oracle" used on both sides of
/// the Theorem 1.3 experiment: run against an exact oracle it is the
/// classical `1−1/e` greedy; run against the adversarial `(1±ε)` oracle it
/// collapses, exactly as the theorem predicts.
///
/// Complexity is `O(n·k)` oracle calls (no lazy evaluation: a noisy oracle
/// need not be submodular, so Minoux-style pruning would be unsound here).
pub fn oracle_greedy_k_cover(oracle: &dyn CoverageOracle, k: usize) -> Vec<SetId> {
    let n = oracle.num_sets();
    let mut chosen: Vec<SetId> = Vec::with_capacity(k);
    let mut current = 0.0f64;
    for _ in 0..k.min(n) {
        let mut best: Option<(f64, SetId)> = None;
        let mut probe = chosen.clone();
        for s in 0..n as u32 {
            let sid = SetId(s);
            if chosen.contains(&sid) {
                continue;
            }
            probe.push(sid);
            let v = oracle.coverage_estimate(&probe);
            probe.pop();
            let gain = v - current;
            let better = match best {
                None => true,
                Some((bg, bs)) => gain > bg || (gain == bg && sid < bs),
            };
            if better {
                best = Some((gain, sid));
            }
        }
        if let Some((gain, sid)) = best {
            chosen.push(sid);
            current += gain;
        } else {
            break;
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Edge;

    fn instance() -> CoverageInstance {
        // S0={0,1,2}, S1={2,3}, S2={4}, S3={0,1}
        CoverageInstance::from_edges(
            4,
            [
                Edge::new(0u32, 0u64),
                Edge::new(0u32, 1u64),
                Edge::new(0u32, 2u64),
                Edge::new(1u32, 2u64),
                Edge::new(1u32, 3u64),
                Edge::new(2u32, 4u64),
                Edge::new(3u32, 0u64),
                Edge::new(3u32, 1u64),
            ],
        )
    }

    #[test]
    fn exact_instance_is_an_oracle() {
        let g = instance();
        let o: &dyn CoverageOracle = &g;
        assert_eq!(o.num_sets(), 4);
        assert_eq!(o.coverage_estimate(&[SetId(0), SetId(1)]), 4.0);
        assert!(o.queries_used().is_none());
    }

    #[test]
    fn oracle_greedy_picks_best_first() {
        let g = instance();
        let sol = oracle_greedy_k_cover(&g, 2);
        assert_eq!(sol[0], SetId(0), "largest set first");
        // After S0, both S1 (gain 1) and S2 (gain 1) tie; smaller id wins.
        assert_eq!(sol[1], SetId(1));
        assert_eq!(g.coverage(&sol), 4);
    }

    #[test]
    fn oracle_greedy_k_larger_than_n() {
        let g = instance();
        let sol = oracle_greedy_k_cover(&g, 10);
        assert!(sol.len() <= 4);
        assert_eq!(g.coverage(&sol), 5);
    }

    #[test]
    fn oracle_greedy_zero_k() {
        let g = instance();
        assert!(oracle_greedy_k_cover(&g, 0).is_empty());
    }
}
