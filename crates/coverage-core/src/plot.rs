//! ASCII scatter/line charts for experiment output.
//!
//! The paper's artifacts are a table and a figure; our theorem-shaped
//! experiments are naturally *curves* (quality vs budget, accuracy vs
//! space, success vs hardness). [`AsciiChart`] renders such series as a
//! fixed-size character grid so every experiment binary can show the
//! shape directly in the terminal, next to the exact numbers in its
//! table. No external plotting dependency, deterministic output.
//!
//! ```
//! use coverage_core::plot::AsciiChart;
//!
//! let mut chart = AsciiChart::new(40, 10);
//! chart.series('a', &[(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]);
//! let s = chart.render();
//! assert!(s.contains('a'));
//! ```

/// One rendered chart: a grid of `width × height` cells plus axes.
#[derive(Clone, Debug)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<(char, Vec<(f64, f64)>)>,
    log_x: bool,
    log_y: bool,
    x_label: String,
    y_label: String,
}

impl AsciiChart {
    /// An empty chart with the given plot-area size in characters.
    /// Panics if either dimension is smaller than 2.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "chart must be at least 2x2");
        AsciiChart {
            width,
            height,
            series: Vec::new(),
            log_x: false,
            log_y: false,
            x_label: String::new(),
            y_label: String::new(),
        }
    }

    /// Use a log₁₀ x-axis (requires every x > 0 at render time).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Use a log₁₀ y-axis (requires every y > 0 at render time).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Axis labels shown under / beside the plot.
    pub fn labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Add a data series drawn with marker `marker`. Non-finite points are
    /// skipped at render time.
    pub fn series(&mut self, marker: char, points: &[(f64, f64)]) -> &mut Self {
        self.series.push((marker, points.to_vec()));
        self
    }

    fn tx(&self, x: f64) -> f64 {
        if self.log_x {
            x.log10()
        } else {
            x
        }
    }

    fn ty(&self, y: f64) -> f64 {
        if self.log_y {
            y.log10()
        } else {
            y
        }
    }

    /// Render to a multi-line string. Returns a placeholder if no finite
    /// points exist.
    pub fn render(&self) -> String {
        let pts: Vec<(char, f64, f64)> = self
            .series
            .iter()
            .flat_map(|(m, ps)| {
                ps.iter()
                    .filter(|(x, y)| {
                        let ok_log = (!self.log_x || *x > 0.0) && (!self.log_y || *y > 0.0);
                        x.is_finite() && y.is_finite() && ok_log
                    })
                    .map(move |&(x, y)| (*m, self.tx(x), self.ty(y)))
            })
            .collect();
        if pts.is_empty() {
            return "(no data)\n".to_string();
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        // Degenerate ranges widen symmetrically so single points center.
        if x1 - x0 < 1e-12 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        if y1 - y0 < 1e-12 {
            y0 -= 0.5;
            y1 += 0.5;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(m, x, y) in &pts {
            let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
            let row = self.height - 1 - cy;
            grid[row][cx] = m;
        }

        let inv = |v: f64, log: bool| if log { 10f64.powf(v) } else { v };
        let mut out = String::new();
        if !self.y_label.is_empty() {
            out.push_str(&format!("{}\n", self.y_label));
        }
        let y_hi = format_tick(inv(y1, self.log_y));
        let y_lo = format_tick(inv(y0, self.log_y));
        let tick_w = y_hi.len().max(y_lo.len());
        for (i, row) in grid.iter().enumerate() {
            let tick = if i == 0 {
                format!("{y_hi:>tick_w$}")
            } else if i == self.height - 1 {
                format!("{y_lo:>tick_w$}")
            } else {
                " ".repeat(tick_w)
            };
            out.push_str(&tick);
            out.push('|');
            out.push_str(&row.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&" ".repeat(tick_w));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        let x_lo = format_tick(inv(x0, self.log_x));
        let x_hi = format_tick(inv(x1, self.log_x));
        let gap = (self.width + 1).saturating_sub(x_lo.len() + x_hi.len());
        out.push_str(&" ".repeat(tick_w));
        out.push_str(&x_lo);
        out.push_str(&" ".repeat(gap));
        out.push_str(&x_hi);
        if !self.x_label.is_empty() {
            out.push_str(&format!("  ({})", self.x_label));
        }
        out.push('\n');
        out
    }
}

/// Compact tick formatting: integers below 10⁶ verbatim, otherwise
/// scientific-ish with 2 significant decimals.
fn format_tick(v: f64) -> String {
    if v.abs() >= 1e6 || (v.abs() < 1e-3 && v != 0.0) {
        format!("{v:.1e}")
    } else if (v.fract()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_corner_points() {
        let mut c = AsciiChart::new(20, 5);
        c.series('x', &[(0.0, 0.0), (10.0, 10.0)]);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        // Top row holds the max point at the right edge.
        assert!(lines[0].ends_with('x'), "top line: {:?}", lines[0]);
        // Bottom plot row holds the min point at the left edge.
        let bottom = lines[4];
        assert_eq!(bottom.chars().nth(bottom.find('|').unwrap() + 1), Some('x'));
    }

    #[test]
    fn axis_ticks_show_data_range() {
        let mut c = AsciiChart::new(30, 6);
        c.series('o', &[(2.0, 100.0), (8.0, 400.0)]);
        let s = c.render();
        assert!(s.contains("400"));
        assert!(s.contains("100"));
        assert!(s.contains('2'));
        assert!(s.contains('8'));
    }

    #[test]
    fn multiple_series_use_distinct_markers() {
        let mut c = AsciiChart::new(24, 6);
        c.series('a', &[(0.0, 0.0), (1.0, 1.0)]);
        c.series('b', &[(0.0, 1.0), (1.0, 0.0)]);
        let s = c.render();
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn log_axes_spread_decades() {
        let mut lin = AsciiChart::new(40, 8);
        lin.series('x', &[(1.0, 1.0), (10.0, 1.0), (100.0, 1.0), (1000.0, 1.0)]);
        let mut log = AsciiChart::new(40, 8).log_x();
        log.series('x', &[(1.0, 1.0), (10.0, 1.0), (100.0, 1.0), (1000.0, 1.0)]);
        // Linear: first three points crowd the left 10% of the axis.
        // Log: they spread evenly — count marker columns in each render.
        let cols = |s: &str| {
            s.lines()
                .map(|l| l.chars().filter(|&ch| ch == 'x').count())
                .sum::<usize>()
        };
        // Crowding merges linear markers into fewer cells than log's 4.
        assert_eq!(cols(&log.render()), 4);
        assert!(cols(&lin.render()) < 4);
    }

    #[test]
    fn empty_and_nonfinite_data_is_safe() {
        let mut c = AsciiChart::new(10, 4);
        assert_eq!(c.render(), "(no data)\n");
        c.series('x', &[(f64::NAN, 1.0), (1.0, f64::INFINITY)]);
        assert_eq!(c.render(), "(no data)\n");
    }

    #[test]
    fn log_axis_drops_nonpositive_points() {
        let mut c = AsciiChart::new(12, 4);
        c.series('x', &[(0.0, 1.0), (10.0, 2.0)]);
        let plain = c.render();
        assert!(plain.contains('x'));
        let mut logc = AsciiChart::new(12, 4).log_x();
        logc.series('x', &[(0.0, 1.0), (10.0, 2.0)]);
        // Only the positive-x point survives.
        let s = logc.render();
        assert_eq!(s.chars().filter(|&ch| ch == 'x').count(), 1);
    }

    #[test]
    fn single_point_centers() {
        let mut c = AsciiChart::new(11, 5);
        c.series('*', &[(5.0, 5.0)]);
        let s = c.render();
        let row: Vec<&str> = s.lines().collect();
        let mid = row[2];
        let bar = mid.find('|').unwrap();
        assert_eq!(mid.chars().nth(bar + 1 + 5), Some('*'));
    }

    #[test]
    fn labels_appear() {
        let mut c = AsciiChart::new(10, 4);
        c.series('x', &[(1.0, 1.0), (2.0, 2.0)]);
        let c = {
            let mut c2 = AsciiChart::new(10, 4).labels("budget", "ratio");
            c2.series('x', &[(1.0, 1.0), (2.0, 2.0)]);
            c2
        };
        let s = c.render();
        assert!(s.contains("(budget)"));
        assert!(s.starts_with("ratio\n"));
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn tiny_chart_rejected() {
        AsciiChart::new(1, 5);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(5.0), "5");
        assert_eq!(format_tick(0.5), "0.500");
        assert_eq!(format_tick(2_000_000.0), "2.0e6");
    }
}
