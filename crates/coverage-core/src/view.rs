//! Borrowed coverage views and the packed CSR instance.
//!
//! The offline solvers originally ran only on [`CoverageInstance`] — an
//! owned `Vec<Vec<u32>>` adjacency built through a `HashMap` element
//! remap. That is the right shape for *building* an instance from an
//! arbitrary edge multiset, but it is pure overhead for *querying* a
//! sketch whose storage already is a dense element space: Algorithm 3's
//! "run greedy on the sketch" step paid a full re-hash of every retained
//! element on every query.
//!
//! [`CoverageView`] abstracts exactly what the greedy engines need —
//! set/element/edge counts and a dense per-set slice — so they run
//! unchanged on either representation. [`CsrInstance`] is the packed
//! implementation: one `u32` edge arena plus an offsets column
//! (compressed sparse rows over the set–element incidence), built by a
//! counting sort with **no hashing and no per-set allocation**. Sketches
//! export their content directly as a `CsrInstance`
//! (`ThresholdSketch::csr_view` / `DynamicSketch::csr_view`), making the
//! query side of the pipeline as allocation-lean as the stream side.
//!
//! ## Contract
//!
//! A view's per-set slices must be **duplicate-free** (the same dense
//! element must not appear twice in one set). [`CoverageInstance`]
//! guarantees this by construction; the `CsrInstance` constructors
//! document it per entry point. Slices need *not* be sorted — the
//! engines never rely on element order, only on set identity.

use crate::bitset::BitSet;
use crate::ids::{ElementId, SetId};
use crate::instance::CoverageInstance;

/// Read-only access to a coverage instance: the minimal surface the
/// offline greedy engines require. Implemented by the owned
/// [`CoverageInstance`] and by the packed [`CsrInstance`], so every
/// solver is generic over where the graph actually lives.
pub trait CoverageView {
    /// Number of sets `n` (including empty sets).
    fn num_sets(&self) -> usize;

    /// Number of distinct elements `m` in the dense space `0..m`.
    fn num_elements(&self) -> usize;

    /// Number of distinct membership edges.
    fn num_edges(&self) -> usize;

    /// Dense element indices of `set` (duplicate-free, any order).
    fn dense_set(&self, set: SetId) -> &[u32];

    /// Size (degree) of `set`.
    #[inline]
    fn set_size(&self, set: SetId) -> usize {
        self.dense_set(set).len()
    }

    /// Element degrees: `degree[d]` = number of sets containing dense
    /// element `d`.
    fn element_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_elements()];
        for s in 0..self.num_sets() as u32 {
            for &d in self.dense_set(SetId(s)) {
                deg[d as usize] += 1;
            }
        }
        deg
    }

    /// The coverage function `C(S) = |∪_{s∈S} s|` for a family of sets.
    fn coverage(&self, family: &[SetId]) -> usize {
        let mut mark = BitSet::new(self.num_elements());
        for &s in family {
            mark.insert_indices(self.dense_set(s));
        }
        mark.count()
    }
}

impl CoverageView for CoverageInstance {
    #[inline]
    fn num_sets(&self) -> usize {
        CoverageInstance::num_sets(self)
    }

    #[inline]
    fn num_elements(&self) -> usize {
        CoverageInstance::num_elements(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CoverageInstance::num_edges(self)
    }

    #[inline]
    fn dense_set(&self, set: SetId) -> &[u32] {
        CoverageInstance::dense_set(self, set)
    }

    fn element_degrees(&self) -> Vec<u32> {
        CoverageInstance::element_degrees(self)
    }

    fn coverage(&self, family: &[SetId]) -> usize {
        CoverageInstance::coverage(self, family)
    }
}

/// A packed, read-optimized coverage instance: compressed sparse rows
/// over the set–element incidence.
///
/// * `edges` is one flat `u32` arena of dense element indices, set-major;
/// * `offsets[s]..offsets[s+1]` delimits set `s`'s slice;
/// * `elements[d]` maps the dense index back to the original
///   [`ElementId`].
///
/// Construction is a counting sort over the edge pairs — two passes,
/// no `HashMap`, no per-set `Vec` — which is what lets sketches export
/// their content as a solve-ready view without re-hashing anything.
#[derive(Clone, Debug)]
pub struct CsrInstance {
    /// `offsets[s]..offsets[s + 1]` bounds set `s`'s slice of `edges`.
    offsets: Vec<u32>,
    /// Flat set-major arena of dense element indices.
    edges: Vec<u32>,
    /// Dense index → original element id.
    elements: Vec<ElementId>,
}

impl CsrInstance {
    /// Build from a caller-supplied edge enumeration by counting sort.
    ///
    /// `for_each_edge` is invoked exactly twice with an `emit(set,
    /// dense_element)` sink and must emit the identical `(set, dense)`
    /// pair sequence both times (first pass counts per-set degrees,
    /// second pass fills the arena). Pairs must be **deduplicated**
    /// (no repeated `(set, dense)` pair); dense indices must lie in
    /// `0..elements.len()`. Sets `≥ num_sets` grow the family, mirroring
    /// [`InstanceBuilder`](crate::InstanceBuilder).
    pub fn from_edge_fn(
        num_sets: usize,
        elements: Vec<ElementId>,
        mut for_each_edge: impl FnMut(&mut dyn FnMut(u32, u32)),
    ) -> Self {
        // Pass 1: per-set degree counts (shifted by one so the in-place
        // prefix sum below turns `counts` directly into offsets).
        let mut counts: Vec<u32> = vec![0; num_sets + 1];
        for_each_edge(&mut |s, _| {
            let i = s as usize + 1;
            if i >= counts.len() {
                counts.resize(i + 1, 0);
            }
            counts[i] += 1;
        });
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let total = *counts.last().expect("counts is never empty") as usize;

        // Pass 2: fill the arena through per-set cursors.
        let mut edges = vec![0u32; total];
        let mut cursor: Vec<u32> = counts[..counts.len() - 1].to_vec();
        let m = elements.len() as u32;
        for_each_edge(&mut |s, d| {
            debug_assert!(d < m, "dense element {d} out of range {m}");
            let c = &mut cursor[s as usize];
            edges[*c as usize] = d;
            *c += 1;
        });
        debug_assert_eq!(
            cursor.as_slice(),
            &counts[1..],
            "second pass must emit the same pair sequence as the first"
        );
        CsrInstance {
            offsets: counts,
            edges,
            elements,
        }
    }

    /// Pack an owned [`CoverageInstance`] into CSR form (a straight
    /// copy — the instance's dense compaction is reused verbatim, so
    /// dense indices and therefore greedy traces coincide exactly).
    pub fn from_instance(inst: &CoverageInstance) -> Self {
        let n = CoverageInstance::num_sets(inst);
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        let mut edges: Vec<u32> = Vec::with_capacity(CoverageInstance::num_edges(inst));
        offsets.push(0);
        for s in inst.set_ids() {
            edges.extend_from_slice(CoverageInstance::dense_set(inst, s));
            offsets.push(edges.len() as u32);
        }
        CsrInstance {
            offsets,
            edges,
            elements: inst.element_ids().to_vec(),
        }
    }

    /// All set ids `S0..S(n-1)`.
    pub fn set_ids(&self) -> impl Iterator<Item = SetId> + '_ {
        (0..CoverageView::num_sets(self) as u32).map(SetId)
    }

    /// Original element id for a dense index.
    #[inline]
    pub fn element_id(&self, dense: u32) -> ElementId {
        self.elements[dense as usize]
    }

    /// All element ids, in dense-index order.
    pub fn element_ids(&self) -> &[ElementId] {
        &self.elements
    }
}

impl CoverageView for CsrInstance {
    #[inline]
    fn num_sets(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn num_elements(&self) -> usize {
        self.elements.len()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    fn dense_set(&self, set: SetId) -> &[u32] {
        let s = set.index();
        &self.edges[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Edge;

    fn tiny() -> CoverageInstance {
        // S0 = {10, 11}, S1 = {11, 12}, S2 = {13}
        CoverageInstance::from_edges(
            3,
            [
                Edge::new(0u32, 10u64),
                Edge::new(0u32, 11u64),
                Edge::new(1u32, 11u64),
                Edge::new(1u32, 12u64),
                Edge::new(2u32, 13u64),
            ],
        )
    }

    #[test]
    fn from_instance_matches_owned_view() {
        let g = tiny();
        let c = CsrInstance::from_instance(&g);
        assert_eq!(CoverageView::num_sets(&c), CoverageInstance::num_sets(&g));
        assert_eq!(
            CoverageView::num_elements(&c),
            CoverageInstance::num_elements(&g)
        );
        assert_eq!(CoverageView::num_edges(&c), CoverageInstance::num_edges(&g));
        for s in g.set_ids() {
            assert_eq!(
                CoverageView::dense_set(&c, s),
                CoverageInstance::dense_set(&g, s)
            );
        }
        assert_eq!(c.element_ids(), g.element_ids());
        assert_eq!(
            CoverageView::element_degrees(&c),
            CoverageInstance::element_degrees(&g)
        );
    }

    #[test]
    fn counting_sort_construction_groups_by_set() {
        // Emit pairs element-major; the CSR must come out set-major.
        let elements: Vec<ElementId> = (0..4u64).map(ElementId).collect();
        let pairs = [(0u32, 0u32), (1, 0), (0, 1), (2, 2), (1, 3)];
        let c = CsrInstance::from_edge_fn(3, elements, |emit| {
            for &(s, d) in &pairs {
                emit(s, d);
            }
        });
        assert_eq!(CoverageView::num_sets(&c), 3);
        assert_eq!(CoverageView::num_edges(&c), 5);
        assert_eq!(CoverageView::dense_set(&c, SetId(0)), &[0, 1]);
        assert_eq!(CoverageView::dense_set(&c, SetId(1)), &[0, 3]);
        assert_eq!(CoverageView::dense_set(&c, SetId(2)), &[2]);
    }

    #[test]
    fn from_edge_fn_grows_family_on_demand() {
        let c = CsrInstance::from_edge_fn(1, vec![ElementId(7)], |emit| emit(5, 0));
        assert_eq!(CoverageView::num_sets(&c), 6);
        assert_eq!(CoverageView::set_size(&c, SetId(5)), 1);
        assert_eq!(CoverageView::set_size(&c, SetId(0)), 0);
        assert_eq!(c.element_id(0), ElementId(7));
    }

    #[test]
    fn coverage_agrees_across_views() {
        let g = tiny();
        let c = CsrInstance::from_instance(&g);
        for family in [
            vec![],
            vec![SetId(0)],
            vec![SetId(0), SetId(1)],
            vec![SetId(0), SetId(1), SetId(2)],
            vec![SetId(1), SetId(1)],
        ] {
            assert_eq!(
                CoverageView::coverage(&c, &family),
                CoverageInstance::coverage(&g, &family),
                "family {family:?}"
            );
        }
    }

    #[test]
    fn empty_view() {
        let c = CsrInstance::from_edge_fn(0, Vec::new(), |_| {});
        assert_eq!(CoverageView::num_sets(&c), 0);
        assert_eq!(CoverageView::num_elements(&c), 0);
        assert_eq!(CoverageView::num_edges(&c), 0);
        assert_eq!(c.set_ids().count(), 0);
    }
}
