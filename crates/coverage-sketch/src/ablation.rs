//! Eviction-policy ablation: what if Algorithm 2 evicted differently?
//!
//! Definition 2.1 is precise about *which* elements `H≤n` keeps: the
//! lowest-hash prefix whose capped edges fit the budget. Algorithm 2
//! realizes this by always evicting the **largest-hash** element, which
//! makes the retained element set a deterministic function of the hash —
//! independent of arrival order — and is what Lemma 2.2's uniform-sampling
//! argument needs.
//!
//! It is natural to ask whether that choice matters: wouldn't evicting a
//! *random* element, or the *oldest* one (FIFO), keep the space bound just
//! as well? Space-wise yes — quality-wise no. Under non-hash eviction the
//! retained set depends on arrival order, the sample is no longer uniform
//! over elements (late arrivals survive preferentially), and the
//! inverse-probability estimator loses its meaning. [`AblatedSketch`]
//! implements all three policies behind one interface so the
//! `exp_ablation_eviction` experiment can measure the damage: on
//! adversarial arrival orders the paper's policy is unaffected while FIFO
//! and random eviction lose coverage quality and order-invariance.

use std::collections::VecDeque;

use coverage_core::{CoverageInstance, Edge, InstanceBuilder};
use coverage_hash::{FxHashMap, SplitMix64, UnitHash};
use coverage_stream::EdgeStream;

use crate::params::SketchParams;

/// Which element to evict when the edge budget overflows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// The paper's rule: evict the largest-hash element and lower the
    /// acceptance bound below its hash (Algorithm 2).
    MaxHash,
    /// Evict the element admitted earliest (no acceptance bound).
    Fifo,
    /// Evict a pseudo-random retained element (no acceptance bound).
    Random {
        /// Seed of the eviction RNG.
        seed: u64,
    },
}

impl EvictionPolicy {
    /// Human-readable label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            EvictionPolicy::MaxHash => "max-hash (paper)",
            EvictionPolicy::Fifo => "fifo",
            EvictionPolicy::Random { .. } => "random",
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    hash: u64,
    sets: Vec<u32>,
}

/// A degree-capped, budget-bounded sketch with a pluggable eviction
/// policy. With [`EvictionPolicy::MaxHash`] it retains exactly the same
/// elements as [`crate::ThresholdSketch`] (asserted by tests); the other
/// policies exist only to be measured against it.
#[derive(Clone, Debug)]
pub struct AblatedSketch {
    hash: UnitHash,
    params: SketchParams,
    policy: EvictionPolicy,
    entries: FxHashMap<u64, Entry>,
    /// Admission order (FIFO) or key pool (Random); unused for MaxHash.
    order: VecDeque<u64>,
    /// Acceptance bound; only lowered by the MaxHash policy.
    bound: u64,
    rng: SplitMix64,
    edges_stored: usize,
    evictions: u64,
}

impl AblatedSketch {
    /// A fresh sketch with the given eviction policy.
    pub fn new(params: SketchParams, seed: u64, policy: EvictionPolicy) -> Self {
        let rng_seed = match policy {
            EvictionPolicy::Random { seed } => seed,
            _ => 0,
        };
        AblatedSketch {
            hash: UnitHash::new(seed),
            params,
            policy,
            entries: FxHashMap::default(),
            order: VecDeque::new(),
            bound: u64::MAX,
            rng: SplitMix64::new(rng_seed),
            edges_stored: 0,
            evictions: 0,
        }
    }

    /// Build from one pass over a stream.
    pub fn from_stream(
        params: SketchParams,
        seed: u64,
        policy: EvictionPolicy,
        stream: &dyn EdgeStream,
    ) -> Self {
        let mut s = Self::new(params, seed, policy);
        stream.for_each(&mut |e| s.update(e));
        s
    }

    /// Process one arriving edge.
    pub fn update(&mut self, edge: Edge) {
        let key = edge.element.0;
        let h = self.hash.hash(key);
        if h > self.bound {
            return;
        }
        let set = edge.set.0;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                if entry.sets.len() >= self.params.degree_cap {
                    return;
                }
                if let Err(pos) = entry.sets.binary_search(&set) {
                    entry.sets.insert(pos, set);
                    self.edges_stored += 1;
                }
            }
            None => {
                self.entries.insert(
                    key,
                    Entry {
                        hash: h,
                        sets: vec![set],
                    },
                );
                self.order.push_back(key);
                self.edges_stored += 1;
            }
        }
        while self.edges_stored > self.params.max_edges() {
            self.evict();
        }
    }

    fn evict(&mut self) {
        let victim = match self.policy {
            EvictionPolicy::MaxHash => self
                .entries
                .iter()
                .max_by_key(|(&k, e)| (e.hash, k))
                .map(|(&k, _)| k),
            EvictionPolicy::Fifo => loop {
                match self.order.pop_front() {
                    Some(k) if self.entries.contains_key(&k) => break Some(k),
                    Some(_) => continue,
                    None => break None,
                }
            },
            EvictionPolicy::Random { .. } => loop {
                if self.order.is_empty() {
                    break None;
                }
                let i = self.rng.next_below(self.order.len() as u64) as usize;
                let k = self.order.swap_remove_back(i).expect("index in range");
                if self.entries.contains_key(&k) {
                    break Some(k);
                }
            },
        };
        let Some(key) = victim else { return };
        let entry = self.entries.remove(&key).expect("victim is retained");
        self.edges_stored -= entry.sets.len();
        self.evictions += 1;
        if self.policy == EvictionPolicy::MaxHash {
            self.bound = entry.hash.saturating_sub(1);
        }
    }

    /// Retained content as a coverage instance (solver input).
    pub fn instance(&self) -> CoverageInstance {
        let mut b = InstanceBuilder::new(self.params.num_sets);
        for (&key, entry) in &self.entries {
            for &s in &entry.sets {
                b.add_edge(Edge::new(s, key));
            }
        }
        b.build()
    }

    /// Retained element keys, sorted (order-sensitivity measurements).
    pub fn retained_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Stored edge count.
    pub fn edges_stored(&self) -> usize {
        self.edges_stored
    }

    /// Number of evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The policy in use.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdSketch;
    use coverage_stream::{ArrivalOrder, VecStream};

    fn stream(n_sets: u32, m: u64) -> VecStream {
        let mut edges = Vec::new();
        for s in 0..n_sets {
            for e in 0..m {
                if (e + s as u64).is_multiple_of(2) {
                    edges.push(Edge::new(s, e));
                }
            }
        }
        VecStream::new(n_sets as usize, edges)
    }

    #[test]
    fn max_hash_matches_threshold_sketch() {
        let params = SketchParams::with_budget(4, 2, 0.5, 60);
        let seed = 17;
        let st = stream(4, 400);
        let ablated = AblatedSketch::from_stream(params, seed, EvictionPolicy::MaxHash, &st);
        let reference = ThresholdSketch::from_stream(params, seed, &st);
        let mut ref_keys: Vec<u64> = reference.retained().map(|(k, _, _)| k).collect();
        ref_keys.sort_unstable();
        assert_eq!(ablated.retained_keys(), ref_keys);
    }

    #[test]
    fn all_policies_respect_budget() {
        let params = SketchParams::with_budget(4, 2, 0.5, 50);
        let st = stream(4, 500);
        for policy in [
            EvictionPolicy::MaxHash,
            EvictionPolicy::Fifo,
            EvictionPolicy::Random { seed: 3 },
        ] {
            let s = AblatedSketch::from_stream(params, 9, policy, &st);
            assert!(
                s.edges_stored() <= params.max_edges(),
                "{:?} overflows",
                policy
            );
            assert!(s.evictions() > 0, "{:?} never evicted", policy);
        }
    }

    #[test]
    fn max_hash_is_order_invariant_fifo_is_not() {
        let params = SketchParams::with_budget(3, 2, 0.5, 40);
        let seed = 23;
        let base = stream(3, 400);

        let keys_for = |policy: EvictionPolicy, order: ArrivalOrder| {
            let mut v = base.clone();
            order.apply(v.edges_mut());
            AblatedSketch::from_stream(params, seed, policy, &v).retained_keys()
        };

        let a = keys_for(EvictionPolicy::MaxHash, ArrivalOrder::AsIs);
        let b = keys_for(EvictionPolicy::MaxHash, ArrivalOrder::ByHashDesc(seed));
        assert_eq!(a, b, "paper policy must be order-invariant");

        let c = keys_for(EvictionPolicy::Fifo, ArrivalOrder::AsIs);
        let d = keys_for(EvictionPolicy::Fifo, ArrivalOrder::ByHashDesc(seed));
        assert_ne!(c, d, "fifo should depend on arrival order here");
    }

    #[test]
    fn adversarial_order_poisons_fifo_sample() {
        // ByHashDesc feeds elements in decreasing hash order. FIFO then
        // evicts the earliest-admitted (= highest-hash) elements, which
        // accidentally mimics the paper... the damaging order is the
        // *ascending* one, where FIFO evicts precisely the low-hash
        // elements the paper's policy would keep. Verify the retained
        // sets diverge strongly.
        let params = SketchParams::with_budget(3, 2, 0.5, 40);
        let seed = 31;
        let mut asc = stream(3, 400);
        // Ascending hash order = reverse of ByHashDesc.
        ArrivalOrder::ByHashDesc(seed).apply(asc.edges_mut());
        let mut edges = asc.edges_mut().to_vec();
        edges.reverse();
        let asc = VecStream::new(3, edges);
        let paper = AblatedSketch::from_stream(params, seed, EvictionPolicy::MaxHash, &asc);
        let fifo = AblatedSketch::from_stream(params, seed, EvictionPolicy::Fifo, &asc);
        let pk = paper.retained_keys();
        let fk = fifo.retained_keys();
        let overlap = pk.iter().filter(|k| fk.binary_search(k).is_ok()).count();
        assert!(
            (overlap as f64) < 0.5 * pk.len() as f64,
            "fifo under ascending-hash arrival should retain a mostly \
             different sample (overlap {overlap}/{})",
            pk.len()
        );
    }

    #[test]
    fn random_policy_is_seed_deterministic() {
        let params = SketchParams::with_budget(3, 2, 0.5, 40);
        let st = stream(3, 300);
        let a = AblatedSketch::from_stream(params, 5, EvictionPolicy::Random { seed: 1 }, &st);
        let b = AblatedSketch::from_stream(params, 5, EvictionPolicy::Random { seed: 1 }, &st);
        assert_eq!(a.retained_keys(), b.retained_keys());
    }

    #[test]
    fn instance_reflects_retained_edges() {
        let params = SketchParams::with_budget(4, 2, 0.5, 50);
        let s = AblatedSketch::from_stream(params, 3, EvictionPolicy::Fifo, &stream(4, 200));
        let inst = s.instance();
        assert_eq!(inst.num_edges(), s.edges_stored());
        assert_eq!(inst.num_elements(), s.retained_keys().len());
    }
}
