//! # coverage-sketch
//!
//! The `H≤n` coverage sketch — the central contribution of
//!
//! > Bateni, Esfandiari, Mirrokni.
//! > **Almost Optimal Streaming Algorithms for Coverage Problems.**
//! > SPAA 2017 (arXiv:1610.08096).
//!
//! Section 2 of the paper builds the sketch in three conceptual steps:
//!
//! 1. **`Hp`** — hash every element to `[0,1]` and drop those hashing
//!    above `p`. For `p ≥ 6kδ·ln n / (ε²·Opt_k)`, any α-approximate
//!    k-cover solution on `Hp` is (α−2ε)-approximate on `G` (Lemma 2.3).
//! 2. **`H'p`** — additionally cap every element's degree at
//!    `n·ln(1/ε)/(εk)`, dropping surplus edges arbitrarily. Any
//!    α-approximate solution on `H'p` is α(1−ε)-approximate on `Hp`
//!    (Lemma 2.4), and now the sketch has `Õ(n)` edges (Lemmas 2.5–2.6).
//! 3. **`H≤n`** — since the right `p` depends on the unknown `Opt_k`,
//!    take `p*` = the smallest `p` at which `H'p` reaches an edge budget
//!    of `24nδ·ln(1/ε)·ln n / ((1−ε)ε³)`. Theorem 2.7: any α-approximate
//!    solution on `H≤n` is (α−12ε)-approximate on `G` w.h.p.
//!
//! This crate implements all three:
//!
//! * [`params`] — every formula above, in one documented place, with both
//!   the verbatim theoretical constants and the practically-sized budgets
//!   the experiments use;
//! * [`fixed`] — `Hp` / `H'p` construction at a fixed `p` (lemma-level
//!   tests and the Figure 1 reproduction);
//! * [`threshold`] — the streaming [`ThresholdSketch`] (`H≤n`,
//!   Algorithm 2), implemented by adaptive max-hash eviction: retain the
//!   lowest-hash elements whose capped edges fit the budget. Storage is
//!   the flat arena engine of `store` (open addressing directly on the
//!   element hash, pooled set-list arena, nothing allocated per update);
//! * [`reference`](mod@reference) — the retired map-backed engine, kept verbatim as the
//!   executable specification the flat engine is property-tested
//!   bit-identical against (and benchmarked ≥1.5× faster than, in CI);
//! * [`estimate`] — inverse-probability coverage estimation
//!   (`C(S) ≈ |Γ(H,S)|/p*`, Lemma 2.2) with its confidence envelope;
//! * [`multi`] — a [`SketchBank`] feeding many sketches from one pass
//!   (Algorithm 5 runs `log_{1+ε/3} n` guesses in parallel);
//! * [`dynamic`] — the **dynamic-stream** extension: an
//!   ℓ₀-sampler-backed [`DynamicSketch`] over signed (insert/delete)
//!   updates, linear in the net edge multiset so deletions exactly
//!   cancel insertions and merges stay associative and commutative.
//!
//! ## Determinism contract
//!
//! Both sketch families are **composable**: sketches built on any
//! partition of the input merge into the sketch of the whole input, and
//! the merge result is independent of grouping, order, and batch size.
//! For [`ThresholdSketch`] this holds at the level of retained elements
//! (with the canonical min-set-id truncation making it exact even under
//! a binding degree cap); for [`DynamicSketch`] it holds bit-for-bit
//! (linear cells). `coverage-dist`'s parallel executors are built on —
//! and property-tested against — exactly this contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod dynamic;
pub mod estimate;
pub mod fixed;
pub mod lemmas;
pub mod multi;
pub mod params;
pub mod reference;
pub mod serial;
mod store;
pub mod threshold;
pub mod wire;

pub use ablation::{AblatedSketch, EvictionPolicy};
pub use dynamic::{
    DynamicCounters, DynamicSample, DynamicSketch, DynamicSketchParams, DynamicSnapshot,
};
pub use estimate::{chernoff_envelope, estimate_from_sample};
pub use fixed::{build_hp, build_hp_prime};
pub use lemmas::{
    check_lemma_2_2, check_lemma_2_3, check_lemma_2_4, check_lemma_2_6, check_theorem_2_7,
    Lemma22Check, Lemma26Check, TransferCheck,
};
pub use multi::SketchBank;
pub use params::{SketchParams, SketchSizing};
pub use reference::ReferenceSketch;
pub use serial::{SketchSnapshot, SnapshotEntry};
pub use threshold::{SketchCounters, ThresholdSketch};
pub use wire::{PayloadKind, WireError};
