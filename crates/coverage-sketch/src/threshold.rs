//! The streaming `H≤n` sketch (Algorithm 2) via adaptive max-hash eviction.
//!
//! Definition 2.1 wants `H'_{p*}` for the smallest `p*` at which the
//! capped-degree subgraph reaches the edge budget. Algorithm 2 realizes it
//! by pre-sampling a prefix of elements in hash order and dropping the
//! largest-hash element whenever the budget overflows. We implement the
//! equivalent *adaptive threshold* process, which needs no a-priori
//! knowledge of the element universe:
//!
//! * every element is hashed once to a 64-bit value;
//! * an element is **admitted** while its hash is at most the current
//!   acceptance bound (initially `u64::MAX`, i.e. `p = 1`);
//! * per admitted element at most `degree_cap` incident edges are kept
//!   (Lemma 2.4's cap — surplus edges are dropped, "chosen arbitrarily" in
//!   the paper, first-arrival-wins here);
//! * whenever stored edges exceed `budget + slack`, the element with the
//!   **largest hash** is evicted and the acceptance bound drops just below
//!   its hash, so the element (or any higher-hash one) can never re-enter.
//!
//! The retained state is therefore always "the lowest-hash prefix of
//! elements, degree-capped, fitting the budget" — exactly `H'_{p*}` with
//! `p* = (bound+1)/2^64`. That invariant (checked by property tests) is
//! what makes the sketch's content independent of arrival order, up to
//! which `degree_cap` edges of a truncated element survive.
//!
//! ## The flat ingestion engine
//!
//! Storage is the flat struct-of-arrays store of `store.rs`: an
//! open-addressing table addressed **directly by the element hash** (the
//! one `h(u)` of Algorithm 1 — no second hash function is ever computed)
//! over dense columns, with per-element set lists carved out of one
//! pooled `u32` arena. A retained edge costs an append into the arena;
//! an admitted element costs one table place plus one heap push; nothing
//! on the per-update path allocates. Set lists are kept in **append
//! order** and canonicalized (sorted) once at report/merge time —
//! duplicate detection on arrival is a forward scan of a short
//! contiguous block rather than the reference engine's
//! `binary_search` + `Vec::insert` memmove.
//!
//! The retired map-backed implementation survives verbatim as
//! [`crate::reference::ReferenceSketch`] — the executable specification
//! this engine is property-tested bit-identical against (same retained
//! `(element, hash, sets, truncated)` content, same counters, same
//! acceptance bound, under every arrival order and merge shape).
//!
//! Batched ingestion enters through [`ThresholdSketch::update_batch`]
//! (hash pass first, then a monomorphic probe loop) or, when several
//! sketches share the seed, through
//! [`SketchBank::update_batch`](crate::SketchBank::update_batch), which
//! hashes each edge **once for the whole bank** and pre-filters against
//! the bank-wide maximum acceptance bound before any sketch sees it.

use std::collections::BinaryHeap;

use coverage_core::{CoverageInstance, CsrInstance, Edge, ElementId, InstanceBuilder, SetId};
use coverage_hash::UnitHash;
use coverage_stream::{EdgeStream, SpaceReport, SpaceTracker};

use crate::params::SketchParams;
use crate::store::{AppendOutcome, FlatStore};

/// An edge whose element hash is already computed — the unit of work of
/// the shared-hash ingestion paths. Produced once per arriving edge by
/// [`ThresholdSketch::update_batch`] /
/// [`SketchBank::update_batch`](crate::SketchBank::update_batch) and
/// consumed by every sketch sharing the hash seed.
#[derive(Clone, Copy, Debug)]
pub(crate) struct HashedEdge {
    /// Original element key.
    pub key: u64,
    /// `h(key)` under the sketch's element hash.
    pub hash: u64,
    /// Incident set id.
    pub set: u32,
}

/// Edges pre-hashed per scratch refill. Bounds scratch memory on huge
/// batches while keeping the hash loop long enough to pipeline.
pub(crate) const INGEST_CHUNK: usize = 4096;

/// Streaming-side counters (diagnostics; surfaced by experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SketchCounters {
    /// Edge arrivals processed.
    pub arrivals: u64,
    /// Arrivals rejected because the element's hash exceeded the bound.
    pub rejected_by_bound: u64,
    /// Arrivals rejected by the per-element degree cap.
    pub rejected_by_cap: u64,
    /// Duplicate edges ignored (only counted when dedup is on).
    pub duplicates: u64,
    /// Elements evicted by budget overflow.
    pub evictions: u64,
}

/// The streaming `H≤n(k, ε, δ'')` sketch.
#[derive(Clone, Debug)]
pub struct ThresholdSketch {
    hash: UnitHash,
    params: SketchParams,
    store: FlatStore,
    /// Max-heap of `(hash, element_key)` for eviction. Every admitted
    /// element is pushed exactly once; eviction pops are always valid
    /// because an evicted element can never be re-admitted (bound is
    /// monotone decreasing).
    heap: BinaryHeap<(u64, u64)>,
    /// Acceptance bound: an element is admitted iff `hash ≤ bound`.
    bound: u64,
    edges_stored: usize,
    tracker: SpaceTracker,
    counters: SketchCounters,
    /// Reused pre-hash scratch for [`update_batch`](Self::update_batch).
    scratch: Vec<HashedEdge>,
    /// Reused hash-output scratch for the shared-hash pass.
    scratch_hashes: Vec<u64>,
}

impl ThresholdSketch {
    /// A fresh sketch; `seed` determines the element hash function. All
    /// sketches that must agree on the sampled sub-universe (e.g. a bank
    /// built in the same pass) share a seed.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        let store = FlatStore::new();
        let mut tracker = SpaceTracker::new();
        tracker.set_aux_capacity(store.capacity_words());
        ThresholdSketch {
            hash: UnitHash::new(seed),
            params,
            store,
            heap: BinaryHeap::new(),
            bound: u64::MAX,
            edges_stored: 0,
            tracker,
            counters: SketchCounters::default(),
            scratch: Vec::new(),
            scratch_hashes: Vec::new(),
        }
    }

    /// The parameters this sketch was built with.
    pub fn params(&self) -> &SketchParams {
        &self.params
    }

    /// The sketch's element hash function (bank plumbing: the shared
    /// hash pass must use exactly this function).
    pub(crate) fn unit_hash(&self) -> UnitHash {
        self.hash
    }

    /// Process one arriving edge. `Õ(1)` amortized: one hash, one table
    /// probe, and amortized O(1) heap work (each element enters and leaves
    /// the heap at most once).
    pub fn update(&mut self, edge: Edge) {
        let key = edge.element.0;
        let h = self.hash.hash(key);
        self.update_hashed(key, h, edge.set.0);
    }

    /// The post-hash half of [`update`](Self::update): process an edge
    /// whose element hash `h` was already computed (by this sketch's own
    /// batch path or by a bank's shared hash pass). `h` **must** equal
    /// `self.hash.hash(key)`.
    #[inline]
    pub(crate) fn update_hashed(&mut self, key: u64, h: u64, set: u32) {
        self.counters.arrivals += 1;
        if h > self.bound {
            self.counters.rejected_by_bound += 1;
            return;
        }
        match self.store.find_or_empty(h, key) {
            Ok(idx) => {
                // Fused survivor path: cap check, duplicate scan, and
                // append share one list-descriptor load (`try_append`
                // is pinned step-equivalent to the unfused sequence in
                // the store's model tests).
                match self
                    .store
                    .try_append(idx, set, self.params.degree_cap, self.params.dedup)
                {
                    AppendOutcome::CapRejected => {
                        self.counters.rejected_by_cap += 1;
                        return;
                    }
                    AppendOutcome::Duplicate => {
                        self.counters.duplicates += 1;
                        return;
                    }
                    AppendOutcome::Appended => {}
                }
            }
            Err(slot) => {
                // Fused miss path: the probe walk above already found
                // the chain's empty terminus, so the insert reuses it
                // instead of re-walking from the home slot.
                let idx = self.store.insert_at(slot, key, h);
                self.store.push_set(idx, set);
                self.heap.push((h, key));
                // Live element bookkeeping outside the store's arena:
                // the (hash, key) heap entry.
                self.tracker.add_aux(2);
            }
        }
        self.edges_stored += 1;
        self.tracker.add_edges(1);
        self.tracker.set_aux_capacity(self.store.capacity_words());
        while self.edges_stored > self.params.max_edges() {
            self.evict_max();
        }
    }

    /// Bulk-account `n` arrivals rejected by the acceptance bound
    /// without touching per-edge state — the bank's pre-filter proves
    /// they cannot enter this sketch (their hash exceeds even the
    /// bank-wide maximum bound) and charges the counters in O(1).
    #[inline]
    pub(crate) fn note_rejected_by_bound(&mut self, n: u64) {
        self.counters.arrivals += n;
        self.counters.rejected_by_bound += n;
    }

    /// Probe-group width of the batched hot loop: how many edges ahead
    /// [`update_hashed_batch`](Self::update_hashed_batch) prefetches
    /// store slots before processing a window.
    pub(crate) const PROBE_GROUP: usize = 8;

    /// Feed a slice of pre-hashed edges through the hot loop, in
    /// [`PROBE_GROUP`](Self::PROBE_GROUP)-edge windows: a prefetch pass
    /// touches each edge's home slot (and occupant key) first, then the
    /// process pass runs the ordinary per-edge step. The prefetch pass
    /// is pure reads of current state — later edges in a window may
    /// prefetch slots an earlier edge's insert then relocates, which
    /// only costs the hint, never correctness — so this is bit-identical
    /// to [`update_hashed_batch_scalar`](Self::update_hashed_batch_scalar)
    /// (property-tested in `tests/sketch_properties.rs`).
    #[inline]
    pub(crate) fn update_hashed_batch(&mut self, batch: &[HashedEdge]) {
        for window in batch.chunks(Self::PROBE_GROUP) {
            for e in window {
                self.store.prefetch(e.hash);
            }
            for &e in window {
                self.update_hashed(e.key, e.hash, e.set);
            }
        }
    }

    /// The retained straight-line form of
    /// [`update_hashed_batch`](Self::update_hashed_batch): one
    /// [`update_hashed_scalar`](Self::update_hashed_scalar) per edge, no
    /// grouping, no prefetch. Executable specification for the grouped
    /// path and the baseline the `BENCH_8` ingest gate measures from.
    #[inline]
    pub(crate) fn update_hashed_batch_scalar(&mut self, batch: &[HashedEdge]) {
        for &e in batch {
            self.update_hashed_scalar(e.key, e.hash, e.set);
        }
    }

    /// The frozen pre-vectorization per-edge step, kept verbatim as the
    /// executable specification of [`update_hashed`](Self::update_hashed):
    /// separate cap check, duplicate scan, and append walks instead of
    /// the fused [`FlatStore::try_append`] descriptor load. Bit-identical
    /// to the optimized step (property-tested in
    /// `tests/sketch_properties.rs`); every `*_scalar` ingest path runs
    /// through it so the `BENCH_8` baseline measures the pre-PR engine,
    /// not a re-optimized one.
    pub(crate) fn update_hashed_scalar(&mut self, key: u64, h: u64, set: u32) {
        self.counters.arrivals += 1;
        if h > self.bound {
            self.counters.rejected_by_bound += 1;
            return;
        }
        match self.store.find(h, key) {
            Some(idx) => {
                if self.store.list(idx).len() >= self.params.degree_cap {
                    self.store.mark_truncated(idx);
                    self.counters.rejected_by_cap += 1;
                    return;
                }
                if self.params.dedup && self.store.list(idx).contains(&set) {
                    self.counters.duplicates += 1;
                    return;
                }
                self.store.push_set(idx, set);
            }
            None => {
                let idx = self.store.insert(key, h);
                self.store.push_set(idx, set);
                self.heap.push((h, key));
                self.tracker.add_aux(2);
            }
        }
        self.edges_stored += 1;
        self.tracker.add_edges(1);
        self.tracker.set_aux_capacity(self.store.capacity_words());
        while self.edges_stored > self.params.max_edges() {
            self.evict_max();
        }
    }

    /// Evict the largest-hash element and lower the acceptance bound.
    fn evict_max(&mut self) {
        let Some((h, key)) = self.heap.pop() else {
            return;
        };
        let idx = self
            .store
            .find(h, key)
            .expect("heap entries always have live store entries");
        debug_assert_eq!(self.store.hash_of(idx), h);
        let removed = self.store.list(idx).len();
        self.store.remove(idx);
        self.edges_stored -= removed;
        self.tracker.remove_edges(removed as u64);
        self.tracker.remove_aux(2);
        self.counters.evictions += 1;
        // Reject this hash value (and anything above) from now on. The
        // subtraction is exact unless another element shares the 64-bit
        // hash, which has probability ≈ m²/2^64.
        self.bound = h.saturating_sub(1);
    }

    /// Process a contiguous batch of arriving edges. Semantically
    /// identical to calling [`update`](Self::update) per edge; the batch
    /// path hashes a whole chunk first (the unrolled
    /// [`UnitHash::hash_batch`] mixer loop), bulk-rejects everything
    /// above the acceptance bound, and only then runs the grouped
    /// prefetch-ahead probe loop over the survivors. Survivor order is
    /// arrival order — cap and duplicate accounting are order-dependent,
    /// so the filter compacts without reordering.
    pub fn update_batch(&mut self, edges: &[Edge]) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut hashes = std::mem::take(&mut self.scratch_hashes);
        for chunk in edges.chunks(INGEST_CHUNK) {
            hashes.clear();
            self.hash
                .hash_batch(chunk.iter().map(|e| e.element.0), &mut hashes);
            scratch.clear();
            let bound = self.bound;
            let mut rejected = 0u64;
            for (&e, &h) in chunk.iter().zip(&hashes) {
                if h > bound {
                    rejected += 1;
                } else {
                    scratch.push(HashedEdge {
                        key: e.element.0,
                        hash: h,
                        set: e.set.0,
                    });
                }
            }
            // Identical accounting to the per-edge path: the bound only
            // ever decreases, so anything above the chunk-start bound is
            // rejected no matter when it is examined.
            self.note_rejected_by_bound(rejected);
            self.update_hashed_batch(&scratch);
        }
        self.scratch = scratch;
        self.scratch_hashes = hashes;
    }

    /// The retained pre-vectorization form of
    /// [`update_batch`](Self::update_batch): scalar hashing
    /// ([`UnitHash::hash_batch_scalar`]) and the ungrouped probe loop
    /// (`update_hashed_batch_scalar`).
    /// Bit-identical by construction and by the property suite; kept
    /// public as the executable baseline the `BENCH_8` ingest gate
    /// measures the vectorized path against.
    pub fn update_batch_scalar(&mut self, edges: &[Edge]) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut hashes = std::mem::take(&mut self.scratch_hashes);
        for chunk in edges.chunks(INGEST_CHUNK) {
            hashes.clear();
            self.hash
                .hash_batch_scalar(chunk.iter().map(|e| e.element.0), &mut hashes);
            scratch.clear();
            let bound = self.bound;
            let mut rejected = 0u64;
            for (&e, &h) in chunk.iter().zip(&hashes) {
                if h > bound {
                    rejected += 1;
                } else {
                    scratch.push(HashedEdge {
                        key: e.element.0,
                        hash: h,
                        set: e.set.0,
                    });
                }
            }
            self.note_rejected_by_bound(rejected);
            self.update_hashed_batch_scalar(&scratch);
        }
        self.scratch = scratch;
        self.scratch_hashes = hashes;
    }

    /// Feed an entire stream (one pass).
    pub fn consume(&mut self, stream: &dyn EdgeStream) {
        stream.for_each(&mut |e| self.update(e));
    }

    /// Feed an entire stream (one pass) in batches of `batch` edges —
    /// the amortized-dispatch fast path used by the parallel runner.
    pub fn consume_batched(&mut self, stream: &dyn EdgeStream, batch: usize) {
        stream.for_each_batch(batch, &mut |chunk| self.update_batch(chunk));
    }

    /// [`consume_batched`](Self::consume_batched) over the retained
    /// scalar hot path — the `BENCH_8` baseline.
    pub fn consume_batched_scalar(&mut self, stream: &dyn EdgeStream, batch: usize) {
        stream.for_each_batch(batch, &mut |chunk| self.update_batch_scalar(chunk));
    }

    /// Build the sketch from one pass over `stream`.
    pub fn from_stream(params: SketchParams, seed: u64, stream: &dyn EdgeStream) -> Self {
        let mut s = Self::new(params, seed);
        s.consume(stream);
        s
    }

    /// Number of stored edges.
    pub fn edges_stored(&self) -> usize {
        self.edges_stored
    }

    /// Number of retained elements.
    pub fn elements_stored(&self) -> usize {
        self.store.len()
    }

    /// The effective sampling probability `p*`: the probability that a
    /// uniformly hashed element is currently admissible.
    pub fn sampling_p(&self) -> f64 {
        if self.bound == u64::MAX {
            1.0
        } else {
            (self.bound as f64 + 1.0) / 2f64.powi(64)
        }
    }

    /// True if the budget was never hit (the sketch holds the entire
    /// degree-capped input, `p* = 1`).
    pub fn is_exact_sample(&self) -> bool {
        self.bound == u64::MAX
    }

    /// Streaming-side diagnostics.
    pub fn counters(&self) -> SketchCounters {
        self.counters
    }

    /// Space report (1 pass). Besides live edges and heap entries, the
    /// aux peak carries the flat store's full **capacity** footprint
    /// (table + columns + arena), so evicting elements out of a grown
    /// arena never lets the report understate resident memory.
    pub fn space_report(&self) -> SpaceReport {
        self.tracker.report(1)
    }

    /// Estimate `C(family)` on the *original* input via the
    /// inverse-probability estimator of Lemma 2.2:
    /// `Ĉ(S) = |Γ(H, S)| / p*`.
    pub fn estimate_coverage(&self, family: &[SetId]) -> f64 {
        let mut members = vec![false; self.params.num_sets.max(1)];
        for s in family {
            if s.index() < members.len() {
                members[s.index()] = true;
            }
        }
        let mut covered = 0usize;
        for (_, _, sets, _) in self.store.iter() {
            if sets.iter().any(|&s| members[s as usize]) {
                covered += 1;
            }
        }
        covered as f64 / self.sampling_p()
    }

    /// Materialize the sketch content as a [`CoverageInstance`] over the
    /// retained elements (the graph the offline algorithms run on —
    /// "solve the problem without any other direct access to the input").
    ///
    /// This *rebuilds* an owned instance — every retained element goes
    /// back through a `HashMap` remap. Query paths should prefer
    /// [`csr_view`](Self::csr_view), which exports the flat store
    /// directly; this method remains for callers that need the owned
    /// representation (residual restriction, snapshots, tests).
    pub fn instance(&self) -> CoverageInstance {
        let mut b = InstanceBuilder::new(self.params.num_sets);
        for (key, _, sets, _) in self.store.iter() {
            for &s in sets {
                b.add_edge(Edge::new(s, key));
            }
        }
        b.build()
    }

    /// Export the sketch content as a packed [`CsrInstance`] — the
    /// zero-rebuild solve path. The flat store's entry order *is* the
    /// dense element space, so this is one counting-sort pass over the
    /// set-list arena: no re-hashing, no `HashMap`, no per-set `Vec`.
    /// The view is graph-identical to [`instance`](Self::instance) (same
    /// sets, same element memberships, up to dense relabeling), so
    /// greedy traces on either are step-for-step equal.
    pub fn csr_view(&self) -> CsrInstance {
        let elements: Vec<ElementId> = self.store.iter().map(|(k, _, _, _)| ElementId(k)).collect();
        if self.params.dedup {
            // Dedup sketches store duplicate-free set lists: export the
            // arena as-is.
            CsrInstance::from_edge_fn(self.params.num_sets, elements, |emit| {
                for (i, (_, _, sets, _)) in self.store.iter().enumerate() {
                    for &s in sets {
                        emit(s, i as u32);
                    }
                }
            })
        } else {
            // Without dedup the lists are raw arrival order (possibly
            // with duplicates): canonicalize per element first, exactly
            // as `instance`'s builder would.
            let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(self.edges_stored);
            let mut scratch: Vec<u32> = Vec::new();
            for (i, (_, _, sets, _)) in self.store.iter().enumerate() {
                scratch.clear();
                scratch.extend_from_slice(sets);
                scratch.sort_unstable();
                scratch.dedup();
                pairs.extend(scratch.iter().map(|&s| (s, i as u32)));
            }
            CsrInstance::from_edge_fn(self.params.num_sets, elements, |emit| {
                for &(s, d) in &pairs {
                    emit(s, d);
                }
            })
        }
    }

    /// Canonicalize one stored list: sorted when dedup is on (the
    /// retained-content contract presents set lists in id order), raw
    /// append order otherwise (matching the reference engine, which
    /// also stores arrival order when dedup is off).
    fn canonical_sets(&self, sets: &[u32]) -> Vec<u32> {
        let mut v = sets.to_vec();
        if self.params.dedup {
            v.sort_unstable();
        }
        v
    }

    /// Iterate over retained `(element_key, hash, set_ids)` triples
    /// (property tests and the Figure 1 renderer). Set lists are
    /// canonicalized copies — the store keeps them in append order.
    pub fn retained(&self) -> impl Iterator<Item = (u64, u64, Vec<u32>)> + '_ {
        self.store
            .iter()
            .map(|(k, h, sets, _)| (k, h, self.canonical_sets(sets)))
    }

    /// Like [`retained`](Self::retained) but including the truncation flag
    /// — the full logical per-element state (snapshot support).
    pub fn retained_full(&self) -> impl Iterator<Item = (u64, u64, Vec<u32>, bool)> + '_ {
        self.store
            .iter()
            .map(|(k, h, sets, t)| (k, h, self.canonical_sets(sets), t))
    }

    /// The full retained content in canonical form: sorted by element
    /// key, set lists canonicalized. This is the engine-equivalence
    /// currency — the property tests and the `bench_smoke` CI gate
    /// compare it against
    /// [`ReferenceSketch::canonical_content`](crate::reference::ReferenceSketch::canonical_content).
    pub fn canonical_content(&self) -> Vec<(u64, u64, Vec<u32>, bool)> {
        let mut v: Vec<_> = self.retained_full().collect();
        v.sort_unstable_by_key(|&(k, _, _, _)| k);
        v
    }

    /// The hash function's raw post-mix seed (snapshot support; pair with
    /// [`coverage_hash::UnitHash::from_raw_seed`]).
    pub fn raw_hash_seed(&self) -> u64 {
        self.hash.seed()
    }

    /// Rebuild a sketch from snapshot parts. The space tracker restarts
    /// from the restored size (peak history is not carried across a
    /// snapshot). Used by `serial::SketchSnapshot::restore`.
    pub(crate) fn from_snapshot_parts(
        raw_seed: u64,
        params: SketchParams,
        bound: u64,
        entries: impl Iterator<Item = (u64, u64, Vec<u32>, bool)>,
        counters: SketchCounters,
    ) -> Self {
        let mut store = FlatStore::new();
        let mut heap = BinaryHeap::new();
        let mut edges_stored = 0usize;
        let mut tracker = SpaceTracker::new();
        for (key, hash, sets, truncated) in entries {
            edges_stored += sets.len();
            tracker.add_edges(sets.len() as u64);
            tracker.add_aux(2);
            heap.push((hash, key));
            let idx = store.insert(key, hash);
            store.replace_list(idx, &sets);
            if truncated {
                store.mark_truncated(idx);
            }
        }
        tracker.set_aux_capacity(store.capacity_words());
        ThresholdSketch {
            hash: UnitHash::from_raw_seed(raw_seed),
            params,
            store,
            heap,
            bound,
            edges_stored,
            tracker,
            counters,
            scratch: Vec::new(),
            scratch_hashes: Vec::new(),
        }
    }

    /// The current acceptance bound (tests).
    pub fn acceptance_bound(&self) -> u64 {
        self.bound
    }

    /// Merge another sketch of the **same parameters, seed and budget**
    /// into `self` — the composability property behind the distributed
    /// algorithms of the paper's companion work (`[10]`).
    ///
    /// Why this is sound: a sketch's retained elements are exactly the
    /// lowest-hash prefix (of the elements it saw) whose capped edges fit
    /// the budget. If the input edges are partitioned across machines,
    /// the *global* prefix bound is at most every local bound, so every
    /// globally-retained element was retained (with some of its edges) on
    /// every machine that saw it. Dropping entries above the minimum
    /// bound, uniting per-element set lists (re-capped), and re-evicting
    /// to the budget therefore reproduces a valid `H≤n` of the union —
    /// with *identical* retained elements to a single-machine build.
    ///
    /// When the degree cap binds during the union, the surviving edges
    /// are the **smallest set ids** of the united list (Lemma 2.4 allows
    /// any cap-sized subset). That canonical choice makes the merge
    /// associative *and* commutative, so a reduction's result is
    /// independent of its tree shape — the determinism contract the
    /// parallel runner in `coverage-dist` is property-tested against.
    /// (Stored lists are append-order; the union sorts both sides first,
    /// so merged entries come out sorted — a legal append order.)
    pub fn merge_from(&mut self, other: &ThresholdSketch) {
        assert_eq!(
            self.hash, other.hash,
            "sketches must share a hash seed to merge"
        );
        assert_eq!(
            self.params, other.params,
            "sketches must share parameters to merge"
        );
        assert!(
            self.params.dedup,
            "merging requires dedup sketches (per-element set lists are sets)"
        );
        let bound = self.bound.min(other.bound);
        // Drop own entries that the other side's bound rules out.
        if bound < self.bound {
            let doomed: Vec<(u64, u64)> = self
                .store
                .iter()
                .filter(|&(_, h, _, _)| h > bound)
                .map(|(k, h, _, _)| (k, h))
                .collect();
            for (k, h) in doomed {
                let idx = self.store.find(h, k).expect("entry just listed");
                let len = self.store.list(idx).len();
                self.store.remove(idx);
                self.edges_stored -= len;
                self.tracker.remove_edges(len as u64);
                self.tracker.remove_aux(2);
            }
        }
        self.bound = bound;
        // Pull the other side's admissible entries.
        for (key, h, osets, otrunc) in other.store.iter() {
            if h > bound {
                continue;
            }
            let mut theirs = osets.to_vec();
            theirs.sort_unstable();
            match self.store.find(h, key) {
                Some(idx) => {
                    let mut mine = self.store.list(idx).to_vec();
                    mine.sort_unstable();
                    let before = mine.len();
                    let (merged, overflow) =
                        sorted_union_capped(&mine, &theirs, self.params.degree_cap);
                    // The capped union never shrinks: both inputs are ≤ cap
                    // long, and min-id truncation keeps at least max(|a|,|b|).
                    let added = merged.len() - before;
                    self.store.replace_list(idx, &merged);
                    if otrunc || overflow {
                        self.store.mark_truncated(idx);
                    }
                    self.edges_stored += added;
                    self.tracker.add_edges(added as u64);
                }
                None => {
                    let idx = self.store.insert(key, h);
                    self.store.replace_list(idx, &theirs);
                    if otrunc {
                        self.store.mark_truncated(idx);
                    }
                    self.heap.push((h, key));
                    self.edges_stored += theirs.len();
                    self.tracker.add_edges(theirs.len() as u64);
                    self.tracker.add_aux(2);
                }
            }
        }
        // The heap may hold stale entries for keys dropped above; rebuild
        // it from the live store (merges are rare, so O(size) is fine).
        self.heap = self.store.iter().map(|(k, h, _, _)| (h, k)).collect();
        self.tracker.set_aux_capacity(self.store.capacity_words());
        while self.edges_stored > self.params.max_edges() {
            self.evict_max();
        }
        let o = other.counters;
        self.counters.arrivals += o.arrivals;
        self.counters.rejected_by_bound += o.rejected_by_bound;
        self.counters.rejected_by_cap += o.rejected_by_cap;
        self.counters.duplicates += o.duplicates;
        self.counters.evictions += o.evictions;
    }
}

/// Union of two sorted, deduplicated id lists, truncated to the `cap`
/// smallest ids. Returns the union and whether anything was cut. Keeping
/// the min-id prefix makes `union ∘ truncate` associative, which is what
/// lets sketch merges ignore reduction shape: `min_cap(min_cap(A ∪ B) ∪ C)
/// = min_cap(A ∪ B ∪ C)`.
pub(crate) fn sorted_union_capped(a: &[u32], b: &[u32], cap: usize) -> (Vec<u32>, bool) {
    let mut merged = Vec::with_capacity((a.len() + b.len()).min(cap));
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => return (merged, false),
        };
        if merged.len() == cap {
            return (merged, true);
        }
        merged.push(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_stream::VecStream;

    fn params(n: usize, budget: usize) -> SketchParams {
        SketchParams::with_budget(n, 2, 0.5, budget)
    }

    fn star_stream(n_sets: u32, m: u64) -> VecStream {
        // Every set contains every element: n·m edges.
        let mut edges = Vec::new();
        for s in 0..n_sets {
            for e in 0..m {
                edges.push(Edge::new(s, e));
            }
        }
        VecStream::new(n_sets as usize, edges)
    }

    #[test]
    fn exact_when_budget_not_hit() {
        let s = ThresholdSketch::from_stream(
            params(3, 10_000),
            42,
            &VecStream::new(
                3,
                vec![
                    Edge::new(0u32, 1u64),
                    Edge::new(1u32, 2u64),
                    Edge::new(2u32, 3u64),
                ],
            ),
        );
        assert!(s.is_exact_sample());
        assert_eq!(s.sampling_p(), 1.0);
        assert_eq!(s.edges_stored(), 3);
        assert_eq!(s.estimate_coverage(&[SetId(0), SetId(1)]), 2.0);
    }

    #[test]
    fn respects_edge_budget() {
        let p = params(4, 40);
        let s = ThresholdSketch::from_stream(p, 7, &star_stream(4, 1000));
        assert!(s.edges_stored() <= p.max_edges());
        assert!(!s.is_exact_sample());
        assert!(s.counters().evictions > 0);
        assert!(s.sampling_p() < 1.0);
    }

    #[test]
    fn degree_cap_truncates_heavy_elements() {
        // cap for n=100, k=2, eps=0.5: 100·ln2/(0.5·2) = 69.3 → 70.
        let p = SketchParams::with_budget(100, 2, 0.5, 100_000);
        assert_eq!(p.degree_cap, 70);
        let s = ThresholdSketch::from_stream(p, 3, &star_stream(100, 5));
        for (_, _, sets) in s.retained() {
            assert!(sets.len() <= 70);
        }
        assert!(s.counters().rejected_by_cap > 0);
    }

    #[test]
    fn batched_consume_equals_per_edge_consume() {
        let p = params(4, 60);
        let stream = star_stream(4, 300);
        let per_edge = ThresholdSketch::from_stream(p, 23, &stream);
        for batch in [1usize, 3, 64, 10_000] {
            let mut batched = ThresholdSketch::new(p, 23);
            batched.consume_batched(&stream, batch);
            assert_eq!(batched.acceptance_bound(), per_edge.acceptance_bound());
            assert_eq!(batched.edges_stored(), per_edge.edges_stored());
            assert_eq!(
                batched.canonical_content(),
                per_edge.canonical_content(),
                "batch={batch} must not change the sketch"
            );
            assert_eq!(batched.counters(), per_edge.counters());
        }
    }

    #[test]
    fn dedup_ignores_duplicate_edges() {
        let mut s = ThresholdSketch::new(params(2, 100), 5);
        for _ in 0..10 {
            s.update(Edge::new(0u32, 9u64));
        }
        assert_eq!(s.edges_stored(), 1);
        assert_eq!(s.counters().duplicates, 9);
    }

    #[test]
    fn without_dedup_preserves_arrival_order() {
        // With dedup off the reference engine stores raw arrival order;
        // the flat arena must report the identical (unsorted) list.
        let mut s = ThresholdSketch::new(params(8, 100).without_dedup(), 5);
        for set in [5u32, 1, 7, 1, 3] {
            s.update(Edge::new(set, 9u64));
        }
        let (_, _, sets) = s.retained().next().expect("one element");
        assert_eq!(sets, vec![5, 1, 7, 1, 3]);
        assert_eq!(s.edges_stored(), 5);
    }

    #[test]
    fn retained_elements_are_lowest_hash_prefix() {
        // The key invariant: after any stream, the retained element set is
        // exactly {u : h(u) ≤ bound}, i.e. the lowest-hash elements.
        let p = params(2, 30);
        let seed = 11;
        let s = ThresholdSketch::from_stream(p, seed, &star_stream(2, 500));
        let h = UnitHash::new(seed);
        let bound = s.acceptance_bound();
        let retained: std::collections::HashSet<u64> = s.retained().map(|(k, _, _)| k).collect();
        for e in 0..500u64 {
            let admitted = h.hash(e) <= bound;
            assert_eq!(
                retained.contains(&e),
                admitted,
                "element {e}: hash {:x} vs bound {:x}",
                h.hash(e),
                bound
            );
        }
    }

    #[test]
    fn order_invariance_of_retained_elements() {
        use coverage_stream::ArrivalOrder;
        let p = params(3, 50);
        let seed = 13;
        let base = star_stream(3, 300);
        let mut contents: Vec<Vec<u64>> = Vec::new();
        for order in [
            ArrivalOrder::AsIs,
            ArrivalOrder::Random(1),
            ArrivalOrder::ByHashDesc(seed),
            ArrivalOrder::ElementGrouped(2),
        ] {
            let mut v = base.clone();
            order.apply(v.edges_mut());
            let s = ThresholdSketch::from_stream(p, seed, &v);
            let mut keys: Vec<u64> = s.retained().map(|(k, _, _)| k).collect();
            keys.sort_unstable();
            contents.push(keys);
        }
        for w in contents.windows(2) {
            assert_eq!(w[0], w[1], "retained element set depends on order");
        }
    }

    #[test]
    fn estimate_is_unbiased_on_random_instance() {
        // Mean of estimates across seeds should be near the truth.
        let n_sets = 5u32;
        let m = 2000u64;
        let stream = star_stream(n_sets, m);
        let family: Vec<SetId> = vec![SetId(0)];
        let truth = m as f64;
        let mut sum = 0.0;
        let runs = 30;
        for seed in 0..runs {
            let s = ThresholdSketch::from_stream(params(5, 300), seed, &stream);
            sum += s.estimate_coverage(&family);
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean estimate {mean} vs truth {truth}"
        );
    }

    #[test]
    fn instance_roundtrip_preserves_sketch_graph() {
        let s = ThresholdSketch::from_stream(params(4, 60), 21, &star_stream(4, 100));
        let inst = s.instance();
        assert_eq!(inst.num_edges(), s.edges_stored());
        assert_eq!(inst.num_elements(), s.elements_stored());
        assert_eq!(inst.num_sets(), 4);
    }

    #[test]
    fn csr_view_matches_instance_graph() {
        use coverage_core::CoverageView;
        let s = ThresholdSketch::from_stream(params(4, 60), 21, &star_stream(4, 100));
        let inst = s.instance();
        let view = s.csr_view();
        assert_eq!(view.num_edges(), inst.num_edges());
        assert_eq!(view.num_elements(), inst.num_elements());
        assert_eq!(view.num_sets(), 4);
        // Same element-id membership per set, up to dense relabeling.
        for set in inst.set_ids() {
            let mut a: Vec<u64> = inst.set_elements(set).map(|e| e.0).collect();
            let mut b: Vec<u64> = view
                .dense_set(set)
                .iter()
                .map(|&d| view.element_id(d).0)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "set {set:?}");
        }
        // Identical greedy traces on either representation.
        for k in [1usize, 2, 4] {
            let ti = coverage_core::offline::lazy_greedy_k_cover(&inst, k);
            let tv = coverage_core::offline::bucket_greedy_k_cover(&view, k);
            assert_eq!(ti.steps, tv.steps, "k={k}");
        }
    }

    #[test]
    fn csr_view_canonicalizes_without_dedup() {
        use coverage_core::CoverageView;
        let mut s = ThresholdSketch::new(params(8, 100).without_dedup(), 5);
        for set in [5u32, 1, 7, 1, 3] {
            s.update(Edge::new(set, 9u64));
        }
        let view = s.csr_view();
        // Duplicates collapse and each of {1,3,5,7} holds the element.
        assert_eq!(view.num_edges(), 4);
        for set in [1u32, 3, 5, 7] {
            assert_eq!(view.dense_set(SetId(set)), &[0]);
        }
        assert_eq!(view.dense_set(SetId(0)), &[] as &[u32]);
    }

    #[test]
    fn space_report_peaks() {
        let p = params(4, 40);
        let s = ThresholdSketch::from_stream(p, 9, &star_stream(4, 500));
        let r = s.space_report();
        assert!(r.peak_edges >= s.edges_stored() as u64);
        // Peak can exceed final due to evictions but never the hard cap +
        // one over-step.
        assert!(r.peak_edges <= (p.max_edges() + p.degree_cap) as u64);
        assert_eq!(r.passes, 1);
        assert!(r.peak_aux_words > 0);
    }

    #[test]
    fn space_report_counts_arena_capacity() {
        // Eviction-heavy stream: many elements pass through the arena.
        // The aux peak must cover the store's full capacity footprint —
        // live entries alone would understate resident memory.
        let p = params(4, 40);
        let mut s = ThresholdSketch::new(p, 9);
        let stream = star_stream(4, 2_000);
        stream.for_each(&mut |e| s.update(e));
        let r = s.space_report();
        assert!(
            r.peak_aux_words >= s.store.capacity_words(),
            "aux peak {} below store capacity {}",
            r.peak_aux_words,
            s.store.capacity_words()
        );
    }

    #[test]
    fn merge_of_partition_equals_single_build() {
        // Split a stream's edges across three sketches, merge, and compare
        // with one sketch that saw everything: retained elements must be
        // identical, and (cap not binding: n=3 sets, cap=3) so must the
        // edge sets. With a binding cap only the element sets coincide —
        // the cap keeps an *arbitrary* edge subset (Lemma 2.4).
        let p = SketchParams::with_budget(3, 2, 0.5, 80);
        let seed = 99;
        let full = star_stream(3, 400);
        assert!(p.degree_cap >= 3, "cap must not bind in this test");
        let mut single = ThresholdSketch::new(p, seed);
        let mut parts: Vec<ThresholdSketch> =
            (0..3).map(|_| ThresholdSketch::new(p, seed)).collect();
        let mut i = 0usize;
        full.for_each(&mut |e| {
            single.update(e);
            parts[i % 3].update(e);
            i += 1;
        });
        let mut merged = parts.remove(0);
        for part in &parts {
            merged.merge_from(part);
        }
        assert_eq!(
            single.canonical_content(),
            merged.canonical_content(),
            "merged partition must equal the single build"
        );
        // Bounds may differ (they depend on eviction history) but both
        // must separate the retained prefix from everything else.
        let max_kept = single.retained().map(|(_, h, _)| h).max().unwrap();
        assert!(single.acceptance_bound() >= max_kept);
        assert!(merged.acceptance_bound() >= max_kept);
    }

    #[test]
    fn merge_is_shape_independent_under_binding_cap() {
        // 12 sets, cap well below 12, so the union truncates. Any merge
        // order (left fold, right fold, balanced tree) must produce the
        // identical sketch — the canonical min-id truncation at work.
        let p = SketchParams::with_budget(12, 1, 0.9, 60);
        assert!(p.degree_cap < 12, "cap must bind in this test");
        let seed = 5;
        let parts: Vec<ThresholdSketch> = (0..4)
            .map(|part| {
                let mut s = ThresholdSketch::new(p, seed);
                for set in 0..12u32 {
                    for e in 0..120u64 {
                        if (set as u64 + e) % 4 == part {
                            s.update(Edge::new(set, e));
                        }
                    }
                }
                s
            })
            .collect();
        // Left fold: ((0·1)·2)·3
        let mut left = parts[0].clone();
        for part in &parts[1..] {
            left.merge_from(part);
        }
        // Right fold: 0·(1·(2·3))
        let mut right = parts[3].clone();
        right.merge_from(&parts[2]);
        right.merge_from(&parts[1]);
        right.merge_from(&parts[0]);
        // Balanced: (0·1)·(2·3)
        let mut ab = parts[0].clone();
        ab.merge_from(&parts[1]);
        let mut cd = parts[2].clone();
        cd.merge_from(&parts[3]);
        ab.merge_from(&cd);
        assert_eq!(left.canonical_content(), right.canonical_content());
        assert_eq!(left.canonical_content(), ab.canonical_content());
    }

    #[test]
    #[should_panic(expected = "share parameters")]
    fn merge_rejects_mismatched_params() {
        let a = ThresholdSketch::new(params(2, 10), 1);
        let b = ThresholdSketch::new(params(2, 20), 1);
        let mut a = a;
        a.merge_from(&b);
    }

    #[test]
    fn bound_monotonically_decreases() {
        let mut s = ThresholdSketch::new(params(2, 20), 17);
        let mut last = s.acceptance_bound();
        for e in 0..500u64 {
            s.update(Edge::new(0u32, e));
            s.update(Edge::new(1u32, e));
            assert!(s.acceptance_bound() <= last);
            last = s.acceptance_bound();
        }
    }
}
