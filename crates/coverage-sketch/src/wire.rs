//! Versioned binary wire format for sketch snapshots.
//!
//! JSON snapshots ([`SketchSnapshot::to_json`],
//! [`DynamicSnapshot::to_json`]) are the readable interchange format; this
//! module is the *deployable* one — the compact, length-prefixed,
//! checksummed frames the distributed executors ship between worker
//! processes (`coverage-dist`).
//!
//! ## Frame layout (version 1)
//!
//! | offset        | size | field                                     |
//! |---------------|------|-------------------------------------------|
//! | 0             | 4    | magic `b"CVSK"`                           |
//! | 4             | 2    | format version, `u16` LE (currently 1)    |
//! | 6             | 1    | payload kind (1 = threshold, 2 = dynamic) |
//! | 7             | 1    | flags (see below)                         |
//! | 8             | 8    | payload length `u64` LE                   |
//! | 16            | len  | payload                                   |
//! | 16 + len      | 8    | FNV-1a 64 checksum of bytes `0..16+len`   |
//!
//! Version policy: the version is bumped whenever the payload encoding
//! changes incompatibly; decoders reject frames from any other version
//! with [`WireError::UnsupportedVersion`] rather than guessing. Flags are
//! per-kind encoding options (today: bit 0 = explicit hashes, bit 1 = raw
//! keys, both threshold-only); unknown flag bits are rejected so future
//! options cannot be silently misread.
//!
//! ## Decoding is total
//!
//! [`decode_binary`](SketchSnapshot::decode_binary) never panics:
//! corrupt input of every class maps to a typed [`WireError`] — bad
//! magic, unknown version or kind, truncation, trailing bytes, checksum
//! mismatch, malformed payload structure, or a payload that parses but
//! violates a sketch invariant (an entry hashing above the acceptance
//! bound, a degree-cap overflow, an impossible cell geometry). The
//! validation order is fixed so each corruption class reports its own
//! error: magic → version → kind → length → checksum → payload structure
//! → semantic invariants. A successfully decoded snapshot satisfies every
//! precondition of `restore()`, so `decode → restore` cannot panic.
//!
//! ## Payload encodings
//!
//! The threshold payload exploits snapshot canonical form: entry keys are
//! strictly increasing, so they are delta-encoded as LEB128 varints;
//! per-entry hashes are *omitted* entirely (the hash is always
//! `h(key)` under the snapshot's seeded [`UnitHash`], so the decoder
//! recomputes them); set ids are varints; `truncated` flags pack into a
//! bitset. The dynamic payload is sparse: only non-zero cells are
//! written (index-gap varints + zigzag sums), which is what makes deep,
//! mostly-empty level banks cheap to ship.

use coverage_hash::UnitHash;

use crate::dynamic::{Cell, DynamicCounters, DynamicSketchParams, DynamicSnapshot};
use crate::params::SketchParams;
use crate::serial::{SketchSnapshot, SnapshotEntry};
use crate::threshold::SketchCounters;

/// Frame magic: the first four bytes of every snapshot frame.
pub const WIRE_MAGIC: [u8; 4] = *b"CVSK";
/// Current (and only) frame format version.
pub const WIRE_VERSION: u16 = 1;
/// Fixed header size: magic + version + kind + flags + payload length.
pub const HEADER_LEN: usize = 16;
/// Trailing checksum size.
pub const CHECKSUM_LEN: usize = 8;

/// Threshold-payload flag: per-entry hashes are stored explicitly
/// (written only for non-canonical snapshots whose hashes differ from
/// `h(key)`; never produced by [`SketchSnapshot::of`]).
const FLAG_EXPLICIT_HASHES: u8 = 1 << 0;
/// Threshold-payload flag: entry keys are stored as raw varints instead
/// of deltas (written only when keys are not strictly increasing).
const FLAG_RAW_KEYS: u8 = 1 << 1;

/// Upper bound on the cell count a decoded dynamic frame may declare —
/// rejects corrupt geometry before it turns into a giant allocation.
const MAX_WIRE_CELLS: usize = 1 << 28;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadKind {
    /// A [`SketchSnapshot`] (insertion-only threshold sketch).
    Threshold,
    /// A [`DynamicSnapshot`] (insert/delete linear sketch).
    Dynamic,
}

impl PayloadKind {
    fn code(self) -> u8 {
        match self {
            PayloadKind::Threshold => 1,
            PayloadKind::Dynamic => 2,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(PayloadKind::Threshold),
            2 => Some(PayloadKind::Dynamic),
            _ => None,
        }
    }
}

/// Typed decode failure. Every corruption class has its own variant so
/// callers (and the corruption tests) can assert the *reason* a frame
/// was rejected, and none of them panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The frame's format version is not [`WIRE_VERSION`].
    UnsupportedVersion {
        /// The version the frame declared.
        found: u16,
    },
    /// The frame's payload-kind byte names no known payload.
    UnknownKind {
        /// The kind byte the frame declared.
        found: u8,
    },
    /// The frame is valid but carries the other snapshot type.
    WrongKind {
        /// The kind the caller asked to decode.
        expected: PayloadKind,
        /// The kind the frame actually carries.
        found: PayloadKind,
    },
    /// The buffer is shorter than the frame it declares.
    Truncated {
        /// Bytes the frame needs.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The buffer is longer than the frame it declares.
    TrailingBytes,
    /// The trailing checksum does not match the frame contents.
    ChecksumMismatch,
    /// The payload structure cannot be parsed (bad varint, impossible
    /// count, unknown flag bits, leftover payload bytes, …).
    Malformed(&'static str),
    /// The payload parsed but violates a sketch invariant that
    /// `restore()` would otherwise panic on.
    Invariant(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (expected {WIRE_VERSION})"
                )
            }
            WireError::UnknownKind { found } => write!(f, "unknown payload kind {found}"),
            WireError::WrongKind { expected, found } => {
                write!(f, "frame carries {found:?}, expected {expected:?}")
            }
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            WireError::TrailingBytes => write!(f, "trailing bytes after frame"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Invariant(what) => write!(f, "payload violates sketch invariant: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 64-bit checksum (the frame trailer).
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only little-endian byte writer shared by the snapshot codec
/// and the subprocess protocol in `coverage-dist`.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append an LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Append a zigzag-mapped signed varint.
    pub fn put_zigzag(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Consume the writer, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian byte reader — the decoding twin of
/// [`WireWriter`]. Every getter returns [`WireError::Malformed`] instead
/// of panicking when the buffer runs out.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True once every byte is consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed("payload ends mid-field"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Read an LEB128 varint (rejects encodings past 10 bytes and
    /// overflowing continuations).
    pub fn get_varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.get_u8()?;
            let low = (b & 0x7f) as u64;
            if shift == 63 && low > 1 {
                return Err(WireError::Malformed("varint overflows 64 bits"));
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::Malformed("varint longer than 10 bytes"))
    }

    /// Read a zigzag-mapped signed varint.
    pub fn get_zigzag(&mut self) -> Result<i64, WireError> {
        let v = self.get_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Read a varint and narrow it to `usize`.
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.get_varint()?)
            .map_err(|_| WireError::Malformed("length exceeds the address space"))
    }
}

/// Wrap `payload` in a version-1 frame of the given kind and flags.
fn encode_frame(kind: PayloadKind, flags: u8, payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_bytes(&WIRE_MAGIC);
    w.put_u16(WIRE_VERSION);
    w.put_u8(kind.code());
    w.put_u8(flags);
    w.put_u64(payload.len() as u64);
    w.put_bytes(payload);
    let sum = checksum64(&w.buf);
    w.put_u64(sum);
    w.into_bytes()
}

/// Validate a frame's envelope and return `(kind, flags, payload)`.
///
/// Validation order (each corruption class gets its own error): size of
/// the fixed parts → magic → version → kind → declared length vs buffer
/// → checksum. Payload structure and semantics are the caller's job.
fn decode_frame(bytes: &[u8]) -> Result<(PayloadKind, u8, &[u8]), WireError> {
    let floor = HEADER_LEN + CHECKSUM_LEN;
    if bytes.len() < floor {
        return Err(WireError::Truncated {
            needed: floor,
            have: bytes.len(),
        });
    }
    if bytes[0..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let kind =
        PayloadKind::from_code(bytes[6]).ok_or(WireError::UnknownKind { found: bytes[6] })?;
    let flags = bytes[7];
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let needed = usize::try_from(payload_len)
        .ok()
        .and_then(|p| p.checked_add(floor))
        .ok_or(WireError::Truncated {
            needed: usize::MAX,
            have: bytes.len(),
        })?;
    if bytes.len() < needed {
        return Err(WireError::Truncated {
            needed,
            have: bytes.len(),
        });
    }
    if bytes.len() > needed {
        return Err(WireError::TrailingBytes);
    }
    let body_end = needed - CHECKSUM_LEN;
    let declared = u64::from_le_bytes(bytes[body_end..needed].try_into().unwrap());
    if checksum64(&bytes[..body_end]) != declared {
        return Err(WireError::ChecksumMismatch);
    }
    Ok((kind, flags, &bytes[HEADER_LEN..body_end]))
}

/// The kind a frame carries, validating the whole envelope (magic,
/// version, length, checksum) along the way.
pub fn frame_kind(bytes: &[u8]) -> Result<PayloadKind, WireError> {
    decode_frame(bytes).map(|(kind, _, _)| kind)
}

fn put_params(w: &mut WireWriter, p: &SketchParams) {
    w.put_varint(p.num_sets as u64);
    w.put_varint(p.k as u64);
    w.put_u64(p.epsilon.to_bits());
    w.put_varint(p.degree_cap as u64);
    w.put_varint(p.edge_budget as u64);
    w.put_varint(p.edge_slack as u64);
    w.put_u8(p.dedup as u8);
}

fn get_params(r: &mut WireReader<'_>) -> Result<SketchParams, WireError> {
    let num_sets = r.get_len()?;
    let k = r.get_len()?;
    let epsilon = f64::from_bits(r.get_u64()?);
    let degree_cap = r.get_len()?;
    let edge_budget = r.get_len()?;
    let edge_slack = r.get_len()?;
    let dedup = match r.get_u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("dedup flag is not 0 or 1")),
    };
    Ok(SketchParams {
        num_sets,
        k,
        epsilon,
        degree_cap,
        edge_budget,
        edge_slack,
        dedup,
    })
}

impl SketchSnapshot {
    /// Encode into a version-1 binary frame.
    ///
    /// Canonical snapshots (as produced by [`SketchSnapshot::of`]) get
    /// the compact encoding: delta-varint keys, recomputable hashes
    /// omitted. Non-canonical snapshots (hand-built, unsorted, or with
    /// hashes that differ from `h(key)`) still encode losslessly via the
    /// `FLAG_RAW_KEYS` / `FLAG_EXPLICIT_HASHES` fallbacks — encoding is
    /// total, it never panics.
    pub fn encode_binary(&self) -> Vec<u8> {
        let sorted = self.entries.windows(2).all(|w| w[0].key < w[1].key);
        let hash = UnitHash::from_raw_seed(self.raw_seed);
        let canonical_hashes = self.entries.iter().all(|e| e.hash == hash.hash(e.key));
        let mut flags = 0u8;
        if !canonical_hashes {
            flags |= FLAG_EXPLICIT_HASHES;
        }
        if !sorted {
            flags |= FLAG_RAW_KEYS;
        }

        let mut w = WireWriter::new();
        w.put_u64(self.raw_seed);
        put_params(&mut w, &self.params);
        w.put_u64(self.bound);
        w.put_varint(self.counters.arrivals);
        w.put_varint(self.counters.rejected_by_bound);
        w.put_varint(self.counters.rejected_by_cap);
        w.put_varint(self.counters.duplicates);
        w.put_varint(self.counters.evictions);
        w.put_varint(self.entries.len() as u64);
        if sorted {
            let mut prev = 0u64;
            for (i, e) in self.entries.iter().enumerate() {
                w.put_varint(if i == 0 { e.key } else { e.key - prev });
                prev = e.key;
            }
        } else {
            for e in &self.entries {
                w.put_varint(e.key);
            }
        }
        if !canonical_hashes {
            for e in &self.entries {
                w.put_u64(e.hash);
            }
        }
        for e in &self.entries {
            w.put_varint(e.sets.len() as u64);
            for &s in &e.sets {
                w.put_varint(s as u64);
            }
        }
        let mut bits = vec![0u8; self.entries.len().div_ceil(8)];
        for (i, e) in self.entries.iter().enumerate() {
            if e.truncated {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        w.put_bytes(&bits);
        encode_frame(PayloadKind::Threshold, flags, &w.into_bytes())
    }

    /// Decode a binary frame produced by
    /// [`encode_binary`](Self::encode_binary).
    ///
    /// Total: every corruption maps to a typed [`WireError`]. On success
    /// the snapshot satisfies every `restore()` precondition (entries
    /// hash at or below the bound, degree cap respected), so
    /// `decode_binary(..)?.restore()` cannot panic.
    pub fn decode_binary(bytes: &[u8]) -> Result<Self, WireError> {
        let (kind, flags, payload) = decode_frame(bytes)?;
        if kind != PayloadKind::Threshold {
            return Err(WireError::WrongKind {
                expected: PayloadKind::Threshold,
                found: kind,
            });
        }
        if flags & !(FLAG_EXPLICIT_HASHES | FLAG_RAW_KEYS) != 0 {
            return Err(WireError::Malformed("unknown flag bits"));
        }
        let explicit_hashes = flags & FLAG_EXPLICIT_HASHES != 0;
        let raw_keys = flags & FLAG_RAW_KEYS != 0;

        let mut r = WireReader::new(payload);
        let raw_seed = r.get_u64()?;
        let params = get_params(&mut r)?;
        let bound = r.get_u64()?;
        let counters = SketchCounters {
            arrivals: r.get_varint()?,
            rejected_by_bound: r.get_varint()?,
            rejected_by_cap: r.get_varint()?,
            duplicates: r.get_varint()?,
            evictions: r.get_varint()?,
        };
        let n = r.get_len()?;
        // Each entry costs at least one key byte, so a count beyond the
        // remaining payload cannot be honest — refuse before allocating.
        if n > r.remaining() {
            return Err(WireError::Malformed("entry count exceeds payload size"));
        }
        let mut keys = Vec::with_capacity(n);
        if raw_keys {
            for _ in 0..n {
                keys.push(r.get_varint()?);
            }
        } else {
            let mut prev = 0u64;
            for i in 0..n {
                let v = r.get_varint()?;
                let key = if i == 0 {
                    v
                } else {
                    if v == 0 {
                        return Err(WireError::Malformed("delta keys not strictly increasing"));
                    }
                    prev.checked_add(v)
                        .ok_or(WireError::Malformed("delta key overflows u64"))?
                };
                keys.push(key);
                prev = key;
            }
        }
        let hash = UnitHash::from_raw_seed(raw_seed);
        let hashes: Vec<u64> = if explicit_hashes {
            let mut hs = Vec::with_capacity(n);
            for _ in 0..n {
                hs.push(r.get_u64()?);
            }
            hs
        } else {
            keys.iter().map(|&k| hash.hash(k)).collect()
        };
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let len = r.get_len()?;
            if len > r.remaining() {
                return Err(WireError::Malformed("set count exceeds payload size"));
            }
            let mut sets = Vec::with_capacity(len);
            for _ in 0..len {
                let s = r.get_varint()?;
                let s = u32::try_from(s).map_err(|_| WireError::Malformed("set id exceeds u32"))?;
                sets.push(s);
            }
            entries.push(SnapshotEntry {
                key: keys[i],
                hash: hashes[i],
                sets,
                truncated: false,
            });
        }
        let bits = r.get_bytes(n.div_ceil(8))?;
        for (i, e) in entries.iter_mut().enumerate() {
            e.truncated = bits[i / 8] >> (i % 8) & 1 == 1;
        }
        if !r.is_done() {
            return Err(WireError::Malformed("leftover payload bytes"));
        }
        // Semantic invariants: everything `restore()` would panic on.
        for e in &entries {
            if e.hash > bound {
                return Err(WireError::Invariant(
                    "entry hashes above the acceptance bound",
                ));
            }
            if e.sets.len() > params.degree_cap {
                return Err(WireError::Invariant("entry exceeds the degree cap"));
            }
        }
        Ok(SketchSnapshot {
            raw_seed,
            params,
            bound,
            entries,
            counters,
        })
    }
}

impl DynamicSnapshot {
    /// Encode into a version-1 binary frame.
    ///
    /// Sparse: only non-zero cells are written (index gaps + zigzag
    /// sums), so deep mostly-empty level banks cost almost nothing.
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.raw_seed);
        put_params(&mut w, &self.params.base);
        w.put_varint(self.params.levels as u64);
        w.put_varint(self.params.rows as u64);
        w.put_varint(self.params.row_len as u64);
        w.put_varint(self.counters.inserts);
        w.put_varint(self.counters.deletes);
        let cells = self.cells();
        let nonzero = cells.iter().filter(|c| !c.is_zero()).count();
        w.put_varint(nonzero as u64);
        let mut prev = 0usize;
        let mut first = true;
        for (i, c) in cells.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            w.put_varint(if first { i as u64 } else { (i - prev) as u64 });
            first = false;
            prev = i;
            w.put_zigzag(c.count);
            w.put_zigzag(c.set_sum as i64);
            w.put_zigzag(c.elem_sum as i64);
            w.put_u64(c.check_sum);
        }
        encode_frame(PayloadKind::Dynamic, 0, &w.into_bytes())
    }

    /// Decode a binary frame produced by
    /// [`encode_binary`](Self::encode_binary).
    ///
    /// Total: every corruption maps to a typed [`WireError`], and the
    /// declared cell geometry is validated (level/row bounds, checked
    /// size arithmetic) so `decode_binary(..)?.restore()` cannot panic.
    pub fn decode_binary(bytes: &[u8]) -> Result<Self, WireError> {
        let (kind, flags, payload) = decode_frame(bytes)?;
        if kind != PayloadKind::Dynamic {
            return Err(WireError::WrongKind {
                expected: PayloadKind::Dynamic,
                found: kind,
            });
        }
        if flags != 0 {
            return Err(WireError::Malformed("unknown flag bits"));
        }
        let mut r = WireReader::new(payload);
        let raw_seed = r.get_u64()?;
        let base = get_params(&mut r)?;
        let levels = r.get_len()?;
        let rows = r.get_len()?;
        let row_len = r.get_len()?;
        // The geometry bounds `DynamicSketch::with_hash` asserts, plus a
        // total-size cap so a corrupt frame cannot demand a giant
        // allocation.
        if !(1..=48).contains(&levels) {
            return Err(WireError::Invariant("levels outside 1..=48"));
        }
        if !(1..=8).contains(&rows) {
            return Err(WireError::Invariant("rows outside 1..=8"));
        }
        if row_len == 0 {
            return Err(WireError::Invariant("row_len is zero"));
        }
        let total = levels
            .checked_mul(rows)
            .and_then(|x| x.checked_mul(row_len))
            .filter(|&t| t <= MAX_WIRE_CELLS)
            .ok_or(WireError::Invariant("cell geometry too large"))?;
        let params = DynamicSketchParams {
            base,
            levels,
            rows,
            row_len,
        };
        let counters = DynamicCounters {
            inserts: r.get_varint()?,
            deletes: r.get_varint()?,
        };
        let nonzero = r.get_len()?;
        if nonzero > total {
            return Err(WireError::Malformed("non-zero cell count exceeds geometry"));
        }
        if nonzero > r.remaining() {
            return Err(WireError::Malformed(
                "non-zero cell count exceeds payload size",
            ));
        }
        let mut cells = vec![Cell::default(); total];
        let mut idx = 0usize;
        for i in 0..nonzero {
            let gap = r.get_len()?;
            if i == 0 {
                idx = gap;
            } else {
                if gap == 0 {
                    return Err(WireError::Malformed("cell indices not strictly increasing"));
                }
                idx = idx
                    .checked_add(gap)
                    .ok_or(WireError::Malformed("cell index overflows"))?;
            }
            if idx >= total {
                return Err(WireError::Malformed("cell index outside geometry"));
            }
            cells[idx] = Cell {
                count: r.get_zigzag()?,
                set_sum: r.get_zigzag()? as u64,
                elem_sum: r.get_zigzag()? as u64,
                check_sum: r.get_u64()?,
            };
        }
        if !r.is_done() {
            return Err(WireError::Malformed("leftover payload bytes"));
        }
        Ok(DynamicSnapshot::from_parts(
            raw_seed, params, counters, cells,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynamicSketch;
    use crate::threshold::ThresholdSketch;
    use coverage_core::Edge;
    use coverage_stream::{SignedEdge, VecDynamicStream, VecStream};

    fn sample_snapshot() -> SketchSnapshot {
        let params = SketchParams::with_budget(8, 2, 0.5, 150);
        let mut edges = Vec::new();
        for s in 0..8u32 {
            for e in 0..400u64 {
                if !(e + s as u64).is_multiple_of(3) {
                    edges.push(Edge::new(s, e * 17 + s as u64));
                }
            }
        }
        let sketch = ThresholdSketch::from_stream(params, 42, &VecStream::new(8, edges));
        SketchSnapshot::of(&sketch)
    }

    fn sample_dynamic_snapshot() -> DynamicSnapshot {
        let base = SketchParams::with_budget(5, 2, 0.5, 120);
        let params = DynamicSketchParams::new(base);
        let mut ups = Vec::new();
        for s in 0..5u32 {
            for e in 0..300u64 {
                ups.push(SignedEdge::insert(Edge::new(s, e * 3 + s as u64)));
            }
        }
        for s in 0..5u32 {
            for e in 0..300u64 {
                if e % 4 == 0 {
                    ups.push(SignedEdge::delete(Edge::new(s, e * 3 + s as u64)));
                }
            }
        }
        let sketch = DynamicSketch::from_stream(params, 9, &VecDynamicStream::new(5, ups));
        DynamicSnapshot::of(&sketch)
    }

    #[test]
    fn threshold_roundtrip_is_bit_identical() {
        let snap = sample_snapshot();
        let frame = snap.encode_binary();
        let back = SketchSnapshot::decode_binary(&frame).expect("valid frame");
        assert_eq!(back, snap);
        assert_eq!(
            back.restore().canonical_content(),
            snap.restore().canonical_content()
        );
    }

    #[test]
    fn dynamic_roundtrip_is_bit_identical() {
        let snap = sample_dynamic_snapshot();
        let frame = snap.encode_binary();
        let back = DynamicSnapshot::decode_binary(&frame).expect("valid frame");
        assert_eq!(back, snap);
        let (a, b) = (
            snap.restore().recover().unwrap(),
            back.restore().recover().unwrap(),
        );
        assert_eq!(a.level, b.level);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let snap = sample_snapshot();
        let bin = snap.encode_binary().len();
        let json = snap.to_json().len();
        assert!(
            bin * 5 <= json,
            "binary {bin}B should be at least 5x smaller than JSON {json}B"
        );
        let dsnap = sample_dynamic_snapshot();
        let dbin = dsnap.encode_binary().len();
        let djson = dsnap.to_json().len();
        assert!(
            dbin * 5 <= djson,
            "dynamic binary {dbin}B should be at least 5x smaller than JSON {djson}B"
        );
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let params = SketchParams::with_budget(3, 1, 0.5, 10);
        let sketch = ThresholdSketch::new(params, 1);
        let snap = SketchSnapshot::of(&sketch);
        let back = SketchSnapshot::decode_binary(&snap.encode_binary()).unwrap();
        assert_eq!(back, snap);
        let d = DynamicSketch::new(DynamicSketchParams::new(params), 1);
        let dsnap = DynamicSnapshot::of(&d);
        let dback = DynamicSnapshot::decode_binary(&dsnap.encode_binary()).unwrap();
        assert_eq!(dback, dsnap);
    }

    #[test]
    fn non_canonical_snapshots_still_roundtrip() {
        // Hand-built snapshot: unsorted keys AND hashes that are not
        // h(key) — both fallback flags engage, round-trip stays exact.
        let params = SketchParams::with_budget(4, 1, 0.5, 10);
        let snap = SketchSnapshot {
            raw_seed: 123,
            params,
            bound: u64::MAX,
            entries: vec![
                SnapshotEntry {
                    key: 50,
                    hash: 7,
                    sets: vec![1, 3],
                    truncated: true,
                },
                SnapshotEntry {
                    key: 10,
                    hash: 9,
                    sets: vec![0],
                    truncated: false,
                },
            ],
            counters: SketchCounters::default(),
        };
        let back = SketchSnapshot::decode_binary(&snap.encode_binary()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut frame = sample_snapshot().encode_binary();
        frame[0] ^= 0xff;
        assert_eq!(
            SketchSnapshot::decode_binary(&frame),
            Err(WireError::BadMagic)
        );
    }

    #[test]
    fn rejects_version_bump() {
        let mut frame = sample_snapshot().encode_binary();
        frame[4] = 2;
        assert_eq!(
            SketchSnapshot::decode_binary(&frame),
            Err(WireError::UnsupportedVersion { found: 2 })
        );
    }

    #[test]
    fn rejects_unknown_kind() {
        let mut frame = sample_snapshot().encode_binary();
        frame[6] = 9;
        assert_eq!(
            SketchSnapshot::decode_binary(&frame),
            Err(WireError::UnknownKind { found: 9 })
        );
    }

    #[test]
    fn rejects_wrong_kind() {
        let frame = sample_dynamic_snapshot().encode_binary();
        assert_eq!(
            SketchSnapshot::decode_binary(&frame),
            Err(WireError::WrongKind {
                expected: PayloadKind::Threshold,
                found: PayloadKind::Dynamic,
            })
        );
        let frame = sample_snapshot().encode_binary();
        assert_eq!(
            DynamicSnapshot::decode_binary(&frame),
            Err(WireError::WrongKind {
                expected: PayloadKind::Dynamic,
                found: PayloadKind::Threshold,
            })
        );
    }

    #[test]
    fn rejects_every_truncation_length() {
        let frame = sample_snapshot().encode_binary();
        for cut in 0..frame.len() {
            let err = SketchSnapshot::decode_binary(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut frame = sample_snapshot().encode_binary();
        frame.push(0);
        assert_eq!(
            SketchSnapshot::decode_binary(&frame),
            Err(WireError::TrailingBytes)
        );
    }

    #[test]
    fn payload_bit_flips_hit_the_checksum() {
        let frame = sample_snapshot().encode_binary();
        for &offset in &[HEADER_LEN, HEADER_LEN + 7, frame.len() - CHECKSUM_LEN - 1] {
            let mut bad = frame.clone();
            bad[offset] ^= 0x40;
            assert_eq!(
                SketchSnapshot::decode_binary(&bad),
                Err(WireError::ChecksumMismatch),
                "flip at {offset}"
            );
        }
    }

    #[test]
    fn invariant_violations_are_typed_not_panics() {
        // Entry above the bound: re-encode a corrupt snapshot via the
        // explicit-hash fallback, then decode must refuse.
        let mut snap = sample_snapshot();
        assert!(!snap.entries.is_empty());
        snap.entries[0].hash = u64::MAX;
        snap.bound = 1;
        let frame = snap.encode_binary();
        assert_eq!(
            SketchSnapshot::decode_binary(&frame),
            Err(WireError::Invariant(
                "entry hashes above the acceptance bound"
            ))
        );
        // Degree-cap overflow.
        let mut snap = sample_snapshot();
        snap.entries[0].sets = (0..snap.params.degree_cap as u32 + 1).collect();
        let frame = snap.encode_binary();
        assert_eq!(
            SketchSnapshot::decode_binary(&frame),
            Err(WireError::Invariant("entry exceeds the degree cap"))
        );
    }

    #[test]
    fn frame_kind_reports_payload_type() {
        assert_eq!(
            frame_kind(&sample_snapshot().encode_binary()),
            Ok(PayloadKind::Threshold)
        );
        assert_eq!(
            frame_kind(&sample_dynamic_snapshot().encode_binary()),
            Ok(PayloadKind::Dynamic)
        );
        assert_eq!(
            frame_kind(b"nope"),
            Err(WireError::Truncated {
                needed: 24,
                have: 4
            })
        );
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        let mut w = WireWriter::new();
        let us = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let is = [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN];
        for &v in &us {
            w.put_varint(v);
        }
        for &v in &is {
            w.put_zigzag(v);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for &v in &us {
            assert_eq!(r.get_varint().unwrap(), v);
        }
        for &v in &is {
            assert_eq!(r.get_zigzag().unwrap(), v);
        }
        assert!(r.is_done());
    }

    #[test]
    fn decoded_dynamic_restore_matches_original() {
        let snap = sample_dynamic_snapshot();
        let restored = DynamicSnapshot::decode_binary(&snap.encode_binary())
            .unwrap()
            .restore();
        let original = snap.restore();
        let mut a = restored.clone();
        let mut b = original.clone();
        let extra = SignedEdge::insert(Edge::new(1u32, 987_654u64));
        a.update(extra);
        b.update(extra);
        assert_eq!(
            DynamicSnapshot::of(&a),
            DynamicSnapshot::of(&b),
            "restored sketch must keep evolving identically"
        );
    }
}
