//! The **dynamic** (insert/delete) coverage sketch: an ℓ₀-sampler-backed
//! linear sketch over signed edge streams.
//!
//! ## Why the threshold sketch cannot take deletions
//!
//! [`ThresholdSketch`](crate::ThresholdSketch) is monotone by design: its
//! acceptance bound only ever decreases, and an evicted element can never
//! re-enter (that irrevocability is what makes Algorithm 2 one-pass).
//! A deletion can invalidate both decisions — an element whose edges are
//! deleted should free budget, and a previously evicted element may end
//! up mattering in the surviving graph. Dynamic streams therefore need a
//! different construction.
//!
//! ## The construction: subsampling levels + invertible cells
//!
//! This is the subsampling framework McGregor–Vu (arXiv:1610.06199,
//! Section 5) use for dynamic coverage, instantiated with the ℓ₀-style
//! sparse-recovery machinery of Cormode et al. (the paper's `[16]`): the
//! same geometric `Hp` hierarchy as the paper's sketch, realized with
//! **linear** cells so deletions exactly cancel insertions.
//!
//! * **Levels.** Level `j` admits element `u` iff `h(u) < 2^{64−j}` —
//!   i.e. the lowest-hash `2^{−j}` fraction of the universe, the same
//!   `Hp` subgraphs (`p = 2^{−j}`) that Definition 2.1 builds, with the
//!   same [`UnitHash`]. An element admitted at level `j` is admitted at
//!   every shallower level, so an update touches ~2 levels in
//!   expectation.
//! * **Cells.** Each level is a bank of `rows × row_len` counting cells
//!   `(count, set_sum, elem_sum, check_sum)`. An update of edge `(S,u)`
//!   with sign `±1` adds `±(1, S, u, fingerprint(S,u))` to one cell per
//!   row. Every cell is a *linear* function of the net edge multiset:
//!   a delete is literally the inverse of its insert, and two sketches
//!   merge by cell-wise addition.
//! * **Recovery.** A level decodes by iterative peeling: any cell with
//!   `count = 1` and a consistent checksum reveals one surviving edge,
//!   which is subtracted from its other cells, potentially unlocking
//!   them. Decoding succeeds w.h.p. once the level holds at most
//!   [`capacity`](DynamicSketchParams::capacity) surviving edges. The
//!   query scans levels shallow→deep and returns the **first** level
//!   that decodes — the densest recoverable `Hp` sample, i.e. the
//!   largest `p` whose subgraph fits the budget, exactly Definition
//!   2.1's `p*` rule transplanted to the dynamic setting.
//!
//! The recovered sample is then degree-capped (Lemma 2.4's cap, with the
//! canonical min-set-id truncation) and handed to the offline solver,
//! mirroring the insertion-only pipeline; per-set post-deletion supports
//! are estimated with the [`KmvSketch`] ℓ₀ machinery from
//! `coverage-hash` scaled by `1/p`.
//!
//! ## Determinism contract
//!
//! Every cell is a linear function of the **net** multiset of updates,
//! so the whole sketch state — and therefore recovery, the chosen level,
//! and the final cover — depends only on `inserts ∪ deletes` *as a
//! multiset*, never on arrival order, batching, partitioning, or merge
//! shape:
//!
//! * a dynamic sketch fed `inserts ∪ deletes` is **bit-identical** to
//!   one fed only the surviving edges;
//! * [`merge_from`](DynamicSketch::merge_from) is exactly associative
//!   *and* commutative (cell-wise wrapping addition), so any reduction
//!   tree over any partition of the updates reproduces the
//!   single-machine sketch.
//!
//! Both halves are property-tested in `tests/dynamic_stream.rs` and
//! re-checked by the `bench_smoke` CI gate.
//!
//! ## The contract's price
//!
//! Space is `levels × rows × row_len` cells of 4 words — `Õ(B·log m)`
//! for edge budget `B`, a `log` factor over the insertion-only sketch.
//! That is not an implementation artifact: dynamic streaming provably
//! costs more (see the lower bounds discussed in arXiv:2403.14087), and
//! the `exp_dynamic` experiment measures the gap empirically.

use coverage_core::{CoverageInstance, CsrInstance, Edge, ElementId, InstanceBuilder, SetId};
use coverage_hash::{mix64, KmvSketch, UnitHash};
use coverage_stream::{DynamicEdgeStream, SignedEdge, SpaceReport, SpaceTracker};
use serde::{Deserialize, Serialize};

use crate::params::SketchParams;

/// Hash rows per level bank (3 gives the classic peeling threshold).
const DEFAULT_ROWS: usize = 3;
/// Hard cap on rows — lets the hot path keep per-row slots in a fixed
/// stack array instead of allocating per update.
const MAX_ROWS: usize = 8;
/// Cells per surviving edge of capacity. Peeling over 3 rows succeeds
/// w.h.p. below ~0.81 load; 1.65 leaves a wide margin for small banks.
const CELLS_PER_EDGE: f64 = 1.65;
/// Default number of subsampling levels: supports surviving edge sets up
/// to ~`capacity · 2^{DEFAULT_LEVELS-1}` edges.
const DEFAULT_LEVELS: usize = 20;

/// Parameters of one dynamic sketch.
///
/// Reuses [`SketchParams`] for everything the two pipelines share
/// (`num_sets`, `k`, `ε`, degree cap, edge budget) and adds the
/// level/bank geometry specific to the linear construction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynamicSketchParams {
    /// The shared sketch parameters (sizing, degree cap, budget).
    pub base: SketchParams,
    /// Number of geometric subsampling levels (`p = 2^{−j}` for level
    /// `j`). The deepest level must be sparse enough to decode, so
    /// `levels ≳ log₂(|E_surv| / budget) + 2`.
    pub levels: usize,
    /// Hash rows per level bank.
    pub rows: usize,
    /// Cells per row.
    pub row_len: usize,
}

impl DynamicSketchParams {
    /// Parameters with the default level count and bank geometry derived
    /// from `base.max_edges()`.
    pub fn new(base: SketchParams) -> Self {
        let capacity = base.max_edges().max(8);
        let cells = ((capacity as f64 * CELLS_PER_EDGE).ceil() as usize).max(48);
        DynamicSketchParams {
            base,
            levels: DEFAULT_LEVELS,
            rows: DEFAULT_ROWS,
            row_len: cells.div_ceil(DEFAULT_ROWS),
        }
    }

    /// Override the level count (`1 ≤ levels ≤ 48`).
    pub fn with_levels(mut self, levels: usize) -> Self {
        assert!((1..=48).contains(&levels), "levels must be in 1..=48");
        self.levels = levels;
        self
    }

    /// Surviving edges one level is sized to decode reliably
    /// (`base.max_edges()` — the same `B + slack` rule as the
    /// insertion-only sketch).
    pub fn capacity(&self) -> usize {
        self.base.max_edges().max(8)
    }

    /// Total cells across all levels (4 words each).
    pub fn total_cells(&self) -> usize {
        self.levels * self.rows * self.row_len
    }
}

/// One linear counting cell. All fields are sums over the net edge
/// multiset routed to this cell: `count` of signs, `set_sum`/`elem_sum`
/// of endpoint ids, `check_sum` of per-edge fingerprints (wrapping
/// arithmetic — linearity over `ℤ/2^64` is what makes merges exact).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Cell {
    pub(crate) count: i64,
    pub(crate) set_sum: u64,
    pub(crate) elem_sum: u64,
    pub(crate) check_sum: u64,
}

impl Cell {
    #[inline]
    fn apply(&mut self, sign: i64, set: u64, elem: u64, check: u64) {
        self.count = self.count.wrapping_add(sign);
        if sign >= 0 {
            self.set_sum = self.set_sum.wrapping_add(set);
            self.elem_sum = self.elem_sum.wrapping_add(elem);
            self.check_sum = self.check_sum.wrapping_add(check);
        } else {
            self.set_sum = self.set_sum.wrapping_sub(set);
            self.elem_sum = self.elem_sum.wrapping_sub(elem);
            self.check_sum = self.check_sum.wrapping_sub(check);
        }
    }

    #[inline]
    fn merge(&mut self, other: &Cell) {
        self.count = self.count.wrapping_add(other.count);
        self.set_sum = self.set_sum.wrapping_add(other.set_sum);
        self.elem_sum = self.elem_sum.wrapping_add(other.elem_sum);
        self.check_sum = self.check_sum.wrapping_add(other.check_sum);
    }

    #[inline]
    pub(crate) fn is_zero(&self) -> bool {
        self.count == 0 && self.set_sum == 0 && self.elem_sum == 0 && self.check_sum == 0
    }
}

/// One signed update with every hash-derived quantity precomputed — the
/// scratch unit of [`DynamicSketch::update_batch`]. Preparing a whole
/// chunk first (straight-line mixer/fingerprint loops) and then applying
/// cell writes **level-major** keeps one level's bank cache-resident
/// across the chunk instead of striding through all admitted levels per
/// update; since cell updates are wrapping additions, any application
/// order produces bit-identical cells.
#[derive(Clone, Copy, Debug)]
struct PreparedUpdate {
    sign: i64,
    set: u64,
    elem: u64,
    check: u64,
    /// Deepest admitting level (`≤ levels − 1 ≤ 47`, fits a byte).
    max_level: u8,
    /// Per-row cell slots (only the first `rows` entries meaningful).
    slots: [u32; MAX_ROWS],
}

/// Updates prepared per scratch refill in the batched path.
const PREPARE_CHUNK: usize = 2048;

/// Streaming-side counters of a dynamic sketch (diagnostics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicCounters {
    /// Insert events processed.
    pub inserts: u64,
    /// Delete events processed.
    pub deletes: u64,
}

impl DynamicCounters {
    /// Net update count (inserts − deletes, saturating at zero).
    pub fn net(&self) -> u64 {
        self.inserts.saturating_sub(self.deletes)
    }
}

/// The sample recovered from a dynamic sketch: the surviving edges of
/// the densest decodable subsampling level.
#[derive(Clone, Debug)]
pub struct DynamicSample {
    /// The level that decoded (0 = the whole surviving graph).
    pub level: usize,
    /// The level's sampling probability `p = 2^{−level}`.
    pub sampling_p: f64,
    /// The recovered surviving edges, in canonical (sorted) order.
    pub edges: Vec<Edge>,
}

impl DynamicSample {
    /// True if the sample is the entire surviving graph (`p = 1`).
    pub fn is_exact(&self) -> bool {
        self.level == 0
    }
}

/// The dynamic `H≤n`-style sketch over signed edge streams.
#[derive(Clone, Debug)]
pub struct DynamicSketch {
    hash: UnitHash,
    params: DynamicSketchParams,
    /// Flat cell storage: `cells[level · rows · row_len + row · row_len + slot]`.
    cells: Vec<Cell>,
    /// Per-row placement salts, fixed for the sketch's lifetime (derived
    /// from the post-mix hash seed so snapshot restores reproduce them).
    salts: [u64; MAX_ROWS],
    counters: DynamicCounters,
    tracker: SpaceTracker,
    /// Reused scratch for [`update_batch`](Self::update_batch).
    scratch: Vec<PreparedUpdate>,
}

impl DynamicSketch {
    /// A fresh sketch; `seed` determines the element hash (sketches that
    /// merge must share it, exactly as for the insertion-only sketch).
    pub fn new(params: DynamicSketchParams, seed: u64) -> Self {
        Self::with_hash(params, UnitHash::new(seed))
    }

    fn with_hash(params: DynamicSketchParams, hash: UnitHash) -> Self {
        assert!(params.levels >= 1 && params.rows >= 1 && params.row_len >= 1);
        assert!(
            params.rows <= MAX_ROWS,
            "at most {MAX_ROWS} rows per level bank"
        );
        let total = params.total_cells();
        let mut tracker = SpaceTracker::new();
        tracker.add_aux(4 * total as u64);
        // Per-row placement salts, derived from the post-mix hash seed
        // so a restored snapshot reproduces the identical placement.
        let mut salts = [0u64; MAX_ROWS];
        for (row, salt) in salts.iter_mut().enumerate() {
            *salt = mix64(hash.seed() ^ (0xA11C_E000 + row as u64));
        }
        DynamicSketch {
            hash,
            params,
            cells: vec![Cell::default(); total],
            salts,
            counters: DynamicCounters::default(),
            tracker,
            scratch: Vec::new(),
        }
    }

    /// The parameters this sketch was built with.
    pub fn params(&self) -> &DynamicSketchParams {
        &self.params
    }

    /// The hash function's raw post-mix seed (snapshot support).
    pub fn raw_hash_seed(&self) -> u64 {
        self.hash.seed()
    }

    /// Per-edge fingerprint (checksum identity), independent of the
    /// placement salts.
    #[inline]
    fn fingerprint(&self, set: u64, elem: u64) -> u64 {
        mix64(mix64(set ^ self.hash.seed().rotate_left(17)) ^ elem)
    }

    /// Deepest level admitting an element with hash `h`: level `j`
    /// admits iff `h < 2^{64−j}`, so the cutoff is `leading_zeros(h)`.
    #[inline]
    fn max_level(&self, h: u64) -> usize {
        (h.leading_zeros() as usize).min(self.params.levels - 1)
    }

    /// Per-row cell slots of the edge with fingerprint `check`. Slots
    /// depend on the row only — never the level — so callers compute
    /// them once per update and reuse them across the whole level loop
    /// (only the first `params.rows` entries are meaningful).
    #[inline]
    fn row_slots(&self, check: u64) -> [usize; MAX_ROWS] {
        let row_len = self.params.row_len;
        let mut slots = [0usize; MAX_ROWS];
        for (slot, &salt) in slots.iter_mut().zip(&self.salts).take(self.params.rows) {
            *slot = ((mix64(check ^ salt) as u128 * row_len as u128) >> 64) as usize;
        }
        slots
    }

    /// Process one signed update. `O(rows)` expected work: an element
    /// lands in `1 + leading_zeros(h)` levels, which is 2 in
    /// expectation.
    pub fn update(&mut self, u: SignedEdge) {
        let sign = u.sign();
        if sign > 0 {
            self.counters.inserts += 1;
        } else {
            self.counters.deletes += 1;
        }
        let set = u.edge.set.0 as u64;
        let elem = u.edge.element.0;
        let h = self.hash.hash(elem);
        let check = self.fingerprint(set, elem);
        let max_level = self.max_level(h);
        let (rows, row_len) = (self.params.rows, self.params.row_len);
        let slots = self.row_slots(check);
        for level in 0..=max_level {
            let base = level * rows * row_len;
            for (row, &slot) in slots.iter().enumerate().take(rows) {
                self.cells[base + row * row_len + slot].apply(sign, set, elem, check);
            }
        }
    }

    /// Process a contiguous batch of updates (the batched hot path).
    ///
    /// Semantically identical to per-update [`update`](Self::update):
    /// the hash, fingerprint, and per-row slots of each update are
    /// computed **once** into a reused scratch slice (instead of
    /// interleaved with cell writes), and the cell writes are then
    /// applied level-major so each level's bank is walked while hot in
    /// cache. Wrapping additions commute exactly, so the resulting
    /// cells are bit-identical to the per-update order — the linear
    /// determinism contract is untouched.
    pub fn update_batch(&mut self, updates: &[SignedEdge]) {
        let (rows, row_len) = (self.params.rows, self.params.row_len);
        let mut scratch = std::mem::take(&mut self.scratch);
        for chunk in updates.chunks(PREPARE_CHUNK) {
            scratch.clear();
            let mut chunk_max = 0usize;
            for &u in chunk {
                let sign = u.sign();
                if sign > 0 {
                    self.counters.inserts += 1;
                } else {
                    self.counters.deletes += 1;
                }
                let set = u.edge.set.0 as u64;
                let elem = u.edge.element.0;
                let h = self.hash.hash(elem);
                let check = self.fingerprint(set, elem);
                let max_level = self.max_level(h);
                chunk_max = chunk_max.max(max_level);
                let wide = self.row_slots(check);
                let mut slots = [0u32; MAX_ROWS];
                for (s, &w) in slots.iter_mut().zip(&wide).take(rows) {
                    *s = w as u32;
                }
                scratch.push(PreparedUpdate {
                    sign,
                    set,
                    elem,
                    check,
                    max_level: max_level as u8,
                    slots,
                });
            }
            for level in 0..=chunk_max {
                let base = level * rows * row_len;
                for p in &scratch {
                    if (p.max_level as usize) < level {
                        continue;
                    }
                    for (row, &slot) in p.slots.iter().enumerate().take(rows) {
                        self.cells[base + row * row_len + slot as usize]
                            .apply(p.sign, p.set, p.elem, p.check);
                    }
                }
            }
        }
        self.scratch = scratch;
    }

    /// Feed an entire dynamic stream (one pass).
    pub fn consume(&mut self, stream: &dyn DynamicEdgeStream) {
        stream.for_each_update(&mut |u| self.update(u));
    }

    /// Feed an entire dynamic stream in batches of `batch` updates.
    pub fn consume_batched(&mut self, stream: &dyn DynamicEdgeStream, batch: usize) {
        stream.for_each_update_batch(batch, &mut |chunk| self.update_batch(chunk));
    }

    /// Build the sketch from one pass over `stream`.
    pub fn from_stream(
        params: DynamicSketchParams,
        seed: u64,
        stream: &dyn DynamicEdgeStream,
    ) -> Self {
        let mut s = Self::new(params, seed);
        s.consume(stream);
        s
    }

    /// Streaming-side diagnostics.
    pub fn counters(&self) -> DynamicCounters {
        self.counters
    }

    /// Space report (1 pass). The sketch stores no raw edges — its
    /// footprint is the fixed cell banks, reported as auxiliary words.
    pub fn space_report(&self) -> SpaceReport {
        self.tracker.report(1)
    }

    /// Level-`j` slice of the flat cell storage.
    fn level_cells(&self, level: usize) -> &[Cell] {
        let per = self.params.rows * self.params.row_len;
        &self.cells[level * per..(level + 1) * per]
    }

    /// Attempt sparse recovery of one level by iterative peeling.
    /// Returns the decoded surviving edges (sorted) or `None` when the
    /// level is too dense. Pure: a clone of the cells is peeled, the
    /// sketch is untouched.
    fn recover_level(&self, level: usize) -> Option<Vec<Edge>> {
        let (rows, row_len) = (self.params.rows, self.params.row_len);
        let mut cells = self.level_cells(level).to_vec();
        let mut queue: Vec<usize> = (0..cells.len()).filter(|&i| cells[i].count == 1).collect();
        let mut edges = Vec::new();
        while let Some(i) = queue.pop() {
            let c = cells[i];
            if c.count != 1 {
                continue;
            }
            let (set, elem) = (c.set_sum, c.elem_sum);
            // A pure cell: the sums are one edge's identity iff the
            // checksum matches and the edge genuinely belongs here.
            if c.check_sum != self.fingerprint(set, elem) || set > u32::MAX as u64 {
                continue;
            }
            if level > 0 && self.max_level(self.hash.hash(elem)) < level {
                continue; // not admitted at this level — corrupt decode
            }
            let check = c.check_sum;
            let slots = self.row_slots(check);
            for (row, &slot) in slots.iter().enumerate().take(rows) {
                let j = row * row_len + slot;
                cells[j].apply(-1, set, elem, check);
                if cells[j].count == 1 {
                    queue.push(j);
                }
            }
            edges.push(Edge::new(set as u32, elem));
        }
        if cells.iter().all(Cell::is_zero) {
            edges.sort_unstable();
            Some(edges)
        } else {
            None
        }
    }

    /// Recover the densest decodable level: scan levels shallow→deep and
    /// return the first that peels completely — the dynamic analogue of
    /// Definition 2.1's smallest workable `p`. Returns `None` only when
    /// even the deepest level is too dense (the sketch was built with
    /// too few [`levels`](DynamicSketchParams::levels) for this input).
    pub fn recover(&self) -> Option<DynamicSample> {
        for level in 0..self.params.levels {
            if let Some(edges) = self.recover_level(level) {
                return Some(DynamicSample {
                    level,
                    sampling_p: 0.5f64.powi(level as i32),
                    edges,
                });
            }
        }
        None
    }

    /// [`recover`](Self::recover), panicking with the canonical
    /// diagnostic when no level decodes. Every driver (the dynamic
    /// k-cover, the distributed executors) funnels through this so the
    /// failure mode and its remedy are described in exactly one place.
    ///
    /// # Panics
    ///
    /// Panics if no subsampling level decodes — the sketch was built
    /// with too few levels for the surviving edge count.
    pub fn recover_expect(&self) -> DynamicSample {
        self.recover().expect(
            "no subsampling level decoded — rebuild the dynamic sketch with more levels \
             (DynamicSketchParams::with_levels) for this surviving edge count",
        )
    }

    /// Materialize a recovered sample as a degree-capped
    /// [`CoverageInstance`] — the graph the offline solver runs on.
    /// The cap keeps each element's `degree_cap` **smallest** set ids
    /// (the same canonical truncation as
    /// [`ThresholdSketch::merge_from`](crate::ThresholdSketch::merge_from),
    /// so the instance is independent of recovery order).
    pub fn instance(&self, sample: &DynamicSample) -> CoverageInstance {
        let cap = self.params.base.degree_cap;
        let mut b = InstanceBuilder::new(self.params.base.num_sets);
        // Sample edges are sorted (set-major); regroup per element.
        let mut by_elem: coverage_hash::FxHashMap<u64, Vec<u32>> =
            coverage_hash::FxHashMap::default();
        for e in &sample.edges {
            by_elem.entry(e.element.0).or_default().push(e.set.0);
        }
        for (elem, mut sets) in by_elem {
            sets.sort_unstable();
            sets.dedup();
            sets.truncate(cap);
            for s in sets {
                b.add_edge(Edge::new(s, elem));
            }
        }
        b.build()
    }

    /// Materialize a recovered sample as a packed [`CsrInstance`] — the
    /// zero-rebuild solve path. Applies the identical canonical degree
    /// cap as [`instance`](Self::instance) (per element: sorted, deduped,
    /// `degree_cap` **smallest** set ids kept) but compacts elements by
    /// sorting the recovered edge list instead of hashing through a map,
    /// then counting-sorts the survivors into CSR form. Graph-identical
    /// to `instance` up to dense relabeling, so greedy traces coincide.
    pub fn csr_view(&self, sample: &DynamicSample) -> CsrInstance {
        let cap = self.params.base.degree_cap;
        // (element, set), element-major: one sort groups each element's
        // incident sets contiguously *and* ascending — exactly the order
        // the canonical min-id truncation wants.
        let mut pairs: Vec<(u64, u32)> = sample
            .edges
            .iter()
            .map(|e| (e.element.0, e.set.0))
            .collect();
        pairs.sort_unstable();
        let mut elements: Vec<ElementId> = Vec::new();
        let mut kept: Vec<(u32, u32)> = Vec::with_capacity(pairs.len());
        let mut i = 0usize;
        while i < pairs.len() {
            let elem = pairs[i].0;
            let dense = elements.len() as u32;
            elements.push(ElementId(elem));
            let mut taken = 0usize;
            let mut last: Option<u32> = None;
            while i < pairs.len() && pairs[i].0 == elem {
                let s = pairs[i].1;
                if taken < cap && last != Some(s) {
                    kept.push((s, dense));
                    taken += 1;
                    last = Some(s);
                }
                i += 1;
            }
        }
        CsrInstance::from_edge_fn(self.params.base.num_sets, elements, |emit| {
            for &(s, d) in &kept {
                emit(s, d);
            }
        })
    }

    /// Inverse-probability coverage estimate of `family` on the
    /// surviving graph: `|Γ(sample, family)| / p` (Lemma 2.2 transplanted
    /// to the recovered level).
    pub fn estimate_coverage(&self, sample: &DynamicSample, family: &[SetId]) -> f64 {
        let mut members = vec![false; self.params.base.num_sets.max(1)];
        for s in family {
            if s.index() < members.len() {
                members[s.index()] = true;
            }
        }
        let mut covered: coverage_hash::FxHashSet<u64> = coverage_hash::FxHashSet::default();
        for e in &sample.edges {
            if members[e.set.index()] {
                covered.insert(e.element.0);
            }
        }
        covered.len() as f64 / sample.sampling_p
    }

    /// Per-set **post-deletion support** estimates, computed by feeding
    /// each set's recovered elements through the mergeable
    /// [`KmvSketch`] ℓ₀ estimator (Appendix D machinery from
    /// `coverage-hash`) and scaling by `1/p`. Within the recovered
    /// sample KMV is exact below its `t`; the scaling alone carries the
    /// sampling error — this is the estimator the dynamic experiments
    /// report.
    pub fn set_support_estimates(&self, sample: &DynamicSample) -> Vec<f64> {
        let n = self.params.base.num_sets;
        // Floor `t` so the KMV error stays well below the subsampling
        // error even for coarse sketch ε (t = 258 → RSE ≈ 6%).
        let t = KmvSketch::t_for_epsilon(self.params.base.epsilon.max(0.05)).max(258);
        let kmv_hash = UnitHash::from_raw_seed(mix64(self.hash.seed() ^ 0x5E7_C0E7));
        let mut per_set: Vec<KmvSketch> = (0..n).map(|_| KmvSketch::new(t, kmv_hash)).collect();
        for e in &sample.edges {
            if e.set.index() < n {
                per_set[e.set.index()].insert(e.element.0);
            }
        }
        per_set
            .iter()
            .map(|s| s.estimate() / sample.sampling_p)
            .collect()
    }

    /// Merge another sketch of the **same parameters and seed** into
    /// `self` by cell-wise addition. Exactly associative and commutative
    /// — the determinism contract's distributed half (see the module
    /// docs); with the updates partitioned across machines the merged
    /// sketch is bit-identical to a single-machine build.
    pub fn merge_from(&mut self, other: &DynamicSketch) {
        assert_eq!(
            self.hash, other.hash,
            "dynamic sketches must share a hash seed to merge"
        );
        assert_eq!(
            self.params, other.params,
            "dynamic sketches must share parameters to merge"
        );
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            mine.merge(theirs);
        }
        self.counters.inserts += other.counters.inserts;
        self.counters.deletes += other.counters.deletes;
    }

    /// Words a wire shipment of this sketch costs (4 per cell) — the
    /// reduce-round accounting unit used by `coverage-dist`.
    pub fn ship_words(&self) -> u64 {
        4 * self.cells.len() as u64
    }
}

/// Serializable mirror of a [`DynamicSketch`] — the wire format for
/// shipping dynamic sketches between machines, mirroring
/// [`SketchSnapshot`](crate::SketchSnapshot).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynamicSnapshot {
    /// The hash function's raw (post-mix) seed.
    pub raw_seed: u64,
    /// Sketch parameters.
    pub params: DynamicSketchParams,
    /// Streaming-side counters.
    pub counters: DynamicCounters,
    /// Flat cell payload (level-major, then row-major).
    cells: Vec<Cell>,
}

impl DynamicSnapshot {
    /// Flat cell payload (binary codec support).
    pub(crate) fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Assemble a snapshot from decoded parts (binary codec support).
    /// The caller must have validated `cells.len() == params.total_cells()`.
    pub(crate) fn from_parts(
        raw_seed: u64,
        params: DynamicSketchParams,
        counters: DynamicCounters,
        cells: Vec<Cell>,
    ) -> Self {
        DynamicSnapshot {
            raw_seed,
            params,
            counters,
            cells,
        }
    }

    /// Capture the logical state of a sketch.
    pub fn of(sketch: &DynamicSketch) -> Self {
        DynamicSnapshot {
            raw_seed: sketch.hash.seed(),
            params: sketch.params,
            counters: sketch.counters,
            cells: sketch.cells.clone(),
        }
    }

    /// Rebuild the sketch. Panics if the cell payload does not match the
    /// declared geometry — a corrupt snapshot must not silently decode.
    pub fn restore(&self) -> DynamicSketch {
        assert_eq!(
            self.cells.len(),
            self.params.total_cells(),
            "snapshot cell payload does not match its declared geometry"
        );
        let mut s = DynamicSketch::with_hash(self.params, UnitHash::from_raw_seed(self.raw_seed));
        s.cells.copy_from_slice(&self.cells);
        s.counters = self.counters;
        s
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_stream::{InsertOnly, VecDynamicStream, VecStream};

    fn params(n: usize, budget: usize) -> DynamicSketchParams {
        DynamicSketchParams::new(SketchParams::with_budget(n, 2, 0.5, budget))
    }

    fn churny_updates(n_sets: u32, m: u64, delete_every: u64) -> Vec<SignedEdge> {
        // Insert a grid of edges; later delete every `delete_every`-th.
        let mut ups = Vec::new();
        for s in 0..n_sets {
            for e in 0..m {
                ups.push(SignedEdge::insert(Edge::new(s, e * 3 + s as u64)));
            }
        }
        for s in 0..n_sets {
            for e in 0..m {
                if (e + s as u64).is_multiple_of(delete_every) {
                    ups.push(SignedEdge::delete(Edge::new(s, e * 3 + s as u64)));
                }
            }
        }
        ups
    }

    #[test]
    fn small_stream_recovers_exactly_at_level_zero() {
        let stream = VecDynamicStream::new(
            3,
            vec![
                SignedEdge::insert(Edge::new(0u32, 1u64)),
                SignedEdge::insert(Edge::new(1u32, 2u64)),
                SignedEdge::insert(Edge::new(2u32, 3u64)),
                SignedEdge::delete(Edge::new(1u32, 2u64)),
            ],
        );
        let s = DynamicSketch::from_stream(params(3, 1_000), 42, &stream);
        let sample = s.recover().expect("small stream must decode");
        assert!(sample.is_exact());
        assert_eq!(sample.sampling_p, 1.0);
        assert_eq!(
            sample.edges,
            vec![Edge::new(0u32, 1u64), Edge::new(2u32, 3u64)]
        );
        assert_eq!(s.counters().inserts, 3);
        assert_eq!(s.counters().deletes, 1);
    }

    #[test]
    fn insert_then_delete_everything_leaves_empty_cells() {
        let mut ups: Vec<SignedEdge> = Vec::new();
        for s in 0..5u32 {
            for e in 0..200u64 {
                ups.push(SignedEdge::insert(Edge::new(s, e)));
            }
        }
        for s in 0..5u32 {
            for e in 0..200u64 {
                ups.push(SignedEdge::delete(Edge::new(s, e)));
            }
        }
        let s = DynamicSketch::from_stream(params(5, 100), 7, &VecDynamicStream::new(5, ups));
        // All cells cancel to zero: level 0 decodes the empty graph.
        let sample = s.recover().expect("empty graph must decode at level 0");
        assert!(sample.is_exact());
        assert!(sample.edges.is_empty());
    }

    #[test]
    fn dynamic_equals_insertion_only_on_surviving_edges() {
        // The heart of the determinism contract: updates vs survivors
        // produce bit-identical cells, hence identical recovery.
        let p = params(4, 300);
        let ups = churny_updates(4, 500, 3);
        let dyn_stream = VecDynamicStream::new(4, ups);
        let a = DynamicSketch::from_stream(p, 11, &dyn_stream);
        let survivors = coverage_stream::surviving_stream(&dyn_stream);
        let b = DynamicSketch::from_stream(p, 11, &InsertOnly::new(&survivors));
        assert_eq!(a.cells, b.cells, "cells must cancel exactly");
        let sa = a.recover().expect("decodes");
        let sb = b.recover().expect("decodes");
        assert_eq!(sa.level, sb.level);
        assert_eq!(sa.edges, sb.edges);
    }

    #[test]
    fn dense_streams_fall_back_to_deeper_levels() {
        let p = params(6, 120);
        let ups = churny_updates(6, 2_000, 4);
        let s = DynamicSketch::from_stream(p, 3, &VecDynamicStream::new(6, ups));
        let sample = s.recover().expect("some level must decode");
        assert!(sample.level > 0, "9k survivors cannot fit a 120-edge bank");
        assert!(sample.sampling_p < 1.0);
        assert!(!sample.edges.is_empty());
        // Every recovered element must be admitted at the sample level.
        let hash = UnitHash::new(3);
        for e in &sample.edges {
            assert!(hash.hash(e.element.0) < (1u64 << (64 - sample.level)));
        }
    }

    #[test]
    fn recovered_sample_is_an_unbiased_survivor_sample() {
        let p = params(2, 200);
        let ups = churny_updates(2, 3_000, 2);
        let dyn_stream = VecDynamicStream::new(2, ups);
        let truth = coverage_stream::surviving_edges(&dyn_stream).len() as f64;
        let mut sum = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let s = DynamicSketch::from_stream(p, seed, &dyn_stream);
            let sample = s.recover().expect("decodes");
            sum += sample.edges.len() as f64 / sample.sampling_p;
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - truth).abs() / truth < 0.15,
            "mean scaled sample size {mean} vs truth {truth}"
        );
    }

    /// The level-major prepared batch path must produce bit-identical
    /// cells to the per-update path for any batch size (wrapping adds
    /// commute exactly — this pins the implementation to that fact).
    #[test]
    fn batched_updates_are_bit_identical_to_per_update() {
        let p = params(5, 200);
        let ups = churny_updates(5, 700, 3);
        let mut per_update = DynamicSketch::new(p, 29);
        for &u in &ups {
            per_update.update(u);
        }
        for batch in [1usize, 7, 256, 100_000] {
            let mut batched = DynamicSketch::new(p, 29);
            for chunk in ups.chunks(batch) {
                batched.update_batch(chunk);
            }
            assert_eq!(batched.cells, per_update.cells, "batch={batch}");
            assert_eq!(batched.counters(), per_update.counters());
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let p = params(5, 150);
        let seed = 21;
        let ups = churny_updates(5, 800, 3);
        let parts: Vec<DynamicSketch> = (0..3)
            .map(|part| {
                let sub: Vec<SignedEdge> = ups
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 3 == part)
                    .map(|(_, &u)| u)
                    .collect();
                DynamicSketch::from_stream(p, seed, &VecDynamicStream::new(5, sub))
            })
            .collect();
        let whole = DynamicSketch::from_stream(p, seed, &VecDynamicStream::new(5, ups));
        // (0·1)·2
        let mut left = parts[0].clone();
        left.merge_from(&parts[1]);
        left.merge_from(&parts[2]);
        // 2·(1·0)
        let mut right = parts[2].clone();
        right.merge_from(&parts[1]);
        right.merge_from(&parts[0]);
        assert_eq!(left.cells, right.cells);
        assert_eq!(left.cells, whole.cells, "merge must equal the single build");
        assert_eq!(left.counters(), whole.counters());
    }

    #[test]
    fn snapshot_json_roundtrip_restores_identical_sketch() {
        let p = params(4, 80);
        let ups = churny_updates(4, 300, 5);
        let s = DynamicSketch::from_stream(p, 9, &VecDynamicStream::new(4, ups));
        let wire = DynamicSnapshot::of(&s).to_json();
        let r = DynamicSnapshot::from_json(&wire)
            .expect("valid json")
            .restore();
        assert_eq!(r.cells, s.cells);
        assert_eq!(r.counters(), s.counters());
        let (a, b) = (s.recover().unwrap(), r.recover().unwrap());
        assert_eq!(a.level, b.level);
        assert_eq!(a.edges, b.edges);
        // And the restored sketch keeps evolving identically.
        let mut s2 = s.clone();
        let mut r2 = r;
        let extra = SignedEdge::insert(Edge::new(1u32, 999_999u64));
        s2.update(extra);
        r2.update(extra);
        assert_eq!(s2.cells, r2.cells);
    }

    #[test]
    fn instance_applies_canonical_degree_cap() {
        // 30 sets all containing element 5; cap must keep the smallest ids.
        let base = SketchParams::with_budget(30, 8, 0.9, 1_000);
        assert!(base.degree_cap < 30, "cap must bind for this test");
        let p = DynamicSketchParams::new(base);
        let mut ups = Vec::new();
        for s in 0..30u32 {
            ups.push(SignedEdge::insert(Edge::new(s, 5u64)));
        }
        let s = DynamicSketch::from_stream(p, 13, &VecDynamicStream::new(30, ups));
        let sample = s.recover().expect("decodes");
        let inst = s.instance(&sample);
        assert_eq!(inst.num_elements(), 1);
        assert_eq!(inst.num_edges(), base.degree_cap);
        // The surviving sets are exactly 0..cap.
        for s_id in 0..base.degree_cap {
            assert_eq!(inst.coverage(&[SetId(s_id as u32)]), 1);
        }
        assert_eq!(inst.coverage(&[SetId(29)]), 0);
        // The CSR view applies the identical canonical cap.
        use coverage_core::CoverageView;
        let view = s.csr_view(&sample);
        assert_eq!(view.num_elements(), 1);
        assert_eq!(view.num_edges(), base.degree_cap);
        let expect: Vec<u32> = (0..base.degree_cap as u32).collect();
        let got: Vec<u32> = (0..30u32)
            .filter(|&s_id| !view.dense_set(SetId(s_id)).is_empty())
            .collect();
        assert_eq!(got, expect, "cap must keep the smallest set ids");
    }

    #[test]
    fn csr_view_traces_match_instance() {
        use coverage_core::CoverageView;
        let p = params(4, 300);
        let ups = churny_updates(4, 500, 3);
        let s = DynamicSketch::from_stream(p, 11, &VecDynamicStream::new(4, ups));
        let sample = s.recover().expect("decodes");
        let inst = s.instance(&sample);
        let view = s.csr_view(&sample);
        assert_eq!(view.num_edges(), inst.num_edges());
        assert_eq!(view.num_elements(), inst.num_elements());
        for k in [1usize, 2, 4] {
            let a = coverage_core::offline::lazy_greedy_k_cover(&inst, k);
            let b = coverage_core::offline::bucket_greedy_k_cover(&view, k);
            assert_eq!(a.steps, b.steps, "k={k}");
        }
    }

    #[test]
    fn estimates_track_truth_after_deletions() {
        let p = params(3, 400);
        let ups = churny_updates(3, 2_000, 2); // half of everything deleted
        let dyn_stream = VecDynamicStream::new(3, ups);
        let s = DynamicSketch::from_stream(p, 17, &dyn_stream);
        let sample = s.recover().expect("decodes");
        let survivors = coverage_stream::surviving_stream(&dyn_stream);
        let inst = coverage_stream::materialize(&survivors);
        let family = vec![SetId(0), SetId(2)];
        let truth = inst.coverage(&family) as f64;
        let est = s.estimate_coverage(&sample, &family);
        assert!(
            (est - truth).abs() / truth < 0.25,
            "estimate {est} vs truth {truth}"
        );
        // Per-set supports via the KMV ℓ₀ machinery.
        let supports = s.set_support_estimates(&sample);
        assert_eq!(supports.len(), 3);
        for (i, est) in supports.iter().enumerate() {
            let true_support = inst.coverage(&[SetId(i as u32)]) as f64;
            assert!(
                (est - true_support).abs() / true_support < 0.3,
                "set {i}: support estimate {est} vs truth {true_support}"
            );
        }
    }

    #[test]
    fn space_is_fixed_and_reported_as_aux_words() {
        let p = params(4, 500);
        let s = DynamicSketch::new(p, 1);
        let r = s.space_report();
        assert_eq!(r.peak_edges, 0);
        assert_eq!(r.peak_aux_words, 4 * p.total_cells() as u64);
        assert_eq!(r.passes, 1);
        assert_eq!(s.ship_words(), 4 * p.total_cells() as u64);
    }

    #[test]
    #[should_panic(expected = "share a hash seed")]
    fn merge_rejects_mismatched_seed() {
        let p = params(2, 50);
        let mut a = DynamicSketch::new(p, 1);
        let b = DynamicSketch::new(p, 2);
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "share parameters")]
    fn merge_rejects_mismatched_params() {
        let mut a = DynamicSketch::new(params(2, 50), 1);
        let b = DynamicSketch::new(params(2, 60), 1);
        a.merge_from(&b);
    }

    #[test]
    fn insert_only_embedding_matches_edge_stream_pipeline() {
        // Feeding an insertion-only stream through the dynamic sketch
        // recovers exactly that stream's distinct edges.
        let edges: Vec<Edge> = (0..150u64).map(|e| Edge::new((e % 5) as u32, e)).collect();
        let base = VecStream::new(5, edges.clone());
        let s = DynamicSketch::from_stream(params(5, 2_000), 3, &InsertOnly::new(&base));
        let sample = s.recover().expect("level 0 decodes");
        assert!(sample.is_exact());
        let mut want = edges;
        want.sort_unstable();
        assert_eq!(sample.edges, want);
    }
}
