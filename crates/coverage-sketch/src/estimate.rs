//! Inverse-probability coverage estimation (Lemma 2.2).
//!
//! If every element is retained independently with probability `p`, the
//! retained intersection `|Γ(Hp, S)|` is a Binomial(C(S), p) variable, so
//! `|Γ(Hp, S)|/p` is an unbiased estimator of `C(S)` and Chernoff gives
//! `P(|Γ/p − C| > γ) ≤ 2·exp(−γ²p / (3C))` — Lemma 2.2 instantiates
//! `γ = ε·Opt_k` and `p ≥ 6δ'/(ε²·Opt_k)`.

/// `Ĉ = count / p` — the estimator itself.
#[inline]
pub fn estimate_from_sample(count: usize, p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "sampling probability must be in (0,1]");
    count as f64 / p
}

/// The deviation `γ` such that `P(|Γ/p − C| > γ) ≤ 2e^{−δ}` for a true
/// coverage `c` sampled at rate `p`: solving `δ = γ²p/(3c)` gives
/// `γ = sqrt(3·c·δ/p)`.
#[inline]
pub fn chernoff_envelope(c: f64, p: f64, delta: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0);
    assert!(c >= 0.0 && delta >= 0.0);
    (3.0 * c * delta / p).sqrt()
}

/// The minimum sampling rate of Lemma 2.2: `p ≥ 6δ'/(ε²·Opt_k)` makes the
/// estimator ε·Opt-accurate with probability `1 − e^{−δ'}`.
#[inline]
pub fn lemma22_min_p(opt_k: f64, epsilon: f64, delta_prime: f64) -> f64 {
    assert!(opt_k > 0.0);
    (6.0 * delta_prime / (epsilon * epsilon * opt_k)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_hash::{threshold_from_p, UnitHash};

    #[test]
    fn estimator_identity() {
        assert_eq!(estimate_from_sample(50, 0.5), 100.0);
        assert_eq!(estimate_from_sample(0, 0.25), 0.0);
    }

    #[test]
    fn envelope_grows_with_confidence() {
        let a = chernoff_envelope(1000.0, 0.1, 1.0);
        let b = chernoff_envelope(1000.0, 0.1, 4.0);
        assert!((b / a - 2.0).abs() < 1e-9, "γ scales as sqrt(δ)");
    }

    #[test]
    fn lemma22_min_p_caps_at_one() {
        assert_eq!(lemma22_min_p(1.0, 0.1, 10.0), 1.0);
        let p = lemma22_min_p(1_000_000.0, 0.1, 2.0);
        assert!(p < 0.01);
    }

    #[test]
    fn empirical_estimates_stay_in_envelope() {
        // Sample 5000 elements at p=0.2 with many seeds; the estimate must
        // stay within the δ=3 envelope in the vast majority of runs
        // (2e^{-3} ≈ 10% failure allowance; we tolerate 20% to be safe).
        let c = 5000u64;
        let p = 0.2;
        let t = threshold_from_p(p);
        let delta = 3.0;
        let gamma = chernoff_envelope(c as f64, p, delta);
        let mut violations = 0;
        let runs = 50;
        for seed in 0..runs {
            let h = UnitHash::new(seed);
            let count = (0..c).filter(|&e| h.hash(e) <= t).count();
            let est = estimate_from_sample(count, p);
            if (est - c as f64).abs() > gamma {
                violations += 1;
            }
        }
        assert!(
            violations <= runs / 5,
            "{violations}/{runs} runs violated the Chernoff envelope"
        );
    }

    #[test]
    #[should_panic(expected = "sampling probability")]
    fn estimator_rejects_zero_p() {
        estimate_from_sample(1, 0.0);
    }
}
