//! Sketch parameterization — every constant from Section 2 in one place.
//!
//! Two regimes share the same construction code:
//!
//! * [`SketchParams::theoretical`] computes the verbatim bounds of
//!   Definition 2.1 / Algorithm 2. These are what the proofs need and what
//!   the documentation tests check, but the constants (`24nδ·ln(1/ε)·ln n
//!   / ((1−ε)ε³)`) are astronomically conservative — for `n = 1000`,
//!   `ε = 0.1` the budget already exceeds 10⁹ edges, i.e. the sketch would
//!   happily store the entire input for any realistic `m`.
//! * [`SketchParams::with_budget`] keeps the *structure* (hash threshold +
//!   degree cap + adaptive `p*`) and takes the edge budget directly; the
//!   experiments sweep it. The paper's companion empirical work
//!   (Bateni et al., "Distributed coverage maximization via sketching",
//!   `[10]`) sizes sketches the same way.

use serde::{Deserialize, Serialize};

/// Parameters of one `H≤n(k, ε, δ'')` sketch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SketchParams {
    /// Number of sets `n` in the family.
    pub num_sets: usize,
    /// Solution-size parameter `k` the sketch is built for.
    pub k: usize,
    /// Accuracy parameter `ε ∈ (0, 1]`.
    pub epsilon: f64,
    /// Per-element degree cap `⌈n·ln(1/ε)/(εk)⌉` (Lemma 2.4's cap).
    pub degree_cap: usize,
    /// Edge budget `B`: the sketch keeps the lowest-hash elements whose
    /// capped edges fit within `B` (Definition 2.1's `p*` rule).
    pub edge_budget: usize,
    /// Slack above the budget tolerated before eviction. Algorithm 2
    /// allows `B + degree_cap` stored edges; we mirror that.
    pub edge_slack: usize,
    /// Whether duplicate edges should be detected and ignored (needed when
    /// the stream may repeat an edge; costs a binary search per arrival).
    pub dedup: bool,
}

impl SketchParams {
    /// Degree cap of Lemma 2.4: `⌈n·ln(1/ε)/(ε·k)⌉`, at least 1.
    pub fn paper_degree_cap(n: usize, k: usize, epsilon: f64) -> usize {
        assert!(k >= 1, "k must be ≥ 1");
        assert!((0.0..=1.0).contains(&epsilon) && epsilon > 0.0);
        let cap = (n as f64) * (1.0 / epsilon).ln() / (epsilon * k as f64);
        (cap.ceil() as usize).max(1)
    }

    /// `δ = δ''·ln(log_{1−ε} m)` of Definition 2.1 (clamped below at 1).
    pub fn paper_delta(m: usize, epsilon: f64, delta_pp: f64) -> f64 {
        let m = (m.max(3)) as f64;
        // log_{1-ε} m levels — the number of geometric thresholds p_j.
        let levels = m.ln() / (1.0 / (1.0 - epsilon.min(0.999))).ln();
        (delta_pp * levels.max(std::f64::consts::E).ln()).max(1.0)
    }

    /// Edge budget of Definition 2.1: `⌈24·n·δ·ln(1/ε)·ln n / ((1−ε)ε³)⌉`.
    pub fn paper_edge_budget(n: usize, m: usize, epsilon: f64, delta_pp: f64) -> usize {
        let nf = (n.max(2)) as f64;
        let delta = Self::paper_delta(m, epsilon, delta_pp);
        let b = 24.0 * nf * delta * (1.0 / epsilon).ln() * nf.ln()
            / ((1.0 - epsilon) * epsilon.powi(3));
        b.ceil().min(usize::MAX as f64 / 2.0) as usize
    }

    /// The verbatim parameterization of `H≤n(k, ε, δ'')` for an input with
    /// `n` sets and (an upper bound on) `m` elements.
    pub fn theoretical(n: usize, m: usize, k: usize, epsilon: f64, delta_pp: f64) -> Self {
        let degree_cap = Self::paper_degree_cap(n, k, epsilon);
        let edge_budget = Self::paper_edge_budget(n, m, epsilon, delta_pp);
        SketchParams {
            num_sets: n,
            k,
            epsilon,
            degree_cap,
            edge_budget,
            // Algorithm 2 tolerates B + one degree cap of slack; when the
            // cap exceeds the budget (possible only in practical regimes
            // with tiny ε) the budget itself bounds the slack, otherwise
            // a single heavy element could inflate the sketch past Õ(n).
            edge_slack: degree_cap.min(edge_budget.max(1)),
            dedup: true,
        }
    }

    /// The practical parameterization: paper-shaped degree cap, explicit
    /// edge budget.
    pub fn with_budget(n: usize, k: usize, epsilon: f64, edge_budget: usize) -> Self {
        let degree_cap = Self::paper_degree_cap(n, k, epsilon);
        SketchParams {
            num_sets: n,
            k,
            epsilon,
            degree_cap,
            edge_budget,
            edge_slack: degree_cap.min(edge_budget.max(1)),
            dedup: true,
        }
    }

    /// Convenience: budget `⌈c·n·ln(n+2)/ε²⌉` — the paper's dependence on
    /// `n` and `ε` with a tunable constant `c` instead of `24δ·ln(1/ε)/(1−ε)ε`.
    pub fn practical(n: usize, k: usize, epsilon: f64, c: f64) -> Self {
        let budget = (c * n as f64 * ((n + 2) as f64).ln() / (epsilon * epsilon)).ceil() as usize;
        Self::with_budget(n, k, epsilon, budget.max(16))
    }

    /// Disable duplicate-edge detection (streams known duplicate-free).
    pub fn without_dedup(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Override the degree cap (ablation A1 sets it to `usize::MAX`).
    ///
    /// The eviction slack never *grows* here — otherwise an uncapped
    /// variant would silently enjoy a larger effective budget and ablation
    /// comparisons would be apples-to-oranges.
    pub fn with_degree_cap(mut self, cap: usize) -> Self {
        self.degree_cap = cap.max(1);
        self.edge_slack = self.edge_slack.min(self.degree_cap).max(1);
        self
    }

    /// Maximum number of edges the sketch may hold before eviction
    /// (`B + slack`, mirroring Algorithm 2 line 7).
    pub fn max_edges(&self) -> usize {
        self.edge_budget.saturating_add(self.edge_slack)
    }
}

/// How algorithms size the sketches they build.
///
/// All policies share the construction (threshold + degree cap + adaptive
/// `p*`); they differ only in the edge budget.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SketchSizing {
    /// The verbatim Definition 2.1 budget. Needs an upper bound on `m`
    /// and the confidence parameter `δ''`. Only sensible for tiny inputs
    /// or correctness tests — see [`SketchParams::theoretical`].
    Theoretical {
        /// Upper bound on the number of elements `m`.
        m_upper: usize,
        /// Confidence parameter `δ''` (failure probability `3e^{−δ''}`).
        delta_pp: f64,
    },
    /// An explicit per-sketch edge budget.
    Budget(usize),
    /// `⌈c·n·ln(n+2)/ε²⌉` — paper-shaped dependence with a small constant.
    Practical {
        /// The leading constant `c`.
        c: f64,
    },
}

impl SketchSizing {
    /// Materialize parameters for a sketch targeting solution size `k`.
    pub fn params(&self, n: usize, k: usize, epsilon: f64) -> SketchParams {
        match *self {
            SketchSizing::Theoretical { m_upper, delta_pp } => {
                SketchParams::theoretical(n, m_upper, k, epsilon, delta_pp)
            }
            SketchSizing::Budget(b) => SketchParams::with_budget(n, k, epsilon, b),
            SketchSizing::Practical { c } => SketchParams::practical(n, k, epsilon, c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_policies_materialize() {
        let t = SketchSizing::Theoretical {
            m_upper: 1000,
            delta_pp: 1.0,
        }
        .params(100, 5, 0.2);
        let b = SketchSizing::Budget(500).params(100, 5, 0.2);
        let p = SketchSizing::Practical { c: 2.0 }.params(100, 5, 0.2);
        assert_eq!(b.edge_budget, 500);
        assert!(t.edge_budget > p.edge_budget);
        assert_eq!(t.degree_cap, b.degree_cap);
        assert_eq!(b.degree_cap, p.degree_cap);
    }

    #[test]
    fn degree_cap_matches_formula() {
        // n=100, k=10, ε=0.5 → 100·ln2/(0.5·10) = 13.86… → 14.
        assert_eq!(SketchParams::paper_degree_cap(100, 10, 0.5), 14);
        // Cap is at least 1 even when the formula vanishes.
        assert_eq!(SketchParams::paper_degree_cap(1, 1000, 0.99), 1);
    }

    #[test]
    fn degree_cap_decreases_in_k() {
        let a = SketchParams::paper_degree_cap(1000, 1, 0.2);
        let b = SketchParams::paper_degree_cap(1000, 10, 0.2);
        let c = SketchParams::paper_degree_cap(1000, 100, 0.2);
        assert!(a > b && b > c);
    }

    #[test]
    fn theoretical_budget_is_conservative() {
        // The verbatim constants dwarf any realistic input — that is the
        // point of also having `with_budget`.
        let p = SketchParams::theoretical(1000, 100_000, 10, 0.1, 1.0);
        assert!(p.edge_budget > 10_000_000);
        assert_eq!(p.degree_cap, SketchParams::paper_degree_cap(1000, 10, 0.1));
    }

    #[test]
    fn budget_independent_of_m_up_to_loglog() {
        // δ depends on m only through ln(log m): doubling m barely moves B.
        let a = SketchParams::paper_edge_budget(1000, 10_000, 0.2, 1.0);
        let b = SketchParams::paper_edge_budget(1000, 10_000_000, 0.2, 1.0);
        assert!((b as f64) < (a as f64) * 2.0, "a={a} b={b}");
    }

    #[test]
    fn with_budget_uses_given_budget() {
        let p = SketchParams::with_budget(50, 5, 0.25, 1234);
        assert_eq!(p.edge_budget, 1234);
        assert_eq!(p.max_edges(), 1234 + p.degree_cap);
    }

    #[test]
    fn practical_scales_linearly_in_n() {
        let a = SketchParams::practical(1_000, 10, 0.2, 1.0).edge_budget;
        let b = SketchParams::practical(2_000, 10, 0.2, 1.0).edge_budget;
        let ratio = b as f64 / a as f64;
        assert!((2.0..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn overrides() {
        let p = SketchParams::with_budget(10, 2, 0.5, 100)
            .without_dedup()
            .with_degree_cap(usize::MAX);
        assert!(!p.dedup);
        assert_eq!(p.degree_cap, usize::MAX);
    }
}
