//! Sketch snapshots: serialization for shipping and persistence.
//!
//! The distributed extension (paper's companion work `[10]`) moves
//! sketches between machines: mappers build local sketches, a reducer
//! merges them. [`SketchSnapshot`] is the wire format — a plain-old-data
//! mirror of a [`ThresholdSketch`]'s logical state (hash function, params,
//! acceptance bound, retained entries, counters) with `serde` derives, so
//! it can cross process boundaries as JSON or any other serde format.
//!
//! Round-trip contract (tested below): `restore(snapshot(s))` behaves
//! identically to `s` — same retained elements and edges, same acceptance
//! bound, same future evolution under further updates or merges. The only
//! state *not* carried is the space tracker's peak history: a restored
//! sketch reports peaks from its current size onward (documented here
//! because space experiments must snapshot *before* shipping).

use serde::{Deserialize, Serialize};

use crate::params::SketchParams;
use crate::threshold::{SketchCounters, ThresholdSketch};

/// One retained element in a snapshot.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The element's original 64-bit key.
    pub key: u64,
    /// Its hash under the sketch's hash function.
    pub hash: u64,
    /// Sorted set ids of the kept incident edges.
    pub sets: Vec<u32>,
    /// Whether the degree cap dropped edges for this element.
    pub truncated: bool,
}

/// Serializable mirror of a [`ThresholdSketch`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SketchSnapshot {
    /// The hash function's raw (post-mix) seed.
    pub raw_seed: u64,
    /// Sketch parameters.
    pub params: SketchParams,
    /// Acceptance bound at snapshot time.
    pub bound: u64,
    /// Retained elements, sorted by key for a canonical encoding.
    pub entries: Vec<SnapshotEntry>,
    /// Streaming-side counters.
    pub counters: SketchCounters,
}

impl SketchSnapshot {
    /// Capture the logical state of a sketch.
    pub fn of(sketch: &ThresholdSketch) -> Self {
        let mut entries: Vec<SnapshotEntry> = sketch
            .retained_full()
            .map(|(key, hash, sets, truncated)| SnapshotEntry {
                key,
                hash,
                sets,
                truncated,
            })
            .collect();
        entries.sort_by_key(|e| e.key);
        SketchSnapshot {
            raw_seed: sketch.raw_hash_seed(),
            params: *sketch.params(),
            bound: sketch.acceptance_bound(),
            entries,
            counters: sketch.counters(),
        }
    }

    /// Rebuild the sketch. Panics if the snapshot violates the sketch
    /// invariants (an entry hashing above the bound, or a degree-cap
    /// overflow) — corrupt snapshots must not silently produce a sketch
    /// with weaker guarantees.
    pub fn restore(&self) -> ThresholdSketch {
        for e in &self.entries {
            assert!(
                e.hash <= self.bound,
                "snapshot entry {} hashes above the acceptance bound",
                e.key
            );
            assert!(
                e.sets.len() <= self.params.degree_cap,
                "snapshot entry {} exceeds the degree cap",
                e.key
            );
        }
        ThresholdSketch::from_snapshot_parts(
            self.raw_seed,
            self.params,
            self.bound,
            self.entries
                .iter()
                .map(|e| (e.key, e.hash, e.sets.clone(), e.truncated)),
            self.counters,
        )
    }

    /// Total edges recorded in the snapshot.
    pub fn edges(&self) -> usize {
        self.entries.iter().map(|e| e.sets.len()).sum()
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::Edge;
    use coverage_stream::VecStream;

    fn sample_sketch(budget: usize) -> ThresholdSketch {
        let params = SketchParams::with_budget(6, 2, 0.5, budget);
        let mut edges = Vec::new();
        for s in 0..6u32 {
            for e in 0..300u64 {
                if !(e + s as u64).is_multiple_of(3) {
                    edges.push(Edge::new(s, e));
                }
            }
        }
        ThresholdSketch::from_stream(params, 42, &VecStream::new(6, edges))
    }

    #[test]
    fn roundtrip_preserves_logical_state() {
        let s = sample_sketch(120);
        let snap = SketchSnapshot::of(&s);
        let r = snap.restore();
        assert_eq!(r.acceptance_bound(), s.acceptance_bound());
        assert_eq!(r.edges_stored(), s.edges_stored());
        assert_eq!(r.elements_stored(), s.elements_stored());
        assert_eq!(r.canonical_content(), s.canonical_content());
        assert_eq!(r.counters(), s.counters());
    }

    #[test]
    fn restored_sketch_evolves_identically() {
        let mut original = sample_sketch(80);
        let mut restored = SketchSnapshot::of(&original).restore();
        // Feed both the same continuation stream.
        for e in 1000..1400u64 {
            original.update(Edge::new((e % 6) as u32, e));
            restored.update(Edge::new((e % 6) as u32, e));
        }
        assert_eq!(original.acceptance_bound(), restored.acceptance_bound());
        assert_eq!(original.edges_stored(), restored.edges_stored());
        let mut a: Vec<_> = original.retained().map(|(k, _, _)| k).collect();
        let mut b: Vec<_> = restored.retained().map(|(k, _, _)| k).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn json_roundtrip() {
        let s = sample_sketch(60);
        let snap = SketchSnapshot::of(&s);
        let json = snap.to_json();
        let back = SketchSnapshot::from_json(&json).expect("valid json");
        assert_eq!(back.bound, snap.bound);
        assert_eq!(back.entries, snap.entries);
        assert_eq!(back.edges(), snap.edges());
    }

    #[test]
    fn restored_sketch_can_merge() {
        // Snapshot → ship → merge: the distributed path.
        let params = SketchParams::with_budget(4, 2, 0.5, 100);
        let mut a = ThresholdSketch::new(params, 7);
        let mut b = ThresholdSketch::new(params, 7);
        for e in 0..500u64 {
            if e % 2 == 0 {
                a.update(Edge::new((e % 4) as u32, e));
            } else {
                b.update(Edge::new((e % 4) as u32, e));
            }
        }
        let shipped = SketchSnapshot::of(&b).to_json();
        let b2 = SketchSnapshot::from_json(&shipped).unwrap().restore();
        let mut merged = a.clone();
        merged.merge_from(&b2);
        let mut reference = a;
        reference.merge_from(&b);
        let mut x: Vec<_> = merged.retained().map(|(k, _, _)| k).collect();
        let mut y: Vec<_> = reference.retained().map(|(k, _, _)| k).collect();
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "hashes above the acceptance bound")]
    fn corrupt_snapshot_is_rejected() {
        let s = sample_sketch(60);
        let mut snap = SketchSnapshot::of(&s);
        snap.bound = 0; // every entry now violates the bound
        if snap.entries.is_empty() {
            panic!("hashes above the acceptance bound (vacuous)");
        }
        let _ = snap.restore();
    }

    #[test]
    fn canonical_entry_order() {
        let s = sample_sketch(100);
        let snap = SketchSnapshot::of(&s);
        for w in snap.entries.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }
}
