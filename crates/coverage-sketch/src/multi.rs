//! A bank of sketches fed from one pass.
//!
//! Algorithm 5 guesses the cover size `k'` geometrically
//! (`k' ← (1+ε/3)·k'`) and runs Algorithm 4 "in parallel" for every guess
//! — meaning every guess's sketch must be built during the *same* single
//! pass. [`SketchBank`] holds one [`ThresholdSketch`] per guess (each with
//! its own degree cap and budget, all sharing the global element hash) and
//! forwards each arriving edge to all of them.
//!
//! ## Shared-hash ingestion
//!
//! Because every sketch in the bank uses the *one* global `h` of
//! Algorithm 1, hashing per sketch is pure waste. The batched path
//! ([`update_batch`](SketchBank::update_batch)) therefore:
//!
//! 1. hashes each edge **once**, straight off the edge batch (via
//!    [`UnitHash::hash_batch`](coverage_hash::UnitHash::hash_batch) —
//!    no intermediate key buffer);
//! 2. **pre-filters** against the bank-wide *maximum* acceptance bound —
//!    an edge hashing above every guess's bound cannot enter any sketch,
//!    so the whole bank charges it as one counter bump per sketch
//!    instead of `len()` full update calls (on budget-saturated streams
//!    this removes the vast majority of per-sketch work);
//! 3. feeds every guess from the same pre-hashed slice, sketch-major,
//!    so one sketch's table stays hot in cache across the chunk.
//!
//! Per-sketch counters remain exactly what the per-edge path would have
//! produced (tested below): pre-filtered edges are provably
//! `rejected_by_bound` for every guess, and everything else re-checks
//! the guess's own bound inside the sketch.

use coverage_core::Edge;
use coverage_hash::UnitHash;
use coverage_stream::{EdgeStream, SpaceReport};

use crate::params::SketchParams;
use crate::threshold::{HashedEdge, ThresholdSketch, INGEST_CHUNK};

/// Several `H≤n` sketches built simultaneously in one pass.
#[derive(Clone, Debug)]
pub struct SketchBank {
    sketches: Vec<ThresholdSketch>,
    /// The shared element hash (identical in every sketch).
    hash: UnitHash,
    /// Reused scratch: the chunk's hashes (one mixer pass per chunk).
    scratch_hashes: Vec<u64>,
    /// Reused scratch: pre-filtered `(key, hash, set)` survivors.
    scratch: Vec<HashedEdge>,
}

impl SketchBank {
    /// One sketch per parameter set, all sharing `seed` (and therefore the
    /// same element hash — the paper's single global `h`).
    pub fn new(params: impl IntoIterator<Item = SketchParams>, seed: u64) -> Self {
        SketchBank {
            sketches: params
                .into_iter()
                .map(|p| ThresholdSketch::new(p, seed))
                .collect(),
            hash: UnitHash::new(seed),
            scratch_hashes: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of sketches in the bank.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// True if the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Forward one edge to every sketch, hashing its element once for
    /// the whole bank.
    pub fn update(&mut self, edge: Edge) {
        let key = edge.element.0;
        let h = self.hash.hash(key);
        for s in &mut self.sketches {
            debug_assert_eq!(s.unit_hash(), self.hash);
            s.update_hashed(key, h, edge.set.0);
        }
    }

    /// The frozen pre-PR per-edge step: one shared hash, then every
    /// sketch runs the unfused scalar probe sequence
    /// (`ThresholdSketch::update_hashed_scalar`). This is the engine the
    /// seed shipped — no batching, no bank-wide pre-filter, no fused
    /// descriptor loads — retained verbatim as the baseline the
    /// `BENCH_8` ingest gate measures the batched vectorized path
    /// against.
    pub fn update_scalar(&mut self, edge: Edge) {
        let key = edge.element.0;
        let h = self.hash.hash(key);
        for s in &mut self.sketches {
            debug_assert_eq!(s.unit_hash(), self.hash);
            s.update_hashed_scalar(key, h, edge.set.0);
        }
    }

    /// Forward a contiguous batch of edges to every sketch through the
    /// shared-hash path (module docs): one hash pass, one bank-wide
    /// bound pre-filter, then sketch-major consumption of the pre-hashed
    /// slice. Semantically identical to per-edge [`update`](Self::update)
    /// — same retained content, same counters.
    pub fn update_batch(&mut self, edges: &[Edge]) {
        if self.sketches.is_empty() {
            return;
        }
        let hash = self.hash;
        for chunk in edges.chunks(INGEST_CHUNK) {
            // One mixer pass for the whole bank, straight off the chunk.
            self.scratch_hashes.clear();
            hash.hash_batch(chunk.iter().map(|e| e.element.0), &mut self.scratch_hashes);
            // Bank-wide pre-filter: bounds only ever decrease, so the
            // chunk-start maximum over all guesses is a sound rejection
            // test for the entire chunk.
            let max_bound = self
                .sketches
                .iter()
                .map(|s| s.acceptance_bound())
                .max()
                .expect("bank is non-empty");
            self.scratch.clear();
            let mut rejected = 0u64;
            for (&e, &h) in chunk.iter().zip(&self.scratch_hashes) {
                if h > max_bound {
                    rejected += 1;
                } else {
                    self.scratch.push(HashedEdge {
                        key: e.element.0,
                        hash: h,
                        set: e.set.0,
                    });
                }
            }
            for s in &mut self.sketches {
                s.note_rejected_by_bound(rejected);
                s.update_hashed_batch(&self.scratch);
            }
        }
    }

    /// The retained pre-vectorization form of
    /// [`update_batch`](Self::update_batch): the identical shared-hash +
    /// bank-wide pre-filter structure, but over the scalar mixer loop
    /// ([`UnitHash::hash_batch_scalar`](coverage_hash::UnitHash::hash_batch_scalar))
    /// and the ungrouped per-sketch probe loop. Bit-identical by the
    /// property suite; kept public as the executable baseline the
    /// `BENCH_8` ingest gate measures the vectorized path against.
    pub fn update_batch_scalar(&mut self, edges: &[Edge]) {
        if self.sketches.is_empty() {
            return;
        }
        let hash = self.hash;
        for chunk in edges.chunks(INGEST_CHUNK) {
            self.scratch_hashes.clear();
            hash.hash_batch_scalar(chunk.iter().map(|e| e.element.0), &mut self.scratch_hashes);
            let max_bound = self
                .sketches
                .iter()
                .map(|s| s.acceptance_bound())
                .max()
                .expect("bank is non-empty");
            self.scratch.clear();
            let mut rejected = 0u64;
            for (&e, &h) in chunk.iter().zip(&self.scratch_hashes) {
                if h > max_bound {
                    rejected += 1;
                } else {
                    self.scratch.push(HashedEdge {
                        key: e.element.0,
                        hash: h,
                        set: e.set.0,
                    });
                }
            }
            for s in &mut self.sketches {
                s.note_rejected_by_bound(rejected);
                s.update_hashed_batch_scalar(&self.scratch);
            }
        }
    }

    /// Feed an entire stream (one pass for the whole bank).
    pub fn consume(&mut self, stream: &dyn EdgeStream) {
        stream.for_each(&mut |e| self.update(e));
    }

    /// Feed an entire stream in batches of `batch` edges (one pass).
    pub fn consume_batched(&mut self, stream: &dyn EdgeStream, batch: usize) {
        stream.for_each_batch(batch, &mut |chunk| self.update_batch(chunk));
    }

    /// [`consume_batched`](Self::consume_batched) over the retained
    /// scalar hot path — isolates the hash-unroll + probe-grouping
    /// effect with the batching structure held fixed.
    pub fn consume_batched_scalar(&mut self, stream: &dyn EdgeStream, batch: usize) {
        stream.for_each_batch(batch, &mut |chunk| self.update_batch_scalar(chunk));
    }

    /// Feed an entire stream through the frozen per-edge scalar engine
    /// ([`update_scalar`](Self::update_scalar)) — the pre-PR ingest path
    /// and the baseline the `BENCH_8` ingest gate measures from.
    pub fn consume_scalar(&mut self, stream: &dyn EdgeStream) {
        stream.for_each(&mut |e| self.update_scalar(e));
    }

    /// Merge another bank of the same shape (same parameter list, same
    /// seed) into `self`, sketch by sketch. With the inputs partitioned
    /// across machines this composes exactly like
    /// [`ThresholdSketch::merge_from`] does for a single sketch: every
    /// guess's merged sketch equals the single-machine build.
    pub fn merge_from(&mut self, other: &SketchBank) {
        assert_eq!(
            self.sketches.len(),
            other.sketches.len(),
            "banks must have the same number of guesses to merge"
        );
        for (mine, theirs) in self.sketches.iter_mut().zip(&other.sketches) {
            mine.merge_from(theirs);
        }
    }

    /// Build a bank from one pass over `stream`.
    pub fn from_stream(
        params: impl IntoIterator<Item = SketchParams>,
        seed: u64,
        stream: &dyn EdgeStream,
    ) -> Self {
        let mut bank = Self::new(params, seed);
        bank.consume(stream);
        bank
    }

    /// Borrow the sketches.
    pub fn sketches(&self) -> &[ThresholdSketch] {
        &self.sketches
    }

    /// Consume the bank into its sketches.
    pub fn into_sketches(self) -> Vec<ThresholdSketch> {
        self.sketches
    }

    /// Combined space (the sketches coexist during the pass).
    pub fn space_report(&self) -> SpaceReport {
        self.sketches
            .iter()
            .map(|s| s.space_report())
            .fold(SpaceReport::default(), |acc, r| {
                let mut c = acc.coexist(r);
                c.passes = 1;
                c
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_stream::VecStream;

    fn stream() -> VecStream {
        let mut edges = Vec::new();
        for s in 0..8u32 {
            for e in 0..100u64 {
                if !(e + s as u64).is_multiple_of(3) {
                    edges.push(Edge::new(s, e));
                }
            }
        }
        VecStream::new(8, edges)
    }

    #[test]
    fn bank_matches_individual_sketches() {
        let seed = 77;
        let p1 = SketchParams::with_budget(8, 1, 0.5, 50);
        let p2 = SketchParams::with_budget(8, 4, 0.5, 120);
        let bank = SketchBank::from_stream([p1, p2], seed, &stream());
        let solo1 = ThresholdSketch::from_stream(p1, seed, &stream());
        let solo2 = ThresholdSketch::from_stream(p2, seed, &stream());
        assert_eq!(bank.sketches()[0].edges_stored(), solo1.edges_stored());
        assert_eq!(bank.sketches()[1].edges_stored(), solo2.edges_stored());
        assert_eq!(
            bank.sketches()[0].acceptance_bound(),
            solo1.acceptance_bound()
        );
        assert_eq!(bank.sketches()[0].counters(), solo1.counters());
        assert_eq!(bank.sketches()[1].counters(), solo2.counters());
    }

    #[test]
    fn space_is_sum_of_parts() {
        let p1 = SketchParams::with_budget(8, 1, 0.5, 50);
        let p2 = SketchParams::with_budget(8, 4, 0.5, 120);
        let bank = SketchBank::from_stream([p1, p2], 3, &stream());
        let total = bank.space_report();
        let sum: u64 = bank
            .sketches()
            .iter()
            .map(|s| s.space_report().peak_edges)
            .sum();
        assert_eq!(total.peak_edges, sum);
        assert_eq!(total.passes, 1);
    }

    /// The shared-hash + pre-filter batch path must be observationally
    /// identical to the per-edge path: same bounds, same stored edges,
    /// same retained content, and — the delicate part — the exact same
    /// per-sketch counters (pre-filtered edges are charged as
    /// `rejected_by_bound` to every guess).
    #[test]
    fn batched_bank_matches_per_edge_bank() {
        let seed = 31;
        let p1 = SketchParams::with_budget(8, 1, 0.5, 50);
        let p2 = SketchParams::with_budget(8, 4, 0.5, 120);
        let per_edge = SketchBank::from_stream([p1, p2], seed, &stream());
        for batch in [1usize, 37, 10_000] {
            let mut batched = SketchBank::new([p1, p2], seed);
            batched.consume_batched(&stream(), batch);
            for (a, b) in per_edge.sketches().iter().zip(batched.sketches()) {
                assert_eq!(a.acceptance_bound(), b.acceptance_bound(), "batch={batch}");
                assert_eq!(a.edges_stored(), b.edges_stored(), "batch={batch}");
                assert_eq!(a.counters(), b.counters(), "batch={batch}");
                assert_eq!(
                    a.canonical_content(),
                    b.canonical_content(),
                    "batch={batch}"
                );
            }
        }
    }

    /// The vectorized batch path (unrolled hash + grouped prefetched
    /// probes) and its retained scalar baseline must be observationally
    /// identical across batch sizes, including sizes straddling the
    /// unroll and probe-group widths.
    #[test]
    fn vectorized_bank_matches_scalar_bank() {
        let seed = 83;
        let p1 = SketchParams::with_budget(8, 1, 0.5, 50);
        let p2 = SketchParams::with_budget(8, 4, 0.5, 120);
        for batch in [1usize, 7, 8, 9, 37, 10_000] {
            let mut vectorized = SketchBank::new([p1, p2], seed);
            vectorized.consume_batched(&stream(), batch);
            let mut scalar = SketchBank::new([p1, p2], seed);
            scalar.consume_batched_scalar(&stream(), batch);
            for (a, b) in vectorized.sketches().iter().zip(scalar.sketches()) {
                assert_eq!(a.acceptance_bound(), b.acceptance_bound(), "batch={batch}");
                assert_eq!(a.counters(), b.counters(), "batch={batch}");
                assert_eq!(
                    a.canonical_content(),
                    b.canonical_content(),
                    "batch={batch}"
                );
            }
        }
    }

    /// The pre-filter must actually engage on saturated banks: once every
    /// guess's bound has dropped, most arrivals die at the bank level
    /// while per-sketch counters still record them.
    #[test]
    fn prefilter_accounts_all_arrivals() {
        let seed = 9;
        let p1 = SketchParams::with_budget(4, 2, 0.5, 20);
        let p2 = SketchParams::with_budget(4, 2, 0.5, 40);
        let mut edges = Vec::new();
        for s in 0..4u32 {
            for e in 0..2_000u64 {
                edges.push(Edge::new(s, e));
            }
        }
        let total = edges.len() as u64;
        let mut bank = SketchBank::new([p1, p2], seed);
        bank.update_batch(&edges);
        for s in bank.sketches() {
            let c = s.counters();
            assert_eq!(c.arrivals, total, "every sketch sees every arrival");
            assert!(c.rejected_by_bound > total / 2, "bound must saturate");
        }
    }

    #[test]
    fn merged_partition_banks_equal_single_bank() {
        let seed = 55;
        let p1 = SketchParams::with_budget(8, 1, 0.5, 60);
        let p2 = SketchParams::with_budget(8, 4, 0.5, 150);
        let single = SketchBank::from_stream([p1, p2], seed, &stream());
        let mut parts: Vec<SketchBank> = (0..3).map(|_| SketchBank::new([p1, p2], seed)).collect();
        let mut i = 0usize;
        stream().for_each(&mut |e| {
            parts[i % 3].update(e);
            i += 1;
        });
        let mut merged = parts.remove(0);
        for part in &parts {
            merged.merge_from(part);
        }
        for (a, b) in single.sketches().iter().zip(merged.sketches()) {
            let mut ka: Vec<u64> = a.retained().map(|(k, _, _)| k).collect();
            let mut kb: Vec<u64> = b.retained().map(|(k, _, _)| k).collect();
            ka.sort_unstable();
            kb.sort_unstable();
            assert_eq!(ka, kb, "merged bank must retain the same elements");
        }
    }

    #[test]
    #[should_panic(expected = "same number of guesses")]
    fn merge_rejects_shape_mismatch() {
        let p1 = SketchParams::with_budget(8, 1, 0.5, 50);
        let mut a = SketchBank::new([p1], 1);
        let b = SketchBank::new([p1, p1], 1);
        a.merge_from(&b);
    }

    #[test]
    fn empty_bank_is_fine() {
        let mut bank = SketchBank::from_stream(std::iter::empty(), 1, &stream());
        bank.update_batch(&[Edge::new(0u32, 1u64)]);
        assert!(bank.is_empty());
        assert_eq!(bank.space_report(), SpaceReport::default());
    }
}
