//! A bank of sketches fed from one pass.
//!
//! Algorithm 5 guesses the cover size `k'` geometrically
//! (`k' ← (1+ε/3)·k'`) and runs Algorithm 4 "in parallel" for every guess
//! — meaning every guess's sketch must be built during the *same* single
//! pass. [`SketchBank`] holds one [`ThresholdSketch`] per guess (each with
//! its own degree cap and budget, all sharing the global element hash) and
//! forwards each arriving edge to all of them.

use coverage_core::Edge;
use coverage_stream::{EdgeStream, SpaceReport};

use crate::params::SketchParams;
use crate::threshold::ThresholdSketch;

/// Several `H≤n` sketches built simultaneously in one pass.
#[derive(Clone, Debug)]
pub struct SketchBank {
    sketches: Vec<ThresholdSketch>,
}

impl SketchBank {
    /// One sketch per parameter set, all sharing `seed` (and therefore the
    /// same element hash — the paper's single global `h`).
    pub fn new(params: impl IntoIterator<Item = SketchParams>, seed: u64) -> Self {
        SketchBank {
            sketches: params
                .into_iter()
                .map(|p| ThresholdSketch::new(p, seed))
                .collect(),
        }
    }

    /// Number of sketches in the bank.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// True if the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Forward one edge to every sketch.
    pub fn update(&mut self, edge: Edge) {
        for s in &mut self.sketches {
            s.update(edge);
        }
    }

    /// Forward a contiguous batch of edges to every sketch. Iterating
    /// sketch-major (each sketch scans the whole batch) keeps one
    /// sketch's state hot in cache instead of touching every sketch per
    /// edge.
    pub fn update_batch(&mut self, edges: &[Edge]) {
        for s in &mut self.sketches {
            s.update_batch(edges);
        }
    }

    /// Feed an entire stream (one pass for the whole bank).
    pub fn consume(&mut self, stream: &dyn EdgeStream) {
        stream.for_each(&mut |e| self.update(e));
    }

    /// Feed an entire stream in batches of `batch` edges (one pass).
    pub fn consume_batched(&mut self, stream: &dyn EdgeStream, batch: usize) {
        stream.for_each_batch(batch, &mut |chunk| self.update_batch(chunk));
    }

    /// Merge another bank of the same shape (same parameter list, same
    /// seed) into `self`, sketch by sketch. With the inputs partitioned
    /// across machines this composes exactly like
    /// [`ThresholdSketch::merge_from`] does for a single sketch: every
    /// guess's merged sketch equals the single-machine build.
    pub fn merge_from(&mut self, other: &SketchBank) {
        assert_eq!(
            self.sketches.len(),
            other.sketches.len(),
            "banks must have the same number of guesses to merge"
        );
        for (mine, theirs) in self.sketches.iter_mut().zip(&other.sketches) {
            mine.merge_from(theirs);
        }
    }

    /// Build a bank from one pass over `stream`.
    pub fn from_stream(
        params: impl IntoIterator<Item = SketchParams>,
        seed: u64,
        stream: &dyn EdgeStream,
    ) -> Self {
        let mut bank = Self::new(params, seed);
        bank.consume(stream);
        bank
    }

    /// Borrow the sketches.
    pub fn sketches(&self) -> &[ThresholdSketch] {
        &self.sketches
    }

    /// Consume the bank into its sketches.
    pub fn into_sketches(self) -> Vec<ThresholdSketch> {
        self.sketches
    }

    /// Combined space (the sketches coexist during the pass).
    pub fn space_report(&self) -> SpaceReport {
        self.sketches
            .iter()
            .map(|s| s.space_report())
            .fold(SpaceReport::default(), |acc, r| {
                let mut c = acc.coexist(r);
                c.passes = 1;
                c
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_stream::VecStream;

    fn stream() -> VecStream {
        let mut edges = Vec::new();
        for s in 0..8u32 {
            for e in 0..100u64 {
                if !(e + s as u64).is_multiple_of(3) {
                    edges.push(Edge::new(s, e));
                }
            }
        }
        VecStream::new(8, edges)
    }

    #[test]
    fn bank_matches_individual_sketches() {
        let seed = 77;
        let p1 = SketchParams::with_budget(8, 1, 0.5, 50);
        let p2 = SketchParams::with_budget(8, 4, 0.5, 120);
        let bank = SketchBank::from_stream([p1, p2], seed, &stream());
        let solo1 = ThresholdSketch::from_stream(p1, seed, &stream());
        let solo2 = ThresholdSketch::from_stream(p2, seed, &stream());
        assert_eq!(bank.sketches()[0].edges_stored(), solo1.edges_stored());
        assert_eq!(bank.sketches()[1].edges_stored(), solo2.edges_stored());
        assert_eq!(
            bank.sketches()[0].acceptance_bound(),
            solo1.acceptance_bound()
        );
    }

    #[test]
    fn space_is_sum_of_parts() {
        let p1 = SketchParams::with_budget(8, 1, 0.5, 50);
        let p2 = SketchParams::with_budget(8, 4, 0.5, 120);
        let bank = SketchBank::from_stream([p1, p2], 3, &stream());
        let total = bank.space_report();
        let sum: u64 = bank
            .sketches()
            .iter()
            .map(|s| s.space_report().peak_edges)
            .sum();
        assert_eq!(total.peak_edges, sum);
        assert_eq!(total.passes, 1);
    }

    #[test]
    fn batched_bank_matches_per_edge_bank() {
        let seed = 31;
        let p1 = SketchParams::with_budget(8, 1, 0.5, 50);
        let p2 = SketchParams::with_budget(8, 4, 0.5, 120);
        let per_edge = SketchBank::from_stream([p1, p2], seed, &stream());
        let mut batched = SketchBank::new([p1, p2], seed);
        batched.consume_batched(&stream(), 37);
        for (a, b) in per_edge.sketches().iter().zip(batched.sketches()) {
            assert_eq!(a.acceptance_bound(), b.acceptance_bound());
            assert_eq!(a.edges_stored(), b.edges_stored());
        }
    }

    #[test]
    fn merged_partition_banks_equal_single_bank() {
        let seed = 55;
        let p1 = SketchParams::with_budget(8, 1, 0.5, 60);
        let p2 = SketchParams::with_budget(8, 4, 0.5, 150);
        let single = SketchBank::from_stream([p1, p2], seed, &stream());
        let mut parts: Vec<SketchBank> = (0..3).map(|_| SketchBank::new([p1, p2], seed)).collect();
        let mut i = 0usize;
        stream().for_each(&mut |e| {
            parts[i % 3].update(e);
            i += 1;
        });
        let mut merged = parts.remove(0);
        for part in &parts {
            merged.merge_from(part);
        }
        for (a, b) in single.sketches().iter().zip(merged.sketches()) {
            let mut ka: Vec<u64> = a.retained().map(|(k, _, _)| k).collect();
            let mut kb: Vec<u64> = b.retained().map(|(k, _, _)| k).collect();
            ka.sort_unstable();
            kb.sort_unstable();
            assert_eq!(ka, kb, "merged bank must retain the same elements");
        }
    }

    #[test]
    #[should_panic(expected = "same number of guesses")]
    fn merge_rejects_shape_mismatch() {
        let p1 = SketchParams::with_budget(8, 1, 0.5, 50);
        let mut a = SketchBank::new([p1], 1);
        let b = SketchBank::new([p1, p1], 1);
        a.merge_from(&b);
    }

    #[test]
    fn empty_bank_is_fine() {
        let bank = SketchBank::from_stream(std::iter::empty(), 1, &stream());
        assert!(bank.is_empty());
        assert_eq!(bank.space_report(), SpaceReport::default());
    }
}
