//! Flat struct-of-arrays element storage for the threshold sketch — the
//! ingestion engine's backing store.
//!
//! The map-backed engine (preserved as [`mod@crate::reference`]) pays two
//! per-update costs that dominate ingest wall-clock: a `HashMap` probe
//! that re-hashes the element key even though the sketch has *already*
//! computed the 64-bit element hash `h(u)`, and a heap-allocated
//! `Vec<u32>` per retained element for its incident set ids. This store
//! removes both:
//!
//! * **Open addressing by the element hash itself.** `h(u)` is uniform
//!   by construction (Algorithm 1's `h : E → [0,1]`), so its top bits
//!   index a power-of-two slot table directly — no second hash function,
//!   no hasher state. Slots hold `u32` indices into dense
//!   struct-of-arrays columns (`keys`, `hashes`, list descriptors), so
//!   probes touch one small array and the hot columns stay contiguous.
//!   Deletion (eviction) uses backward-shift compaction, keeping probe
//!   chains tombstone-free no matter how many elements are evicted.
//! * **A pooled `u32` arena for set lists.** Every element's incident
//!   set ids live in one shared `Vec<u32>`; a list occupies a
//!   power-of-two block, doubling in place (amortized `O(1)`) up to the
//!   degree cap, and freed blocks recycle through per-class free lists.
//!   Appends are raw writes — no per-element allocation, ever.
//!
//! Lists are **append-order**, not sorted: the sketch defers
//! sort-on-report (duplicate detection on arrival is a contiguous
//! forward scan, which for cap-bounded lists beats the
//! `binary_search` + `Vec::insert` memmove of the reference engine).
//!
//! The store also maintains a cached [`capacity_words`] footprint —
//! table + columns + arena + free lists, in machine words — refreshed on
//! every structural growth, which the sketch feeds to
//! [`SpaceTracker::set_aux_capacity`](coverage_stream::SpaceTracker::set_aux_capacity)
//! so space reports cannot understate arena-resident memory.
//!
//! [`capacity_words`]: FlatStore::capacity_words

/// Sentinel: an unoccupied slot in the open-addressing table.
const EMPTY_SLOT: u32 = u32::MAX;

/// Initial slot-table size (power of two).
const MIN_TABLE: usize = 16;

/// Initial arena block class: new elements get `1 << INITIAL_CLASS`
/// set-id slots (most elements never outgrow it).
const INITIAL_CLASS: u8 = 2;

/// Outcome of a fused [`FlatStore::try_append`] on an existing entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AppendOutcome {
    /// The set id was appended to the entry's list.
    Appended,
    /// The list is at the degree cap; the entry was marked truncated.
    CapRejected,
    /// The set id is already present (dedup enabled); nothing changed.
    Duplicate,
}

/// Flat element store: open-addressing table over struct-of-arrays
/// entries with arena-pooled set lists. Crate-internal — the public
/// surface is [`crate::ThresholdSketch`].
///
/// Slot addressing uses the hash's **low** bits. This is load-bearing:
/// the sketch retains exactly the lowest-hash prefix of elements
/// (`h ≤ bound`), so conditioning on retention zeroes the hash's *high*
/// bits — addressing by them would cram every live entry into the first
/// `p*` fraction of the table and collapse linear probing into `O(n)`
/// cluster walks. The low bits stay uniform under that conditioning
/// (the bound culls by magnitude, i.e. by high bits), so they are the
/// correct direct address.
#[derive(Clone, Debug)]
pub(crate) struct FlatStore {
    /// Open-addressing table: `slots[s]` is an entry index or
    /// [`EMPTY_SLOT`]. Always a power of two in length; the home slot
    /// of a hash is `hash & (len − 1)`.
    slots: Vec<u32>,
    /// Entry column: original element keys.
    keys: Vec<u64>,
    /// Entry column: element hashes under the sketch's `h`.
    hashes: Vec<u64>,
    /// Entry column: arena offset of the element's set-list block.
    list_off: Vec<u32>,
    /// Entry column: live length of the set list.
    list_len: Vec<u32>,
    /// Entry column: block capacity class (capacity = `1 << class`).
    list_class: Vec<u8>,
    /// Entry column: whether the degree cap dropped edges.
    truncated: Vec<bool>,
    /// The pooled set-id arena all list blocks are carved from.
    arena: Vec<u32>,
    /// `free[class]` = offsets of recycled blocks of size `1 << class`.
    free: Vec<Vec<u32>>,
    /// Cached total capacity footprint in machine words.
    cap_words: u64,
}

impl FlatStore {
    pub(crate) fn new() -> Self {
        let mut s = FlatStore {
            slots: vec![EMPTY_SLOT; MIN_TABLE],
            keys: Vec::new(),
            hashes: Vec::new(),
            list_off: Vec::new(),
            list_len: Vec::new(),
            list_class: Vec::new(),
            truncated: Vec::new(),
            arena: Vec::new(),
            free: Vec::new(),
            cap_words: 0,
        };
        s.recompute_cap_words();
        s
    }

    /// Number of stored elements.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Find the entry for `key`, whose hash under the sketch's `h` is
    /// `hash`. One table walk from the hash's home slot — the hash is
    /// the address; nothing is re-hashed.
    #[inline]
    pub(crate) fn find(&self, hash: u64, key: u64) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let e = self.slots[i];
            if e == EMPTY_SLOT {
                return None;
            }
            if self.keys[e as usize] == key {
                return Some(e);
            }
            i = (i + 1) & mask;
        }
    }

    /// Software-prefetch the probe chain of `hash`: touch the home slot
    /// and, if occupied, the entry's key — the exact loads the
    /// subsequent [`find`](Self::find) will issue. Stable-rust only
    /// (the workspace forbids `unsafe`, so no `_mm_prefetch`): the
    /// early loads are forced with [`std::hint::black_box`], which
    /// pulls the slot and key cache lines in while the batch loop
    /// still has independent work to overlap them with. Pure reads —
    /// observable state is untouched, so batch paths that prefetch a
    /// group ahead stay bit-identical to the scalar walk.
    #[inline]
    pub(crate) fn prefetch(&self, hash: u64) {
        let mask = self.slots.len() - 1;
        let e = self.slots[hash as usize & mask];
        if e != EMPTY_SLOT {
            std::hint::black_box(self.keys[e as usize]);
        } else {
            std::hint::black_box(e);
        }
    }

    /// Fused degree-cap check + duplicate scan + append on entry `idx`:
    /// the survivor path of the sketch's hot loop with the entry's list
    /// descriptor (offset, length, class) loaded **once**, instead of
    /// the three separate `list()` / `contains` / `push_set` walks the
    /// scalar sequence pays. Exactly equivalent to:
    ///
    /// ```text
    /// if list(idx).len() >= cap       { mark_truncated(idx); CapRejected }
    /// else if dedup && list(idx).contains(&set) { Duplicate }
    /// else                            { push_set(idx, set);  Appended }
    /// ```
    #[inline]
    pub(crate) fn try_append(
        &mut self,
        idx: u32,
        set: u32,
        cap: usize,
        dedup: bool,
    ) -> AppendOutcome {
        let i = idx as usize;
        let len = self.list_len[i];
        if len as usize >= cap {
            self.truncated[i] = true;
            return AppendOutcome::CapRejected;
        }
        let off = self.list_off[i];
        if dedup && self.arena[off as usize..(off + len) as usize].contains(&set) {
            return AppendOutcome::Duplicate;
        }
        let class = self.list_class[i];
        if len == 1u32 << class {
            let new_off = self.alloc_block(class + 1);
            let old_off = self.list_off[i];
            self.arena
                .copy_within(old_off as usize..(old_off + len) as usize, new_off as usize);
            self.free_block(old_off, class);
            self.list_off[i] = new_off;
            self.list_class[i] = class + 1;
        }
        self.arena[(self.list_off[i] + len) as usize] = set;
        self.list_len[i] = len + 1;
        AppendOutcome::Appended
    }

    /// One probe walk that answers both questions [`find`](Self::find)
    /// and a subsequent insert would ask: `Ok(idx)` if `key` is stored,
    /// `Err(slot)` with the chain's EMPTY terminus — the exact slot
    /// [`place`](Self::place) would pick — if it is not. The hot loop
    /// pairs this with [`insert_at`](Self::insert_at) so a miss costs a
    /// single walk instead of find's walk plus place's repeat of it.
    #[inline]
    pub(crate) fn find_or_empty(&self, hash: u64, key: u64) -> Result<u32, usize> {
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        loop {
            let e = self.slots[i];
            if e == EMPTY_SLOT {
                return Err(i);
            }
            if self.keys[e as usize] == key {
                return Ok(e);
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert a new entry (caller guarantees `key` is absent) with an
    /// empty set list. Returns its entry index.
    pub(crate) fn insert(&mut self, key: u64, hash: u64) -> u32 {
        let slot = match self.find_or_empty(hash, key) {
            Err(slot) => slot,
            Ok(_) => unreachable!("insert requires an absent key"),
        };
        self.insert_at(slot, key, hash)
    }

    /// Insert a new entry into the empty slot a prior
    /// [`find_or_empty`](Self::find_or_empty) walk returned, skipping
    /// the second probe walk. `slot` must be the EMPTY terminus of
    /// `hash`'s probe chain with no intervening mutation; if the insert
    /// triggers a table grow (rehash), the stale slot is discarded and
    /// the entry placed by the normal walk — identical outcome either
    /// way.
    pub(crate) fn insert_at(&mut self, slot: usize, key: u64, hash: u64) -> u32 {
        // Grow at 7/8 load so probe chains stay short.
        let slot = if (self.keys.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow_table();
            None
        } else {
            Some(slot)
        };
        let idx = self.keys.len() as u32;
        debug_assert!(idx != EMPTY_SLOT, "entry index space exhausted");
        let grew = self.keys.len() == self.keys.capacity();
        let off = self.alloc_block(INITIAL_CLASS);
        self.keys.push(key);
        self.hashes.push(hash);
        self.list_off.push(off);
        self.list_len.push(0);
        self.list_class.push(INITIAL_CLASS);
        self.truncated.push(false);
        match slot {
            Some(s) => {
                debug_assert_eq!(self.slots[s], EMPTY_SLOT, "slot must be the chain terminus");
                self.slots[s] = idx;
            }
            None => self.place(hash, idx),
        }
        if grew {
            self.recompute_cap_words();
        }
        idx
    }

    /// The element hash of entry `idx`.
    #[inline]
    pub(crate) fn hash_of(&self, idx: u32) -> u64 {
        self.hashes[idx as usize]
    }

    /// The set list of entry `idx`, in append order.
    #[inline]
    pub(crate) fn list(&self, idx: u32) -> &[u32] {
        let i = idx as usize;
        let off = self.list_off[i] as usize;
        &self.arena[off..off + self.list_len[i] as usize]
    }

    /// Append `set` to entry `idx`'s list, growing its arena block
    /// (doubling, amortized `O(1)`) when full. The caller enforces the
    /// degree cap.
    #[inline]
    pub(crate) fn push_set(&mut self, idx: u32, set: u32) {
        let i = idx as usize;
        let len = self.list_len[i];
        let class = self.list_class[i];
        if len == 1u32 << class {
            let new_off = self.alloc_block(class + 1);
            let old_off = self.list_off[i];
            self.arena
                .copy_within(old_off as usize..(old_off + len) as usize, new_off as usize);
            self.free_block(old_off, class);
            self.list_off[i] = new_off;
            self.list_class[i] = class + 1;
        }
        self.arena[(self.list_off[i] + len) as usize] = set;
        self.list_len[i] = len + 1;
    }

    /// Replace entry `idx`'s list wholesale (merge path).
    pub(crate) fn replace_list(&mut self, idx: u32, new: &[u32]) {
        let i = idx as usize;
        let new_len = new.len() as u32;
        if new_len > 1u32 << self.list_class[i] {
            let class = needed_class(new.len());
            let off = self.alloc_block(class);
            self.free_block(self.list_off[i], self.list_class[i]);
            self.list_off[i] = off;
            self.list_class[i] = class;
        }
        let off = self.list_off[i] as usize;
        self.arena[off..off + new.len()].copy_from_slice(new);
        self.list_len[i] = new_len;
    }

    /// Mark entry `idx` as degree-cap truncated.
    #[inline]
    pub(crate) fn mark_truncated(&mut self, idx: u32) {
        self.truncated[idx as usize] = true;
    }

    /// Remove entry `idx`: recycle its arena block, backward-shift its
    /// table slot out, and swap-remove its columns (repointing the
    /// moved entry's slot).
    pub(crate) fn remove(&mut self, idx: u32) {
        let i = idx as usize;
        self.free_block(self.list_off[i], self.list_class[i]);
        self.remove_slot_of(idx);
        let last = self.keys.len() - 1;
        self.keys.swap_remove(i);
        self.hashes.swap_remove(i);
        self.list_off.swap_remove(i);
        self.list_len.swap_remove(i);
        self.list_class.swap_remove(i);
        self.truncated.swap_remove(i);
        if i != last {
            // The former last entry now lives at `i`; rewrite its slot.
            let mask = self.slots.len() - 1;
            let mut s = self.hashes[i] as usize & mask;
            loop {
                if self.slots[s] == last as u32 {
                    self.slots[s] = idx;
                    break;
                }
                s = (s + 1) & mask;
            }
        }
    }

    /// Iterate `(key, hash, set_list, truncated)` over all entries, in
    /// dense entry order (append-order lists; callers canonicalize).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, u64, &[u32], bool)> + '_ {
        (0..self.keys.len()).map(move |i| {
            let off = self.list_off[i] as usize;
            (
                self.keys[i],
                self.hashes[i],
                &self.arena[off..off + self.list_len[i] as usize],
                self.truncated[i],
            )
        })
    }

    /// Total capacity footprint in machine words: slot table + entry
    /// columns + arena + free lists, counting *capacities* (allocated
    /// memory), not live lengths. Cached; refreshed on every structural
    /// growth.
    #[inline]
    pub(crate) fn capacity_words(&self) -> u64 {
        self.cap_words
    }

    /// Place `idx` in the first free slot of `hash`'s probe chain.
    fn place(&mut self, hash: u64, idx: u32) {
        let mask = self.slots.len() - 1;
        let mut i = hash as usize & mask;
        while self.slots[i] != EMPTY_SLOT {
            i = (i + 1) & mask;
        }
        self.slots[i] = idx;
    }

    /// Double the slot table and re-place every entry.
    fn grow_table(&mut self) {
        let new_len = (self.slots.len() * 2).max(MIN_TABLE);
        self.slots.clear();
        self.slots.resize(new_len, EMPTY_SLOT);
        for idx in 0..self.keys.len() {
            let h = self.hashes[idx];
            self.place(h, idx as u32);
        }
        self.recompute_cap_words();
    }

    /// Remove `idx`'s slot by backward-shift compaction: later entries
    /// in the probe chain whose home slot precedes the hole move back
    /// into it, so chains never accumulate tombstones.
    fn remove_slot_of(&mut self, idx: u32) {
        let mask = self.slots.len() - 1;
        let mut i = self.hashes[idx as usize] as usize & mask;
        while self.slots[i] != idx {
            i = (i + 1) & mask;
        }
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let e = self.slots[j];
            if e == EMPTY_SLOT {
                break;
            }
            let home = self.hashes[e as usize] as usize & mask;
            // `e` may move into the hole at `i` iff its home slot is not
            // in the cyclic interval (i, j] — i.e. its probe walk passed
            // through `i`.
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.slots[i] = e;
                i = j;
            }
        }
        self.slots[i] = EMPTY_SLOT;
    }

    /// Pop a recycled block of class `class`, or carve a fresh one off
    /// the arena's end.
    fn alloc_block(&mut self, class: u8) -> u32 {
        if let Some(list) = self.free.get_mut(class as usize) {
            if let Some(off) = list.pop() {
                return off;
            }
        }
        let size = 1usize << class;
        let off = self.arena.len();
        debug_assert!(
            off + size <= EMPTY_SLOT as usize,
            "arena offset space exhausted"
        );
        let grew = off + size > self.arena.capacity();
        self.arena.resize(off + size, 0);
        if grew {
            self.recompute_cap_words();
        }
        off as u32
    }

    /// Recycle a block for future allocations of its class.
    fn free_block(&mut self, off: u32, class: u8) {
        if self.free.len() <= class as usize {
            self.free.resize_with(class as usize + 1, Vec::new);
        }
        let list = &mut self.free[class as usize];
        let grew = list.len() == list.capacity();
        list.push(off);
        if grew {
            // Free-list backing storage is part of the capacity
            // footprint too — eviction-heavy streams grow it after the
            // table/arena have stopped growing.
            self.recompute_cap_words();
        }
    }

    fn recompute_cap_words(&mut self) {
        let w32 = |c: usize| (c as u64).div_ceil(2);
        let w8 = |c: usize| (c as u64).div_ceil(8);
        let free_words: u64 = self
            .free
            .iter()
            .map(|f| w32(f.capacity()) + 3) // 3 words of Vec header each
            .sum();
        self.cap_words = w32(self.slots.capacity())
            + self.keys.capacity() as u64
            + self.hashes.capacity() as u64
            + w32(self.list_off.capacity())
            + w32(self.list_len.capacity())
            + w8(self.list_class.capacity())
            + w8(self.truncated.capacity())
            + w32(self.arena.capacity())
            + free_words;
    }
}

/// Smallest block class whose capacity holds `len` ids.
fn needed_class(len: usize) -> u8 {
    let mut class = INITIAL_CLASS;
    while (1usize << class) < len {
        class += 1;
    }
    class
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Deterministic xorshift64* for model-based testing.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            self.0 = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
            self.0
        }
    }

    fn mix(k: u64) -> u64 {
        coverage_hash::mix64(k)
    }

    #[test]
    fn insert_find_push_roundtrip() {
        let mut s = FlatStore::new();
        let idx = s.insert(42, mix(42));
        assert_eq!(s.find(mix(42), 42), Some(idx));
        assert_eq!(s.find(mix(43), 43), None);
        assert_eq!(s.list(idx), &[] as &[u32]);
        for set in [7u32, 3, 9, 1, 1, 5, 2, 8, 0, 4] {
            s.push_set(idx, set);
        }
        assert_eq!(s.list(idx), &[7, 3, 9, 1, 1, 5, 2, 8, 0, 4]);
        let flag = |s: &FlatStore| s.iter().next().map(|(_, _, _, t)| t);
        assert_eq!(flag(&s), Some(false));
        s.mark_truncated(idx);
        assert_eq!(flag(&s), Some(true));
    }

    /// Model test: the store must agree with a HashMap across a long
    /// interleaving of inserts, appends, and removals (the removal path
    /// exercises backward-shift slot compaction and block recycling).
    #[test]
    fn agrees_with_map_model_under_churn() {
        let mut s = FlatStore::new();
        let mut model: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut rng = Rng(0xC0FFEE);
        for step in 0..20_000u64 {
            let key = rng.next() % 500;
            let h = mix(key);
            match rng.next() % 10 {
                // Mostly upserts with an append.
                0..=7 => {
                    let set = (rng.next() % 64) as u32;
                    let idx = match s.find(h, key) {
                        Some(i) => i,
                        None => s.insert(key, h),
                    };
                    s.push_set(idx, set);
                    model.entry(key).or_default().push(set);
                }
                // Occasional removal.
                8 => {
                    if let Some(idx) = s.find(h, key) {
                        s.remove(idx);
                        model.remove(&key);
                    }
                }
                // Occasional wholesale replacement (merge path).
                _ => {
                    if let Some(idx) = s.find(h, key) {
                        let new: Vec<u32> = (0..(rng.next() % 20) as u32).collect();
                        s.replace_list(idx, &new);
                        model.insert(key, new);
                    }
                }
            }
            if step % 1_000 == 0 {
                assert_eq!(s.len(), model.len(), "step {step}");
            }
        }
        assert_eq!(s.len(), model.len());
        for (k, h, list, _) in s.iter() {
            assert_eq!(model.get(&k).map(Vec::as_slice), Some(list), "key {k}");
            assert_eq!(h, mix(k));
        }
        // Every model key is findable through the table.
        for (&k, v) in &model {
            let idx = s.find(mix(k), k).expect("model key must be present");
            assert_eq!(s.list(idx), v.as_slice());
        }
    }

    /// `try_append` must be step-for-step equivalent to the unfused
    /// `list().len()` / `mark_truncated` / `contains` / `push_set`
    /// sequence it replaces, across caps, dedup modes, and block growth.
    #[test]
    fn try_append_matches_unfused_sequence() {
        for &cap in &[1usize, 3, 8, 64] {
            for &dedup in &[false, true] {
                let mut fused = FlatStore::new();
                let mut plain = FlatStore::new();
                let mut rng = Rng(0xAB + cap as u64);
                for key in 0..64u64 {
                    let h = mix(key);
                    let fi = fused.insert(key, h);
                    let pi = plain.insert(key, h);
                    assert_eq!(fi, pi);
                    for _ in 0..(rng.next() % 12) {
                        let set = (rng.next() % 6) as u32;
                        let got = fused.try_append(fi, set, cap, dedup);
                        let want = if plain.list(pi).len() >= cap {
                            plain.mark_truncated(pi);
                            AppendOutcome::CapRejected
                        } else if dedup && plain.list(pi).contains(&set) {
                            AppendOutcome::Duplicate
                        } else {
                            plain.push_set(pi, set);
                            AppendOutcome::Appended
                        };
                        assert_eq!(got, want, "key={key} set={set} cap={cap} dedup={dedup}");
                    }
                }
                let a: Vec<_> = fused.iter().collect();
                let b: Vec<_> = plain.iter().collect();
                assert_eq!(a, b, "cap={cap} dedup={dedup}");
            }
        }
    }

    #[test]
    fn prefetch_is_pure() {
        let mut s = FlatStore::new();
        for k in 0..100u64 {
            let idx = s.insert(k, mix(k));
            s.push_set(idx, (k % 7) as u32);
        }
        let before: Vec<_> = s.iter().map(|(k, h, l, t)| (k, h, l.to_vec(), t)).collect();
        for k in 0..200u64 {
            s.prefetch(mix(k));
        }
        let after: Vec<_> = s.iter().map(|(k, h, l, t)| (k, h, l.to_vec(), t)).collect();
        assert_eq!(before, after);
        assert_eq!(
            s.find(mix(42), 42).map(|i| s.list(i).to_vec()),
            Some(vec![0])
        );
    }

    #[test]
    fn capacity_words_grow_and_never_shrink() {
        let mut s = FlatStore::new();
        let start = s.capacity_words();
        assert!(start > 0, "empty store still owns its table");
        let mut last = start;
        for k in 0..2_000u64 {
            let idx = s.insert(k, mix(k));
            for set in 0..8u32 {
                s.push_set(idx, set);
            }
            let now = s.capacity_words();
            assert!(now >= last, "capacity must be monotone");
            last = now;
        }
        // Removing everything keeps the capacity footprint (the free
        // lists recording the recycled blocks may even grow it).
        let peak = s.capacity_words();
        for k in 0..2_000u64 {
            let idx = s.find(mix(k), k).unwrap();
            s.remove(idx);
        }
        assert_eq!(s.len(), 0);
        assert!(s.capacity_words() >= peak);
    }

    #[test]
    fn recycled_blocks_are_reused() {
        let mut s = FlatStore::new();
        let a = s.insert(1, mix(1));
        for set in 0..4u32 {
            s.push_set(a, set);
        }
        s.remove(a);
        // Removal may grow the free-list bookkeeping (and must count it),
        // but a same-shaped element then reuses the recycled block: no
        // further growth on re-insert.
        let after_remove = s.capacity_words();
        let b = s.insert(2, mix(2));
        for set in 0..4u32 {
            s.push_set(b, set);
        }
        assert_eq!(s.capacity_words(), after_remove);
    }
}
