//! The retired map-backed `H≤n` engine, kept as the executable
//! specification of the flat ingestion engine.
//!
//! [`ReferenceSketch`] is the original [`ThresholdSketch`] implementation
//! verbatim: an `FxHashMap<u64, ElemEntry>` keyed by element, one
//! heap-allocated sorted `Vec<u32>` of set ids per retained element, and
//! `binary_search` + `Vec::insert` duplicate handling. It is *correct*
//! and *slow* — every update pays a second key hash for the map probe, a
//! pointer chase into the per-element `Vec`, and (in dedup mode) an
//! `O(degree_cap)` memmove — which is exactly why it exists:
//!
//! * the **property tests** (`tests/flat_engine_equivalence.rs`) assert
//!   the flat engine's retained `(element, hash, sets, truncated)`
//!   content, counters, and acceptance bound are bit-identical to this
//!   engine across generators × arrival orders × merge splits;
//! * the **`bench_smoke` CI gate** (`BENCH_4.json`) requires the flat
//!   bank-ingestion path to beat a bank of these by ≥ 1.5× while
//!   producing identical retained content.
//!
//! Equivalence is testable forever: any future change to the flat engine
//! must keep agreeing with this file, and this file should only ever
//! change when the sketch's *semantics* (not its storage) change.
//!
//! [`ThresholdSketch`]: crate::ThresholdSketch

use std::collections::BinaryHeap;

use coverage_core::Edge;
use coverage_hash::{FxHashMap, UnitHash};
use coverage_stream::EdgeStream;

use crate::params::SketchParams;
use crate::threshold::{sorted_union_capped, SketchCounters};

/// Per-element state of the reference engine.
#[derive(Clone, Debug)]
struct ElemEntry {
    /// The element's 64-bit hash (fixed-point fraction of `[0,1)`).
    hash: u64,
    /// Sorted set ids of kept incident edges (≤ `degree_cap` of them).
    sets: Vec<u32>,
    /// Whether edges were dropped due to the degree cap.
    truncated: bool,
}

/// The map-backed reference implementation of the streaming `H≤n`
/// sketch — see the module docs for why it is retained.
#[derive(Clone, Debug)]
pub struct ReferenceSketch {
    hash: UnitHash,
    params: SketchParams,
    entries: FxHashMap<u64, ElemEntry>,
    /// Max-heap of `(hash, element_key)` for eviction.
    heap: BinaryHeap<(u64, u64)>,
    /// Acceptance bound: an element is admitted iff `hash ≤ bound`.
    bound: u64,
    edges_stored: usize,
    counters: SketchCounters,
}

impl ReferenceSketch {
    /// A fresh reference sketch; `seed` determines the element hash
    /// function, exactly as for [`crate::ThresholdSketch::new`].
    pub fn new(params: SketchParams, seed: u64) -> Self {
        ReferenceSketch {
            hash: UnitHash::new(seed),
            params,
            entries: FxHashMap::default(),
            heap: BinaryHeap::new(),
            bound: u64::MAX,
            edges_stored: 0,
            counters: SketchCounters::default(),
        }
    }

    /// The parameters this sketch was built with.
    pub fn params(&self) -> &SketchParams {
        &self.params
    }

    /// Process one arriving edge (the original per-update path: hash,
    /// map probe, sorted insert).
    pub fn update(&mut self, edge: Edge) {
        self.counters.arrivals += 1;
        let key = edge.element.0;
        let h = self.hash.hash(key);
        if h > self.bound {
            self.counters.rejected_by_bound += 1;
            return;
        }
        let set = edge.set.0;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                if entry.sets.len() >= self.params.degree_cap {
                    entry.truncated = true;
                    self.counters.rejected_by_cap += 1;
                    return;
                }
                if self.params.dedup {
                    match entry.sets.binary_search(&set) {
                        Ok(_) => {
                            self.counters.duplicates += 1;
                            return;
                        }
                        Err(pos) => entry.sets.insert(pos, set),
                    }
                } else {
                    entry.sets.push(set);
                }
                self.edges_stored += 1;
            }
            None => {
                self.entries.insert(
                    key,
                    ElemEntry {
                        hash: h,
                        sets: vec![set],
                        truncated: false,
                    },
                );
                self.heap.push((h, key));
                self.edges_stored += 1;
            }
        }
        while self.edges_stored > self.params.max_edges() {
            self.evict_max();
        }
    }

    /// Evict the largest-hash element and lower the acceptance bound.
    fn evict_max(&mut self) {
        let Some((h, key)) = self.heap.pop() else {
            return;
        };
        let entry = self
            .entries
            .remove(&key)
            .expect("heap entries always have live map entries");
        debug_assert_eq!(entry.hash, h);
        self.edges_stored -= entry.sets.len();
        self.counters.evictions += 1;
        self.bound = h.saturating_sub(1);
    }

    /// Process a contiguous batch of arriving edges (plain per-edge
    /// loop — the reference has no shared-hash fast path; that is the
    /// point of benchmarking against it).
    pub fn update_batch(&mut self, edges: &[Edge]) {
        for &e in edges {
            self.update(e);
        }
    }

    /// Feed an entire stream (one pass).
    pub fn consume(&mut self, stream: &dyn EdgeStream) {
        stream.for_each(&mut |e| self.update(e));
    }

    /// Build the sketch from one pass over `stream`.
    pub fn from_stream(params: SketchParams, seed: u64, stream: &dyn EdgeStream) -> Self {
        let mut s = Self::new(params, seed);
        s.consume(stream);
        s
    }

    /// Number of stored edges.
    pub fn edges_stored(&self) -> usize {
        self.edges_stored
    }

    /// Number of retained elements.
    pub fn elements_stored(&self) -> usize {
        self.entries.len()
    }

    /// The current acceptance bound.
    pub fn acceptance_bound(&self) -> u64 {
        self.bound
    }

    /// Streaming-side diagnostics.
    pub fn counters(&self) -> SketchCounters {
        self.counters
    }

    /// Merge another reference sketch of the same parameters and seed —
    /// the original merge, against which the flat engine's merge is
    /// property-tested.
    pub fn merge_from(&mut self, other: &ReferenceSketch) {
        assert_eq!(
            self.hash, other.hash,
            "sketches must share a hash seed to merge"
        );
        assert_eq!(
            self.params, other.params,
            "sketches must share parameters to merge"
        );
        assert!(
            self.params.dedup,
            "merging requires dedup sketches (sorted per-element set lists)"
        );
        let bound = self.bound.min(other.bound);
        if bound < self.bound {
            let keys: Vec<u64> = self
                .entries
                .iter()
                .filter(|(_, e)| e.hash > bound)
                .map(|(&k, _)| k)
                .collect();
            for k in keys {
                let e = self.entries.remove(&k).expect("key just listed");
                self.edges_stored -= e.sets.len();
            }
        }
        self.bound = bound;
        for (&key, oe) in &other.entries {
            if oe.hash > bound {
                continue;
            }
            match self.entries.get_mut(&key) {
                Some(se) => {
                    debug_assert_eq!(se.hash, oe.hash);
                    let before = se.sets.len();
                    let (merged, overflow) =
                        sorted_union_capped(&se.sets, &oe.sets, self.params.degree_cap);
                    let added = merged.len() - before;
                    se.sets = merged;
                    se.truncated |= oe.truncated | overflow;
                    self.edges_stored += added;
                }
                None => {
                    self.entries.insert(key, oe.clone());
                    self.heap.push((oe.hash, key));
                    self.edges_stored += oe.sets.len();
                }
            }
        }
        self.heap = self.entries.iter().map(|(&k, e)| (e.hash, k)).collect();
        while self.edges_stored > self.params.max_edges() {
            self.evict_max();
        }
        let o = other.counters;
        self.counters.arrivals += o.arrivals;
        self.counters.rejected_by_bound += o.rejected_by_bound;
        self.counters.rejected_by_cap += o.rejected_by_cap;
        self.counters.duplicates += o.duplicates;
        self.counters.evictions += o.evictions;
    }

    /// The full retained content in canonical form — same currency as
    /// [`ThresholdSketch::canonical_content`](crate::ThresholdSketch::canonical_content),
    /// so the two engines compare with one `assert_eq!`.
    pub fn canonical_content(&self) -> Vec<(u64, u64, Vec<u32>, bool)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .map(|(&k, e)| (k, e.hash, e.sets.clone(), e.truncated))
            .collect();
        v.sort_unstable_by_key(|&(k, _, _, _)| k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThresholdSketch;
    use coverage_stream::VecStream;

    fn stream() -> VecStream {
        let mut edges = Vec::new();
        for s in 0..6u32 {
            for e in 0..400u64 {
                if !(e + s as u64).is_multiple_of(3) {
                    edges.push(Edge::new(s, e * 31));
                }
            }
        }
        VecStream::new(6, edges)
    }

    /// The in-crate smoke version of the engine-equivalence contract
    /// (the workspace property test covers generators × orders × merge
    /// splits; this pins the basics close to both implementations).
    #[test]
    fn flat_engine_matches_reference_engine() {
        let p = SketchParams::with_budget(6, 2, 0.5, 150);
        for seed in [1u64, 7, 23] {
            let flat = ThresholdSketch::from_stream(p, seed, &stream());
            let reference = ReferenceSketch::from_stream(p, seed, &stream());
            assert_eq!(flat.acceptance_bound(), reference.acceptance_bound());
            assert_eq!(flat.edges_stored(), reference.edges_stored());
            assert_eq!(flat.elements_stored(), reference.elements_stored());
            assert_eq!(flat.counters(), reference.counters());
            assert_eq!(flat.canonical_content(), reference.canonical_content());
        }
    }

    #[test]
    fn flat_merge_matches_reference_merge() {
        let p = SketchParams::with_budget(6, 2, 0.5, 120);
        let seed = 13;
        let mut flat_parts: Vec<ThresholdSketch> =
            (0..3).map(|_| ThresholdSketch::new(p, seed)).collect();
        let mut ref_parts: Vec<ReferenceSketch> =
            (0..3).map(|_| ReferenceSketch::new(p, seed)).collect();
        let mut i = 0usize;
        stream().for_each(&mut |e| {
            flat_parts[i % 3].update(e);
            ref_parts[i % 3].update(e);
            i += 1;
        });
        let mut flat = flat_parts.remove(0);
        for part in &flat_parts {
            flat.merge_from(part);
        }
        let mut reference = ref_parts.remove(0);
        for part in &ref_parts {
            reference.merge_from(part);
        }
        assert_eq!(flat.canonical_content(), reference.canonical_content());
        assert_eq!(flat.counters(), reference.counters());
    }

    #[test]
    fn reference_dedup_and_cap_semantics() {
        let p = SketchParams::with_budget(2, 2, 0.5, 100);
        let mut s = ReferenceSketch::new(p, 5);
        for _ in 0..10 {
            s.update(Edge::new(0u32, 9u64));
        }
        assert_eq!(s.edges_stored(), 1);
        assert_eq!(s.counters().duplicates, 9);
    }
}
