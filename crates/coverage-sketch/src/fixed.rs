//! Fixed-probability sketches `Hp` and `H'p` (Section 2, Figure 1).
//!
//! These are the two intermediary constructions the paper uses to analyze
//! `H≤n`. They are not streaming-space-bounded (that is the point of
//! `H≤n`), but they are exactly what the lemma-level tests need:
//!
//! * [`build_hp`] — drop every element hashing above `p` (Lemma 2.2/2.3);
//! * [`build_hp_prime`] — additionally cap element degrees (Lemma 2.4).
//!
//! The `fig1` experiment binary uses these to regenerate the paper's
//! Figure 1 worked example.

use coverage_core::{CoverageInstance, InstanceBuilder};
use coverage_hash::{threshold_from_p, UnitHash};
use coverage_stream::EdgeStream;

/// Build `Hp`: the subgraph of the stream induced by elements with
/// `h(element) ≤ p`.
pub fn build_hp(stream: &dyn EdgeStream, p: f64, seed: u64) -> CoverageInstance {
    let hash = UnitHash::new(seed);
    let t = threshold_from_p(p);
    let mut b = InstanceBuilder::new(stream.num_sets());
    stream.for_each(&mut |e| {
        if hash.hash(e.element.0) <= t {
            b.add_edge(e);
        }
    });
    b.build()
}

/// Build `H'p`: `Hp` with element degrees capped at `degree_cap` (surplus
/// edges dropped on a first-arrival basis — the paper allows any choice).
pub fn build_hp_prime(
    stream: &dyn EdgeStream,
    p: f64,
    seed: u64,
    degree_cap: usize,
) -> CoverageInstance {
    let hash = UnitHash::new(seed);
    let t = threshold_from_p(p);
    let mut kept: coverage_hash::FxHashMap<u64, Vec<u32>> = Default::default();
    stream.for_each(&mut |e| {
        if hash.hash(e.element.0) <= t {
            let sets = kept.entry(e.element.0).or_default();
            if sets.len() < degree_cap && !sets.contains(&e.set.0) {
                sets.push(e.set.0);
            }
        }
    });
    let mut b = InstanceBuilder::new(stream.num_sets());
    for (el, sets) in kept {
        for s in sets {
            b.add_edge(coverage_core::Edge::new(s, el));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::Edge;
    use coverage_stream::VecStream;

    fn stream() -> VecStream {
        let mut edges = Vec::new();
        for s in 0..6u32 {
            for e in 0..200u64 {
                edges.push(Edge::new(s, e));
            }
        }
        VecStream::new(6, edges)
    }

    #[test]
    fn hp_keeps_expected_fraction() {
        let g = build_hp(&stream(), 0.3, 5);
        let frac = g.num_elements() as f64 / 200.0;
        assert!((frac - 0.3).abs() < 0.12, "kept fraction {frac}");
        // Every kept element keeps all 6 incident edges in Hp.
        for d in g.element_degrees() {
            assert_eq!(d, 6);
        }
    }

    #[test]
    fn hp_p_one_is_identity() {
        let g = build_hp(&stream(), 1.0, 5);
        assert_eq!(g.num_elements(), 200);
        assert_eq!(g.num_edges(), 1200);
    }

    #[test]
    fn hp_prime_caps_degrees() {
        let g = build_hp_prime(&stream(), 1.0, 5, 4);
        assert_eq!(g.num_elements(), 200);
        for d in g.element_degrees() {
            assert!(d <= 4);
        }
        assert_eq!(g.num_edges(), 800);
    }

    #[test]
    fn hp_prime_subgraph_of_hp() {
        let hp = build_hp(&stream(), 0.4, 9);
        let hpp = build_hp_prime(&stream(), 0.4, 9, 3);
        assert_eq!(hp.num_elements(), hpp.num_elements());
        assert!(hpp.num_edges() <= hp.num_edges());
    }

    #[test]
    fn same_seed_same_sample() {
        let a = build_hp(&stream(), 0.5, 1);
        let b = build_hp(&stream(), 0.5, 1);
        assert_eq!(a.num_elements(), b.num_elements());
        let c = build_hp(&stream(), 0.5, 2);
        // Overwhelmingly likely to differ on 200 elements.
        assert_ne!(
            a.element_ids().len().wrapping_mul(31) ^ a.num_edges(),
            c.element_ids().len().wrapping_mul(31) ^ c.num_edges().wrapping_add(usize::MAX / 2),
            "trivial guard; different seeds give different samples"
        );
    }
}
