//! Empirical verification of the paper's lemma chain (Section 2).
//!
//! The analysis of `H≤n` proceeds through a chain of lemmas:
//!
//! | Claim | Statement (informally) |
//! |---|---|
//! | Lemma 2.2 | `|Γ(Hp,S)|/p` estimates `C(S)` within `ε·Opt_k` |
//! | Lemma 2.3 | α-approx on `Hp` ⇒ (α−2ε)-approx on `G` |
//! | Lemma 2.4 | α-approx on `H'p` ⇒ α(1−ε)-approx on `Hp` |
//! | Lemma 2.6 | `m'_p·εk/(2n·ln(1/ε)) ≤ |Γ(H'p, Opt_{H'p})|` |
//! | Theorem 2.7 | α-approx on `H≤n` ⇒ (α−12ε)-approx on `G` w.h.p. |
//!
//! Each `check_*` function here *measures* the two sides of one claim on a
//! concrete instance and reports them, so unit tests and the `exp_lemmas`
//! experiment can assert the inequality empirically. This is the
//! reproduction's ground-level evidence: not just "the end-to-end
//! algorithm works" but "every link of the proof chain holds on real
//! data".
//!
//! Optima are computed exactly (branch-and-bound) when the family is
//! small, and by lazy greedy otherwise; every report records which was
//! used (`opt_exact`).

use coverage_core::offline::{exact_k_cover, lazy_greedy_k_cover};
use coverage_core::{CoverageInstance, SetId};
use coverage_hash::SplitMix64;
use coverage_stream::VecStream;

use crate::fixed::{build_hp, build_hp_prime};
use crate::params::SketchParams;
use crate::threshold::ThresholdSketch;

/// Above this family count, optima fall back to greedy (reported).
const EXACT_LIMIT: usize = 22;

/// `Opt_k` on an instance: exact when `n ≤ EXACT_LIMIT`, else greedy.
/// Returns `(value, was_exact)`.
pub fn opt_k(inst: &CoverageInstance, k: usize) -> (usize, bool) {
    if inst.num_sets() <= EXACT_LIMIT {
        let (_, v) = exact_k_cover(inst, k);
        (v, true)
    } else {
        (lazy_greedy_k_cover(inst, k).coverage(), false)
    }
}

// ---------------------------------------------------------------------------
// Lemma 2.2 — the inverse-probability estimator.
// ---------------------------------------------------------------------------

/// Measured outcome of a Lemma 2.2 check.
#[derive(Clone, Copy, Debug)]
pub struct Lemma22Check {
    /// Sampling probability used.
    pub p: f64,
    /// Number of (family, hash-seed) estimate trials.
    pub trials: usize,
    /// Worst absolute estimation error observed.
    pub worst_abs_err: f64,
    /// The lemma's error allowance `ε·Opt_k`.
    pub allowance: f64,
    /// Trials whose error exceeded the allowance.
    pub violations: usize,
    /// Whether `Opt_k` was computed exactly.
    pub opt_exact: bool,
}

impl Lemma22Check {
    /// Fraction of trials within the allowance.
    pub fn success_rate(&self) -> f64 {
        1.0 - self.violations as f64 / self.trials.max(1) as f64
    }
}

/// Check Lemma 2.2: for random families `S` of size ≤ k and independent
/// hash functions, `| |Γ(Hp,S)|/p − C(S) |` should stay within `ε·Opt_k`
/// (up to the lemma's failure probability).
pub fn check_lemma_2_2(
    inst: &CoverageInstance,
    k: usize,
    epsilon: f64,
    p: f64,
    families: usize,
    hash_seeds: u64,
    seed: u64,
) -> Lemma22Check {
    let (opt, opt_exact) = opt_k(inst, k);
    let allowance = epsilon * opt as f64;
    let n = inst.num_sets();
    let mut rng = SplitMix64::new(seed);
    // Pre-draw the random families (size exactly min(k, n)).
    let fams: Vec<Vec<SetId>> = (0..families)
        .map(|_| {
            let mut picked = Vec::with_capacity(k.min(n));
            while picked.len() < k.min(n) {
                let s = SetId(rng.next_below(n as u64) as u32);
                if !picked.contains(&s) {
                    picked.push(s);
                }
            }
            picked
        })
        .collect();

    let stream = VecStream::from_instance(inst);
    let mut worst = 0.0f64;
    let mut violations = 0usize;
    let mut trials = 0usize;
    for hs in 0..hash_seeds {
        let hp = build_hp(&stream, p, hs.wrapping_mul(0x9E37).wrapping_add(seed));
        for fam in &fams {
            let kept = hp.coverage(fam);
            let est = kept as f64 / p;
            let truth = inst.coverage(fam) as f64;
            let err = (est - truth).abs();
            worst = worst.max(err);
            if err > allowance {
                violations += 1;
            }
            trials += 1;
        }
    }
    Lemma22Check {
        p,
        trials,
        worst_abs_err: worst,
        allowance,
        violations,
        opt_exact,
    }
}

// ---------------------------------------------------------------------------
// Lemmas 2.3 / 2.4 / Theorem 2.7 — approximation transfer.
// ---------------------------------------------------------------------------

/// Measured outcome of an approximation-transfer check (one hash seed).
#[derive(Clone, Copy, Debug)]
pub struct TransferCheck {
    /// The solver's approximation factor *on the sketch side* — its
    /// coverage there divided by the sketch-side optimum.
    pub alpha_on_sketch: f64,
    /// The same solution's approximation factor on the target graph.
    pub ratio_on_target: f64,
    /// The guaranteed lower bound for `ratio_on_target` per the claim
    /// being checked (e.g. `α − 2ε` for Lemma 2.3).
    pub guaranteed: f64,
    /// Whether both optima were computed exactly.
    pub opt_exact: bool,
}

impl TransferCheck {
    /// Did the measured transfer respect the guarantee?
    pub fn holds(&self) -> bool {
        self.ratio_on_target >= self.guaranteed - 1e-9
    }
}

/// Check Lemma 2.3: solve k-cover on `Hp` (greedy), then compare its
/// quality on `G` against `α − 2ε` where `α` is its measured quality on
/// `Hp`.
pub fn check_lemma_2_3(
    inst: &CoverageInstance,
    k: usize,
    epsilon: f64,
    p: f64,
    hash_seed: u64,
) -> TransferCheck {
    let stream = VecStream::from_instance(inst);
    let hp = build_hp(&stream, p, hash_seed);
    let family = lazy_greedy_k_cover(&hp, k).family();
    let (opt_hp, e1) = opt_k(&hp, k);
    let (opt_g, e2) = opt_k(inst, k);
    let alpha = if opt_hp == 0 {
        1.0
    } else {
        hp.coverage(&family) as f64 / opt_hp as f64
    };
    let ratio = if opt_g == 0 {
        1.0
    } else {
        inst.coverage(&family) as f64 / opt_g as f64
    };
    TransferCheck {
        alpha_on_sketch: alpha,
        ratio_on_target: ratio,
        guaranteed: alpha - 2.0 * epsilon,
        opt_exact: e1 && e2,
    }
}

/// Check Lemma 2.4: solve k-cover on `H'p` (greedy), then compare its
/// quality *on `Hp`* against `α(1−ε)` where `α` is its measured quality
/// on `H'p`. This claim is deterministic (no failure probability).
pub fn check_lemma_2_4(
    inst: &CoverageInstance,
    k: usize,
    epsilon: f64,
    p: f64,
    degree_cap: usize,
    hash_seed: u64,
) -> TransferCheck {
    let stream = VecStream::from_instance(inst);
    let hp = build_hp(&stream, p, hash_seed);
    let hpp = build_hp_prime(&stream, p, hash_seed, degree_cap);
    let family = lazy_greedy_k_cover(&hpp, k).family();
    let (opt_hpp, e1) = opt_k(&hpp, k);
    let (opt_hp, e2) = opt_k(&hp, k);
    let alpha = if opt_hpp == 0 {
        1.0
    } else {
        hpp.coverage(&family) as f64 / opt_hpp as f64
    };
    let ratio = if opt_hp == 0 {
        1.0
    } else {
        hp.coverage(&family) as f64 / opt_hp as f64
    };
    TransferCheck {
        alpha_on_sketch: alpha,
        ratio_on_target: ratio,
        guaranteed: alpha * (1.0 - epsilon),
        opt_exact: e1 && e2,
    }
}

/// Check Theorem 2.7 end-to-end: greedy on the streaming `H≤n` sketch,
/// quality measured on `G`, against `α − 12ε`.
pub fn check_theorem_2_7(
    inst: &CoverageInstance,
    params: SketchParams,
    hash_seed: u64,
) -> TransferCheck {
    let stream = VecStream::from_instance(inst);
    let sketch = ThresholdSketch::from_stream(params, hash_seed, &stream);
    let content = sketch.instance();
    let family = lazy_greedy_k_cover(&content, params.k).family();
    let (opt_sketch, e1) = opt_k(&content, params.k);
    let (opt_g, e2) = opt_k(inst, params.k);
    let alpha = if opt_sketch == 0 {
        1.0
    } else {
        content.coverage(&family) as f64 / opt_sketch as f64
    };
    let ratio = if opt_g == 0 {
        1.0
    } else {
        inst.coverage(&family) as f64 / opt_g as f64
    };
    TransferCheck {
        alpha_on_sketch: alpha,
        ratio_on_target: ratio,
        guaranteed: alpha - 12.0 * params.epsilon,
        opt_exact: e1 && e2,
    }
}

// ---------------------------------------------------------------------------
// Lemma 2.6 — the edge-count lower bound on the H'p optimum.
// ---------------------------------------------------------------------------

/// Measured outcome of a Lemma 2.6 check.
#[derive(Clone, Copy, Debug)]
pub struct Lemma26Check {
    /// Edges in `H'p` (`m'_p`).
    pub edges: usize,
    /// The lemma's lower bound `m'_p·εk / (2n·ln(1/ε))`.
    pub lower_bound: f64,
    /// Measured `|Γ(H'p, Opt_{H'p})|` (exact or greedy, see `opt_exact`).
    pub opt_coverage: usize,
    /// Whether the optimum was exact.
    pub opt_exact: bool,
}

impl Lemma26Check {
    /// Did the bound hold? (With a greedy proxy this can only
    /// under-report `Opt`, so `true` remains trustworthy.)
    pub fn holds(&self) -> bool {
        self.opt_coverage as f64 >= self.lower_bound - 1e-9
    }
}

/// Check Lemma 2.6 on `H'p` built with the paper's degree cap.
pub fn check_lemma_2_6(
    inst: &CoverageInstance,
    k: usize,
    epsilon: f64,
    p: f64,
    hash_seed: u64,
) -> Lemma26Check {
    let n = inst.num_sets();
    let cap = SketchParams::paper_degree_cap(n, k, epsilon);
    let stream = VecStream::from_instance(inst);
    let hpp = build_hp_prime(&stream, p, hash_seed, cap);
    let edges = hpp.num_edges();
    let (opt, opt_exact) = opt_k(&hpp, k);
    let lower = edges as f64 * epsilon * k as f64 / (2.0 * n as f64 * (1.0 / epsilon).ln());
    Lemma26Check {
        edges,
        lower_bound: lower,
        opt_coverage: opt,
        opt_exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::Edge;

    /// Random instance small enough for exact optima.
    fn small_instance(seed: u64) -> CoverageInstance {
        let mut rng = SplitMix64::new(seed);
        let n = 12usize;
        let m = 400u64;
        let mut b = CoverageInstance::builder(n);
        for s in 0..n as u32 {
            let deg = 20 + rng.next_below(40);
            for _ in 0..deg {
                b.add_edge(Edge::new(s, rng.next_below(m)));
            }
        }
        b.build()
    }

    #[test]
    fn lemma_2_2_estimator_within_allowance() {
        // p far above the lemma's minimum: expect zero violations.
        for seed in 1..=3u64 {
            let g = small_instance(seed);
            let c = check_lemma_2_2(&g, 3, 0.3, 0.8, 5, 8, seed);
            assert!(c.opt_exact);
            assert_eq!(
                c.violations, 0,
                "seed={seed}: worst={} allowance={}",
                c.worst_abs_err, c.allowance
            );
            assert!(c.success_rate() == 1.0);
        }
    }

    #[test]
    fn lemma_2_2_tiny_p_degrades() {
        // At absurdly small p the estimator must get noisy: the check
        // still runs and reports a (large) worst error.
        let g = small_instance(4);
        let c = check_lemma_2_2(&g, 3, 0.05, 0.02, 4, 6, 9);
        assert!(c.trials == 24);
        assert!(c.worst_abs_err > 0.0);
    }

    #[test]
    fn lemma_2_3_transfer_holds_at_large_p() {
        for seed in 1..=4u64 {
            let g = small_instance(seed);
            let c = check_lemma_2_3(&g, 3, 0.2, 0.7, seed * 31);
            assert!(c.opt_exact);
            assert!(
                c.holds(),
                "seed={seed}: ratio {} < guaranteed {}",
                c.ratio_on_target,
                c.guaranteed
            );
        }
    }

    #[test]
    fn lemma_2_4_transfer_holds() {
        for seed in 1..=4u64 {
            let g = small_instance(seed + 10);
            let cap = SketchParams::paper_degree_cap(g.num_sets(), 3, 0.3);
            let c = check_lemma_2_4(&g, 3, 0.3, 0.8, cap, seed * 7);
            assert!(
                c.holds(),
                "seed={seed}: ratio {} < guaranteed {}",
                c.ratio_on_target,
                c.guaranteed
            );
        }
    }

    #[test]
    fn theorem_2_7_transfer_holds_with_roomy_budget() {
        for seed in 1..=4u64 {
            let g = small_instance(seed + 20);
            let params = SketchParams::with_budget(g.num_sets(), 3, 0.25, 600);
            let c = check_theorem_2_7(&g, params, seed * 13);
            assert!(
                c.holds(),
                "seed={seed}: ratio {} < guaranteed {}",
                c.ratio_on_target,
                c.guaranteed
            );
            // A roomy budget on a small instance should transfer nearly
            // losslessly.
            assert!(c.ratio_on_target > 0.8);
        }
    }

    #[test]
    fn lemma_2_6_bound_holds() {
        for seed in 1..=4u64 {
            let g = small_instance(seed + 30);
            let c = check_lemma_2_6(&g, 3, 0.3, 0.6, seed * 3);
            assert!(c.opt_exact);
            assert!(
                c.holds(),
                "seed={seed}: opt_cov {} < bound {}",
                c.opt_coverage,
                c.lower_bound
            );
        }
    }

    #[test]
    fn opt_k_falls_back_to_greedy_for_large_n() {
        let mut b = CoverageInstance::builder(EXACT_LIMIT + 5);
        for s in 0..(EXACT_LIMIT + 5) as u32 {
            b.add_edge(Edge::new(s, s as u64));
        }
        let g = b.build();
        let (v, exact) = opt_k(&g, 2);
        assert!(!exact);
        assert_eq!(v, 2);
    }
}
