//! Algorithm 6: multi-pass `(1+ε)·ln m`-approximate set cover.
//!
//! The driver makes `r−1` rounds of Algorithm 5 with outlier fraction
//! `λ = m^{−1/(2+r)}`, each round running on the *residual* instance
//! (elements covered so far are filtered out of the stream), then stores
//! the final residual graph `G_r` — which has shrunk to
//! `≤ n·m^{3/(2+r)}` edges — and finishes it off with offline greedy.
//!
//! Pass accounting (Section 3): each round costs two passes (one to build
//! the round's sketch bank on the filtered stream, one to mark the
//! elements its solution covers), and the final residual store costs one,
//! for `2(r−1)+1` total. Knowing `m` up front is assumed by the paper
//! (λ depends on it); when the caller does not know `m`, we spend one more
//! pass on a KMV distinct-count estimate — a nice dividend of having built
//! the Appendix D machinery.

use coverage_core::offline::bucket_greedy_set_cover;
use coverage_core::{InstanceBuilder, SetId};
use coverage_hash::{FxHashSet, KmvSketch, UnitHash};
use coverage_sketch::SketchSizing;
use coverage_stream::{EdgeStream, SpaceReport};

use crate::set_cover::{set_cover_outliers, OutlierConfig};

/// Configuration of a multi-pass set-cover run.
#[derive(Clone, Copy, Debug)]
pub struct MultiPassConfig {
    /// Round parameter `r ≥ 1`: `r−1` sketch rounds plus a final stored
    /// residual. `r = 1` degenerates to store-everything + offline greedy.
    pub r: usize,
    /// Accuracy parameter ε.
    pub epsilon: f64,
    /// Sketch sizing policy for the inner Algorithm 5 calls.
    pub sizing: SketchSizing,
    /// Hash seed; round `i` uses `seed + i` so rounds sample independently.
    pub seed: u64,
    /// The number of distinct elements `m`, if known. `None` adds one
    /// KMV-estimation pass.
    pub m_hint: Option<usize>,
}

impl MultiPassConfig {
    /// Practical defaults.
    pub fn new(r: usize, epsilon: f64, seed: u64) -> Self {
        assert!(r >= 1, "need r ≥ 1");
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        MultiPassConfig {
            r,
            epsilon,
            sizing: SketchSizing::Practical { c: 2.0 },
            seed,
            m_hint: None,
        }
    }

    /// Provide `m` (skips the estimation pass).
    pub fn with_m(mut self, m: usize) -> Self {
        self.m_hint = Some(m);
        self
    }

    /// Override sketch sizing.
    pub fn with_sizing(mut self, sizing: SketchSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// `λ = m^{−1/(2+r)}`, clamped into `(0, 1/e]` as Algorithm 5 needs.
    pub fn lambda(&self, m: usize) -> f64 {
        let m = m.max(2) as f64;
        m.powf(-1.0 / (2.0 + self.r as f64))
            .clamp(1e-9, std::f64::consts::E.recip())
    }
}

/// Per-round diagnostics.
#[derive(Clone, Debug)]
pub struct RoundStat {
    /// Sets chosen this round.
    pub chosen: usize,
    /// Elements marked covered after this round (cumulative).
    pub covered_after: usize,
    /// Whether the round's Algorithm 5 verification succeeded.
    pub verified: bool,
}

/// Result of a multi-pass set-cover run.
#[derive(Clone, Debug)]
pub struct MultiPassResult {
    /// The cover (deduplicated, in selection order).
    pub family: Vec<SetId>,
    /// Total space: max over rounds of bank space, coexisting with the
    /// covered-element table and the stored residual.
    pub space: SpaceReport,
    /// Total passes consumed (including the m-estimation pass if any).
    pub passes: u32,
    /// Edges stored for the final residual graph `G_r`.
    pub residual_edges: usize,
    /// Per-round diagnostics.
    pub rounds: Vec<RoundStat>,
}

/// A stream view with covered elements filtered out (the residual `G_i`).
struct ResidualStream<'a> {
    inner: &'a dyn EdgeStream,
    covered: &'a FxHashSet<u64>,
}

impl EdgeStream for ResidualStream<'_> {
    fn num_sets(&self) -> usize {
        self.inner.num_sets()
    }

    fn for_each(&self, f: &mut dyn FnMut(coverage_core::Edge)) {
        self.inner.for_each(&mut |e| {
            if !self.covered.contains(&e.element.0) {
                f(e);
            }
        });
    }
}

/// Run Algorithm 6 over `2(r−1)+1` passes of `stream` (plus one
/// m-estimation pass when `m_hint` is absent).
pub fn set_cover_multipass(stream: &dyn EdgeStream, config: &MultiPassConfig) -> MultiPassResult {
    let n = stream.num_sets();
    let mut passes = 0u32;

    // Obtain m: caller-provided or estimated with a KMV distinct counter
    // (Õ(1/ε²) words — negligible next to the sketches).
    let m = match config.m_hint {
        Some(m) => m,
        None => {
            let mut kmv = KmvSketch::new(1026, UnitHash::new(config.seed ^ 0x0E57));
            stream.for_each(&mut |e| kmv.insert(e.element.0));
            passes += 1;
            kmv.estimate().round() as usize
        }
    };
    let lambda = config.lambda(m);

    let mut covered: FxHashSet<u64> = FxHashSet::default();
    let mut family: Vec<SetId> = Vec::new();
    let mut in_family = vec![false; n];
    let mut rounds: Vec<RoundStat> = Vec::new();
    let mut round_space = SpaceReport::default();

    for round in 0..config.r.saturating_sub(1) {
        // Pass A: Algorithm 5 on the residual stream.
        let residual = ResidualStream {
            inner: stream,
            covered: &covered,
        };
        let cfg = OutlierConfig::new(lambda, config.epsilon, config.seed + 1 + round as u64)
            .with_sizing(config.sizing);
        let res = set_cover_outliers(&residual, &cfg);
        passes += 1;
        round_space = round_space.sequential(res.space);

        let mut members = vec![false; n];
        let mut chosen = 0usize;
        for s in &res.family {
            members[s.index()] = true;
            if !in_family[s.index()] {
                in_family[s.index()] = true;
                family.push(*s);
            }
            chosen += 1;
        }

        // Pass B: mark everything the round's solution covers.
        stream.for_each(&mut |e| {
            if members[e.set.index()] {
                covered.insert(e.element.0);
            }
        });
        passes += 1;

        rounds.push(RoundStat {
            chosen,
            covered_after: covered.len(),
            verified: res.verified,
        });
    }

    // Final pass: store the residual graph G_r and finish offline.
    let mut b = InstanceBuilder::new(n);
    let mut residual_edges = 0usize;
    stream.for_each(&mut |e| {
        if !covered.contains(&e.element.0) {
            b.add_edge(e);
            residual_edges += 1;
        }
    });
    passes += 1;
    let residual_inst = b.build();
    let residual_edges_dedup = residual_inst.num_edges();
    // Finish on the bucket-queue engine (output-identical to the lazy
    // greedy_set_cover; O(residual edges) instead of heap churn).
    let tail = bucket_greedy_set_cover(&residual_inst);
    for s in tail.family() {
        if !in_family[s.index()] {
            in_family[s.index()] = true;
            family.push(s);
        }
    }

    // Space: the covered table (≤ m words) and the stored residual coexist
    // with (at most) one round's bank; rounds themselves are sequential.
    let aux = SpaceReport {
        peak_edges: residual_edges_dedup as u64,
        peak_aux_words: covered.len() as u64,
        passes: 0,
    };
    let mut space = round_space.coexist(aux);
    space.passes = passes;

    MultiPassResult {
        family,
        space,
        passes,
        residual_edges: residual_edges_dedup,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_set_cover;
    use coverage_stream::{ArrivalOrder, VecStream};

    fn planted_stream(seed: u64) -> (VecStream, coverage_core::CoverageInstance, usize) {
        let p = planted_set_cover(25, 2_000, 5, 50, seed);
        let mut s = VecStream::from_instance(&p.instance);
        ArrivalOrder::Random(seed ^ 1).apply(s.edges_mut());
        (s, p.instance, p.optimal_value)
    }

    #[test]
    fn returns_a_complete_cover() {
        let (stream, inst, _) = planted_stream(1);
        let cfg = MultiPassConfig::new(3, 0.5, 9)
            .with_m(inst.num_elements())
            .with_sizing(SketchSizing::Budget(3_000));
        let res = set_cover_multipass(&stream, &cfg);
        assert!(inst.is_cover(&res.family), "multipass output must cover");
        assert_eq!(res.passes, 2 * 2 + 1);
    }

    #[test]
    fn r1_degenerates_to_store_all_greedy() {
        let (stream, inst, _) = planted_stream(2);
        let cfg = MultiPassConfig::new(1, 0.5, 9).with_m(inst.num_elements());
        let res = set_cover_multipass(&stream, &cfg);
        assert!(inst.is_cover(&res.family));
        assert_eq!(res.passes, 1);
        assert_eq!(res.residual_edges, inst.num_edges());
        assert!(res.rounds.is_empty());
    }

    #[test]
    fn more_rounds_store_fewer_residual_edges() {
        let (stream, inst, _) = planted_stream(3);
        let mut residuals = Vec::new();
        for r in [1usize, 3, 5] {
            let cfg = MultiPassConfig::new(r, 0.5, 11)
                .with_m(inst.num_elements())
                .with_sizing(SketchSizing::Budget(3_000));
            let res = set_cover_multipass(&stream, &cfg);
            assert!(inst.is_cover(&res.family));
            residuals.push(res.residual_edges);
        }
        assert!(
            residuals[2] < residuals[0],
            "residual should shrink with rounds: {residuals:?}"
        );
    }

    #[test]
    fn cover_size_stays_near_optimum() {
        let (stream, inst, k_star) = planted_stream(4);
        let cfg = MultiPassConfig::new(4, 0.5, 13)
            .with_m(inst.num_elements())
            .with_sizing(SketchSizing::Budget(3_000));
        let res = set_cover_multipass(&stream, &cfg);
        assert!(inst.is_cover(&res.family));
        // Theorem 3.4 bound: (1+ε)·ln(m)·k*. m=2000 → ln ≈ 7.6.
        let bound = (1.0 + 0.5) * (inst.num_elements() as f64).ln() * k_star as f64;
        assert!(
            (res.family.len() as f64) <= bound,
            "cover {} exceeds (1+ε)ln(m)k* = {bound}",
            res.family.len()
        );
    }

    #[test]
    fn m_estimation_pass_is_counted() {
        let (stream, inst, _) = planted_stream(5);
        let cfg = MultiPassConfig::new(2, 0.5, 15).with_sizing(SketchSizing::Budget(3_000));
        let res = set_cover_multipass(&stream, &cfg);
        assert!(inst.is_cover(&res.family));
        assert_eq!(res.passes, 1 + 2 + 1, "estimation + round + residual");
    }

    #[test]
    fn lambda_clamps_to_inv_e() {
        let cfg = MultiPassConfig::new(8, 0.5, 1);
        // Tiny m would give λ close to 1; must clamp to 1/e.
        assert!(cfg.lambda(3) <= 1.0 / std::f64::consts::E + 1e-12);
        // Large m: λ = m^{-1/(2+r)}.
        let m = 1_000_000usize;
        let expect = (m as f64).powf(-0.1);
        assert!((cfg.lambda(m) - expect).abs() < 1e-12);
    }
}
