//! The trivial baseline: store the entire stream, solve offline.
//!
//! Quality ceiling (offline greedy = `1−1/e` / `ln m`) at the price of
//! `Θ(|E|)` space — the thing the paper's sketch exists to avoid. Table 1
//! and experiment E2 use it as the "what if memory were free" reference.

use coverage_core::offline::{greedy_set_cover, lazy_greedy_k_cover};
use coverage_stream::{materialize, EdgeStream, SpaceReport};

use super::BaselineResult;

/// Store everything; run offline greedy k-cover.
pub fn store_all_k_cover(stream: &dyn EdgeStream, k: usize) -> BaselineResult {
    let inst = materialize(stream);
    let trace = lazy_greedy_k_cover(&inst, k);
    BaselineResult {
        family: trace.family(),
        value_estimate: trace.coverage() as f64,
        space: SpaceReport {
            peak_edges: inst.num_edges() as u64,
            // Dense compaction table: one word per element.
            peak_aux_words: inst.num_elements() as u64,
            passes: 1,
        },
    }
}

/// Store everything; run offline greedy set cover.
pub fn store_all_set_cover(stream: &dyn EdgeStream) -> BaselineResult {
    let inst = materialize(stream);
    let trace = greedy_set_cover(&inst);
    BaselineResult {
        family: trace.family(),
        value_estimate: trace.coverage() as f64,
        space: SpaceReport {
            peak_edges: inst.num_edges() as u64,
            peak_aux_words: inst.num_elements() as u64,
            passes: 1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_k_cover;
    use coverage_stream::VecStream;

    #[test]
    fn k_cover_matches_offline_greedy() {
        let p = planted_k_cover(15, 800, 3, 40, 1);
        let stream = VecStream::from_instance(&p.instance);
        let res = store_all_k_cover(&stream, 3);
        let offline = coverage_core::offline::lazy_greedy_k_cover(&p.instance, 3);
        assert_eq!(res.family, offline.family());
        assert_eq!(res.space.peak_edges, p.instance.num_edges() as u64);
    }

    #[test]
    fn set_cover_covers() {
        let p = coverage_data::planted_set_cover(15, 400, 4, 20, 2);
        let stream = VecStream::from_instance(&p.instance);
        let res = store_all_set_cover(&stream);
        assert!(p.instance.is_cover(&res.family));
    }
}
