//! Saha & Getoor's swap-based single-pass k-cover (paper's `[44]`).
//!
//! The SDM 2009 algorithm for "maximum coverage in the streaming model":
//! maintain a solution of at most `k` sets, each *owning* the elements it
//! contributed when it entered. When a new set arrives:
//!
//! * if fewer than `k` slots are filled, take the set (owning its fresh
//!   elements);
//! * otherwise find the incumbent with the smallest owned contribution;
//!   if the newcomer's fresh coverage is more than **twice** that
//!   contribution, swap it in — the evicted set's owned elements are
//!   forgotten (they may be re-covered by later arrivals).
//!
//! The factor-2 swap rule is what gives the `1/4` guarantee: total
//! forgotten coverage telescopes into at most the final solution's value.
//!
//! This is a **set-arrival** algorithm: it needs each set's edges to
//! arrive contiguously (feed it an
//! [`ArrivalOrder::SetGrouped`](coverage_stream::ArrivalOrder) stream; any
//! other order is rejected). Space is `O(m)` words — the owner table — the
//! very dependence on `m` the paper eliminates.

use coverage_core::{ElementId, SetId};
use coverage_hash::FxHashMap;
use coverage_stream::{EdgeStream, SpaceReport};

use super::BaselineResult;

/// Run the Saha–Getoor swap algorithm on a set-grouped stream.
///
/// # Panics
///
/// Panics if the stream is not grouped by set (a set's edges interleave
/// with another's) — the algorithm is only defined for set arrival.
pub fn saha_getoor_k_cover(stream: &dyn EdgeStream, k: usize) -> BaselineResult {
    let mut state = SgState::new(k);
    let mut current: Option<(SetId, Vec<ElementId>)> = None;
    let mut seen_done: Vec<bool> = vec![false; stream.num_sets()];
    stream.for_each(&mut |e| {
        match &mut current {
            Some((sid, elems)) if *sid == e.set => elems.push(e.element),
            Some((sid, elems)) => {
                let done = std::mem::take(elems);
                let finished = *sid;
                assert!(
                    !seen_done[finished.index()],
                    "set {finished} arrived in two runs — not a set-arrival stream"
                );
                seen_done[finished.index()] = true;
                state.offer(finished, &done);
                current = Some((e.set, vec![e.element]));
            }
            None => current = Some((e.set, vec![e.element])),
        }
        assert!(
            !seen_done[e.set.index()],
            "set {} arrived in two runs — not a set-arrival stream",
            e.set
        );
    });
    if let Some((sid, elems)) = current.take() {
        state.offer(sid, &elems);
    }
    state.into_result()
}

struct SgState {
    k: usize,
    /// element → index of the owning slot.
    owner: FxHashMap<u64, usize>,
    /// Filled slots: (set, owned element keys).
    slots: Vec<(SetId, Vec<u64>)>,
    peak_owner: usize,
    peak_buffer: usize,
}

impl SgState {
    fn new(k: usize) -> Self {
        SgState {
            k,
            owner: FxHashMap::default(),
            slots: Vec::with_capacity(k),
            peak_owner: 0,
            peak_buffer: 0,
        }
    }

    fn offer(&mut self, set: SetId, elements: &[ElementId]) {
        self.peak_buffer = self.peak_buffer.max(elements.len());
        // Fresh = elements not currently covered by any slot. Dedup the
        // arriving list on the fly.
        let mut fresh: Vec<u64> = Vec::new();
        for e in elements {
            if !self.owner.contains_key(&e.0) && !fresh.contains(&e.0) {
                fresh.push(e.0);
            }
        }
        if self.k == 0 {
            return;
        }
        if fresh.is_empty() {
            return; // a set with no fresh coverage can never help
        }
        if self.slots.len() < self.k {
            let idx = self.slots.len();
            for &e in &fresh {
                self.owner.insert(e, idx);
            }
            self.slots.push((set, fresh));
        } else {
            let (weakest, weakest_owned) = self
                .slots
                .iter()
                .enumerate()
                .map(|(i, (_, owned))| (i, owned.len()))
                .min_by_key(|&(i, len)| (len, i))
                .expect("k ≥ 1 slots");
            if fresh.len() > 2 * weakest_owned {
                // Evict: forget the weakest slot's owned elements …
                let (_, old_owned) = std::mem::replace(&mut self.slots[weakest], (set, Vec::new()));
                for e in old_owned {
                    self.owner.remove(&e);
                }
                // … then own everything the newcomer covers freshly,
                // including elements just released by the eviction.
                let mut owned: Vec<u64> = Vec::new();
                for e in elements {
                    if !self.owner.contains_key(&e.0) && !owned.contains(&e.0) {
                        self.owner.insert(e.0, weakest);
                        owned.push(e.0);
                    }
                }
                self.slots[weakest].1 = owned;
            }
        }
        self.peak_owner = self.peak_owner.max(self.owner.len());
    }

    fn into_result(self) -> BaselineResult {
        let family: Vec<SetId> = self.slots.iter().map(|(s, _)| *s).collect();
        let covered = self.owner.len();
        BaselineResult {
            family,
            value_estimate: covered as f64,
            space: SpaceReport {
                peak_edges: 0,
                // Owner table: 2 words per entry; plus the arrival buffer.
                peak_aux_words: (2 * self.peak_owner + self.peak_buffer) as u64,
                passes: 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_k_cover;
    use coverage_stream::{ArrivalOrder, VecStream};

    fn grouped_stream(inst: &coverage_core::CoverageInstance, seed: u64) -> VecStream {
        let mut s = VecStream::from_instance(inst);
        ArrivalOrder::SetGrouped(seed).apply(s.edges_mut());
        s
    }

    #[test]
    fn achieves_quarter_of_optimum() {
        for seed in 0..6u64 {
            let p = planted_k_cover(30, 2_000, 5, 80, seed);
            let stream = grouped_stream(&p.instance, seed);
            let res = saha_getoor_k_cover(&stream, 5);
            let achieved = p.instance.coverage(&res.family);
            assert!(
                achieved * 4 >= p.optimal_value,
                "seed {seed}: {achieved} < OPT/4 = {}",
                p.optimal_value / 4
            );
            assert!(res.family.len() <= 5);
        }
    }

    #[test]
    fn value_estimate_lower_bounds_truth() {
        // Forgotten elements may be re-covered by surviving sets, so the
        // owner count never exceeds the family's true coverage.
        let p = planted_k_cover(20, 1_000, 4, 60, 3);
        let stream = grouped_stream(&p.instance, 3);
        let res = saha_getoor_k_cover(&stream, 4);
        let truth = p.instance.coverage(&res.family);
        assert!(res.value_estimate as usize <= truth);
        assert!(res.value_estimate > 0.0);
    }

    #[test]
    fn space_scales_with_m_not_n() {
        let p = planted_k_cover(10, 5_000, 2, 100, 4);
        let stream = grouped_stream(&p.instance, 4);
        let res = saha_getoor_k_cover(&stream, 2);
        // The owner table is Ω(covered elements) — the Õ(m) dependence.
        assert!(res.space.peak_aux_words as usize >= p.instance.num_elements() / 4);
    }

    #[test]
    #[should_panic(expected = "set-arrival")]
    fn rejects_interleaved_stream() {
        let edges = vec![
            coverage_core::Edge::new(0u32, 1u64),
            coverage_core::Edge::new(1u32, 2u64),
            coverage_core::Edge::new(0u32, 3u64),
        ];
        let stream = VecStream::new(2, edges);
        saha_getoor_k_cover(&stream, 1);
    }

    #[test]
    fn k_zero_returns_empty() {
        let p = planted_k_cover(5, 100, 2, 10, 5);
        let stream = grouped_stream(&p.instance, 5);
        let res = saha_getoor_k_cover(&stream, 0);
        assert!(res.family.is_empty());
    }
}
