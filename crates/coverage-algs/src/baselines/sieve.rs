//! SieveStreaming for k-cover (paper's `[9]`).
//!
//! Badanidiyuru, Mirzasoleiman, Karbasi & Krause (KDD 2014): a single-pass
//! `(1/2 − ε)`-approximation for cardinality-constrained monotone
//! submodular maximization. Guess `OPT` by geometric thresholds
//! `v = (1+ε)^j` within `[Δ, 2kΔ]`, where `Δ` is the largest singleton
//! value seen so far. Each live threshold keeps its own partial solution
//! and admits an arriving set iff its marginal gain is at least
//! `(v/2 − f(sol)) / (k − |sol|)`.
//!
//! Like Saha–Getoor this is a **set-arrival** algorithm and stores each
//! threshold's covered-element table — `Õ((n + m)/ε)` space overall,
//! which is the Table 1 row the paper improves to `Õ(n)`.

use coverage_core::{ElementId, SetId};
use coverage_hash::{FxHashMap, FxHashSet};
use coverage_stream::{EdgeStream, SpaceReport};

use super::BaselineResult;

/// One threshold's partial solution.
struct Sieve {
    /// Geometric index `j` with `v = (1+ε)^j`.
    j: i32,
    family: Vec<SetId>,
    covered: FxHashSet<u64>,
}

/// Run SieveStreaming on a set-grouped stream.
///
/// # Panics
///
/// Panics if the stream interleaves sets (set-arrival required).
pub fn sieve_k_cover(stream: &dyn EdgeStream, k: usize, epsilon: f64) -> BaselineResult {
    assert!(epsilon > 0.0 && epsilon < 1.0, "ε must lie in (0,1)");
    let mut state = SieveState::new(k, epsilon, stream.num_sets());
    let mut current: Option<(SetId, Vec<ElementId>)> = None;
    stream.for_each(&mut |e| {
        match &mut current {
            Some((sid, elems)) if *sid == e.set => elems.push(e.element),
            Some((sid, elems)) => {
                let done = std::mem::take(elems);
                let finished = *sid;
                state.offer(finished, done);
                current = Some((e.set, vec![e.element]));
            }
            None => current = Some((e.set, vec![e.element])),
        }
        assert!(
            !state.finished[e.set.index()],
            "set {} arrived in two runs — not a set-arrival stream",
            e.set
        );
    });
    if let Some((sid, elems)) = current.take() {
        state.offer(sid, elems);
    }
    state.into_result()
}

struct SieveState {
    k: usize,
    epsilon: f64,
    finished: Vec<bool>,
    /// Live sieves keyed by their geometric index.
    sieves: FxHashMap<i32, Sieve>,
    /// Largest singleton (set size) seen so far.
    delta: usize,
    peak_words: u64,
}

impl SieveState {
    fn new(k: usize, epsilon: f64, n: usize) -> Self {
        SieveState {
            k,
            epsilon,
            finished: vec![false; n],
            sieves: FxHashMap::default(),
            delta: 0,
            peak_words: 0,
        }
    }

    /// Geometric index range for the current Δ: `v ∈ [Δ, 2kΔ]`.
    fn live_range(&self) -> (i32, i32) {
        if self.delta == 0 {
            return (0, -1);
        }
        let base = (1.0 + self.epsilon).ln();
        let lo = ((self.delta as f64).ln() / base).floor() as i32;
        let hi = ((2.0 * self.k as f64 * self.delta as f64).ln() / base).ceil() as i32;
        (lo, hi)
    }

    fn offer(&mut self, set: SetId, mut elements: Vec<ElementId>) {
        self.finished[set.index()] = true;
        if self.k == 0 {
            return;
        }
        elements.sort_unstable();
        elements.dedup();
        self.delta = self.delta.max(elements.len());
        let (lo, hi) = self.live_range();
        // Retire sieves below the window; spawn missing ones (they start
        // empty — sets that arrived before a sieve existed are simply not
        // in it, which the analysis accounts for).
        self.sieves.retain(|&j, _| j >= lo && j <= hi);
        for j in lo..=hi {
            self.sieves.entry(j).or_insert_with(|| Sieve {
                j,
                family: Vec::new(),
                covered: FxHashSet::default(),
            });
        }
        let base = 1.0 + self.epsilon;
        for sieve in self.sieves.values_mut() {
            if sieve.family.len() >= self.k {
                continue;
            }
            let gain = elements
                .iter()
                .filter(|e| !sieve.covered.contains(&e.0))
                .count();
            let v = base.powi(sieve.j);
            let need =
                (v / 2.0 - sieve.covered.len() as f64) / (self.k - sieve.family.len()) as f64;
            if (gain as f64) >= need && gain > 0 {
                for e in &elements {
                    sieve.covered.insert(e.0);
                }
                sieve.family.push(set);
            }
        }
        let words: u64 = self
            .sieves
            .values()
            .map(|s| (s.covered.len() + s.family.len()) as u64)
            .sum();
        self.peak_words = self.peak_words.max(words);
    }

    fn into_result(self) -> BaselineResult {
        let best = self
            .sieves
            .values()
            .max_by_key(|s| (s.covered.len(), std::cmp::Reverse(s.j)));
        match best {
            Some(s) => BaselineResult {
                family: s.family.clone(),
                value_estimate: s.covered.len() as f64,
                space: SpaceReport {
                    peak_edges: 0,
                    peak_aux_words: self.peak_words,
                    passes: 1,
                },
            },
            None => BaselineResult {
                family: Vec::new(),
                value_estimate: 0.0,
                space: SpaceReport {
                    peak_edges: 0,
                    peak_aux_words: 0,
                    passes: 1,
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_k_cover;
    use coverage_stream::{ArrivalOrder, VecStream};

    fn grouped(inst: &coverage_core::CoverageInstance, seed: u64) -> VecStream {
        let mut s = VecStream::from_instance(inst);
        ArrivalOrder::SetGrouped(seed).apply(s.edges_mut());
        s
    }

    #[test]
    fn achieves_half_minus_eps() {
        for seed in 0..5u64 {
            let p = planted_k_cover(25, 1_500, 5, 60, seed);
            let stream = grouped(&p.instance, seed);
            let res = sieve_k_cover(&stream, 5, 0.1);
            let achieved = p.instance.coverage(&res.family);
            let bound = (0.5 - 0.1) * p.optimal_value as f64;
            assert!(
                achieved as f64 >= bound,
                "seed {seed}: {achieved} < {bound}"
            );
            assert!(res.family.len() <= 5);
        }
    }

    #[test]
    fn value_estimate_is_exact_coverage() {
        let p = planted_k_cover(15, 600, 3, 40, 7);
        let stream = grouped(&p.instance, 7);
        let res = sieve_k_cover(&stream, 3, 0.2);
        assert_eq!(
            res.value_estimate as usize,
            p.instance.coverage(&res.family)
        );
    }

    #[test]
    fn space_grows_with_m() {
        let small = planted_k_cover(10, 300, 2, 30, 1);
        let large = planted_k_cover(10, 3_000, 2, 30, 1);
        let rs = sieve_k_cover(&grouped(&small.instance, 2), 2, 0.2);
        let rl = sieve_k_cover(&grouped(&large.instance, 2), 2, 0.2);
        assert!(
            rl.space.peak_aux_words > 2 * rs.space.peak_aux_words,
            "sieve space must scale with m: {} vs {}",
            rl.space.peak_aux_words,
            rs.space.peak_aux_words
        );
    }

    #[test]
    fn empty_stream_is_empty_result() {
        let stream = VecStream::new(3, vec![]);
        let res = sieve_k_cover(&stream, 2, 0.2);
        assert!(res.family.is_empty());
        assert_eq!(res.value_estimate, 0.0);
    }

    #[test]
    #[should_panic(expected = "set-arrival")]
    fn rejects_interleaved() {
        let stream = VecStream::new(
            2,
            vec![
                coverage_core::Edge::new(0u32, 1u64),
                coverage_core::Edge::new(1u32, 1u64),
                coverage_core::Edge::new(0u32, 2u64),
            ],
        );
        sieve_k_cover(&stream, 1, 0.2);
    }
}
