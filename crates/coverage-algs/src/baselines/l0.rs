//! The Appendix D baseline: per-set `ℓ₀` sketches, `Õ(nk)` space.
//!
//! Keep one KMV distinct-count sketch per set (edge-arrival friendly:
//! each arriving edge inserts its element into its set's sketch). A
//! candidate family is evaluated by merging the family's sketches —
//! merging KMVs is exact sketch-of-union — and reading the estimate.
//!
//! Appendix D's algorithm then tries **all** `(n choose k)` families
//! (exponential time, `1−ε` quality): [`l0_exhaustive_k_cover`], usable
//! for small `n`. The practical variant runs greedy with sketched
//! marginals: [`l0_greedy_k_cover`].
//!
//! Either way the space is `n·t` words with `t = Õ(k)` (Theorem D.2 sets
//! `δ = 1/Θ̃((n choose k))`, so `t = O(ε^{-2}·log(n choose k)) = Õ(k)`),
//! versus the main sketch's `Õ(n)` — experiment E6 plots exactly that gap.

use coverage_core::SetId;
use coverage_hash::{KmvSketch, UnitHash};
use coverage_stream::{EdgeStream, SpaceReport};

use super::BaselineResult;

/// Configuration for the `ℓ₀` baseline.
#[derive(Clone, Copy, Debug)]
pub struct L0Config {
    /// Per-set KMV size `t`. [`L0Config::paper_t`] derives the Appendix D
    /// value from `(n, k, ε)`.
    pub t: usize,
    /// Hash seed.
    pub seed: u64,
}

impl L0Config {
    /// Explicit `t`.
    pub fn new(t: usize, seed: u64) -> Self {
        L0Config { t, seed }
    }

    /// Appendix D sizing: union-bounding over `(n choose k)` families
    /// needs per-query failure `δ = 1/Θ((n choose k))`, and a KMV of size
    /// `t = O(ε^{-2}·ln(1/δ)) = O(ε^{-2}·k·ln n)` suffices.
    pub fn paper_t(n: usize, k: usize, epsilon: f64) -> usize {
        let t = (k as f64 * (n.max(2) as f64).ln() / (epsilon * epsilon)).ceil() as usize;
        t.max(8)
    }
}

/// Build the per-set sketch bank in one pass.
fn build_bank(stream: &dyn EdgeStream, cfg: &L0Config) -> Vec<KmvSketch> {
    let n = stream.num_sets();
    let hash = UnitHash::new(cfg.seed);
    let mut bank: Vec<KmvSketch> = (0..n).map(|_| KmvSketch::new(cfg.t, hash)).collect();
    stream.for_each(&mut |e| {
        bank[e.set.index()].insert(e.element.0);
    });
    bank
}

fn bank_space(bank: &[KmvSketch]) -> SpaceReport {
    SpaceReport {
        peak_edges: 0,
        peak_aux_words: bank.iter().map(|s| s.stored() as u64).sum(),
        passes: 1,
    }
}

/// Greedy k-cover over sketched marginals (practical Appendix D variant).
pub fn l0_greedy_k_cover(stream: &dyn EdgeStream, k: usize, cfg: &L0Config) -> BaselineResult {
    let bank = build_bank(stream, cfg);
    let space = bank_space(&bank);
    let n = bank.len();
    let mut chosen: Vec<SetId> = Vec::new();
    let mut union: Option<KmvSketch> = None;
    let mut in_sol = vec![false; n];
    for _ in 0..k.min(n) {
        let current = union.as_ref().map_or(0.0, |u| u.estimate());
        let mut best: Option<(f64, usize)> = None;
        for s in 0..n {
            if in_sol[s] {
                continue;
            }
            let est = match &union {
                Some(u) => {
                    let mut merged = u.clone();
                    merged.merge_from(&bank[s]);
                    merged.estimate()
                }
                None => bank[s].estimate(),
            };
            let gain = est - current;
            let better = match best {
                None => true,
                Some((bg, bs)) => gain > bg || (gain == bg && s < bs),
            };
            if better {
                best = Some((gain, s));
            }
        }
        let Some((gain, s)) = best else { break };
        if gain <= 0.0 {
            break;
        }
        in_sol[s] = true;
        chosen.push(SetId(s as u32));
        union = Some(match union.take() {
            Some(mut u) => {
                u.merge_from(&bank[s]);
                u
            }
            None => bank[s].clone(),
        });
    }
    BaselineResult {
        family: chosen,
        value_estimate: union.map_or(0.0, |u| u.estimate()),
        space,
    }
}

/// Exhaustive k-cover over sketched values — Theorem D.2's exponential
/// algorithm. Only sensible for small `n` (the number of candidate
/// families is `(n choose k)`).
pub fn l0_exhaustive_k_cover(stream: &dyn EdgeStream, k: usize, cfg: &L0Config) -> BaselineResult {
    let bank = build_bank(stream, cfg);
    let space = bank_space(&bank);
    let n = bank.len();
    let k = k.min(n);
    let mut best_family: Vec<SetId> = Vec::new();
    let mut best_value = -1.0f64;
    let mut combo: Vec<usize> = (0..k).collect();
    if k == 0 || n == 0 {
        return BaselineResult {
            family: Vec::new(),
            value_estimate: 0.0,
            space,
        };
    }
    loop {
        let merged = KmvSketch::merged(combo.iter().map(|&i| &bank[i]));
        let value = merged.estimate();
        if value > best_value {
            best_value = value;
            best_family = combo.iter().map(|&i| SetId(i as u32)).collect();
        }
        // Next k-combination of 0..n in lexicographic order.
        let mut i = k;
        loop {
            if i == 0 {
                return BaselineResult {
                    family: best_family,
                    value_estimate: best_value.max(0.0),
                    space,
                };
            }
            i -= 1;
            if combo[i] != i + n - k {
                combo[i] += 1;
                for j in i + 1..k {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_k_cover;
    use coverage_stream::{ArrivalOrder, VecStream};

    fn stream(inst: &coverage_core::CoverageInstance, seed: u64) -> VecStream {
        let mut s = VecStream::from_instance(inst);
        ArrivalOrder::Random(seed).apply(s.edges_mut());
        s
    }

    #[test]
    fn greedy_variant_nears_planted_optimum() {
        let p = planted_k_cover(20, 1_000, 4, 50, 1);
        let res = l0_greedy_k_cover(&stream(&p.instance, 1), 4, &L0Config::new(256, 7));
        let achieved = p.instance.coverage(&res.family);
        assert!(
            achieved as f64 >= 0.8 * p.optimal_value as f64,
            "achieved {achieved}"
        );
    }

    #[test]
    fn exhaustive_matches_or_beats_greedy_estimate() {
        let p = planted_k_cover(10, 400, 3, 30, 2);
        let cfg = L0Config::new(256, 5);
        let g = l0_greedy_k_cover(&stream(&p.instance, 2), 3, &cfg);
        let x = l0_exhaustive_k_cover(&stream(&p.instance, 2), 3, &cfg);
        let cg = p.instance.coverage(&g.family);
        let cx = p.instance.coverage(&x.family);
        // Exhaustive optimizes the sketched objective; its true coverage
        // should not be much worse than greedy's.
        assert!(
            cx as f64 >= 0.9 * cg as f64,
            "exhaustive {cx} vs greedy {cg}"
        );
    }

    #[test]
    fn space_scales_with_n_times_t() {
        let p = planted_k_cover(30, 20_000, 3, 500, 3);
        let cfg = L0Config::new(128, 9);
        let res = l0_greedy_k_cover(&stream(&p.instance, 3), 3, &cfg);
        // Every decoy set has ≥ 128 distinct elements w.h.p., so most
        // sketches are full: space ≈ n·t.
        assert!(res.space.peak_aux_words >= 30 * 64);
        assert!(res.space.peak_aux_words <= (30 * 128) as u64);
    }

    #[test]
    fn paper_t_grows_with_k_and_n() {
        assert!(L0Config::paper_t(100, 5, 0.2) < L0Config::paper_t(100, 10, 0.2));
        assert!(L0Config::paper_t(100, 5, 0.2) < L0Config::paper_t(10_000, 5, 0.2));
    }

    #[test]
    fn exhaustive_k_zero() {
        let p = planted_k_cover(5, 100, 2, 10, 4);
        let res = l0_exhaustive_k_cover(&stream(&p.instance, 4), 0, &L0Config::new(16, 1));
        assert!(res.family.is_empty());
    }
}
