//! Progressive threshold multipass set cover — the prior-art baseline for
//! Algorithm 6.
//!
//! Before this paper, the multipass set-cover state of the art (Demaine,
//! Indyk, Mahabadi & Vakilian `[18]`; Chakrabarti & Wirth `[13]`) was the
//! *progressive greedy* family: make `p` passes with geometrically
//! decreasing thresholds `τ_j = m^{(p−j+1)/(p+1)}`, and during pass `j`
//! take (immediately, at arrival) any set that would cover at least `τ_j`
//! still-uncovered elements. In the final pass `τ_p ≤ m^{1/(p+1)}`, and a
//! cleanup rule takes any set contributing at least one uncovered element,
//! so the output is always a full cover. The classical analysis gives a
//! `Θ((p+1)·m^{1/(p+1)})` approximation using `Õ(m)` space (the covered
//! bitmap) — both exponentially weaker than Algorithm 6's
//! `(1+ε)·ln m` in the same number of passes, which is exactly the gap
//! the `exp_multipass` experiment measures.
//!
//! Set-arrival (needs each set's edges contiguous), like the algorithms
//! it models.

use coverage_core::{ElementId, SetId};
use coverage_hash::FxHashSet;
use coverage_stream::{EdgeStream, SpaceReport};

use super::BaselineResult;

/// Result of a progressive-greedy run, with per-pass diagnostics.
#[derive(Clone, Debug)]
pub struct ProgressiveResult {
    /// The chosen family (a full cover of every element seen).
    pub family: Vec<SetId>,
    /// Number of sets taken in each pass.
    pub taken_per_pass: Vec<usize>,
    /// Space used.
    pub space: SpaceReport,
}

impl ProgressiveResult {
    /// Collapse into the common baseline shape.
    pub fn into_baseline(self, covered: usize) -> BaselineResult {
        BaselineResult {
            family: self.family,
            value_estimate: covered as f64,
            space: self.space,
        }
    }
}

/// Run progressive threshold greedy with `passes ≥ 1` passes over a
/// set-grouped stream covering `m` elements (pass the true element count;
/// it determines the thresholds).
///
/// # Panics
///
/// Panics if a set's edges arrive in two separate runs (not set-arrival).
pub fn progressive_set_cover(stream: &dyn EdgeStream, m: usize, passes: u32) -> ProgressiveResult {
    assert!(passes >= 1, "need at least one pass");
    let n = stream.num_sets();
    let mut covered: FxHashSet<u64> = FxHashSet::default();
    let mut chosen: Vec<bool> = vec![false; n];
    let mut family: Vec<SetId> = Vec::new();
    let mut taken_per_pass: Vec<usize> = Vec::new();
    let mut peak_aux = 0u64;

    for j in 1..=passes {
        // τ_j = m^{(p−j+1)/(p+1)}, clamped to ≥ 1; the last pass uses 1 so
        // the run always ends with a complete cover.
        let expo = (passes - j + 1) as f64 / (passes + 1) as f64;
        let tau = if j == passes {
            1usize
        } else {
            (m as f64).powf(expo).ceil() as usize
        };
        let taken_before = family.len();

        let mut current: Option<(SetId, Vec<ElementId>)> = None;
        let mut seen_done: Vec<bool> = vec![false; n];
        let flush = |sid: SetId,
                     elems: &[ElementId],
                     covered: &mut FxHashSet<u64>,
                     chosen: &mut Vec<bool>,
                     family: &mut Vec<SetId>| {
            if chosen[sid.index()] {
                return;
            }
            let mut fresh: Vec<u64> = Vec::new();
            for e in elems {
                if !covered.contains(&e.0) && !fresh.contains(&e.0) {
                    fresh.push(e.0);
                }
            }
            if fresh.len() >= tau {
                chosen[sid.index()] = true;
                family.push(sid);
                for f in fresh {
                    covered.insert(f);
                }
            }
        };
        stream.for_each(&mut |e| match &mut current {
            Some((sid, elems)) if *sid == e.set => elems.push(e.element),
            Some((sid, elems)) => {
                let done = std::mem::take(elems);
                let fin = *sid;
                assert!(
                    !seen_done[fin.index()],
                    "set {fin} arrived in two runs — not a set-arrival stream"
                );
                seen_done[fin.index()] = true;
                flush(fin, &done, &mut covered, &mut chosen, &mut family);
                current = Some((e.set, vec![e.element]));
            }
            None => current = Some((e.set, vec![e.element])),
        });
        if let Some((sid, elems)) = current.take() {
            flush(sid, &elems, &mut covered, &mut chosen, &mut family);
        }
        taken_per_pass.push(family.len() - taken_before);
        peak_aux = peak_aux.max(covered.len() as u64 + n as u64);
    }

    ProgressiveResult {
        family,
        taken_per_pass,
        space: SpaceReport {
            peak_edges: 0,
            peak_aux_words: peak_aux,
            passes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_set_cover;
    use coverage_stream::{ArrivalOrder, VecStream};

    fn grouped(inst: &coverage_core::CoverageInstance, seed: u64) -> VecStream {
        let mut s = VecStream::from_instance(inst);
        ArrivalOrder::SetGrouped(seed).apply(s.edges_mut());
        s
    }

    #[test]
    fn always_produces_a_full_cover() {
        for seed in 0..5u64 {
            let p = planted_set_cover(40, 3_000, 6, 150, seed);
            let stream = grouped(&p.instance, seed);
            for passes in [1u32, 2, 4] {
                let r = progressive_set_cover(&stream, p.instance.num_elements(), passes);
                assert!(
                    p.instance.is_cover(&r.family),
                    "seed {seed}, {passes} passes: not a cover"
                );
                assert_eq!(r.taken_per_pass.len(), passes as usize);
                assert_eq!(r.space.passes, passes);
            }
        }
    }

    #[test]
    fn more_passes_never_hurt_much() {
        // The approximation factor (p+1)·m^{1/(p+1)} improves with p;
        // empirically the solution should (weakly) shrink on planted
        // instances.
        let p = planted_set_cover(40, 5_000, 5, 200, 11);
        let stream = grouped(&p.instance, 11);
        let m = p.instance.num_elements();
        let one = progressive_set_cover(&stream, m, 1).family.len();
        let four = progressive_set_cover(&stream, m, 4).family.len();
        assert!(
            four <= one + 2,
            "4-pass ({four}) much worse than 1-pass ({one})"
        );
    }

    #[test]
    fn single_pass_is_take_anything() {
        // p=1 means τ=1 from the start: every set with fresh coverage is
        // taken in arrival order.
        let p = planted_set_cover(10, 200, 3, 20, 2);
        let stream = grouped(&p.instance, 2);
        let r = progressive_set_cover(&stream, p.instance.num_elements(), 1);
        assert!(p.instance.is_cover(&r.family));
        assert_eq!(r.taken_per_pass[0], r.family.len());
    }

    #[test]
    fn thresholds_gate_early_passes() {
        // Two passes on an instance whose largest set is small: pass 1's
        // threshold m^{2/3} filters everything, pass 2 (τ=1) does the work.
        let mut b = coverage_core::CoverageInstance::builder(50);
        for s in 0..50u32 {
            for e in 0..4u64 {
                b.add_edge(coverage_core::Edge::new(s, s as u64 * 4 + e));
            }
        }
        let inst = b.build(); // m = 200, every set size 4 < 200^(2/3) ≈ 34
        let stream = grouped(&inst, 3);
        let r = progressive_set_cover(&stream, inst.num_elements(), 2);
        assert_eq!(r.taken_per_pass[0], 0, "pass 1 must take nothing");
        assert_eq!(r.taken_per_pass[1], 50, "pass 2 takes all");
        assert!(inst.is_cover(&r.family));
    }

    #[test]
    fn space_is_order_m() {
        let p = planted_set_cover(20, 4_000, 4, 150, 3);
        let stream = grouped(&p.instance, 3);
        let r = progressive_set_cover(&stream, p.instance.num_elements(), 3);
        assert!(
            r.space.peak_aux_words as usize >= p.instance.num_elements(),
            "covered bitmap is Ω(m)"
        );
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_rejected() {
        let p = planted_set_cover(5, 50, 2, 10, 1);
        let stream = grouped(&p.instance, 1);
        progressive_set_cover(&stream, 50, 0);
    }
}
