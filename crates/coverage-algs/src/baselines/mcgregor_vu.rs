//! Universe-hashing k-cover in the spirit of McGregor & Vu (paper's `[36]`).
//!
//! The paper notes simultaneous independent work by McGregor and Vu: a
//! single-pass `1−1/e−ε` k-cover algorithm in `Õ(n)`-ish space that —
//! instead of a transferable sketch — *directly* analyzes greedy on a
//! hash-compressed universe. The core device is **universe hashing**:
//! pick `h : E → [t]` for `t = Θ(k/ε²)` buckets and replace every element
//! by its bucket id. Bucket collisions can only *merge* elements, which
//! changes any family's coverage by at most an `ε` fraction when `t` is
//! large enough relative to the optimum coverage; greedy on the bucketed
//! instance then inherits `1−1/e−O(ε)`.
//!
//! What we implement (documented deviation from `[36]`): the
//! universe-hashing reduction with a configurable bucket count, feeding a
//! per-set sparse bucket profile and an offline lazy greedy after the
//! pass. We omit their guessing/thresholding refinements — the point of
//! this baseline is the *space shape*: per-set profiles cost
//! `Θ(Σ_S min(|S|, t))`, i.e. the space grows with `n·min(avg_size, t)`,
//! in contrast to the `H≤n` sketch's global `Õ(n)` budget with degree
//! capping. The Table 1 experiment reports both.
//!
//! Unlike the set-arrival baselines, universe hashing is **edge-arrival
//! compatible** — each arriving edge updates one profile independently —
//! which is why this is the strongest prior-art comparator for Algorithm 3.

use coverage_core::offline::lazy_greedy_k_cover;
use coverage_core::CoverageInstance;
use coverage_hash::{FxHashSet, UnitHash};
use coverage_stream::{EdgeStream, SpaceReport};

use super::BaselineResult;

/// Configuration for [`mcgregor_vu_k_cover`].
#[derive(Clone, Copy, Debug)]
pub struct MvConfig {
    /// Number of hash buckets `t` the universe is compressed to.
    pub buckets: usize,
    /// Hash seed.
    pub seed: u64,
}

impl MvConfig {
    /// The analysis-shaped bucket count `⌈c·k/ε²⌉·ln(n+2)`.
    ///
    /// Caveat measured by the Table 1 experiment: this is the right
    /// *sample-size* scale for `[36]`'s estimates, but a bucketed
    /// instance only preserves greedy's *selection quality* when the
    /// bucket count also dominates the optimum coverage — in `[36]` that
    /// is arranged by guessing `OPT` geometrically and subsampling at
    /// rate `∝ k/(ε²·OPT)`. When `OPT ≫ buckets`, fat sets all saturate
    /// the bucket space and become indistinguishable. Use an OPT-scaled
    /// [`MvConfig::new`] when the optimum is large.
    pub fn paper_buckets(n: usize, k: usize, epsilon: f64, c: f64) -> usize {
        assert!(epsilon > 0.0 && epsilon <= 1.0);
        ((c * k as f64 / (epsilon * epsilon)) * ((n + 2) as f64).ln()).ceil() as usize
    }

    /// Config with an explicit bucket count.
    pub fn new(buckets: usize, seed: u64) -> Self {
        assert!(buckets >= 1, "need at least one bucket");
        MvConfig { buckets, seed }
    }
}

/// Single-pass k-cover via universe hashing + offline greedy.
pub fn mcgregor_vu_k_cover(stream: &dyn EdgeStream, k: usize, cfg: &MvConfig) -> BaselineResult {
    let n = stream.num_sets();
    let hash = UnitHash::new(cfg.seed);
    let t = cfg.buckets as u64;
    // Sparse per-set bucket profiles.
    let mut profiles: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
    let mut stored = 0u64;
    let mut peak = 0u64;
    stream.for_each(&mut |e| {
        let bucket = ((hash.hash(e.element.0) as u128 * t as u128) >> 64) as u32;
        if profiles[e.set.index()].insert(bucket) {
            stored += 1;
            peak = peak.max(stored);
        }
    });

    // Bucketed instance: one pseudo-element per occupied bucket.
    let mut b = CoverageInstance::builder(n);
    for (s, profile) in profiles.iter().enumerate() {
        for &bucket in profile {
            b.add_edge(coverage_core::Edge::new(s as u32, bucket as u64));
        }
    }
    let bucketed = b.build();
    let trace = lazy_greedy_k_cover(&bucketed, k);
    BaselineResult {
        family: trace.family(),
        value_estimate: trace.coverage() as f64,
        space: SpaceReport {
            peak_edges: peak,
            // One word per profile entry + n set headers.
            peak_aux_words: peak + n as u64,
            passes: 1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_k_cover;
    use coverage_stream::{ArrivalOrder, VecStream};

    #[test]
    fn quality_near_greedy_with_ample_buckets() {
        for seed in 0..5u64 {
            let p = planted_k_cover(30, 2_000, 5, 80, seed);
            let mut stream = VecStream::from_instance(&p.instance);
            ArrivalOrder::Random(seed).apply(stream.edges_mut());
            let cfg = MvConfig::new(50_000, seed + 1); // t ≫ m: no collisions
            let res = mcgregor_vu_k_cover(&stream, 5, &cfg);
            let achieved = p.instance.coverage(&res.family);
            assert!(
                achieved as f64 >= (1.0 - 1.0 / std::f64::consts::E) * p.optimal_value as f64,
                "seed {seed}: {achieved} vs OPT {}",
                p.optimal_value
            );
        }
    }

    #[test]
    fn aggressive_compression_degrades_gracefully() {
        let p = planted_k_cover(30, 2_000, 5, 80, 7);
        let mut stream = VecStream::from_instance(&p.instance);
        ArrivalOrder::Random(7).apply(stream.edges_mut());
        // t barely above k: heavy collisions, still a valid family —
        // possibly shorter than k (greedy stops when every bucket is hit).
        let res = mcgregor_vu_k_cover(&stream, 5, &MvConfig::new(16, 3));
        assert!((1..=5).contains(&res.family.len()));
        let achieved = p.instance.coverage(&res.family);
        assert!(achieved > 0);
        // Space must be bounded by n·t regardless of m.
        assert!(res.space.peak_edges <= 30 * 16);
    }

    #[test]
    fn space_capped_by_buckets_per_set() {
        let p = planted_k_cover(20, 10_000, 4, 500, 2);
        let stream = VecStream::from_instance(&p.instance);
        let t = 64;
        let res = mcgregor_vu_k_cover(&stream, 4, &MvConfig::new(t, 5));
        assert!(
            res.space.peak_edges <= (20 * t) as u64,
            "profiles exceed n·t"
        );
    }

    #[test]
    fn edge_arrival_order_does_not_matter() {
        let p = planted_k_cover(15, 800, 3, 40, 9);
        let base = VecStream::from_instance(&p.instance);
        let cfg = MvConfig::new(4_096, 11);
        let mut families = Vec::new();
        for order in [
            ArrivalOrder::AsIs,
            ArrivalOrder::Random(1),
            ArrivalOrder::SetGrouped(2),
        ] {
            let mut s = base.clone();
            order.apply(s.edges_mut());
            families.push(mcgregor_vu_k_cover(&s, 3, &cfg).family);
        }
        assert_eq!(families[0], families[1]);
        assert_eq!(families[1], families[2]);
    }

    #[test]
    fn paper_buckets_formula_scales() {
        let a = MvConfig::paper_buckets(100, 5, 0.2, 1.0);
        let b = MvConfig::paper_buckets(100, 5, 0.1, 1.0);
        assert!(b > 3 * a, "buckets must grow ~1/ε²");
        let c = MvConfig::paper_buckets(100, 10, 0.2, 1.0);
        assert!(c > a, "buckets must grow with k");
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        MvConfig::new(0, 1);
    }
}
