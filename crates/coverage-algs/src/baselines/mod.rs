//! Baselines the paper compares against (Table 1).
//!
//! * [`saha_getoor`] — the swap-based single-pass `1/4`-approximation for
//!   k-cover of Saha & Getoor (paper's `[44]`). Set-arrival, `Õ(m)` space.
//! * [`sieve`] — SieveStreaming (Badanidiyuru et al., paper's `[9]`):
//!   single-pass `1/2−ε` for k-cover. Set-arrival, `Õ(n+m)` space.
//! * [`l0`] — the Appendix D `ℓ₀`-sketch algorithm: per-set KMV distinct
//!   counters, `Õ(nk)` space, edge-arrival.
//! * [`mcgregor_vu`] — universe hashing + offline greedy in the spirit of
//!   McGregor & Vu (paper's `[36]`, the simultaneous independent work).
//!   Edge-arrival, `Õ(n·k/ε²)` space.
//! * [`progressive`] — multipass progressive threshold greedy for set
//!   cover (Demaine et al. `[18]` / Chakrabarti & Wirth `[13]` family):
//!   `Θ((p+1)·m^{1/(p+1)})` approximation, `Õ(m)` space — Algorithm 6's
//!   prior art.
//! * [`store_all`] — the trivial "keep everything, solve offline"
//!   algorithm: quality ceiling, `Θ(|E|)` space.
//!
//! All report the same [`BaselineResult`] so Table 1 can be printed from
//! one code path.

pub mod l0;
pub mod mcgregor_vu;
pub mod progressive;
pub mod saha_getoor;
pub mod sieve;
pub mod store_all;

use coverage_core::SetId;
use coverage_stream::SpaceReport;

/// Common result shape for all baselines.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// The selected family.
    pub family: Vec<SetId>,
    /// The algorithm's own estimate of its objective value (exact for
    /// baselines that track coverage exactly; sketched for ℓ₀).
    pub value_estimate: f64,
    /// Space used.
    pub space: SpaceReport,
}

pub use l0::{l0_exhaustive_k_cover, l0_greedy_k_cover, L0Config};
pub use mcgregor_vu::{mcgregor_vu_k_cover, MvConfig};
pub use progressive::{progressive_set_cover, ProgressiveResult};
pub use saha_getoor::saha_getoor_k_cover;
pub use sieve::sieve_k_cover;
pub use store_all::{store_all_k_cover, store_all_set_cover};
