//! # coverage-algs
//!
//! The streaming algorithms of
//!
//! > Bateni, Esfandiari, Mirrokni.
//! > **Almost Optimal Streaming Algorithms for Coverage Problems.**
//! > SPAA 2017 (arXiv:1610.08096).
//!
//! plus the baselines they are compared against:
//!
//! | Module | Paper artifact | Guarantee | Passes | Space |
//! |---|---|---|---|---|
//! | [`kcover`] | Algorithm 3 | `1−1/e−ε` for k-cover | 1 | `Õ(n)` |
//! | [`dynamic`] | Algorithm 3, dynamic streams | `1−1/e−ε` on the surviving graph | 1 | `Õ(n·log m)` |
//! | [`set_cover`] | Algorithms 4–5 | `(1+ε)·ln(1/λ)` for set cover with λ outliers | 1 | `Õ_λ(n)` |
//! | [`multipass`] | Algorithm 6 | `(1+ε)·ln m` for set cover | `2r−1` | `Õ(n·m^{3/(2+r)} + m)` |
//! | [`baselines::saha_getoor`] | `[44]` | `1/4` for k-cover | 1 (set-arrival) | `Õ(m)` |
//! | [`baselines::sieve`] | `[9]` | `1/2−ε` for k-cover | 1 (set-arrival) | `Õ(n+m)` |
//! | [`baselines::l0`] | Appendix D | `1−ε` (exp. time) / greedy | 1 | `Õ(nk)` |
//! | [`baselines::store_all`] | trivial | offline greedy quality | 1 | `Θ(|E|)` |
//!
//! Every algorithm consumes a replayable
//! [`EdgeStream`](coverage_stream::EdgeStream), never materializes the
//! input, and reports a [`SpaceReport`](coverage_stream::SpaceReport).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod dynamic;
pub mod kcover;
pub mod multipass;
pub mod preprocess;
pub mod set_cover;

pub use dynamic::{
    dynamic_k_cover, solve_on_dynamic_sketch, DynamicKCoverConfig, DynamicKCoverResult,
};
pub use kcover::{
    k_cover_streaming, solve_guesses_parallel, solve_guesses_serial, solve_on_sketch, GuessSolve,
    KCoverConfig, KCoverResult,
};
pub use multipass::{set_cover_multipass, MultiPassConfig, MultiPassResult};
pub use preprocess::{apply_prune, prune_near_duplicates, PruneResult};
pub use set_cover::{set_cover_outliers, OutlierConfig, OutlierResult};
