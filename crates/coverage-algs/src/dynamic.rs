//! Dynamic-stream k-cover: Algorithm 3 transplanted to signed
//! (insert/delete) streams.
//!
//! ```text
//! Algorithm 3 (insertion-only)             | dynamic counterpart (here)
//! -----------------------------------------+---------------------------------
//! 1: δ'' = 2 + log n, ε' = ε/12            | DynamicKCoverConfig::paper_epsilon
//! 2: construct H≤n(k, ε', δ'') over stream | DynamicSketch::from_stream
//! 3: run greedy on the sketch              | csr_view(&sample) + bucket greedy
//! ```
//!
//! The sketch is the linear, ℓ₀-sampler-backed
//! [`coverage_sketch::DynamicSketch`]: deletions exactly
//! cancel insertions, so the recovered sample — the densest decodable
//! subsampling level — is a uniform hash sample of the **surviving**
//! graph at a known `p`, i.e. exactly the `H'p` subgraph the
//! insertion-only pipeline would have built over the surviving edges.
//! Greedy on that sample therefore inherits Theorem 3.1's
//! `(1 − 1/e − ε)` guarantee with respect to the surviving optimum.

use coverage_core::offline::bucket_greedy_k_cover;
use coverage_core::SetId;
use coverage_sketch::{DynamicSketch, DynamicSketchParams, SketchSizing};
use coverage_stream::{DynamicEdgeStream, SpaceReport};

/// Configuration of a streaming dynamic k-cover run.
#[derive(Clone, Copy, Debug)]
pub struct DynamicKCoverConfig {
    /// Number of sets to select.
    pub k: usize,
    /// Target accuracy loss ε (Theorem 3.1 semantics; the sketch runs at
    /// `ε' = ε/12`).
    pub epsilon: f64,
    /// How the underlying sketch is sized (shared with the
    /// insertion-only pipeline).
    pub sizing: SketchSizing,
    /// Subsampling levels of the dynamic sketch (`None` = default).
    pub levels: Option<usize>,
    /// Hash seed (the run's single global `h`).
    pub seed: u64,
}

impl DynamicKCoverConfig {
    /// A practically-sized configuration.
    pub fn new(k: usize, epsilon: f64, seed: u64) -> Self {
        DynamicKCoverConfig {
            k,
            epsilon,
            sizing: SketchSizing::Practical { c: 4.0 },
            levels: None,
            seed,
        }
    }

    /// Override the sizing policy.
    pub fn with_sizing(mut self, sizing: SketchSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Override the sketch's subsampling level count.
    pub fn with_levels(mut self, levels: usize) -> Self {
        self.levels = Some(levels);
        self
    }

    /// The sketch accuracy `ε' = ε/12` of Algorithm 3.
    pub fn paper_epsilon(&self) -> f64 {
        (self.epsilon / 12.0).clamp(1e-6, 1.0)
    }

    /// Materialized dynamic sketch parameters for a family of `n` sets.
    pub fn sketch_params(&self, n: usize) -> DynamicSketchParams {
        let base = self.sizing.params(n, self.k.max(1), self.paper_epsilon());
        let params = DynamicSketchParams::new(base);
        match self.levels {
            Some(levels) => params.with_levels(levels),
            None => params,
        }
    }
}

/// Result of a streaming dynamic k-cover run.
#[derive(Clone, Debug)]
pub struct DynamicKCoverResult {
    /// The selected family (≤ k sets, in greedy order).
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage on the
    /// **surviving** graph (Lemma 2.2 at the recovered level).
    pub estimated_coverage: f64,
    /// Coverage of the family within the recovered sample (diagnostics).
    pub sample_coverage: usize,
    /// The subsampling level that decoded (0 = exact surviving graph).
    pub sample_level: usize,
    /// That level's sampling probability `p = 2^{−level}`.
    pub sampling_p: f64,
    /// Surviving edges recovered at that level.
    pub recovered_edges: usize,
    /// Insert/delete events processed.
    pub inserts: u64,
    /// Delete events processed.
    pub deletes: u64,
    /// Space used (fixed cell banks, reported as aux words).
    pub space: SpaceReport,
}

/// Run the dynamic Algorithm 3 over one pass of `stream`.
///
/// # Panics
///
/// Panics if no subsampling level decodes — the sketch was built with
/// too few levels for the surviving edge count (raise
/// [`DynamicKCoverConfig::with_levels`]).
pub fn dynamic_k_cover(
    stream: &dyn DynamicEdgeStream,
    config: &DynamicKCoverConfig,
) -> DynamicKCoverResult {
    let n = stream.num_sets();
    let params = config.sketch_params(n);
    let sketch = DynamicSketch::from_stream(params, config.seed, stream);
    solve_on_dynamic_sketch(&sketch, config.k)
}

/// The post-stream half of the dynamic pipeline (shared with callers
/// that built or merged the sketch themselves, e.g. `coverage-dist`
/// consumers and benchmarks that reuse one pass).
pub fn solve_on_dynamic_sketch(sketch: &DynamicSketch, k: usize) -> DynamicKCoverResult {
    let sample = sketch.recover_expect();
    let view = sketch.csr_view(&sample);
    let trace = bucket_greedy_k_cover(&view, k);
    let family = trace.family();
    let counters = sketch.counters();
    DynamicKCoverResult {
        estimated_coverage: sketch.estimate_coverage(&sample, &family),
        sample_coverage: trace.coverage(),
        sample_level: sample.level,
        sampling_p: sample.sampling_p,
        recovered_edges: sample.edges.len(),
        inserts: counters.inserts,
        deletes: counters.deletes,
        space: sketch.space_report(),
        family,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcover::{k_cover_streaming, KCoverConfig};
    use coverage_core::offline::lazy_greedy_k_cover;
    use coverage_data::{adversarial_insert_delete, churn_workload, planted_k_cover};
    use coverage_stream::{InsertOnly, VecStream};

    #[test]
    fn recovers_planted_optimum_under_churn() {
        let p = planted_k_cover(20, 2_000, 4, 100, 1);
        let w = churn_workload(&p.instance, 0.5, 7);
        let cfg = DynamicKCoverConfig::new(4, 0.3, 11).with_sizing(SketchSizing::Budget(4_000));
        let res = dynamic_k_cover(&w.stream, &cfg);
        let achieved = w.surviving.coverage(&res.family);
        let opt = lazy_greedy_k_cover(&w.surviving, 4).coverage();
        assert!(
            achieved as f64 >= 0.9 * opt as f64,
            "achieved {achieved} of greedy-on-survivors {opt}"
        );
        assert!(res.family.len() <= 4);
        assert!(res.deletes > 0);
    }

    #[test]
    fn survives_the_adversarial_prefix() {
        // The defining scenario: transient decoy mass dominates the
        // stream prefix, but the surviving optimum is the golden family.
        for seed in 0..3u64 {
            let w = adversarial_insert_delete(24, 2_000, 4, 40, seed);
            let cfg = DynamicKCoverConfig::new(4, 0.3, seed ^ 0xF0)
                .with_sizing(SketchSizing::Budget(3_000));
            let res = dynamic_k_cover(&w.stream, &cfg);
            let achieved = w.planted.instance.coverage(&res.family);
            assert!(
                achieved as f64 >= 0.9 * w.planted.optimal_value as f64,
                "seed {seed}: {achieved} of planted {}",
                w.planted.optimal_value
            );
        }
    }

    #[test]
    fn matches_insertion_only_pipeline_on_insert_only_input() {
        // On a pure insertion stream both pipelines see the same graph;
        // their covers must achieve comparable quality (the samples
        // differ — hash-threshold prefix vs level sample — so equality
        // of families is not required, quality is).
        let p = planted_k_cover(25, 2_000, 4, 80, 5);
        let stream = VecStream::from_instance(&p.instance);
        let dyn_cfg = DynamicKCoverConfig::new(4, 0.3, 9).with_sizing(SketchSizing::Budget(4_000));
        let ins_cfg = KCoverConfig::new(4, 0.3, 9).with_sizing(SketchSizing::Budget(4_000));
        let dyn_res = dynamic_k_cover(&InsertOnly::new(&stream), &dyn_cfg);
        let ins_res = k_cover_streaming(&stream, &ins_cfg);
        let dyn_cov = p.instance.coverage(&dyn_res.family);
        let ins_cov = p.instance.coverage(&ins_res.family);
        assert!(
            dyn_cov as f64 >= 0.9 * ins_cov as f64,
            "dynamic {dyn_cov} vs insertion-only {ins_cov}"
        );
        assert_eq!(dyn_res.deletes, 0);
    }

    #[test]
    fn estimate_tracks_surviving_truth() {
        let p = planted_k_cover(20, 3_000, 4, 100, 9);
        let w = churn_workload(&p.instance, 0.4, 3);
        let cfg = DynamicKCoverConfig::new(4, 0.2, 2).with_sizing(SketchSizing::Budget(3_000));
        let res = dynamic_k_cover(&w.stream, &cfg);
        let truth = w.surviving.coverage(&res.family) as f64;
        assert!(
            (res.estimated_coverage - truth).abs() / truth < 0.25,
            "estimate {} vs surviving truth {truth}",
            res.estimated_coverage
        );
    }

    #[test]
    fn result_is_deterministic() {
        let p = planted_k_cover(15, 1_000, 3, 50, 2);
        let w = churn_workload(&p.instance, 0.6, 21);
        let cfg = DynamicKCoverConfig::new(3, 0.3, 7).with_sizing(SketchSizing::Budget(2_000));
        let a = dynamic_k_cover(&w.stream, &cfg);
        let b = dynamic_k_cover(&w.stream, &cfg);
        assert_eq!(a.family, b.family);
        assert_eq!(a.sample_level, b.sample_level);
        assert_eq!(a.recovered_edges, b.recovered_edges);
    }

    #[test]
    fn paper_epsilon_is_twelfth() {
        let cfg = DynamicKCoverConfig::new(3, 0.6, 1);
        assert!((cfg.paper_epsilon() - 0.05).abs() < 1e-12);
    }
}
