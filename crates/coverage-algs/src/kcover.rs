//! Algorithm 3: single-pass `(1 − 1/e − ε)`-approximate k-cover.
//!
//! ```text
//! Algorithm 3 (paper)                      | here
//! -----------------------------------------+---------------------------
//! 1: δ'' = 2 + log n, ε' = ε/12            | KCoverConfig::paper_epsilon
//! 2: construct H≤n(k, ε', δ'') over stream | ThresholdSketch::from_stream
//! 3: run greedy on the sketch              | csr_view + bucket_greedy_k_cover
//! ```
//!
//! Step 3 runs on the **zero-rebuild solve path**: the sketch's flat
//! store is exported directly as a packed `CsrInstance`
//! ([`ThresholdSketch::csr_view`]) and solved by the exact decremental
//! bucket-queue greedy — no per-query `HashMap` remap, no heap churn.
//! The lazy engine remains the executable reference spec
//! (`lazy_greedy_k_cover`), property-tested trace-identical.
//!
//! Theorem 3.1: the output is a `(1 − 1/e − ε)`-approximate k-cover
//! solution on the original input with probability `1 − 1/n`, and the
//! sketch holds `Õ(n)` edges.

use coverage_core::offline::{bucket_greedy_k_cover, GreedyTrace};
use coverage_core::SetId;
use coverage_sketch::{SketchParams, SketchSizing, ThresholdSketch};
use coverage_stream::{EdgeStream, SpaceReport};

/// Configuration of a streaming k-cover run.
#[derive(Clone, Copy, Debug)]
pub struct KCoverConfig {
    /// Number of sets to select.
    pub k: usize,
    /// Target accuracy loss ε of Theorem 3.1. The sketch is built with
    /// `ε' = ε/12` (Algorithm 3 line 1).
    pub epsilon: f64,
    /// How the sketch is sized.
    pub sizing: SketchSizing,
    /// Hash seed (the run's single global `h`).
    pub seed: u64,
}

impl KCoverConfig {
    /// A practically-sized configuration.
    pub fn new(k: usize, epsilon: f64, seed: u64) -> Self {
        KCoverConfig {
            k,
            epsilon,
            sizing: SketchSizing::Practical { c: 4.0 },
            seed,
        }
    }

    /// Override the sizing policy.
    pub fn with_sizing(mut self, sizing: SketchSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// The sketch accuracy `ε' = ε/12` of Algorithm 3.
    pub fn paper_epsilon(&self) -> f64 {
        (self.epsilon / 12.0).clamp(1e-6, 1.0)
    }

    /// Materialized sketch parameters for a family of `n` sets.
    ///
    /// `k = 0` (a legal no-op query) sizes the sketch as `k = 1`; the
    /// greedy simply selects nothing afterwards.
    pub fn sketch_params(&self, n: usize) -> SketchParams {
        self.sizing.params(n, self.k.max(1), self.paper_epsilon())
    }
}

/// Result of a streaming k-cover run.
#[derive(Clone, Debug)]
pub struct KCoverResult {
    /// The selected family (≤ k sets, in greedy order).
    pub family: Vec<SetId>,
    /// The sketch's inverse-probability estimate of the family's coverage
    /// on the *original* input (Lemma 2.2).
    pub estimated_coverage: f64,
    /// Coverage of the family *within* the sketch (diagnostics).
    pub sketch_coverage: usize,
    /// The sampling probability `p*` the sketch settled on.
    pub sampling_p: f64,
    /// Space used.
    pub space: SpaceReport,
}

/// Run Algorithm 3 over one pass of `stream`.
pub fn k_cover_streaming(stream: &dyn EdgeStream, config: &KCoverConfig) -> KCoverResult {
    let n = stream.num_sets();
    let params = config.sketch_params(n);
    let sketch = ThresholdSketch::from_stream(params, config.seed, stream);
    solve_on_sketch(&sketch, config.k)
}

/// The post-stream half of Algorithm 3 (shared with callers that built the
/// sketch themselves, e.g. benchmarks that reuse one pass).
pub fn solve_on_sketch(sketch: &ThresholdSketch, k: usize) -> KCoverResult {
    let view = sketch.csr_view();
    let trace = bucket_greedy_k_cover(&view, k);
    let family = trace.family();
    KCoverResult {
        estimated_coverage: sketch.estimate_coverage(&family),
        sketch_coverage: trace.coverage(),
        sampling_p: sketch.sampling_p(),
        space: sketch.space_report(),
        family,
    }
}

/// One guess's solved output: the full bucket-queue greedy trace (every
/// selection with its marginal gain) plus the packaged [`KCoverResult`].
///
/// The trace is what the differential tests compare — equality of
/// per-step `(set, gain, covered_after)` triples is a much stronger
/// contract than equality of the final families.
#[derive(Clone, Debug)]
pub struct GuessSolve {
    /// Full greedy trace on this guess's sketch.
    pub trace: GreedyTrace,
    /// The packaged result (family, estimates, space).
    pub result: KCoverResult,
}

fn solve_one_guess(sketch: &ThresholdSketch) -> GuessSolve {
    let view = sketch.csr_view();
    let trace = bucket_greedy_k_cover(&view, sketch.params().k);
    let family = trace.family();
    let result = KCoverResult {
        estimated_coverage: sketch.estimate_coverage(&family),
        sketch_coverage: trace.coverage(),
        sampling_p: sketch.sampling_p(),
        space: sketch.space_report(),
        family,
    };
    GuessSolve { trace, result }
}

/// Solve every sketch of a guess ladder sequentially, in guess order.
///
/// The executable reference for [`solve_guesses_parallel`]: one
/// `csr_view` + `bucket_greedy_k_cover` per guess, exactly what a
/// caller's hand-written per-guess loop would do.
pub fn solve_guesses_serial(sketches: &[ThresholdSketch]) -> Vec<GuessSolve> {
    sketches.iter().map(solve_one_guess).collect()
}

/// Solve every sketch of a guess ladder on scoped worker threads.
///
/// Each guess gets its own packed [`CsrInstance`](coverage_core::CsrInstance)
/// view and an independent bucket-queue greedy run; workers steal guess
/// indices from an atomic cursor. Because each run touches only its own
/// view and the bucket greedy breaks gain ties by smallest set id,
/// scheduling cannot perturb the output: the returned traces are
/// step-for-step identical to [`solve_guesses_serial`] (locked down by
/// `tests/pipeline_equivalence.rs`).
///
/// A panic on a worker thread degrades to the serial solver instead of
/// aborting the caller — the per-guess solves are pure functions of the
/// sketches, so the serial pass produces the identical answer.
pub fn solve_guesses_parallel(sketches: &[ThresholdSketch]) -> Vec<GuessSolve> {
    if sketches.len() < 2 {
        return solve_guesses_serial(sketches);
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(sketches.len());
    let slots: Vec<std::sync::Mutex<Option<GuessSolve>>> = (0..sketches.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= sketches.len() {
                    break;
                }
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(solve_one_guess(&sketches[i]));
                }
            });
        }
    });
    if scope_result.is_err() {
        // A worker panicked; its slots may be missing or torn. The
        // solves are deterministic, so rebuild everything serially.
        return solve_guesses_serial(sketches);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, m)| match m.into_inner() {
            Ok(Some(solve)) => solve,
            // A poisoned or unfilled slot without a scope error cannot
            // happen, but the inline solve is cheap insurance over a
            // panic.
            _ => solve_one_guess(&sketches[i]),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_k_cover;
    use coverage_stream::{ArrivalOrder, VecStream};

    #[test]
    fn recovers_planted_optimum_with_ample_budget() {
        let p = planted_k_cover(20, 2_000, 4, 100, 1);
        let mut stream = VecStream::from_instance(&p.instance);
        ArrivalOrder::Random(7).apply(stream.edges_mut());
        let cfg = KCoverConfig::new(4, 0.3, 11).with_sizing(SketchSizing::Budget(4_000));
        let res = k_cover_streaming(&stream, &cfg);
        let achieved = p.instance.coverage(&res.family);
        assert!(
            achieved as f64 >= 0.9 * p.optimal_value as f64,
            "achieved {achieved} of {}",
            p.optimal_value
        );
        assert!(res.family.len() <= 4);
    }

    #[test]
    fn beats_one_minus_inv_e_minus_eps_on_planted() {
        // The planted optimum is known exactly, so check the Theorem 3.1
        // guarantee end to end (fixed seeds; the guarantee is w.h.p.).
        for seed in 0..5u64 {
            let p = planted_k_cover(30, 3_000, 5, 80, seed);
            let mut stream = VecStream::from_instance(&p.instance);
            ArrivalOrder::Random(seed).apply(stream.edges_mut());
            let eps = 0.2;
            let cfg =
                KCoverConfig::new(5, eps, seed ^ 0xABCD).with_sizing(SketchSizing::Budget(6_000));
            let res = k_cover_streaming(&stream, &cfg);
            let achieved = p.instance.coverage(&res.family) as f64;
            let bound = (1.0 - 1.0 / std::f64::consts::E - eps) * p.optimal_value as f64;
            assert!(
                achieved >= bound,
                "seed {seed}: achieved {achieved} < bound {bound}"
            );
        }
    }

    #[test]
    fn space_is_bounded_by_budget() {
        let p = planted_k_cover(50, 20_000, 5, 200, 3);
        let stream = VecStream::from_instance(&p.instance);
        let budget = 2_000;
        let cfg = KCoverConfig::new(5, 0.3, 5).with_sizing(SketchSizing::Budget(budget));
        let res = k_cover_streaming(&stream, &cfg);
        let params = cfg.sketch_params(50);
        assert!(res.space.peak_edges <= (params.max_edges() + params.degree_cap) as u64);
        assert!(res.space.peak_edges < p.instance.num_edges() as u64);
        assert_eq!(res.space.passes, 1);
    }

    #[test]
    fn estimate_tracks_truth() {
        let p = planted_k_cover(20, 5_000, 4, 100, 9);
        let stream = VecStream::from_instance(&p.instance);
        let cfg = KCoverConfig::new(4, 0.2, 2).with_sizing(SketchSizing::Budget(5_000));
        let res = k_cover_streaming(&stream, &cfg);
        let truth = p.instance.coverage(&res.family) as f64;
        assert!(
            (res.estimated_coverage - truth).abs() / truth < 0.25,
            "estimate {} vs truth {truth}",
            res.estimated_coverage
        );
    }

    #[test]
    fn paper_epsilon_is_twelfth() {
        let cfg = KCoverConfig::new(3, 0.6, 1);
        assert!((cfg.paper_epsilon() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn parallel_guess_solve_matches_serial_traces() {
        let p = planted_k_cover(40, 8_000, 4, 200, 5);
        let mut stream = VecStream::from_instance(&p.instance);
        ArrivalOrder::Random(13).apply(stream.edges_mut());
        let params: Vec<SketchParams> = (0..6)
            .map(|g| SketchParams::with_budget(40, 1 << g, 0.3, 1_500 + 400 * g))
            .collect();
        let mut bank = coverage_sketch::SketchBank::new(params, 21);
        bank.consume_batched(&stream, 4096);
        let serial = solve_guesses_serial(bank.sketches());
        let parallel = solve_guesses_parallel(bank.sketches());
        assert_eq!(serial.len(), parallel.len());
        for (s, q) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.trace.steps, q.trace.steps, "full traces must match");
            assert_eq!(s.result.family, q.result.family);
            assert_eq!(s.result.sketch_coverage, q.result.sketch_coverage);
            assert!((s.result.estimated_coverage - q.result.estimated_coverage).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_guess_solve_handles_empty_and_single() {
        assert!(solve_guesses_parallel(&[]).is_empty());
        let p = planted_k_cover(10, 500, 2, 30, 1);
        let stream = VecStream::from_instance(&p.instance);
        let mut bank =
            coverage_sketch::SketchBank::new(vec![SketchParams::with_budget(10, 2, 0.3, 800)], 3);
        bank.consume_batched(&stream, 512);
        let one = solve_guesses_parallel(bank.sketches());
        assert_eq!(one.len(), 1);
        assert_eq!(
            one[0].trace.steps,
            solve_guesses_serial(bank.sketches())[0].trace.steps
        );
    }
}
