//! Instance preprocessing: near-duplicate set pruning.
//!
//! Real set systems (web pages, blog feeds — the paper's motivating data)
//! contain clusters of near-identical sets. They cannot raise `Opt_k`
//! beyond what one cluster representative achieves, but each one costs a
//! slot in every per-set structure and a column in every `Õ(n)` bound.
//! Pruning them first shrinks `n` — and every space bound in this
//! repository is a function of `n`.
//!
//! Strategy: min-wise signatures (`coverage-hash::minwise`) give each set
//! a constant-size sketch; sets whose estimated Jaccard similarity to an
//! already-kept set exceeds `threshold` are dropped, keeping the
//! *largest* set of each near-duplicate cluster. Exact pairwise
//! comparison over signatures is `O(n²·h)` — fine for the `n ≤ 10⁴`
//! regime this library targets (the paper's "n much smaller than m").
//!
//! Quality: dropping a ρ-similar set costs at most a `(1−ρ)` fraction of
//! that set's private contribution; the test
//! `pruning_preserves_greedy_quality` measures the end-to-end effect.

use coverage_core::{CoverageInstance, SetId};
use coverage_hash::minwise::MinHasher;

/// Result of a pruning pass.
#[derive(Clone, Debug)]
pub struct PruneResult {
    /// Kept set ids, ascending.
    pub kept: Vec<SetId>,
    /// For each dropped set, the kept representative it duplicated.
    pub dropped: Vec<(SetId, SetId)>,
}

impl PruneResult {
    /// Number of kept sets.
    pub fn kept_count(&self) -> usize {
        self.kept.len()
    }

    /// Translate a family over the pruned ids back to original ids (the
    /// identity here — kept sets keep their ids — provided for symmetry
    /// and future re-indexing changes).
    pub fn restore(&self, family: &[SetId]) -> Vec<SetId> {
        family.to_vec()
    }
}

/// Prune near-duplicate sets: keep the largest representative of every
/// cluster of sets with pairwise estimated Jaccard ≥ `threshold`.
///
/// `signature_width` controls the estimator (standard error `~1/√width`);
/// 64–128 is plenty for thresholds ≥ 0.8.
pub fn prune_near_duplicates(
    inst: &CoverageInstance,
    threshold: f64,
    signature_width: usize,
    seed: u64,
) -> PruneResult {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must lie in [0,1]"
    );
    let hasher = MinHasher::new(signature_width, seed);
    let n = inst.num_sets();
    let sigs: Vec<_> = inst
        .set_ids()
        .map(|s| hasher.signature(inst.set_elements(s).map(|e| e.0)))
        .collect();

    // Largest-first: the biggest set of a cluster becomes its keeper.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&s| (std::cmp::Reverse(inst.set_size(SetId(s))), s));

    let mut kept: Vec<SetId> = Vec::new();
    let mut dropped: Vec<(SetId, SetId)> = Vec::new();
    for &cand in &order {
        if inst.set_size(SetId(cand)) == 0 {
            // Empty sets are pure dead weight; drop without representative
            // unless everything is empty.
            continue;
        }
        let dup_of = kept
            .iter()
            .find(|&&keeper| sigs[cand as usize].jaccard(&sigs[keeper.index()]) >= threshold);
        match dup_of {
            Some(&keeper) => dropped.push((SetId(cand), keeper)),
            None => kept.push(SetId(cand)),
        }
    }
    kept.sort_unstable();
    dropped.sort_unstable();
    PruneResult { kept, dropped }
}

/// Build the pruned instance (kept sets keep their original ids; dropped
/// sets become empty). Keeping ids stable means families remain valid in
/// the original instance with no translation.
pub fn apply_prune(inst: &CoverageInstance, prune: &PruneResult) -> CoverageInstance {
    let mut keep = vec![false; inst.num_sets()];
    for s in &prune.kept {
        keep[s.index()] = true;
    }
    let mut b = CoverageInstance::builder(inst.num_sets());
    for e in inst.edges() {
        if keep[e.set.index()] {
            b.add_edge(e);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::offline::lazy_greedy_k_cover;
    use coverage_core::Edge;
    use coverage_hash::SplitMix64;

    /// An instance where each "true" set appears with `copies` noisy
    /// near-duplicates (95% overlap).
    fn duplicated_instance(
        true_sets: usize,
        copies: usize,
        size: u64,
        seed: u64,
    ) -> CoverageInstance {
        let mut rng = SplitMix64::new(seed);
        let mut b = CoverageInstance::builder(true_sets * (1 + copies));
        for t in 0..true_sets {
            let base = t as u64 * 10 * size;
            let original: Vec<u64> = (0..size).map(|i| base + i).collect();
            let sid = (t * (1 + copies)) as u32;
            for &e in &original {
                b.add_edge(Edge::new(sid, e));
            }
            for c in 0..copies {
                let dup = (t * (1 + copies) + 1 + c) as u32;
                for &e in &original {
                    // Keep ~95% of the original, swap the rest for noise.
                    if rng.next_f64() < 0.95 {
                        b.add_edge(Edge::new(dup, e));
                    } else {
                        b.add_edge(Edge::new(dup, base + size + rng.next_below(size)));
                    }
                }
            }
        }
        b.build()
    }

    #[test]
    fn prunes_planted_duplicates() {
        let inst = duplicated_instance(8, 4, 300, 3);
        let prune = prune_near_duplicates(&inst, 0.8, 128, 7);
        assert_eq!(
            prune.kept_count(),
            8,
            "one representative per cluster, got {:?}",
            prune.kept
        );
        assert_eq!(prune.dropped.len(), 8 * 4);
    }

    #[test]
    fn distinct_sets_survive() {
        // Fully disjoint sets: nothing prunable.
        let mut b = CoverageInstance::builder(6);
        for s in 0..6u32 {
            for e in 0..50u64 {
                b.add_edge(Edge::new(s, s as u64 * 100 + e));
            }
        }
        let inst = b.build();
        let prune = prune_near_duplicates(&inst, 0.7, 64, 1);
        assert_eq!(prune.kept_count(), 6);
        assert!(prune.dropped.is_empty());
    }

    #[test]
    fn pruning_preserves_greedy_quality() {
        let inst = duplicated_instance(10, 5, 400, 9);
        let k = 6;
        let before = lazy_greedy_k_cover(&inst, k).coverage();
        let prune = prune_near_duplicates(&inst, 0.8, 128, 11);
        let pruned = apply_prune(&inst, &prune);
        let family = lazy_greedy_k_cover(&pruned, k).family();
        // Families over the pruned instance are valid on the original.
        let after = inst.coverage(&family);
        assert!(
            after as f64 >= 0.95 * before as f64,
            "quality dropped: {after} vs {before}"
        );
        // And n shrank six-fold.
        assert_eq!(prune.kept_count(), 10);
    }

    #[test]
    fn representative_is_the_larger_set() {
        // Two near-identical sets of different sizes: keep the larger.
        let mut b = CoverageInstance::builder(2);
        for e in 0..100u64 {
            b.add_edge(Edge::new(0u32, e));
        }
        for e in 0..95u64 {
            b.add_edge(Edge::new(1u32, e));
        }
        let inst = b.build();
        let prune = prune_near_duplicates(&inst, 0.8, 128, 5);
        assert_eq!(prune.kept, vec![SetId(0)]);
        assert_eq!(prune.dropped, vec![(SetId(1), SetId(0))]);
    }

    #[test]
    fn empty_sets_are_dropped_silently() {
        let mut b = CoverageInstance::builder(3);
        b.add_edge(Edge::new(0u32, 1u64));
        // Sets 1 and 2 stay empty.
        let inst = b.build();
        let prune = prune_near_duplicates(&inst, 0.9, 32, 2);
        assert_eq!(prune.kept, vec![SetId(0)]);
        assert!(prune.dropped.is_empty());
    }

    #[test]
    fn threshold_one_only_merges_exact_duplicates() {
        let mut b = CoverageInstance::builder(3);
        for e in 0..60u64 {
            b.add_edge(Edge::new(0u32, e));
            b.add_edge(Edge::new(1u32, e)); // exact duplicate of S0
            if e < 59 {
                b.add_edge(Edge::new(2u32, e)); // one element short
            }
        }
        let inst = b.build();
        let prune = prune_near_duplicates(&inst, 1.0, 256, 3);
        assert_eq!(prune.kept.len(), 2, "kept {:?}", prune.kept);
        assert_eq!(prune.dropped.len(), 1);
    }

    #[test]
    #[should_panic(expected = "threshold must lie in [0,1]")]
    fn bad_threshold_rejected() {
        let inst = CoverageInstance::builder(1).build();
        prune_near_duplicates(&inst, 1.5, 16, 1);
    }
}
