//! Algorithms 4–5: single-pass `(1+ε)·ln(1/λ)`-approximate set cover with
//! λ outliers.
//!
//! **Algorithm 4** (the submodule) receives a guessed cover size `k'` and
//! a graph promised to have a cover of that size. It builds the sketch
//! `H≤n(k'·ln(1/λ'), ε, δ'')`, runs greedy for `⌈k'·ln(1/λ')⌉` rounds on
//! it, and *verifies on the sketch* that the solution covers a
//! `1 − λ' − ε·ln(1/λ')` fraction of the sketch's elements; otherwise it
//! reports `false` — which, by Lemma 3.2, certifies that the true minimum
//! cover exceeds `k'`.
//!
//! **Algorithm 5** guesses `k'` geometrically (`k' ← (1+ε/3)·k'`, up to
//! `n`) and runs Algorithm 4 for every guess *in parallel over one pass*:
//! a [`SketchBank`] feeds all guesses' sketches simultaneously, and the
//! post-pass verifications pick the smallest successful guess. With
//! `λ' = λ·e^{−ε/2}` and `ε' = λ(1−e^{−ε/2})` this yields a
//! `(1+ε)·ln(1/λ)`-approximation covering `1−λ` of the elements
//! (Theorem 3.3), in `Õ(n/λ³) ⊆ Õ_λ(n)` space.

use coverage_core::offline::bucket_greedy_budgeted_cover;
use coverage_core::{CoverageView, SetId};
use coverage_sketch::{SketchBank, SketchParams, SketchSizing, ThresholdSketch};
use coverage_stream::{EdgeStream, SpaceReport};

/// Configuration of a streaming set-cover-with-outliers run.
#[derive(Clone, Copy, Debug)]
pub struct OutlierConfig {
    /// Outlier fraction λ: the solution may leave up to `λ·m` elements
    /// uncovered. The paper assumes `λ ∈ (0, 1/e]`.
    pub lambda: f64,
    /// Accuracy parameter ε of Theorem 3.3.
    pub epsilon: f64,
    /// Sketch sizing policy (per guess).
    pub sizing: SketchSizing,
    /// Hash seed shared by the whole bank.
    pub seed: u64,
    /// Evaluate guesses on worker threads after the pass.
    pub parallel: bool,
}

impl OutlierConfig {
    /// Practical defaults.
    pub fn new(lambda: f64, epsilon: f64, seed: u64) -> Self {
        assert!(lambda > 0.0 && lambda < 1.0, "λ must lie in (0,1)");
        assert!(epsilon > 0.0 && epsilon <= 1.0, "ε must lie in (0,1]");
        OutlierConfig {
            lambda,
            epsilon,
            sizing: SketchSizing::Practical { c: 2.0 },
            seed,
            parallel: false,
        }
    }

    /// Override the sizing policy.
    pub fn with_sizing(mut self, sizing: SketchSizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Evaluate guesses in parallel (crossbeam scoped threads).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// `λ' = λ·e^{−ε/2}` (Algorithm 5 line 1).
    pub fn lambda_prime(&self) -> f64 {
        self.lambda * (-self.epsilon / 2.0).exp()
    }

    /// `ε' = λ·(1 − e^{−ε/2})` (Algorithm 5 line 1).
    pub fn epsilon_prime(&self) -> f64 {
        self.lambda * (1.0 - (-self.epsilon / 2.0).exp())
    }

    /// Sketch accuracy of Algorithm 4: `ε = ε'/(13·ln(1/λ'))`, clamped
    /// away from zero so practical degree caps and budgets stay finite
    /// (the verbatim value can reach 10⁻⁵, which only matters for the
    /// theoretical constants, not for the construction).
    pub fn sketch_epsilon(&self) -> f64 {
        let lp = self.lambda_prime();
        (self.epsilon_prime() / (13.0 * (1.0 / lp).ln())).clamp(1e-2, 1.0)
    }

    /// The geometric guess ladder `k'_i = (1+ε/3)^i`, capped at `n`.
    /// Guesses whose *rounded* greedy budget coincides are deduplicated
    /// (they would build byte-identical sketches).
    pub fn guesses(&self, n: usize) -> Vec<Guess> {
        let lp = self.lambda_prime();
        let rounds_factor = (1.0 / lp).ln();
        let base = 1.0 + self.epsilon / 3.0;
        let mut out: Vec<Guess> = Vec::new();
        let mut k_prime = 1.0f64;
        loop {
            k_prime *= base;
            let capped = k_prime.min(n as f64);
            let budget_sets = (capped * rounds_factor).ceil() as usize;
            if out.last().map(|g: &Guess| g.budget_sets) != Some(budget_sets) {
                out.push(Guess {
                    k_prime: capped,
                    budget_sets: budget_sets.max(1),
                });
            }
            if capped >= n as f64 {
                break;
            }
        }
        out
    }
}

/// One guessed cover size and its derived greedy budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Guess {
    /// The guessed minimum cover size `k'`.
    pub k_prime: f64,
    /// `⌈k'·ln(1/λ')⌉` — sets the greedy may use, and the sketch's `k`.
    pub budget_sets: usize,
}

/// Result of a streaming set-cover-with-outliers run.
#[derive(Clone, Debug)]
pub struct OutlierResult {
    /// The selected family.
    pub family: Vec<SetId>,
    /// Whether some guess passed Algorithm 4's verification. When false,
    /// `family` is the best-effort output of the largest guess.
    pub verified: bool,
    /// The successful guess (`k'`, greedy budget).
    pub guess: Guess,
    /// Fraction of *sketch* elements covered by the family (the quantity
    /// Algorithm 4 checks).
    pub sketch_fraction: f64,
    /// Total space across the whole bank.
    pub space: SpaceReport,
    /// Number of guesses (sketches) built.
    pub num_guesses: usize,
}

/// Run Algorithm 5 over one pass of `stream`.
pub fn set_cover_outliers(stream: &dyn EdgeStream, config: &OutlierConfig) -> OutlierResult {
    let n = stream.num_sets();
    let eps_sketch = config.sketch_epsilon();
    let guesses = config.guesses(n);
    let params: Vec<SketchParams> = guesses
        .iter()
        .map(|g| config.sizing.params(n, g.budget_sets, eps_sketch))
        .collect();
    let bank = SketchBank::from_stream(params, config.seed, stream);
    let space = bank.space_report();
    let sketches = bank.into_sketches();

    // Algorithm 4's acceptance threshold: cover ≥ 1 − λ' − ε·ln(1/λ') of
    // the sketch's elements.
    let lp = config.lambda_prime();
    let slack = eps_sketch * (1.0 / lp).ln();
    let required_fraction = (1.0 - lp - slack).clamp(0.0, 1.0);

    let verdicts = evaluate_guesses(&sketches, &guesses, required_fraction, config.parallel);

    // Smallest successful guess wins (ascending k').
    for (i, v) in verdicts.iter().enumerate() {
        if v.satisfied {
            return OutlierResult {
                family: v.family.clone(),
                verified: true,
                guess: guesses[i],
                sketch_fraction: v.fraction,
                space,
                num_guesses: guesses.len(),
            };
        }
    }
    // All guesses failed: either the instance is not (1−λ)-coverable at
    // any size ≤ n, or the budgets were too small. Return the largest
    // guess's greedy output, flagged unverified.
    let last = verdicts.len() - 1;
    OutlierResult {
        family: verdicts[last].family.clone(),
        verified: false,
        guess: guesses[last],
        sketch_fraction: verdicts[last].fraction,
        space,
        num_guesses: guesses.len(),
    }
}

struct Verdict {
    family: Vec<SetId>,
    fraction: f64,
    satisfied: bool,
}

/// Run Algorithm 4's greedy + verification on every guess.
fn evaluate_guesses(
    sketches: &[ThresholdSketch],
    guesses: &[Guess],
    required_fraction: f64,
    parallel: bool,
) -> Vec<Verdict> {
    let eval = |i: usize| -> Verdict {
        // Zero-rebuild query: the guess's sketch is exported as a packed
        // CSR view and solved with the decremental bucket-queue greedy.
        let view = sketches[i].csr_view();
        let m_sketch = view.num_elements();
        let required = (required_fraction * m_sketch as f64).ceil() as usize;
        let res = bucket_greedy_budgeted_cover(&view, required, guesses[i].budget_sets);
        let family = res.family();
        let fraction = if m_sketch == 0 {
            1.0
        } else {
            res.trace.coverage() as f64 / m_sketch as f64
        };
        Verdict {
            family,
            fraction,
            satisfied: res.satisfied,
        }
    };
    if !parallel || sketches.len() < 2 {
        (0..sketches.len()).map(eval).collect()
    } else {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(sketches.len());
        let results: Vec<std::sync::Mutex<Option<Verdict>>> = (0..sketches.len())
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= sketches.len() {
                        break;
                    }
                    *results[i].lock().expect("verdict lock poisoned") = Some(eval(i));
                });
            }
        })
        .expect("guess evaluation worker panicked");
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("verdict lock poisoned")
                    .expect("all guesses evaluated")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_data::planted_set_cover;
    use coverage_stream::{ArrivalOrder, VecStream};

    fn run(
        lambda: f64,
        eps: f64,
        parallel: bool,
    ) -> (OutlierResult, coverage_core::CoverageInstance, usize) {
        let p = planted_set_cover(30, 3_000, 5, 60, 7);
        let mut stream = VecStream::from_instance(&p.instance);
        ArrivalOrder::Random(3).apply(stream.edges_mut());
        let cfg = OutlierConfig::new(lambda, eps, 17)
            .with_sizing(SketchSizing::Budget(4_000))
            .with_parallel(parallel);
        let res = set_cover_outliers(&stream, &cfg);
        (res, p.instance, p.optimal_value)
    }

    #[test]
    fn covers_required_fraction_on_original() {
        let (res, inst, _) = run(0.1, 0.5, false);
        assert!(res.verified, "a guess must verify");
        let frac = inst.coverage_fraction(&res.family);
        assert!(
            frac >= 1.0 - 0.1 - 0.05,
            "covered fraction {frac} below 1−λ−slack"
        );
    }

    #[test]
    fn solution_size_respects_ln_one_over_lambda() {
        let (res, _, k_star) = run(0.1, 0.5, false);
        let bound = (1.0 + 0.5)
            * (k_star as f64)
            * (1.0 / 0.1f64).ln()
            * (1.0 + 0.5 / 3.0) // one geometric overshoot step
            + 2.0;
        assert!(
            (res.family.len() as f64) <= bound,
            "family {} exceeds bound {bound}",
            res.family.len()
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let (a, _, _) = run(0.15, 0.4, false);
        let (b, _, _) = run(0.15, 0.4, true);
        assert_eq!(a.family, b.family);
        assert_eq!(a.verified, b.verified);
        assert_eq!(a.guess.budget_sets, b.guess.budget_sets);
    }

    #[test]
    fn guess_ladder_is_geometric_and_capped() {
        let cfg = OutlierConfig::new(0.1, 0.3, 1);
        let guesses = cfg.guesses(100);
        assert!(!guesses.is_empty());
        // Monotone increasing budgets, capped at n-derived budget.
        for w in guesses.windows(2) {
            assert!(w[0].budget_sets < w[1].budget_sets);
        }
        let last = guesses.last().unwrap();
        assert!((last.k_prime - 100.0).abs() < 1e-9);
    }

    #[test]
    fn derived_parameters_match_paper() {
        let cfg = OutlierConfig::new(0.2, 0.6, 1);
        let e = (-0.3f64).exp();
        assert!((cfg.lambda_prime() - 0.2 * e).abs() < 1e-12);
        assert!((cfg.epsilon_prime() - 0.2 * (1.0 - e)).abs() < 1e-12);
        assert!(cfg.sketch_epsilon() > 0.0);
    }

    #[test]
    fn space_counts_whole_bank() {
        let (res, _, _) = run(0.1, 0.5, false);
        assert!(res.num_guesses > 1);
        assert!(res.space.peak_edges > 0);
        assert_eq!(res.space.passes, 1);
    }

    #[test]
    #[should_panic(expected = "λ must lie in (0,1)")]
    fn rejects_bad_lambda() {
        OutlierConfig::new(0.0, 0.5, 1);
    }
}
