//! Run every experiment in DESIGN.md's index, in order.
fn main() {
    for out in coverage_bench::experiments::run_all() {
        println!("########## experiment {} ##########\n", out.id);
        out.emit();
    }
}
