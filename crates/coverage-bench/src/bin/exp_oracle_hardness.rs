//! Thin wrapper: run experiment `oracle_hardness` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::oracle_hardness::run().emit();
}
