//! Thin wrapper: run experiment `distributed` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::distributed::run().emit();
}
