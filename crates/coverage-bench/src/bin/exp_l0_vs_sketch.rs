//! Thin wrapper: run experiment `l0_vs_sketch` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::l0_vs_sketch::run().emit();
}
