//! CI smoke benchmark: sequential simulation vs parallel executor on a
//! fixed workload.
//!
//! Runs the same distributed k-cover configuration through
//! `distributed_k_cover_serial` (the strictly single-threaded
//! O(machines·|E|) reference simulation — pinned to one thread so the
//! gate does not depend on the CI machine's core count) and
//! `ParallelRunner` (one partition pass + concurrent map), then:
//!
//! * **fails (exit 1)** if the parallel family diverges from the
//!   sequential one — the determinism contract, enforced on every CI run;
//! * **fails (exit 1)** if the parallel wall clock does not beat the
//!   sequential simulation — the perf-regression gate;
//! * writes `BENCH_2.json` (wall clocks, speedup, peak sketch space from
//!   the per-machine `SpaceReport`s) for artifact upload and run-to-run
//!   comparison.
//!
//! A second case exercises the **dynamic** (insert/delete) pipeline on a
//! churn workload over the same planted instance and writes
//! `BENCH_3.json`:
//!
//! * **fails (exit 1)** if the parallel dynamic executor's family
//!   diverges from the serial dynamic reference — the (exact, linear)
//!   dynamic determinism contract;
//! * **fails (exit 1)** if the dynamic cover's value on the surviving
//!   graph falls below the paper's `(1 − 1/e − ε)` bound relative to the
//!   insertion-only pipeline run on the surviving edges — the dynamic
//!   accuracy gate;
//! * records both wall clocks so the dynamic premium (linear cells ×
//!   log m levels vs one threshold sketch) is tracked run to run.
//!
//! A third case exercises the **flat ingestion engine** on the
//! `SketchBank` hot path (every edge through every Algorithm 5 guess)
//! and writes `BENCH_4.json`:
//!
//! * **fails (exit 1)** if the flat bank's retained content diverges,
//!   on any guess, from a bank of map-backed [`ReferenceSketch`]es —
//!   the engine-equivalence contract;
//! * **fails (exit 1)** if the flat bank's single-thread ingest
//!   throughput is below **1.5×** the reference bank's — the flat-engine
//!   perf gate (shared hashing + bank-wide bound pre-filter + arena
//!   storage must actually pay);
//! * records single-sketch flat/reference throughput and the parallel
//!   runner's bank build for run-to-run comparison.
//!
//! A fourth case exercises the **zero-rebuild solve path** (Algorithm 3
//! line 3 — "run greedy on the sketch") on the same 8-guess bank and
//! writes `BENCH_5.json`:
//!
//! * **fails (exit 1)** if, on any guess, the bucket-queue greedy on
//!   the sketch's `csr_view()` diverges — family *or* full trace — from
//!   the lazy greedy on the owned `instance()` rebuild (the
//!   engine-equivalence contract of the solve path);
//! * **fails (exit 1)** if the end-to-end solve (`csr_view` + bucket
//!   greedy, all guesses) is not at least **2×** faster than the seed
//!   path (`instance()` rebuild + lazy greedy) — the solve-path perf
//!   gate;
//! * records the export-only timings (`instance()` vs `csr_view()`) so
//!   the rebuild premium is tracked run to run.
//!
//! A fifth case exercises the **binary wire format and the multiprocess
//! executor** and writes `BENCH_6.json`:
//!
//! * **fails (exit 1)** if the multiprocess executor (real worker
//!   subprocesses — this binary re-spawned in a hidden `__worker` mode,
//!   speaking the framed pipe protocol) selects a different family than
//!   the sequential simulation or the in-process parallel executor —
//!   including a run where workers are killed mid-round and their
//!   shards re-dispatched to survivors (the recovery contract);
//! * **fails (exit 1)** if the binary snapshot frame is not at least
//!   **5×** smaller than the JSON encoding on the 8-guess bank
//!   snapshots — the wire-size gate;
//! * **fails (exit 1)** if a binary encode+decode round trip is not at
//!   least **3×** faster than the JSON round trip on the same
//!   snapshots — the wire-speed gate;
//! * records the dynamic-snapshot codec numbers alongside (the sparse
//!   cell encoding) for run-to-run comparison.
//!
//! A sixth case exercises the **serving subsystem** under mixed load
//! (concurrent ingest + lock-free queries) and writes `BENCH_7.json`:
//!
//! * **fails (exit 1)** if any answer recorded by a concurrent query
//!   thread is not **bit-identical** to a query on the journal-prefix
//!   rebuild at the answer's reported epoch — the serving consistency
//!   contract (no torn reads, no cross-epoch families);
//! * **fails (exit 1)** if an ingest-only engine run (writers, queue,
//!   epoch publication; no journal, no queries) retains less than
//!   **0.8×** the throughput of the batch `SketchBank` build of the
//!   same stream — the queue-plus-publication overhead gate, measured
//!   without query CPU contention so it holds on single-core runners;
//! * **fails (exit 1)** unless the recorded answers span at least two
//!   distinct epochs with at least one mid-stream epoch — proof the
//!   queries really ran against snapshots published *during* ingest,
//!   not just the final state.
//!
//! A seventh case exercises the **batch-vectorized hot paths and the
//! pipelined/parallel executors** added on top of the flat engine and
//! writes `BENCH_8.json`:
//!
//! * **fails (exit 1)** if the batched-vectorized bank ingest (chunked
//!   shared hashing, bank-wide bound pre-filter, 8-wide unrolled mixer,
//!   probe-window prefetch, fused descriptor appends) retains different
//!   content, counters, or acceptance bound than the frozen per-edge
//!   scalar engine (`consume_scalar`) or the batched-scalar hybrid
//!   (`consume_batched_scalar`) — the vectorization-equivalence
//!   contract;
//! * **fails (exit 1)** if the batched-vectorized ingest is not at
//!   least **1.3×** faster than the frozen per-edge scalar engine —
//!   the vectorization perf gate (the batched-scalar hybrid is timed
//!   alongside, informationally, to split the batching effect from the
//!   unroll/prefetch effect);
//! * **fails (exit 1)** if the pipelined runner's family diverges from
//!   the two-barrier runner's or the serial simulation's — the
//!   pipeline determinism contract (wall clocks recorded; the speedup
//!   itself is hardware-dependent, so only equivalence is gated);
//! * **fails (exit 1)** if the parallel multi-guess solve's full traces
//!   diverge from the per-guess sequential loop — the parallel-solve
//!   determinism contract;
//! * **fails (exit 1)** if the parallel multi-guess solve is not at
//!   least **1.5×** faster than the sequential per-guess
//!   `instance()` + lazy-greedy loop — the multi-guess solve perf gate.
//!
//! * **fails (exit 1)** if, under an injected worker crash plus an
//!   injected infinite hang, the multiprocess executor does not land on
//!   the bit-identical family within **2×** the fault-free wall clock —
//!   the fault-recovery gate (→ `BENCH_9.json`; the deadline reaper,
//!   retry/backoff, and reshard paths must all fire).
//!
//! * **fails (exit 1)** if the loopback TCP socket executor is not
//!   within **1.5×** the pipe executor's fault-free wall clock, if no
//!   shard's chunked stream overlapped ingest with transfer, or if the
//!   family diverges — fault-free or under a severed connection plus a
//!   500ms stall — the socket-transport gate (→ `BENCH_10.json`; the
//!   heartbeat liveness, shard-requeue, and chunk-streaming paths must
//!   all fire).
//!
//! Usage: `bench_smoke [bench2.json [bench3.json [bench4.json
//! [bench5.json [bench6.json [bench7.json [bench8.json [bench9.json
//! [bench10.json]]]]]]]]]` (defaults `BENCH_2.json` … `BENCH_10.json`
//! in the current directory).

use std::collections::HashMap;
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use coverage_algs::{
    k_cover_streaming, solve_guesses_parallel, solve_guesses_serial, KCoverConfig,
};
use coverage_core::offline::{bucket_greedy_k_cover, lazy_greedy_k_cover};
use coverage_core::{CoverageView, SetId};
use coverage_data::{churn_workload, planted_k_cover};
use coverage_dist::{
    distributed_k_cover_serial, dynamic_distributed_k_cover, partition_updates, DistConfig, Fault,
    FaultPlan, IngestMode, ParallelRunner, ProcessRunner, SocketRunner, WorkerCommand,
};
use coverage_serve::{answer_query, LiveStore, QueryAnswer, ServeConfig, ServeEngine, ServeFinish};
use coverage_sketch::{
    DynamicSketch, DynamicSnapshot, ReferenceSketch, SketchBank, SketchParams, SketchSizing,
    SketchSnapshot, ThresholdSketch,
};
use coverage_stream::{ArrivalOrder, EdgeStream, SignedEdge, VecStream};
use serde::Serialize;

/// Machines to simulate; deliberately larger than `THREADS` so the
/// serial harness pays its per-machine re-filtering passes.
const MACHINES: usize = 8;
/// Worker threads for the parallel executor (the gate's headline number).
const THREADS: usize = 4;
/// Timed repetitions; the minimum is reported (CI machines are noisy).
const REPS: usize = 3;
/// Hash seed the bank cases (BENCH_4 ingest, BENCH_5 solve) share.
const BANK_SEED: u64 = 77;
/// Ingest batch size of the bank cases.
const BANK_BATCH: usize = 4096;

/// The Algorithm 5-style geometric `k'` guess ladder both bank cases
/// run on (one sketch per guess, each with its own degree cap and
/// budget — the realistic bank shape for one pass). Defined once so
/// BENCH_4 (ingest) and BENCH_5 (solve) can never desynchronize.
fn guess_ladder(n: usize) -> Vec<SketchParams> {
    (0..8)
        .map(|g| SketchParams::with_budget(n, 1 << g, 0.3, 2_000 + 600 * g))
        .collect()
}

#[derive(Serialize)]
struct RunnerRecord {
    wall_ms: f64,
    peak_machine_edges: u64,
    peak_machine_aux_words: u64,
    merged_edges: usize,
    family: Vec<u32>,
}

#[derive(Serialize)]
struct SmokeRecord {
    bench: &'static str,
    workload: &'static str,
    stream_edges: usize,
    machines: usize,
    threads: usize,
    sequential: RunnerRecord,
    parallel: RunnerRecord,
    parallel_partition_ms: f64,
    parallel_map_ms: f64,
    speedup: f64,
    families_match: bool,
}

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best_ms = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let v = f();
        best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (out.expect("reps >= 1"), best_ms)
}

#[derive(Serialize)]
struct DynamicSmokeRecord {
    bench: &'static str,
    workload: &'static str,
    updates: usize,
    deletes: usize,
    surviving_edges: usize,
    machines: usize,
    threads: usize,
    dynamic_serial_wall_ms: f64,
    dynamic_parallel_wall_ms: f64,
    insertion_only_wall_ms: f64,
    dynamic_covered: usize,
    insertion_only_covered: usize,
    accuracy_ratio: f64,
    accuracy_bound: f64,
    sample_level: usize,
    recovered_edges: usize,
    dynamic_space_words: u64,
    families_match: bool,
}

/// The dynamic smoke case: churn half the planted instance away and
/// compare the dynamic pipeline against the insertion-only pipeline on
/// the surviving edges. Returns the record and whether both gates hold.
fn dynamic_smoke(planted: &coverage_core::CoverageInstance) -> (DynamicSmokeRecord, bool) {
    let eps = 0.3;
    let w = churn_workload(planted, 0.5, 17);
    let cfg = DistConfig::new(MACHINES, 6, eps, 21).with_sizing(SketchSizing::Budget(6_000));

    let (serial, serial_ms) = best_of(REPS, || dynamic_distributed_k_cover(&w.stream, &cfg));
    let runner = ParallelRunner::new(cfg, THREADS);
    let (par, par_ms) = best_of(REPS, || runner.run_dynamic(&w.stream));

    // Insertion-only reference on the surviving edge set.
    let mut surv_stream = VecStream::from_instance(&w.surviving);
    ArrivalOrder::Random(8).apply(surv_stream.edges_mut());
    let ins_cfg = KCoverConfig::new(6, eps, 21).with_sizing(SketchSizing::Budget(6_000));
    let (ins, ins_ms) = best_of(REPS, || k_cover_streaming(&surv_stream, &ins_cfg));

    let dynamic_covered = w.surviving.coverage(&par.family);
    let insertion_only_covered = w.surviving.coverage(&ins.family).max(1);
    let accuracy_ratio = dynamic_covered as f64 / insertion_only_covered as f64;
    let accuracy_bound = 1.0 - 1.0 / std::f64::consts::E - eps;
    let families_match = par.family == serial.family;
    let record = DynamicSmokeRecord {
        bench: "BENCH_3",
        workload: "churn_workload(planted_k_cover(n=200, m=100_000, k=6), churn=0.5, seed=17)",
        updates: w.stream.updates().len(),
        deletes: w.stream.num_deletes(),
        surviving_edges: w.surviving.num_edges(),
        machines: MACHINES,
        threads: THREADS,
        dynamic_serial_wall_ms: serial_ms,
        dynamic_parallel_wall_ms: par_ms,
        insertion_only_wall_ms: ins_ms,
        dynamic_covered,
        insertion_only_covered,
        accuracy_ratio,
        accuracy_bound,
        sample_level: par.sample_level,
        recovered_edges: par.recovered_edges,
        dynamic_space_words: par
            .per_machine
            .iter()
            .map(|r| r.total_words())
            .max()
            .unwrap_or(0),
        families_match,
    };
    (record, families_match && accuracy_ratio >= accuracy_bound)
}

/// One engine's timing on the ingest workload.
#[derive(Serialize)]
struct IngestRecord {
    wall_ms: f64,
    edges_per_sec: f64,
}

#[derive(Serialize)]
struct IngestSmokeRecord {
    bench: &'static str,
    workload: &'static str,
    stream_edges: usize,
    guesses: usize,
    batch: usize,
    /// Flat engine, full bank, shared-hash batched path (the gated number).
    flat_bank: IngestRecord,
    /// Map-backed reference bank: per-sketch hashing, per-edge updates.
    reference_bank: IngestRecord,
    /// Flat engine, one sketch, batched path.
    flat_single: IngestRecord,
    /// Map-backed reference, one sketch.
    reference_single: IngestRecord,
    /// Parallel runner building the same bank (informational).
    parallel_bank_wall_ms: f64,
    bank_speedup: f64,
    single_speedup: f64,
    contents_match: bool,
}

/// The flat-engine ingest smoke case (→ `BENCH_4.json`): same planted
/// instance, pushed through the shared [`guess_ladder`] bank with both
/// ingestion engines. Returns the record, whether both gates (content
/// equivalence, ≥1.5× bank speedup) hold, and the built flat bank —
/// which the solve case ([`solve_smoke`]) queries, so the stream is
/// ingested once for both benches.
fn ingest_smoke(stream: &VecStream) -> (IngestSmokeRecord, bool, SketchBank) {
    let guesses = guess_ladder(stream.num_sets());
    let edges = stream.len_hint().expect("materialized stream");

    let (flat_bank, flat_ms) = best_of(REPS, || {
        let mut bank = SketchBank::new(guesses.iter().copied(), BANK_SEED);
        bank.consume_batched(stream, BANK_BATCH);
        bank
    });
    let (ref_bank, ref_ms) = best_of(REPS, || {
        let mut bank: Vec<ReferenceSketch> = guesses
            .iter()
            .map(|&p| ReferenceSketch::new(p, BANK_SEED))
            .collect();
        // Sketch-major over each batch — exactly the retired
        // `SketchBank::update_batch` behavior.
        stream.for_each_batch(BANK_BATCH, &mut |chunk| {
            for s in &mut bank {
                s.update_batch(chunk);
            }
        });
        bank
    });
    let (_, flat_single_ms) = best_of(REPS, || {
        let mut s = ThresholdSketch::new(guesses[3], BANK_SEED);
        s.consume_batched(stream, BANK_BATCH);
        s.edges_stored()
    });
    let (_, ref_single_ms) = best_of(REPS, || {
        let mut s = ReferenceSketch::new(guesses[3], BANK_SEED);
        s.consume(stream);
        s.edges_stored()
    });
    let cfg = DistConfig::new(MACHINES, 6, 0.3, BANK_SEED);
    let runner = ParallelRunner::new(cfg, THREADS);
    let (_, par_ms) = best_of(REPS, || runner.build_bank(&guesses, stream).len());

    let contents_match = flat_bank.sketches().iter().zip(&ref_bank).all(|(f, r)| {
        f.acceptance_bound() == r.acceptance_bound()
            && f.counters() == r.counters()
            && f.canonical_content() == r.canonical_content()
    });
    let eps = |ms: f64| edges as f64 / (ms / 1e3).max(1e-9);
    let bank_speedup = ref_ms / flat_ms.max(1e-9);
    let single_speedup = ref_single_ms / flat_single_ms.max(1e-9);
    let record = IngestSmokeRecord {
        bench: "BENCH_4",
        workload: "planted_k_cover(n=200, m=100_000, k=6, set_size=4_000, seed=6), 8-guess bank",
        stream_edges: edges,
        guesses: guesses.len(),
        batch: BANK_BATCH,
        flat_bank: IngestRecord {
            wall_ms: flat_ms,
            edges_per_sec: eps(flat_ms),
        },
        reference_bank: IngestRecord {
            wall_ms: ref_ms,
            edges_per_sec: eps(ref_ms),
        },
        flat_single: IngestRecord {
            wall_ms: flat_single_ms,
            edges_per_sec: eps(flat_single_ms),
        },
        reference_single: IngestRecord {
            wall_ms: ref_single_ms,
            edges_per_sec: eps(ref_single_ms),
        },
        parallel_bank_wall_ms: par_ms,
        bank_speedup,
        single_speedup,
        contents_match,
    };
    (record, contents_match && bank_speedup >= 1.5, flat_bank)
}

/// One solve path's timing over all guesses of the bank.
#[derive(Serialize)]
struct SolveRecord {
    /// End-to-end: export the sketch content + run greedy, every guess.
    wall_ms: f64,
    /// Export step alone (informational split of `wall_ms`).
    export_only_wall_ms: f64,
}

#[derive(Serialize)]
struct SolveSmokeRecord {
    bench: &'static str,
    workload: &'static str,
    guesses: usize,
    /// Stored edges across all guess sketches (the solve input size).
    sketch_edges_total: usize,
    /// Seed path: per-query `instance()` rebuild + lazy greedy.
    rebuild_lazy: SolveRecord,
    /// Zero-rebuild path: `csr_view()` + bucket-queue greedy.
    csr_bucket: SolveRecord,
    speedup: f64,
    families_match: bool,
    traces_match: bool,
}

/// The solve-path smoke case (→ `BENCH_5.json`): the bank built by
/// `ingest_smoke`, queried at each guess's `k` ("run greedy on the
/// sketch", Algorithm 3 line 3 — once per guess, exactly the workload
/// under test) through both solve paths. Returns the record and
/// whether all gates (bit-identical families, full trace equality, ≥2×
/// end-to-end speedup) hold.
fn solve_smoke(bank: &SketchBank) -> (SolveSmokeRecord, bool) {
    let sketches = bank.sketches();
    let sketch_edges_total: usize = sketches.iter().map(|s| s.edges_stored()).sum();

    // The timed closures keep the full traces, so the equivalence
    // gates below compare what was actually measured — no extra solve
    // sweeps.
    let (seed_traces, seed_ms) = best_of(REPS, || {
        sketches
            .iter()
            .map(|s| lazy_greedy_k_cover(&s.instance(), s.params().k))
            .collect::<Vec<_>>()
    });
    let (csr_traces, csr_ms) = best_of(REPS, || {
        sketches
            .iter()
            .map(|s| bucket_greedy_k_cover(&s.csr_view(), s.params().k))
            .collect::<Vec<_>>()
    });
    // Export-only split: how much of each path is rebuilding vs solving.
    let (_, rebuild_ms) = best_of(REPS, || {
        sketches
            .iter()
            .map(|s| s.instance().num_edges())
            .sum::<usize>()
    });
    let (_, view_ms) = best_of(REPS, || {
        sketches
            .iter()
            .map(|s| s.csr_view().num_edges())
            .sum::<usize>()
    });

    let families_match = seed_traces
        .iter()
        .zip(&csr_traces)
        .all(|(a, b)| a.family() == b.family());
    let traces_match = seed_traces
        .iter()
        .zip(&csr_traces)
        .all(|(a, b)| a.steps == b.steps);
    let speedup = seed_ms / csr_ms.max(1e-9);
    let record = SolveSmokeRecord {
        bench: "BENCH_5",
        workload: "planted_k_cover(n=200, m=100_000, k=6, set_size=4_000, seed=6), 8-guess bank",
        guesses: sketches.len(),
        sketch_edges_total,
        rebuild_lazy: SolveRecord {
            wall_ms: seed_ms,
            export_only_wall_ms: rebuild_ms,
        },
        csr_bucket: SolveRecord {
            wall_ms: csr_ms,
            export_only_wall_ms: view_ms,
        },
        speedup,
        families_match,
        traces_match,
    };
    (record, families_match && traces_match && speedup >= 2.0)
}

/// One snapshot codec's size/speed numbers on a fixed snapshot set.
#[derive(Serialize)]
struct WireCodecRecord {
    snapshots: usize,
    json_bytes: u64,
    binary_bytes: u64,
    /// `json_bytes / binary_bytes` — the gated compression factor.
    size_ratio: f64,
    json_roundtrip_ms: f64,
    binary_roundtrip_ms: f64,
    /// JSON round-trip time / binary round-trip time — the gated factor.
    speed_ratio: f64,
    /// Every decoded snapshot compared equal to its source.
    roundtrips_identical: bool,
}

/// Encode + decode every snapshot through both codecs and time the
/// round trips. `S` is either snapshot type; the JSON side is the serde
/// path the `ShipFormat::Json` transport uses, the binary side the
/// framed wire codec under test.
fn wire_codec_case<S>(
    snaps: &[S],
    encode: impl Fn(&S) -> Vec<u8>,
    decode: impl Fn(&[u8]) -> S,
) -> WireCodecRecord
where
    S: PartialEq + serde::Serialize + serde::Deserialize,
{
    let json_bytes: u64 = snaps
        .iter()
        .map(|s| serde_json::to_string(s).expect("render json").len() as u64)
        .sum();
    let binary_bytes: u64 = snaps.iter().map(|s| encode(s).len() as u64).sum();
    let (json_ok, json_ms) = best_of(REPS, || {
        snaps.iter().all(|s| {
            let doc = serde_json::to_string(s).expect("render json");
            serde_json::from_str::<S>(&doc).expect("parse json") == *s
        })
    });
    let (bin_ok, bin_ms) = best_of(REPS, || snaps.iter().all(|s| decode(&encode(s)) == *s));
    WireCodecRecord {
        snapshots: snaps.len(),
        json_bytes,
        binary_bytes,
        size_ratio: json_bytes as f64 / (binary_bytes as f64).max(1e-9),
        json_roundtrip_ms: json_ms,
        binary_roundtrip_ms: bin_ms,
        speed_ratio: json_ms / bin_ms.max(1e-9),
        roundtrips_identical: json_ok && bin_ok,
    }
}

/// One multiprocess run's outcome.
#[derive(Serialize)]
struct ProcessCaseRecord {
    wall_ms: f64,
    workers_spawned: usize,
    workers_lost: usize,
    shards_resharded: usize,
    shards_built_inline: usize,
    pipe_bytes: u64,
    family: Vec<u32>,
}

#[derive(Serialize)]
struct WireSmokeRecord {
    bench: &'static str,
    workload: &'static str,
    machines: usize,
    processes: usize,
    /// The 8-guess bank snapshots through both codecs (the gated case).
    threshold_wire: WireCodecRecord,
    /// Per-machine dynamic shard snapshots (sparse cells; informational).
    dynamic_wire: WireCodecRecord,
    multiprocess: ProcessCaseRecord,
    /// Same run with two workers killed mid-round by injected faults.
    multiprocess_killed: ProcessCaseRecord,
    /// serial == parallel == multiprocess == multiprocess-after-kill.
    families_match: bool,
    size_gate: f64,
    speed_gate: f64,
}

/// The wire-format + multiprocess smoke case (→ `BENCH_6.json`).
/// Returns the record and whether every gate holds.
fn wire_smoke(
    bank: &SketchBank,
    stream: &VecStream,
    planted: &coverage_core::CoverageInstance,
    cfg: DistConfig,
    serial_family: &[SetId],
    parallel_family: &[SetId],
) -> (WireSmokeRecord, bool) {
    // --- Codec gates on the 8-guess bank snapshots. ---
    let snaps: Vec<SketchSnapshot> = bank.sketches().iter().map(SketchSnapshot::of).collect();
    let threshold_wire = wire_codec_case(
        &snaps,
        |s| s.encode_binary(),
        |b| SketchSnapshot::decode_binary(b).expect("binary frame decodes"),
    );
    // Dynamic side: the per-machine shard sketches a multiprocess
    // dynamic round would actually put on the wire.
    let w = churn_workload(planted, 0.5, 17);
    let dyn_params = cfg.dynamic_sketch_params(stream.num_sets());
    let dsnaps: Vec<DynamicSnapshot> =
        partition_updates(&w.stream, MACHINES, cfg.shard_seed(), BANK_BATCH)
            .iter()
            .map(|shard| {
                let mut d = DynamicSketch::new(dyn_params, cfg.seed);
                d.update_batch(shard);
                DynamicSnapshot::of(&d)
            })
            .collect();
    let dynamic_wire = wire_codec_case(
        &dsnaps,
        |s| s.encode_binary(),
        |b| DynamicSnapshot::decode_binary(b).expect("binary frame decodes"),
    );

    // --- Multiprocess executor: same family as serial + parallel. ---
    let command = WorkerCommand::current_exe(vec!["__worker".to_string()])
        .expect("bench binary can locate itself");
    let runner = ProcessRunner::new(cfg, command.clone(), THREADS);
    let t = Instant::now();
    let proc_res = runner.run(stream).expect("multiprocess run");
    let proc_ms = t.elapsed().as_secs_f64() * 1e3;
    // Kill two of the four workers mid-round (on their first shard) and
    // require the re-shard recovery path to land on the same family.
    let killer = ProcessRunner::new(cfg, command, THREADS).with_injected_failures([0, 2]);
    let t = Instant::now();
    let kill_res = killer.run(stream).expect("multiprocess run with kills");
    let kill_ms = t.elapsed().as_secs_f64() * 1e3;

    let case = |res: &coverage_dist::ProcessResult, wall_ms: f64| ProcessCaseRecord {
        wall_ms,
        workers_spawned: res.workers_spawned,
        workers_lost: res.workers_lost,
        shards_resharded: res.shards_resharded,
        shards_built_inline: res.shards_built_inline,
        pipe_bytes: res.wire_bytes,
        family: res.family.iter().map(|s| s.0).collect(),
    };
    let families_match = proc_res.family == serial_family
        && proc_res.family == parallel_family
        && kill_res.family == serial_family;
    let recovery_exercised = kill_res.workers_lost >= 2 && kill_res.shards_resharded >= 2;
    let record = WireSmokeRecord {
        bench: "BENCH_6",
        workload: "planted_k_cover(n=200, m=100_000, k=6, set_size=4_000, seed=6), 8-guess bank",
        machines: MACHINES,
        processes: THREADS,
        multiprocess: case(&proc_res, proc_ms),
        multiprocess_killed: case(&kill_res, kill_ms),
        threshold_wire,
        dynamic_wire,
        families_match,
        size_gate: 5.0,
        speed_gate: 3.0,
    };
    let ok = families_match
        && recovery_exercised
        && record.threshold_wire.roundtrips_identical
        && record.dynamic_wire.roundtrips_identical
        && record.threshold_wire.size_ratio >= record.size_gate
        && record.threshold_wire.speed_ratio >= record.speed_gate;
    (record, ok)
}

#[derive(Serialize)]
struct ServeSmokeRecord {
    bench: &'static str,
    workload: &'static str,
    updates: usize,
    guesses: usize,
    writers: usize,
    readers: usize,
    publish_every: u64,
    /// Batch reference: the flat bank's `consume_batched` build of the
    /// same stream on the same ladder (BENCH_4's gated number).
    batch_ingest_wall_ms: f64,
    /// The gated number: engine start → flush-complete wall clock for
    /// an ingest-only run (writers + bounded queue + epoch publication;
    /// no journal, no query threads). Isolates the engine's overhead
    /// from query CPU contention, which on a single-core runner would
    /// otherwise dominate the ratio.
    ingest_only_wall_ms: f64,
    /// `batch / ingest_only` — the throughput-retention gate
    /// (≥ `ingest_gate`).
    ingest_ratio: f64,
    ingest_only_updates_per_sec: f64,
    /// Wall clock of the mixed-load run (journal on, query threads
    /// running throughout) that the consistency gate verifies.
    /// Informational: on few-core machines queries and ingest share
    /// CPU, so this is not throughput-gated.
    mixed_ingest_wall_ms: f64,
    epochs_published: u64,
    queries_served: u64,
    answers_recorded: usize,
    /// Distinct epochs the concurrent answers were served from.
    distinct_answer_epochs: usize,
    /// Of those, epochs published mid-stream (0 < applied < total).
    mid_stream_answer_epochs: usize,
    /// Export cost across all published epochs (`RoundCost` words).
    words_shipped: u64,
    /// Every concurrent answer bit-identical to the journal-prefix
    /// rebuild at its reported epoch.
    answers_consistent: bool,
    ingest_gate: f64,
}

/// Journal-replay oracle for one mixed-load run: rebuild a fresh store
/// from the prefix each answered epoch claims and demand every answer
/// be bit-identical to a query on the rebuild.
fn serve_answers_consistent(
    cfg: &ServeConfig,
    answers: &[(usize, QueryAnswer)],
    fin: &ServeFinish,
) -> bool {
    let mut applied_at: HashMap<u64, u64> = HashMap::new();
    for (_, a) in answers {
        match applied_at.insert(a.epoch, a.updates_applied) {
            Some(prev) if prev != a.updates_applied => return false,
            _ => {}
        }
    }
    let mut rebuilt: HashMap<u64, coverage_serve::EpochSnapshot> = HashMap::new();
    for (&epoch, &applied) in &applied_at {
        let mut store = LiveStore::new(cfg);
        store.apply(&fin.journal[..applied as usize]);
        match store.snapshot(epoch, applied) {
            Some(snap) => {
                rebuilt.insert(epoch, snap);
            }
            None => return false,
        }
    }
    let mut reference: HashMap<(u64, usize), QueryAnswer> = HashMap::new();
    answers.iter().all(|(k, a)| {
        let r = reference
            .entry((a.epoch, *k))
            .or_insert_with(|| answer_query(&rebuilt[&a.epoch], *k));
        a.bit_eq(r)
    })
}

/// The serving smoke case (→ `BENCH_7.json`): the same planted stream,
/// pushed through a [`ServeEngine`] on the shared [`guess_ladder`].
/// Two runs: an **ingest-only** run (writers + queue + publication,
/// nothing else) whose wall clock must retain ≥0.8× the batch build's
/// throughput, and a **mixed-load** run (journal on, two query threads
/// reading published epochs the whole time) whose every answer must
/// replay exactly from the journal prefix and span mid-stream epochs
/// (queries really overlapped ingest).
fn serve_smoke(stream: &VecStream, batch_ingest_wall_ms: f64) -> (ServeSmokeRecord, bool) {
    const WRITERS: usize = 2;
    const READERS: usize = 2;
    const INGEST_GATE: f64 = 0.8;
    let ks = [1usize, 4, 16, 64];
    let updates: Vec<SignedEdge> = stream
        .edges()
        .iter()
        .copied()
        .map(SignedEdge::insert)
        .collect();
    let total = updates.len() as u64;
    let publish_every = (total / 6).max(1);
    let base_cfg = ServeConfig::bank(guess_ladder(stream.num_sets()), BANK_SEED)
        .with_publish_every(publish_every)
        .with_queue_batches(16);
    let batches: Vec<Vec<SignedEdge>> = updates.chunks(BANK_BATCH).map(<[_]>::to_vec).collect();
    // Each writer's share, cloned outside the timed region — the
    // benched cost is the engine's queue + apply + publish, not the
    // harness's buffer duplication.
    let writer_shares = || -> Vec<Vec<Vec<SignedEdge>>> {
        (0..WRITERS)
            .map(|w| batches.iter().skip(w).step_by(WRITERS).cloned().collect())
            .collect()
    };

    // --- Gated run: ingest only (no journal, no queries). Timed by
    // hand rather than through `best_of` so share cloning, engine
    // startup, and the drain stay outside the submit→flush window the
    // gate is about. ---
    let ingest_cfg = base_cfg.clone();
    let mut ingest_only_ms = f64::INFINITY;
    for _ in 0..REPS {
        let shares = writer_shares();
        let engine = ServeEngine::start(ingest_cfg.clone());
        let t = Instant::now();
        std::thread::scope(|scope| {
            for share in shares {
                let engine = &engine;
                scope.spawn(move || {
                    for b in share {
                        engine.submit(b).expect("engine accepts the batch");
                    }
                });
            }
        });
        engine.flush().expect("flush after writers");
        ingest_only_ms = ingest_only_ms.min(t.elapsed().as_secs_f64() * 1e3);
        engine.finish();
    }

    // --- Consistency run: mixed load, journal on. ---
    let mixed_cfg = base_cfg.with_journal(true);
    let engine = ServeEngine::start(mixed_cfg.clone());
    let done = AtomicBool::new(false);
    let t = Instant::now();
    let (mixed_ms, answers) = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for r in 0..READERS {
            let mut handle = engine.query_handle();
            let done = &done;
            readers.push(scope.spawn(move || {
                let mut answers: Vec<(usize, QueryAnswer)> = Vec::new();
                let mut turn = r;
                while !done.load(Ordering::Relaxed) && answers.len() < 2_000 {
                    let k = ks[turn % ks.len()];
                    answers.push((k, handle.query(k)));
                    turn += 1;
                    // Keep the query side from saturating cores the
                    // ingest thread needs; staleness stays bounded.
                    std::thread::sleep(Duration::from_micros(500));
                }
                answers
            }));
        }
        let mut writers = Vec::new();
        for share in writer_shares() {
            let engine = &engine;
            writers.push(scope.spawn(move || {
                for b in share {
                    engine.submit(b).expect("engine accepts the batch");
                }
            }));
        }
        for h in writers {
            h.join().expect("writer thread");
        }
        engine.flush().expect("flush after writers");
        let mixed_ms = t.elapsed().as_secs_f64() * 1e3;
        done.store(true, Ordering::Relaxed);
        let mut answers = Vec::new();
        for h in readers {
            answers.extend(h.join().expect("reader thread"));
        }
        (mixed_ms, answers)
    });
    let fin = engine.finish();

    let distinct: std::collections::HashSet<u64> = answers.iter().map(|(_, a)| a.epoch).collect();
    let mid_stream = answers
        .iter()
        .filter(|(_, a)| a.updates_applied > 0 && a.updates_applied < total)
        .map(|(_, a)| a.epoch)
        .collect::<std::collections::HashSet<u64>>();
    let answers_consistent = serve_answers_consistent(&mixed_cfg, &answers, &fin);
    let ingest_ratio = batch_ingest_wall_ms / ingest_only_ms.max(1e-9);
    let record = ServeSmokeRecord {
        bench: "BENCH_7",
        workload: "planted_k_cover(n=200, m=100_000, k=6, set_size=4_000, seed=6), 8-guess bank",
        updates: updates.len(),
        guesses: guess_ladder(stream.num_sets()).len(),
        writers: WRITERS,
        readers: READERS,
        publish_every,
        batch_ingest_wall_ms,
        ingest_only_wall_ms: ingest_only_ms,
        ingest_ratio,
        ingest_only_updates_per_sec: total as f64 / (ingest_only_ms / 1e3).max(1e-9),
        mixed_ingest_wall_ms: mixed_ms,
        epochs_published: fin.stats.epochs_published,
        queries_served: fin.stats.queries_served,
        answers_recorded: answers.len(),
        distinct_answer_epochs: distinct.len(),
        mid_stream_answer_epochs: mid_stream.len(),
        words_shipped: fin.stats.report.total_words(),
        answers_consistent,
        ingest_gate: INGEST_GATE,
    };
    let ok = answers_consistent
        && ingest_ratio >= INGEST_GATE
        && distinct.len() >= 2
        && !mid_stream.is_empty();
    (record, ok)
}

#[derive(Serialize)]
struct PipelineSmokeRecord {
    bench: &'static str,
    workload: &'static str,
    stream_edges: usize,
    guesses: usize,
    batch: usize,
    /// Batch-vectorized flat bank: chunked shared hashing, bank-wide
    /// bound pre-filter, unrolled mixer + probe-window prefetch, fused
    /// descriptor appends (the engine BENCH_4 now measures).
    vectorized_bank: IngestRecord,
    /// The frozen pre-PR engine: per-edge shared-hash dispatch into the
    /// unfused scalar probe sequence (`consume_scalar`) — no batching,
    /// no pre-filter. This is the BENCH_4 flat baseline as the seed
    /// shipped it, and the denominator of the gated speedup.
    scalar_bank: IngestRecord,
    /// Informational twin: the batched structure with only the scalar
    /// hash/probe loops swapped back in (`consume_batched_scalar`) —
    /// isolates the unroll/prefetch effect from the batching effect.
    batched_scalar_bank: IngestRecord,
    /// `scalar (per-edge) / vectorized (batched)` — the ≥1.3× gated
    /// number: full batched-vectorized pipeline over the frozen
    /// per-edge engine.
    ingest_speedup: f64,
    /// Retained content, counters, and acceptance bound identical
    /// between the vectorized and scalar ingest paths, every guess.
    ingest_contents_match: bool,
    /// Pipelined runner (bounded channels, partition overlaps build).
    pipelined_wall_ms: f64,
    /// Retained two-barrier runner (partition fully, then build).
    two_barrier_wall_ms: f64,
    /// Pipelined == two-barrier == serial simulation families.
    pipelined_families_match: bool,
    /// Sequential per-guess `instance()` + lazy-greedy loop (the
    /// pre-zero-rebuild solve baseline, one guess after another).
    sequential_solve_wall_ms: f64,
    /// Parallel multi-guess solve: one `csr_view` + bucket greedy per
    /// guess on scoped worker threads.
    parallel_solve_wall_ms: f64,
    /// `sequential / parallel` — the ≥1.5× gated number.
    solve_speedup: f64,
    /// Parallel-guess full traces == per-guess sequential loop (both
    /// the serial zero-rebuild twin and the lazy reference).
    solve_traces_match: bool,
}

/// The pipelined/vectorized smoke case (→ `BENCH_8.json`): the same
/// planted stream and [`guess_ladder`] bank, pushed through (a) the
/// vectorized vs scalar flat ingest paths, (b) the pipelined vs
/// two-barrier parallel runners, and (c) the parallel vs sequential
/// multi-guess solve. Returns the record and whether every gate holds.
fn pipeline_smoke(
    stream: &VecStream,
    bank: &SketchBank,
    serial_family: &[SetId],
) -> (PipelineSmokeRecord, bool) {
    let guesses = guess_ladder(stream.num_sets());
    let edges = stream.len_hint().expect("materialized stream");

    // (a) Batched-vectorized ingest vs the frozen per-edge scalar
    // engine, identical ladder and seed. The batched-scalar hybrid is
    // timed too (informational) so the record separates "batching +
    // pre-filter" from "unroll + prefetch + fused appends". The ratio
    // is gated, so both gated sides get extra repetitions to keep the
    // best-of estimate stable on noisy single-core runners.
    const INGEST_REPS: usize = 5;
    let (vec_bank, vec_ms) = best_of(INGEST_REPS, || {
        let mut b = SketchBank::new(guesses.iter().copied(), BANK_SEED);
        b.consume_batched(stream, BANK_BATCH);
        b
    });
    let (scal_bank, scal_ms) = best_of(INGEST_REPS, || {
        let mut b = SketchBank::new(guesses.iter().copied(), BANK_SEED);
        b.consume_scalar(stream);
        b
    });
    let (batched_scal_bank, batched_scal_ms) = best_of(REPS, || {
        let mut b = SketchBank::new(guesses.iter().copied(), BANK_SEED);
        b.consume_batched_scalar(stream, BANK_BATCH);
        b
    });
    let ingest_contents_match = vec_bank
        .sketches()
        .iter()
        .zip(scal_bank.sketches())
        .zip(batched_scal_bank.sketches())
        .all(|((a, b), c)| {
            a.acceptance_bound() == b.acceptance_bound()
                && a.counters() == b.counters()
                && a.canonical_content() == b.canonical_content()
                && a.acceptance_bound() == c.acceptance_bound()
                && a.counters() == c.counters()
                && a.canonical_content() == c.canonical_content()
        });
    let ingest_speedup = scal_ms / vec_ms.max(1e-9);

    // (b) Pipelined vs two-barrier runner on the distributed config.
    let cfg = DistConfig::new(MACHINES, 6, 0.3, 21).with_sizing(SketchSizing::Budget(6_000));
    let pipe_runner = ParallelRunner::new(cfg, THREADS).with_ingest_mode(IngestMode::Pipelined);
    let barrier_runner = ParallelRunner::new(cfg, THREADS).with_ingest_mode(IngestMode::TwoBarrier);
    let (pipe, pipe_ms) = best_of(REPS, || pipe_runner.run(stream));
    let (barrier, barrier_ms) = best_of(REPS, || barrier_runner.run(stream));
    let pipelined_families_match =
        pipe.family == barrier.family && pipe.family.as_slice() == serial_family;

    // (c) Parallel multi-guess solve vs the sequential per-guess loop.
    // Both sides finish in ~1 ms, so timer jitter dominates at the
    // default rep count; take the best of more repetitions (still
    // well under 20 ms total) to keep the gated ratio stable.
    const SOLVE_REPS: usize = 9;
    let sketches = bank.sketches();
    let (lazy_traces, seq_ms) = best_of(SOLVE_REPS, || {
        sketches
            .iter()
            .map(|s| lazy_greedy_k_cover(&s.instance(), s.params().k))
            .collect::<Vec<_>>()
    });
    let (par_solves, par_solve_ms) = best_of(SOLVE_REPS, || solve_guesses_parallel(sketches));
    let serial_solves = solve_guesses_serial(sketches);
    let solve_traces_match = par_solves.len() == sketches.len()
        && par_solves
            .iter()
            .zip(&serial_solves)
            .all(|(p, s)| p.trace.steps == s.trace.steps)
        && par_solves
            .iter()
            .zip(&lazy_traces)
            .all(|(p, l)| p.trace.steps == l.steps);
    let solve_speedup = seq_ms / par_solve_ms.max(1e-9);

    let eps = |ms: f64| edges as f64 / (ms / 1e3).max(1e-9);
    let ok = ingest_contents_match
        && ingest_speedup >= 1.3
        && pipelined_families_match
        && solve_traces_match
        && solve_speedup >= 1.5;
    let record = PipelineSmokeRecord {
        bench: "BENCH_8",
        workload: "planted_k_cover(n=200, m=100_000, k=6, set_size=4_000, seed=6), 8-guess bank",
        stream_edges: edges,
        guesses: guesses.len(),
        batch: BANK_BATCH,
        vectorized_bank: IngestRecord {
            wall_ms: vec_ms,
            edges_per_sec: eps(vec_ms),
        },
        scalar_bank: IngestRecord {
            wall_ms: scal_ms,
            edges_per_sec: eps(scal_ms),
        },
        batched_scalar_bank: IngestRecord {
            wall_ms: batched_scal_ms,
            edges_per_sec: eps(batched_scal_ms),
        },
        ingest_speedup,
        ingest_contents_match,
        pipelined_wall_ms: pipe_ms,
        two_barrier_wall_ms: barrier_ms,
        pipelined_families_match,
        sequential_solve_wall_ms: seq_ms,
        parallel_solve_wall_ms: par_solve_ms,
        solve_speedup,
        solve_traces_match,
    };
    (record, ok)
}

/// One multiprocess run of the fault smoke case (fault-free or
/// faulted): the wall clock plus every recovery counter the runner
/// keeps, so the record shows *how* the faulted run survived.
#[derive(Serialize)]
struct FaultCaseRecord {
    wall_ms: f64,
    workers_spawned: usize,
    workers_lost: usize,
    shards_resharded: usize,
    shards_built_inline: usize,
    deadline_reaps: usize,
    retries: usize,
    proto_faults: usize,
    family: Vec<u32>,
}

#[derive(Serialize)]
struct FaultSmokeRecord {
    bench: &'static str,
    workload: &'static str,
    /// The injected schedule, in the CLI's `SEED:SPEC` spelling.
    fault_plan: String,
    /// Per-shard deadline of the faulted run, derived from the
    /// fault-free wall clock so the gate scales with the machine.
    job_timeout_ms: u64,
    fault_free: FaultCaseRecord,
    faulted: FaultCaseRecord,
    /// `faulted / fault_free` wall clocks — the ≤2× gated number.
    overhead_ratio: f64,
    overhead_gate: f64,
    /// Faulted == fault-free == serial-simulation families.
    families_match: bool,
}

/// The fault-recovery smoke case (→ `BENCH_9.json`): the same planted
/// stream through the multiprocess executor twice — once fault-free,
/// once under an injected crash *and* an injected infinite hang — and
/// gates that the faulted run lands on the bit-identical family within
/// 2× the fault-free wall clock. The merge-composability of the `H≤n`
/// sketch is what makes the requeue-and-rebuild recovery sound (any
/// shard rebuilds bit-identically), so this is the robustness analogue
/// of the BENCH_6 determinism gate.
fn fault_smoke(
    stream: &VecStream,
    cfg: DistConfig,
    serial_family: &[SetId],
) -> (FaultSmokeRecord, bool) {
    let command = WorkerCommand::current_exe(vec!["__worker".to_string()])
        .expect("bench binary can locate itself");

    let (free, free_ms) = best_of(REPS, || {
        ProcessRunner::new(cfg, command.clone(), THREADS)
            .run(stream)
            .expect("fault-free multiprocess run")
    });

    // The hang can only be recovered by the deadline reaper, so the
    // faulted run's overhead is dominated by the timeout: half the
    // fault-free wall keeps the 2x gate honest while staying far above
    // one shard's build time (clamped so tiny/huge machines behave).
    let job_timeout_ms = ((free_ms * 0.5) as u64).clamp(100, 2_000);
    let plan = FaultPlan::new(9)
        .with_fault(0, Fault::Crash)
        .with_fault(1, Fault::Hang);
    let (faulted, faulted_ms) = best_of(REPS, || {
        ProcessRunner::new(cfg, command.clone(), THREADS)
            .with_fault_plan(plan.clone())
            .with_job_timeout(Duration::from_millis(job_timeout_ms))
            .run(stream)
            .expect("faulted multiprocess run")
    });

    let case = |res: &coverage_dist::ProcessResult, wall_ms: f64| FaultCaseRecord {
        wall_ms,
        workers_spawned: res.workers_spawned,
        workers_lost: res.workers_lost,
        shards_resharded: res.shards_resharded,
        shards_built_inline: res.shards_built_inline,
        deadline_reaps: res.deadline_reaps,
        retries: res.retries,
        proto_faults: res.proto_faults,
        family: res.family.iter().map(|s| s.0).collect(),
    };
    let families_match = free.family == serial_family && faulted.family == serial_family;
    let overhead_ratio = faulted_ms / free_ms.max(1e-9);
    let recovery_exercised = faulted.workers_lost >= 2 && faulted.deadline_reaps >= 1;
    let ok = families_match && recovery_exercised && overhead_ratio <= 2.0;
    let record = FaultSmokeRecord {
        bench: "BENCH_9",
        workload: "planted_k_cover(n=200, m=100_000, k=6, set_size=4_000, seed=6)",
        fault_plan: plan.to_string(),
        job_timeout_ms,
        fault_free: case(&free, free_ms),
        faulted: case(&faulted, faulted_ms),
        overhead_ratio,
        overhead_gate: 2.0,
        families_match,
    };
    (record, ok)
}

#[derive(Serialize)]
struct SocketCaseRecord {
    wall_ms: f64,
    workers_joined: usize,
    late_joiners: usize,
    workers_lost: usize,
    suspect_transitions: usize,
    suspect_recoveries: usize,
    shards_requeued: usize,
    chunks_streamed: usize,
    overlap_shards: usize,
    heartbeat_probes: u64,
    heartbeat_mean_rtt_us: u64,
    wire_bytes: u64,
    family: Vec<u32>,
}

#[derive(Serialize)]
struct SocketSmokeRecord {
    bench: &'static str,
    workload: &'static str,
    /// The injected network schedule, in the CLI's `SEED:SPEC` spelling.
    fault_plan: String,
    /// The pipe executor on the same worker count — the baseline the
    /// socket overhead is gated against.
    pipes_wall_ms: f64,
    socket: SocketCaseRecord,
    socket_faulted: SocketCaseRecord,
    /// `socket / pipes` fault-free wall clocks — the ≤1.5× gated number.
    overhead_ratio: f64,
    overhead_gate: f64,
    /// ≥1 shard acked an early chunk before its last chunk was sent, so
    /// ingest demonstrably overlapped transfer.
    overlap_observed: bool,
    /// Socket (fault-free and faulted) == pipes == serial families.
    families_match: bool,
}

/// The socket-transport smoke case (→ `BENCH_10.json`): the same
/// planted stream through the loopback TCP executor — once fault-free
/// against the pipe executor's wall clock (≤1.5× gate), once under a
/// severed connection and a 500ms stall — gating that chunked shard
/// streaming overlaps ingest with transfer and that every run lands on
/// the bit-identical family. The network analogue of BENCH_9.
fn socket_smoke(
    stream: &VecStream,
    cfg: DistConfig,
    serial_family: &[SetId],
) -> (SocketSmokeRecord, bool) {
    let command = WorkerCommand::current_exe(vec!["__worker".to_string()])
        .expect("bench binary can locate itself");

    let (pipes, pipes_ms) = best_of(REPS, || {
        ProcessRunner::new(cfg, command.clone(), THREADS)
            .run(stream)
            .expect("pipe baseline run")
    });
    let (sock, sock_ms) = best_of(REPS, || {
        SocketRunner::new(cfg, command.clone(), THREADS)
            .run(stream)
            .expect("fault-free socket run")
    });

    // Sever shard 0's stream after its first chunk and stall shard 1's
    // for 500ms without closing (long enough to trip the default 400ms
    // suspect threshold, short of the 3s dead one). Timed once: the
    // stall is a constant injected cost, not executor overhead.
    let plan = FaultPlan::new(10)
        .with_fault(0, Fault::DropConn)
        .with_fault(1, Fault::Stall(500));
    let (faulted, faulted_ms) = best_of(1, || {
        SocketRunner::new(cfg, command.clone(), THREADS)
            .with_fault_plan(plan.clone())
            .run(stream)
            .expect("faulted socket run")
    });

    let case = |res: &coverage_dist::SocketResult, wall_ms: f64| SocketCaseRecord {
        wall_ms,
        workers_joined: res.stats.workers_joined,
        late_joiners: res.stats.late_joiners,
        workers_lost: res.stats.workers_lost,
        suspect_transitions: res.stats.suspect_transitions,
        suspect_recoveries: res.stats.suspect_recoveries,
        shards_requeued: res.stats.shards_requeued,
        chunks_streamed: res.stats.chunks_streamed,
        overlap_shards: res.stats.overlap_shards,
        heartbeat_probes: res.stats.heartbeat.probes,
        heartbeat_mean_rtt_us: res.stats.heartbeat.mean_ns() / 1_000,
        wire_bytes: res.stats.wire_bytes,
        family: res.family.iter().map(|s| s.0).collect(),
    };
    let families_match = pipes.family == serial_family
        && sock.family == serial_family
        && faulted.family == serial_family;
    let overhead_ratio = sock_ms / pipes_ms.max(1e-9);
    let overlap_observed = sock.stats.overlap_shards >= 1;
    let recovery_exercised = faulted.stats.workers_lost >= 1 && faulted.stats.shards_requeued >= 1;
    let ok = families_match && overlap_observed && recovery_exercised && overhead_ratio <= 1.5;
    let record = SocketSmokeRecord {
        bench: "BENCH_10",
        workload: "planted_k_cover(n=200, m=100_000, k=6, set_size=4_000, seed=6)",
        fault_plan: plan.to_string(),
        pipes_wall_ms: pipes_ms,
        socket: case(&sock, sock_ms),
        socket_faulted: case(&faulted, faulted_ms),
        overhead_ratio,
        overhead_gate: 1.5,
        overlap_observed,
        families_match,
    };
    (record, ok)
}

fn main() {
    // Hidden worker mode: `bench_smoke __worker` serves framed sketch
    // jobs on stdin/stdout — how BENCH_6 gets real subprocess workers
    // without depending on another binary's build artifact. With
    // `--connect HOST:PORT` (how the BENCH_10 socket coordinator spawns
    // its loopback workers) the same loop runs over a TCP stream.
    if std::env::args().nth(1).as_deref() == Some("__worker") {
        if std::env::args().nth(2).as_deref() == Some("--connect") {
            let addr = std::env::args().nth(3).unwrap_or_else(|| {
                eprintln!("__worker --connect requires HOST:PORT");
                exit(2);
            });
            exit(coverage_dist::worker::run_connect(&addr));
        }
        exit(coverage_dist::worker::run_stdio());
    }
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_2.json".to_string());
    let dyn_out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_3.json".to_string());
    let ingest_out_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_4.json".to_string());
    let solve_out_path = std::env::args()
        .nth(4)
        .unwrap_or_else(|| "BENCH_5.json".to_string());
    let wire_out_path = std::env::args()
        .nth(5)
        .unwrap_or_else(|| "BENCH_6.json".to_string());
    let serve_out_path = std::env::args()
        .nth(6)
        .unwrap_or_else(|| "BENCH_7.json".to_string());
    let pipeline_out_path = std::env::args()
        .nth(7)
        .unwrap_or_else(|| "BENCH_8.json".to_string());
    let fault_out_path = std::env::args()
        .nth(8)
        .unwrap_or_else(|| "BENCH_9.json".to_string());
    let socket_out_path = std::env::args()
        .nth(9)
        .unwrap_or_else(|| "BENCH_10.json".to_string());

    // Fixed smoke workload: planted 6-cover, n=200 sets, 100k elements,
    // ~860k edges against a 6k-edge sketch budget. Deliberately
    // stream-heavy: the cost under test is the per-machine re-filtering
    // the sequential simulation pays (O(machines·|E|)) and the parallel
    // runner's single partition pass removes.
    let planted = planted_k_cover(200, 100_000, 6, 4_000, 6);
    let mut stream = VecStream::from_instance(&planted.instance);
    ArrivalOrder::Random(8).apply(stream.edges_mut());
    let cfg = DistConfig::new(MACHINES, 6, 0.3, 21).with_sizing(SketchSizing::Budget(6_000));

    let (seq, seq_ms) = best_of(REPS, || distributed_k_cover_serial(&stream, &cfg));
    let runner = ParallelRunner::new(cfg, THREADS);
    let (par, par_ms) = best_of(REPS, || runner.run(&stream));

    let peak = |reports: &[coverage_stream::SpaceReport]| {
        (
            reports.iter().map(|r| r.peak_edges).max().unwrap_or(0),
            reports.iter().map(|r| r.peak_aux_words).max().unwrap_or(0),
        )
    };
    let (seq_peak_edges, seq_peak_aux) = peak(&seq.per_machine);
    let (par_peak_edges, par_peak_aux) = peak(&par.per_machine);
    let families_match = seq.family == par.family;
    let speedup = seq_ms / par_ms.max(1e-9);

    let record = SmokeRecord {
        bench: "BENCH_2",
        workload: "planted_k_cover(n=200, m=100_000, k=6, set_size=4_000, seed=6)",
        stream_edges: planted.instance.num_edges(),
        machines: MACHINES,
        threads: THREADS,
        sequential: RunnerRecord {
            wall_ms: seq_ms,
            peak_machine_edges: seq_peak_edges,
            peak_machine_aux_words: seq_peak_aux,
            merged_edges: seq.merged_edges,
            family: seq.family.iter().map(|s| s.0).collect(),
        },
        parallel: RunnerRecord {
            wall_ms: par_ms,
            peak_machine_edges: par_peak_edges,
            peak_machine_aux_words: par_peak_aux,
            merged_edges: par.merged_edges,
            family: par.family.iter().map(|s| s.0).collect(),
        },
        parallel_partition_ms: par.partition_ns as f64 / 1e6,
        parallel_map_ms: par.map_ns as f64 / 1e6,
        speedup,
        families_match,
    };
    let json = serde_json::to_string_pretty(&record).expect("render json");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_smoke: cannot write {out_path}: {e}");
        exit(1);
    }
    println!("{json}");
    println!(
        "\nbench_smoke: sequential {seq_ms:.1} ms, parallel {par_ms:.1} ms \
         ({THREADS} threads, {MACHINES} machines) → speedup {speedup:.2}x"
    );

    // --- Dynamic (insert/delete) smoke case → BENCH_3.json. ---
    let (dyn_record, dyn_ok) = dynamic_smoke(&planted.instance);
    let dyn_json = serde_json::to_string_pretty(&dyn_record).expect("render json");
    if let Err(e) = std::fs::write(&dyn_out_path, &dyn_json) {
        eprintln!("bench_smoke: cannot write {dyn_out_path}: {e}");
        exit(1);
    }
    println!("{dyn_json}");
    println!(
        "\nbench_smoke: dynamic serial {:.1} ms, dynamic parallel {:.1} ms, \
         insertion-only-on-survivors {:.1} ms; accuracy {:.4} (bound {:.4})",
        dyn_record.dynamic_serial_wall_ms,
        dyn_record.dynamic_parallel_wall_ms,
        dyn_record.insertion_only_wall_ms,
        dyn_record.accuracy_ratio,
        dyn_record.accuracy_bound,
    );

    // --- Flat ingestion-engine smoke case → BENCH_4.json. ---
    let (ingest_record, ingest_ok, bank) = ingest_smoke(&stream);
    let ingest_json = serde_json::to_string_pretty(&ingest_record).expect("render json");
    if let Err(e) = std::fs::write(&ingest_out_path, &ingest_json) {
        eprintln!("bench_smoke: cannot write {ingest_out_path}: {e}");
        exit(1);
    }
    println!("{ingest_json}");
    println!(
        "\nbench_smoke: bank ingest flat {:.1} ms vs reference {:.1} ms → {:.2}x \
         ({:.1}M edges/s flat); single sketch {:.2}x",
        ingest_record.flat_bank.wall_ms,
        ingest_record.reference_bank.wall_ms,
        ingest_record.bank_speedup,
        ingest_record.flat_bank.edges_per_sec / 1e6,
        ingest_record.single_speedup,
    );

    // --- Zero-rebuild solve-path smoke case → BENCH_5.json. ---
    let (solve_record, solve_ok) = solve_smoke(&bank);
    let solve_json = serde_json::to_string_pretty(&solve_record).expect("render json");
    if let Err(e) = std::fs::write(&solve_out_path, &solve_json) {
        eprintln!("bench_smoke: cannot write {solve_out_path}: {e}");
        exit(1);
    }
    println!("{solve_json}");
    println!(
        "\nbench_smoke: solve-on-sketch rebuild+lazy {:.1} ms vs csr_view+bucket {:.1} ms \
         → {:.2}x (export alone: {:.1} ms vs {:.1} ms)",
        solve_record.rebuild_lazy.wall_ms,
        solve_record.csr_bucket.wall_ms,
        solve_record.speedup,
        solve_record.rebuild_lazy.export_only_wall_ms,
        solve_record.csr_bucket.export_only_wall_ms,
    );

    // --- Wire format + multiprocess smoke case → BENCH_6.json. ---
    let (wire_record, wire_ok) = wire_smoke(
        &bank,
        &stream,
        &planted.instance,
        cfg,
        &seq.family,
        &par.family,
    );
    let wire_json = serde_json::to_string_pretty(&wire_record).expect("render json");
    if let Err(e) = std::fs::write(&wire_out_path, &wire_json) {
        eprintln!("bench_smoke: cannot write {wire_out_path}: {e}");
        exit(1);
    }
    println!("{wire_json}");
    println!(
        "\nbench_smoke: wire codec on the bank snapshots — binary {:.1} KiB vs json \
         {:.1} KiB ({:.1}x smaller), round trip {:.2} ms vs {:.2} ms ({:.1}x faster); \
         multiprocess map {:.1} ms ({} workers), after kills: {} lost, {} resharded",
        wire_record.threshold_wire.binary_bytes as f64 / 1024.0,
        wire_record.threshold_wire.json_bytes as f64 / 1024.0,
        wire_record.threshold_wire.size_ratio,
        wire_record.threshold_wire.binary_roundtrip_ms,
        wire_record.threshold_wire.json_roundtrip_ms,
        wire_record.threshold_wire.speed_ratio,
        wire_record.multiprocess.wall_ms,
        wire_record.multiprocess.workers_spawned,
        wire_record.multiprocess_killed.workers_lost,
        wire_record.multiprocess_killed.shards_resharded,
    );

    // --- Serving mixed-load smoke case → BENCH_7.json. ---
    let (serve_record, serve_ok) = serve_smoke(&stream, ingest_record.flat_bank.wall_ms);
    let serve_json = serde_json::to_string_pretty(&serve_record).expect("render json");
    if let Err(e) = std::fs::write(&serve_out_path, &serve_json) {
        eprintln!("bench_smoke: cannot write {serve_out_path}: {e}");
        exit(1);
    }
    println!("{serve_json}");
    println!(
        "\nbench_smoke: serve ingest-only {:.1} ms vs batch build {:.1} ms → {:.2}x \
         retained ({:.1}M updates/s); mixed load {:.1} ms, {} epochs published, \
         {} answers over {} epochs ({} mid-stream), consistent: {}",
        serve_record.ingest_only_wall_ms,
        serve_record.batch_ingest_wall_ms,
        serve_record.ingest_ratio,
        serve_record.ingest_only_updates_per_sec / 1e6,
        serve_record.mixed_ingest_wall_ms,
        serve_record.epochs_published,
        serve_record.answers_recorded,
        serve_record.distinct_answer_epochs,
        serve_record.mid_stream_answer_epochs,
        serve_record.answers_consistent,
    );

    // --- Vectorized/pipelined hot-path smoke case → BENCH_8.json. ---
    let (pipeline_record, pipeline_ok) = pipeline_smoke(&stream, &bank, &seq.family);
    let pipeline_json = serde_json::to_string_pretty(&pipeline_record).expect("render json");
    if let Err(e) = std::fs::write(&pipeline_out_path, &pipeline_json) {
        eprintln!("bench_smoke: cannot write {pipeline_out_path}: {e}");
        exit(1);
    }
    println!("{pipeline_json}");
    println!(
        "\nbench_smoke: batched-vectorized bank ingest {:.1} ms vs per-edge scalar \
         {:.1} ms → {:.2}x (batched-scalar hybrid {:.1} ms; {:.1}M edges/s); \
         pipelined run {:.1} ms vs two-barrier {:.1} ms; \
         parallel multi-guess solve {:.1} ms vs sequential rebuild+lazy {:.1} ms → {:.2}x",
        pipeline_record.vectorized_bank.wall_ms,
        pipeline_record.scalar_bank.wall_ms,
        pipeline_record.ingest_speedup,
        pipeline_record.batched_scalar_bank.wall_ms,
        pipeline_record.vectorized_bank.edges_per_sec / 1e6,
        pipeline_record.pipelined_wall_ms,
        pipeline_record.two_barrier_wall_ms,
        pipeline_record.parallel_solve_wall_ms,
        pipeline_record.sequential_solve_wall_ms,
        pipeline_record.solve_speedup,
    );

    // --- Fault-recovery smoke case → BENCH_9.json. ---
    let (fault_record, fault_ok) = fault_smoke(&stream, cfg, &seq.family);
    let fault_json = serde_json::to_string_pretty(&fault_record).expect("render json");
    if let Err(e) = std::fs::write(&fault_out_path, &fault_json) {
        eprintln!("bench_smoke: cannot write {fault_out_path}: {e}");
        exit(1);
    }
    println!("{fault_json}");
    println!(
        "\nbench_smoke: fault-free multiprocess {:.1} ms; under crash+hang ({}, \
         timeout {} ms): {:.1} ms → {:.2}x overhead (gate {:.1}x), {} lost, \
         {} reaped, {} retried, families identical: {}",
        fault_record.fault_free.wall_ms,
        fault_record.fault_plan,
        fault_record.job_timeout_ms,
        fault_record.faulted.wall_ms,
        fault_record.overhead_ratio,
        fault_record.overhead_gate,
        fault_record.faulted.workers_lost,
        fault_record.faulted.deadline_reaps,
        fault_record.faulted.retries,
        fault_record.families_match,
    );

    // --- Socket-transport smoke case → BENCH_10.json. ---
    let (socket_record, socket_ok) = socket_smoke(&stream, cfg, &seq.family);
    let socket_json = serde_json::to_string_pretty(&socket_record).expect("render json");
    if let Err(e) = std::fs::write(&socket_out_path, &socket_json) {
        eprintln!("bench_smoke: cannot write {socket_out_path}: {e}");
        exit(1);
    }
    println!("{socket_json}");
    println!(
        "\nbench_smoke: socket loopback {:.1} ms vs pipes {:.1} ms → {:.2}x overhead \
         (gate {:.1}x), {} chunks streamed, {} shards overlapped ingest with transfer, \
         mean heartbeat rtt {} us; under {}: {} lost, {} requeued, {} suspect \
         transitions, families identical: {}",
        socket_record.socket.wall_ms,
        socket_record.pipes_wall_ms,
        socket_record.overhead_ratio,
        socket_record.overhead_gate,
        socket_record.socket.chunks_streamed,
        socket_record.socket.overlap_shards,
        socket_record.socket.heartbeat_mean_rtt_us,
        socket_record.fault_plan,
        socket_record.socket_faulted.workers_lost,
        socket_record.socket_faulted.shards_requeued,
        socket_record.socket_faulted.suspect_transitions,
        socket_record.families_match,
    );

    if !families_match {
        eprintln!(
            "bench_smoke: FAIL — parallel family {:?} diverged from sequential {:?}",
            par.family, seq.family
        );
        exit(1);
    }
    if speedup <= 1.0 {
        eprintln!(
            "bench_smoke: FAIL — parallel ({par_ms:.1} ms) did not beat the \
             sequential simulation ({seq_ms:.1} ms)"
        );
        exit(1);
    }
    if !dyn_record.families_match {
        eprintln!(
            "bench_smoke: FAIL — dynamic parallel family diverged from the serial \
             dynamic reference (linear-sketch determinism contract broken)"
        );
        exit(1);
    }
    if !dyn_ok {
        eprintln!(
            "bench_smoke: FAIL — dynamic cover ratio {:.4} fell below the paper \
             bound {:.4} vs the insertion-only run on the surviving edges",
            dyn_record.accuracy_ratio, dyn_record.accuracy_bound
        );
        exit(1);
    }
    if !ingest_record.contents_match {
        eprintln!(
            "bench_smoke: FAIL — flat ingestion engine's retained content diverged \
             from the map-backed reference bank (engine-equivalence contract broken)"
        );
        exit(1);
    }
    if !ingest_ok {
        eprintln!(
            "bench_smoke: FAIL — flat bank ingest speedup {:.2}x fell below the \
             1.5x gate vs the map-backed reference engine",
            ingest_record.bank_speedup
        );
        exit(1);
    }
    if !solve_record.families_match || !solve_record.traces_match {
        eprintln!(
            "bench_smoke: FAIL — csr_view + bucket greedy diverged from the \
             instance() + lazy reference on some guess (solve-path \
             engine-equivalence contract broken)"
        );
        exit(1);
    }
    if !solve_ok {
        eprintln!(
            "bench_smoke: FAIL — solve-on-sketch speedup {:.2}x fell below the \
             2x gate (csr_view + bucket greedy vs instance() + lazy greedy)",
            solve_record.speedup
        );
        exit(1);
    }
    if !wire_record.families_match {
        eprintln!(
            "bench_smoke: FAIL — multiprocess family {:?} (after kills: {:?}) diverged \
             from the sequential simulation (process determinism contract broken)",
            wire_record.multiprocess.family, wire_record.multiprocess_killed.family
        );
        exit(1);
    }
    if !wire_ok {
        eprintln!(
            "bench_smoke: FAIL — wire gates: size {:.2}x (gate {:.0}x), speed {:.2}x \
             (gate {:.0}x), roundtrips identical {}, kill-recovery lost {} / \
             resharded {} (need ≥2 each)",
            wire_record.threshold_wire.size_ratio,
            wire_record.size_gate,
            wire_record.threshold_wire.speed_ratio,
            wire_record.speed_gate,
            wire_record.threshold_wire.roundtrips_identical
                && wire_record.dynamic_wire.roundtrips_identical,
            wire_record.multiprocess_killed.workers_lost,
            wire_record.multiprocess_killed.shards_resharded,
        );
        exit(1);
    }
    if !serve_record.answers_consistent {
        eprintln!(
            "bench_smoke: FAIL — a concurrent query answer diverged from the \
             journal-prefix rebuild at its epoch (serving consistency contract broken)"
        );
        exit(1);
    }
    if !serve_ok {
        eprintln!(
            "bench_smoke: FAIL — serve gates: ingest retention {:.2}x (gate {:.1}x), \
             {} distinct answer epochs (need ≥2), {} mid-stream (need ≥1)",
            serve_record.ingest_ratio,
            serve_record.ingest_gate,
            serve_record.distinct_answer_epochs,
            serve_record.mid_stream_answer_epochs,
        );
        exit(1);
    }
    if !pipeline_record.ingest_contents_match
        || !pipeline_record.pipelined_families_match
        || !pipeline_record.solve_traces_match
    {
        eprintln!(
            "bench_smoke: FAIL — BENCH_8 equivalence: vectorized==scalar content {}, \
             pipelined==two-barrier==serial family {}, parallel-solve traces {} \
             (a determinism contract broke)",
            pipeline_record.ingest_contents_match,
            pipeline_record.pipelined_families_match,
            pipeline_record.solve_traces_match,
        );
        exit(1);
    }
    if !pipeline_ok {
        eprintln!(
            "bench_smoke: FAIL — BENCH_8 perf: batched-vectorized ingest {:.2}x \
             (gate 1.3x) vs the frozen per-edge scalar engine, parallel \
             multi-guess solve {:.2}x (gate 1.5x) vs the sequential \
             rebuild+lazy loop",
            pipeline_record.ingest_speedup, pipeline_record.solve_speedup,
        );
        exit(1);
    }
    if !fault_ok {
        eprintln!(
            "bench_smoke: FAIL — BENCH_9 fault recovery: families identical {}, \
             overhead {:.2}x (gate {:.1}x), workers lost {} (need ≥2), deadline \
             reaps {} (need ≥1) under the injected crash+hang schedule",
            fault_record.families_match,
            fault_record.overhead_ratio,
            fault_record.overhead_gate,
            fault_record.faulted.workers_lost,
            fault_record.faulted.deadline_reaps,
        );
        exit(1);
    }
    if !socket_ok {
        eprintln!(
            "bench_smoke: FAIL — BENCH_10 socket transport: families identical {}, \
             overhead {:.2}x (gate {:.1}x), overlap observed {}, faulted run lost {} \
             / requeued {} (need ≥1 each) under the injected drop+stall schedule",
            socket_record.families_match,
            socket_record.overhead_ratio,
            socket_record.overhead_gate,
            socket_record.overlap_observed,
            socket_record.socket_faulted.workers_lost,
            socket_record.socket_faulted.shards_requeued,
        );
        exit(1);
    }
    println!(
        "bench_smoke: OK — families identical, parallel faster, dynamic within the \
         approximation bound, flat ingest engine ≥1.5x over the reference, \
         zero-rebuild solve path ≥2x over instance()+lazy, binary wire ≥5x smaller \
         and ≥3x faster than json, multiprocess (incl. kill-recovery) bit-identical, \
         serving answers replay exactly at ≥0.8x batch ingest throughput, \
         batched-vectorized ingest ≥1.3x over the frozen per-edge scalar engine, \
         the parallel multi-guess solve ≥1.5x over the sequential rebuild \
         loop with all traces bit-identical, crash+hang recovery \
         bit-identical within the 2x overhead gate, and the socket transport \
         bit-identical under drop+stall within the 1.5x overhead gate with \
         chunked streaming overlapping ingest"
    );
}
