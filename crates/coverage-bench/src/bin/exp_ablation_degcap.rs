//! Thin wrapper: run experiment `ablation_degcap` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::ablation_degcap::run().emit();
}
