//! Thin wrapper: run experiment `table1` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::table1::run().emit();
}
