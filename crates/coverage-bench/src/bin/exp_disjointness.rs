//! Thin wrapper: run experiment `disjointness` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::disjointness::run().emit();
}
