//! Thin wrapper: run experiment `space_vs_m` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::space_vs_m::run().emit();
}
