//! Thin wrapper: run experiment `order_sensitivity` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::order_sensitivity::run().emit();
}
