//! Thin wrapper: run experiment `ablation_eviction` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::ablation_eviction::run().emit();
}
