//! Thin wrapper: run experiment `solver_transfer` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::solver_transfer::run().emit();
}
