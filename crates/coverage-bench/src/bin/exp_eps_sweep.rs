//! Thin wrapper: run experiment `eps_sweep` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::eps_sweep::run().emit();
}
