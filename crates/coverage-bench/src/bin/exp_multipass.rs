//! Thin wrapper: run experiment `multipass` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::multipass::run().emit();
}
