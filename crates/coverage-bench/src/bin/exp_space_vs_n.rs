//! Thin wrapper: run experiment `space_vs_n` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::space_vs_n::run().emit();
}
