//! Thin wrapper: run experiment `dynamic_streams` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::dynamic_streams::run().emit();
}
