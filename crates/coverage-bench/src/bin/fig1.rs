//! Thin wrapper: run experiment `fig1` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::fig1::run().emit();
}
