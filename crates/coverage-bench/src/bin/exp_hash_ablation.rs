//! Thin wrapper: run experiment `hash_ablation` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::hash_ablation::run().emit();
}
