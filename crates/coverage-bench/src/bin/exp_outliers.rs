//! Thin wrapper: run experiment `outliers` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::outliers::run().emit();
}
