//! Thin wrapper: run experiment `ablation_adaptive_p` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::ablation_adaptive_p::run().emit();
}
