//! Thin wrapper: run experiment `update_time` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::update_time::run().emit();
}
