//! Thin wrapper: run experiment `lemma_chain` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::lemma_chain::run().emit();
}
