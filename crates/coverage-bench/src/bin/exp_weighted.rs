//! Thin wrapper: run experiment `weighted` and emit its tables + JSON.
fn main() {
    coverage_bench::experiments::weighted::run().emit();
}
