//! Shared experiment plumbing: output capture, JSON persistence, and the
//! workload/algorithm shorthands every experiment reuses.

use std::io::Write;
use std::path::PathBuf;

use coverage_core::report::Table;
use serde::Serialize;

/// Collected output of one experiment: rendered tables plus a JSON value.
#[derive(Debug, Default)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. "E2").
    pub id: String,
    /// Rendered tables/notes in display order.
    pub sections: Vec<String>,
    /// Machine-readable record.
    pub json: serde_json::Value,
}

impl ExperimentOutput {
    /// Fresh output for experiment `id`.
    pub fn new(id: &str) -> Self {
        ExperimentOutput {
            id: id.to_string(),
            ..Default::default()
        }
    }

    /// Append a rendered table.
    pub fn table(&mut self, t: &Table) {
        self.sections.push(t.render());
    }

    /// Append a free-form note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.sections.push(s.into());
    }

    /// Attach the JSON record.
    pub fn set_json(&mut self, v: impl Serialize) {
        self.json = serde_json::to_value(v).expect("experiment records are serializable");
    }

    /// Render everything to one string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for sec in &self.sections {
            s.push_str(sec);
            if !sec.ends_with('\n') {
                s.push('\n');
            }
            s.push('\n');
        }
        s
    }

    /// Print to stdout and persist the JSON record under
    /// `target/experiments/<id>.json`.
    pub fn emit(&self) {
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(stdout, "{}", self.render());
        if let Some(dir) = experiments_dir() {
            let _ = std::fs::create_dir_all(&dir);
            let path = dir.join(format!("{}.json", self.id));
            if let Ok(s) = serde_json::to_string_pretty(&self.json) {
                let _ = std::fs::write(path, s);
            }
        }
    }
}

/// `target/experiments` relative to the workspace root (best effort).
fn experiments_dir() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return Some(dir.join("target").join("experiments"));
        }
        if !dir.pop() {
            return Some(PathBuf::from("target/experiments"));
        }
    }
}

/// Measured wall time of `f`, in nanoseconds per `per` items.
pub fn time_per<T>(per: u64, f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    let ns = start.elapsed().as_nanos() as f64 / per.max(1) as f64;
    (out, ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_renders_sections_in_order() {
        let mut o = ExperimentOutput::new("T0");
        o.note("first");
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        o.table(&t);
        let s = o.render();
        let f = s.find("first").unwrap();
        let x = s.find("== x ==").unwrap();
        assert!(f < x);
    }

    #[test]
    fn time_per_returns_value() {
        let (v, ns) = time_per(10, || 42);
        assert_eq!(v, 42);
        assert!(ns >= 0.0);
    }
}
