//! D2 — dynamic (insert/delete) streams vs the insertion-only pipeline:
//! accuracy on the surviving graph, wall clock, and the space premium
//! the dynamic sketch pays for deletion support, across the three
//! deletion patterns (churn, sliding window, adversarial).

use coverage_algs::{dynamic_k_cover, k_cover_streaming, DynamicKCoverConfig, KCoverConfig};
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_core::CoverageInstance;
use coverage_data::{
    adversarial_insert_delete, churn_workload, planted_k_cover, sliding_window_workload,
};
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecDynamicStream, VecStream};
use serde::Serialize;

use crate::harness::{time_per, ExperimentOutput};

#[derive(Serialize)]
struct Row {
    pattern: &'static str,
    updates: usize,
    deletes: usize,
    surviving_edges: usize,
    dyn_covered: usize,
    ins_covered: usize,
    ratio: f64,
    sample_level: usize,
    dyn_wall_ms: f64,
    ins_wall_ms: f64,
    dyn_space_words: u64,
    ins_space_words: u64,
}

fn run_pattern(
    pattern: &'static str,
    stream: &VecDynamicStream,
    surviving: &CoverageInstance,
    k: usize,
    budget: usize,
    seed: u64,
) -> Row {
    let eps = 0.3;
    let (dyn_res, dyn_ns) = time_per(1, || {
        dynamic_k_cover(
            stream,
            &DynamicKCoverConfig::new(k, eps, seed).with_sizing(SketchSizing::Budget(budget)),
        )
    });
    // Insertion-only reference: one pass over the surviving edges only —
    // the graph an oracle would hand a static algorithm after the fact.
    let mut surv_stream = VecStream::from_instance(surviving);
    ArrivalOrder::Random(seed ^ 0xD2).apply(surv_stream.edges_mut());
    let (ins_res, ins_ns) = time_per(1, || {
        k_cover_streaming(
            &surv_stream,
            &KCoverConfig::new(k, eps, seed).with_sizing(SketchSizing::Budget(budget)),
        )
    });
    let dyn_covered = surviving.coverage(&dyn_res.family);
    let ins_covered = surviving.coverage(&ins_res.family);
    Row {
        pattern,
        updates: stream.updates().len(),
        deletes: stream.num_deletes(),
        surviving_edges: surviving.num_edges(),
        dyn_covered,
        ins_covered,
        ratio: dyn_covered as f64 / ins_covered.max(1) as f64,
        sample_level: dyn_res.sample_level,
        dyn_wall_ms: dyn_ns / 1e6,
        ins_wall_ms: ins_ns / 1e6,
        dyn_space_words: dyn_res.space.total_words(),
        ins_space_words: ins_res.space.total_words(),
    }
}

/// Run experiment D2.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("D2");
    let (n, m, k, budget, seed) = (100usize, 20_000u64, 5usize, 6_000usize, 4u64);
    let planted = planted_k_cover(n, m, k, 300, seed);

    let churn = churn_workload(&planted.instance, 0.5, seed ^ 1);
    let window = sliding_window_workload(&planted.instance, 6, 2, seed ^ 2);
    let adversarial = adversarial_insert_delete(n, m, k, 300, seed ^ 3);

    let rows = vec![
        run_pattern(
            "churn(0.5)",
            &churn.stream,
            &churn.surviving,
            k,
            budget,
            seed,
        ),
        run_pattern(
            "window(6,2)",
            &window.stream,
            &window.surviving,
            k,
            budget,
            seed,
        ),
        run_pattern(
            "adversarial",
            &adversarial.stream,
            &adversarial.planted.instance,
            k,
            budget,
            seed,
        ),
    ];

    let mut t = Table::new(
        format!("D2: dynamic vs insertion-only on the surviving graph (n={n}, m={m}, k={k}, budget={budget})"),
        &[
            "pattern",
            "updates",
            "deletes",
            "survivors",
            "dyn cover",
            "ins cover",
            "dyn/ins",
            "level",
            "dyn ms",
            "ins ms",
            "dyn words",
            "ins words",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.pattern.to_string(),
            fmt_count(r.updates as u64),
            fmt_count(r.deletes as u64),
            fmt_count(r.surviving_edges as u64),
            fmt_count(r.dyn_covered as u64),
            fmt_count(r.ins_covered as u64),
            fmt_f(r.ratio, 4),
            r.sample_level.to_string(),
            fmt_f(r.dyn_wall_ms, 1),
            fmt_f(r.ins_wall_ms, 1),
            fmt_count(r.dyn_space_words),
            fmt_count(r.ins_space_words),
        ]);
    }
    out.table(&t);
    out.note(
        "The dynamic sketch answers for the surviving graph — its cover\n\
         matches the insertion-only pipeline run on the survivors (dyn/ins ≈ 1)\n\
         even on the adversarial stream, whose prefix inflates every decoy to\n\
         golden-set size before retracting it. The price of deletion support\n\
         is visible in the two right columns: linear cells across log m\n\
         subsampling levels cost a log factor in space and a constant factor\n\
         in update time over the insertion-only threshold sketch.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn dynamic_matches_insertion_only_across_patterns() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        assert_eq!(rows.len(), 3);
        for r in rows {
            let ratio = r["ratio"].as_f64().unwrap();
            assert!(
                ratio >= 0.9,
                "pattern {}: dyn/ins ratio {ratio} too low",
                r["pattern"]
            );
            assert!(r["deletes"].as_u64().unwrap() > 0);
        }
    }
}
