//! A4 — hash-family ablation: SplitMix64 vs simple tabulation.
//!
//! The paper assumes an idealized fully-independent hash. Our default is
//! a SplitMix64 finalizer; tabulation hashing is the theoretically
//! grounded alternative (3-wise independent, Chernoff-style concentration
//! per Pătraşcu–Thorup). If the idealization mattered in practice the two
//! families would produce measurably different sketch behaviour; this
//! experiment shows they do not:
//!
//! 1. **Uniformity**: χ² bucket statistics and Kolmogorov–Smirnov
//!    distance of hashed element populations, against the 99.9% critical
//!    values.
//! 2. **Estimator quality**: worst inverse-probability coverage-estimate
//!    error across random families under each hash family (the Lemma 2.2
//!    statistic, which is all the sketch asks of its hash).

use coverage_core::report::{fmt_f, Table};
use coverage_core::SetId;
use coverage_data::uniform_instance;
use coverage_hash::{
    chi_square_critical, chi_square_uniform, ks_critical, ks_statistic_uniform, ElementHasher,
    SplitMix64, TabulationHash, UnitHash,
};
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    hash: String,
    chi2: f64,
    chi2_critical: f64,
    ks: f64,
    ks_critical: f64,
    worst_rel_est_err: f64,
    uniform_ok: bool,
}

/// Run experiment A4.
pub fn run() -> ExperimentOutput {
    run_sized(40, 8_000, 150, 4)
}

/// Run with explicit workload dimensions.
pub fn run_sized(n: usize, m: u64, deg: usize, trials: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("A4");
    let inst = uniform_instance(n, m, deg, 777);
    let k = 4usize;
    let p = 0.4f64;
    let buckets = 64usize;

    let eval = |name: &str, mk: &dyn Fn(u64) -> Box<dyn ElementHasher>| -> Row {
        // Uniformity over the instance's actual element ids.
        let h0 = mk(1);
        let mut counts = vec![0u64; buckets];
        let mut units: Vec<f64> = Vec::with_capacity(inst.num_elements());
        for id in inst.element_ids() {
            let hv = h0.hash64(id.0);
            counts[((hv as u128 * buckets as u128) >> 64) as usize] += 1;
            units.push(h0.hash_unit(id.0));
        }
        let chi2 = chi_square_uniform(&counts);
        let chi2_crit = chi_square_critical(buckets - 1);
        let ks = ks_statistic_uniform(&units);
        let ks_crit = ks_critical(units.len(), 0.001);

        // Estimator quality across seeds and random families.
        let mut rng = SplitMix64::new(99);
        let mut worst_rel = 0.0f64;
        for t in 0..trials {
            let h = mk(t * 7 + 3);
            let family: Vec<SetId> = (0..k)
                .map(|_| SetId(rng.next_below(n as u64) as u32))
                .collect();
            let truth = inst.coverage(&family) as f64;
            let threshold = (p * 2f64.powi(64)) as u64;
            // Count covered elements that survive subsampling. Walking
            // the covered mask's set bits skips empty words outright and
            // hashes only covered elements, instead of probing all `m`
            // bits one by one.
            let covered = inst.covered_bitset(&family);
            let ids = inst.element_ids();
            let kept = covered
                .iter()
                .filter(|&d| h.hash64(ids[d].0) <= threshold)
                .count();
            let est = kept as f64 / p;
            if truth > 0.0 {
                worst_rel = worst_rel.max((est - truth).abs() / truth);
            }
        }
        Row {
            hash: name.into(),
            chi2,
            chi2_critical: chi2_crit,
            ks,
            ks_critical: ks_crit,
            worst_rel_est_err: worst_rel,
            uniform_ok: chi2 < chi2_crit && ks < ks_crit,
        }
    };

    let rows = vec![
        eval("SplitMix64 (default)", &|s| Box::new(UnitHash::new(s))),
        eval("tabulation (3-wise)", &|s| Box::new(TabulationHash::new(s))),
    ];

    let mut t = Table::new(
        "Hash-family ablation: uniformity + Lemma 2.2 estimator error",
        &[
            "hash",
            "chi^2 (64 buckets)",
            "chi^2 crit",
            "KS",
            "KS crit",
            "worst rel. est. err",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.hash.clone(),
            fmt_f(r.chi2, 1),
            fmt_f(r.chi2_critical, 1),
            fmt_f(r.ks, 4),
            fmt_f(r.ks_critical, 4),
            fmt_f(r.worst_rel_est_err, 4),
        ]);
    }
    out.note(format!(
        "workload: uniform n={n}, m={m}, deg~{deg}; k={k}, p={p}, {trials} estimator trials"
    ));
    out.table(&t);
    out.note(
        "Reading: both families pass uniformity at the 99.9% level and give\n\
         estimator errors of the same magnitude — the paper's idealized-hash\n\
         assumption is harmless for this sketch in practice.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_hash_families_behave() {
        let out = super::run_sized(20, 2_000, 60, 2);
        let rows = out.json.as_array().expect("rows");
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert_eq!(r["uniform_ok"], true, "{}", r["hash"].as_str().unwrap());
            let err = r["worst_rel_est_err"].as_f64().unwrap();
            assert!(err < 0.5, "estimator error {err} too large");
        }
    }
}
