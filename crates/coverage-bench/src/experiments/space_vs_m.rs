//! E2 — the headline space claim: the sketch's footprint is independent
//! of `m`, while set-arrival baselines and store-all grow linearly.
//!
//! Fix `n` and sweep `m` over three orders of magnitude (input edges grow
//! proportionally); record each algorithm's peak words.

use coverage_algs::baselines::{saha_getoor_k_cover, store_all_k_cover};
use coverage_algs::{k_cover_streaming, KCoverConfig};
use coverage_core::report::{fmt_count, Table};
use coverage_data::uniform_instance;
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use coverage_core::plot::AsciiChart;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    m: u64,
    input_edges: usize,
    sketch_words: u64,
    saha_getoor_words: u64,
    store_all_words: u64,
}

/// Run experiment E2.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E2");
    let n = 300;
    let k = 8;
    let mut t = Table::new(
        "E2: peak space (words) vs m at fixed n=300 (input grows with m)",
        &["m", "input |E|", "H<=n sketch", "Saha-Getoor", "store-all"],
    );
    let mut rows = Vec::new();
    for m in [20_000u64, 100_000, 500_000, 1_000_000] {
        // Keep |E| comfortably above the sketch budget at every m so the
        // sketch is always saturated (a universe smaller than the budget
        // would under-fill it and make the "flat" column an artifact).
        let edges_per_set = (m / 100).max(120) as usize;
        let inst = uniform_instance(n, m, edges_per_set, m ^ 5);
        let mut edge_stream = VecStream::from_instance(&inst);
        ArrivalOrder::Random(1).apply(edge_stream.edges_mut());
        let mut set_stream = VecStream::from_instance(&inst);
        ArrivalOrder::SetGrouped(1).apply(set_stream.edges_mut());

        let ours = k_cover_streaming(
            &edge_stream,
            &KCoverConfig::new(k, 0.25, 2).with_sizing(SketchSizing::Budget(5_000)),
        );
        let sg = saha_getoor_k_cover(&set_stream, k);
        let all = store_all_k_cover(&edge_stream, k);

        t.row(vec![
            fmt_count(m),
            fmt_count(inst.num_edges() as u64),
            fmt_count(ours.space.total_words()),
            fmt_count(sg.space.total_words()),
            fmt_count(all.space.total_words()),
        ]);
        rows.push(Row {
            m,
            input_edges: inst.num_edges(),
            sketch_words: ours.space.total_words(),
            saha_getoor_words: sg.space.total_words(),
            store_all_words: all.space.total_words(),
        });
    }
    out.table(&t);
    let mut chart = AsciiChart::new(56, 12).log_x().log_y().labels(
        "m (log)",
        "peak words (log): s=sketch, a=store-all, g=Saha-Getoor",
    );
    chart.series(
        's',
        &rows
            .iter()
            .map(|r| (r.m as f64, r.sketch_words as f64))
            .collect::<Vec<_>>(),
    );
    chart.series(
        'a',
        &rows
            .iter()
            .map(|r| (r.m as f64, r.store_all_words as f64))
            .collect::<Vec<_>>(),
    );
    chart.series(
        'g',
        &rows
            .iter()
            .map(|r| (r.m as f64, r.saha_getoor_words as f64))
            .collect::<Vec<_>>(),
    );
    out.note(chart.render());
    out.note(
        "The sketch column is flat — Õ(n), independent of m — while both\n\
         baselines track the input size. This is the paper's core claim.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn sketch_flat_baselines_grow() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        let first = &rows[0];
        let second = &rows[1];
        let last = &rows[rows.len() - 1];
        let sk_growth = last["sketch_words"].as_u64().unwrap() as f64
            / first["sketch_words"].as_u64().unwrap() as f64;
        // Once capacity has saturated (from the second m on), the sketch
        // footprint must be essentially flat across a 10x sweep of m.
        let sk_tail_growth = last["sketch_words"].as_u64().unwrap() as f64
            / second["sketch_words"].as_u64().unwrap() as f64;
        let sg_growth = last["saha_getoor_words"].as_u64().unwrap() as f64
            / first["saha_getoor_words"].as_u64().unwrap() as f64;
        let all_growth = last["store_all_words"].as_u64().unwrap() as f64
            / first["store_all_words"].as_u64().unwrap() as f64;
        assert!(
            sk_tail_growth < 1.1,
            "saturated sketch grew {sk_tail_growth}x with m"
        );
        // The smallest m may catch the flat store's power-of-two table /
        // column capacities one doubling short of their saturated size
        // (space reports count *capacity*, so quantization shows); allow
        // that one warm-up step, nothing resembling growth in m.
        assert!(sk_growth < 1.5, "sketch grew {sk_growth}x with m");
        assert!(
            sg_growth > 20.0,
            "Saha-Getoor should grow with m: {sg_growth}x"
        );
        assert!(
            all_growth > 20.0,
            "store-all should grow with m: {all_growth}x"
        );
    }
}
