//! E1 — Theorem 3.1's approximation shape: k-cover quality vs the sketch
//! budget (equivalently, vs the effective ε of the practical sizing
//! `B = c·n·ln n/ε²`).
//!
//! We sweep the budget from *starved* (tens of edges — far below the
//! theorem's `Õ(n)` requirement, where the guarantee's premise fails and
//! quality genuinely collapses) to *saturated* (the sketch holds a large
//! sample and matches offline greedy). Alongside the ratio we report the
//! Lemma 2.2 estimator's relative error, whose `∝ ε` decay is the
//! cleanest fingerprint of the theory.

use coverage_algs::kcover::solve_on_sketch;
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::planted_k_cover;
use coverage_sketch::{SketchParams, ThresholdSketch};
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use coverage_core::plot::AsciiChart;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    budget: usize,
    effective_eps: f64,
    space_edges: u64,
    ratio: f64,
    bound: f64,
    holds: bool,
    estimate_rel_error: f64,
}

/// Run experiment E1.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E1");
    let n = 400;
    let k = 8;
    // Fat overlapping decoys (close to the golden block size) make the
    // selection genuinely hard, so quality actually varies with budget.
    let planted = planted_k_cover(n, 50_000, k, 5_000, 1);
    let inst = &planted.instance;
    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(3).apply(stream.edges_mut());

    // Practical sizing constant: B = c·n·ln n / ε²  ⇒  ε_eff = √(c·n·ln n / B).
    let c = 0.2;
    let eps_of_budget = |b: usize| (c * n as f64 * (n as f64).ln() / b as f64).sqrt().min(1.0);

    let mut t = Table::new(
        "E1: k-cover quality vs budget (n=400, m=50_000, k=8, fat decoys, planted OPT)",
        &[
            "budget",
            "eff. eps",
            "space (edges)",
            "ratio",
            "1-1/e-eps",
            "holds?",
            "est. rel. err",
        ],
    );
    let mut rows = Vec::new();
    for budget in [150usize, 500, 2_000, 8_000, 32_000, 128_000] {
        let eps = eps_of_budget(budget);
        let params = SketchParams::with_budget(n, k, (eps / 12.0).clamp(1e-3, 1.0), budget);
        let sketch = ThresholdSketch::from_stream(params, 17, &stream);
        let res = solve_on_sketch(&sketch, k);
        let truth = inst.coverage(&res.family) as f64;
        let ratio = truth / planted.optimal_value as f64;
        let bound = 1.0 - 1.0 / std::f64::consts::E - eps;
        let holds = ratio >= bound;
        let est_err = if truth > 0.0 {
            (res.estimated_coverage - truth).abs() / truth
        } else {
            1.0
        };
        t.row(vec![
            fmt_count(budget as u64),
            fmt_f(eps, 3),
            fmt_count(sketch.space_report().peak_edges),
            fmt_f(ratio, 4),
            fmt_f(bound, 4),
            holds.to_string(),
            fmt_f(est_err, 4),
        ]);
        rows.push(Row {
            budget,
            effective_eps: eps,
            space_edges: sketch.space_report().peak_edges,
            ratio,
            bound,
            holds,
            estimate_rel_error: est_err,
        });
    }
    out.table(&t);
    let mut chart = AsciiChart::new(56, 12)
        .log_x()
        .labels("sketch budget (log)", "r=coverage/OPT, b=1-1/e-eps bound");
    chart.series(
        'r',
        &rows
            .iter()
            .map(|r| (r.budget as f64, r.ratio))
            .collect::<Vec<_>>(),
    );
    chart.series(
        'b',
        &rows
            .iter()
            .map(|r| (r.budget as f64, r.bound))
            .collect::<Vec<_>>(),
    );
    out.note(chart.render());
    out.note(
        "Starved budgets (≲ n/4 edges) sit outside the theorem's premise and\n\
         quality collapses; once the budget reaches the Õ(n) regime the\n\
         1-1/e-eps bar is cleared with growing margin, and the estimator\n\
         error decays like the effective eps — Theorem 3.1's shape.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn guarantee_holds_in_valid_regime_and_errors_decay() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        // Adequate budgets (≥ 8000 here) must clear their bound.
        for r in rows {
            if r["budget"].as_u64().unwrap() >= 8_000 {
                assert!(
                    r["holds"].as_bool().unwrap(),
                    "budget {} ratio {} bound {}",
                    r["budget"],
                    r["ratio"],
                    r["bound"]
                );
            }
        }
        // Quality is monotone-ish: best ratio at the largest budget.
        let first = rows[0]["ratio"].as_f64().unwrap();
        let last = rows[rows.len() - 1]["ratio"].as_f64().unwrap();
        assert!(last >= first, "quality should improve with budget");
        assert!(last > 0.95, "saturated budget should be near-exact");
        // Estimation error at the largest budget beats the starved one.
        let e_first = rows[0]["estimate_rel_error"].as_f64().unwrap();
        let e_last = rows[rows.len() - 1]["estimate_rel_error"].as_f64().unwrap();
        assert!(e_last < e_first, "estimator must sharpen with budget");
    }
}
