//! One module per experiment; see the crate docs for the index.

pub mod ablation_adaptive_p;
pub mod ablation_degcap;
pub mod ablation_eviction;
pub mod disjointness;
pub mod distributed;
pub mod dynamic_streams;
pub mod eps_sweep;
pub mod fig1;
pub mod hash_ablation;
pub mod l0_vs_sketch;
pub mod lemma_chain;
pub mod multipass;
pub mod oracle_hardness;
pub mod order_sensitivity;
pub mod outliers;
pub mod solver_transfer;
pub mod space_vs_m;
pub mod space_vs_n;
pub mod table1;
pub mod update_time;
pub mod weighted;

use crate::harness::ExperimentOutput;

/// Run every experiment in index order (the `run_all` binary).
pub fn run_all() -> Vec<ExperimentOutput> {
    vec![
        table1::run(),
        fig1::run(),
        lemma_chain::run(),
        eps_sweep::run(),
        space_vs_m::run(),
        space_vs_n::run(),
        outliers::run(),
        multipass::run(),
        l0_vs_sketch::run(),
        oracle_hardness::run(),
        disjointness::run(),
        update_time::run(),
        solver_transfer::run(),
        weighted::run(),
        ablation_degcap::run(),
        ablation_adaptive_p::run(),
        ablation_eviction::run(),
        hash_ablation::run(),
        order_sensitivity::run(),
        distributed::run(),
        dynamic_streams::run(),
    ]
}
