//! A3 — arrival-order robustness of Algorithm 3.
//!
//! The sketch's retained-element set is a pure function of the element
//! hashes and the budget (the `H'_{p*}` prefix property), so solution
//! quality should be essentially identical across arrival orders — even
//! the adversarial descending-hash order that maximizes eviction churn.

use coverage_algs::{k_cover_streaming, KCoverConfig};
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::planted_k_cover;
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    order: String,
    ratio: f64,
    space_edges: u64,
    evictions: u64,
}

/// Run experiment A3.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("A3");
    let k = 6;
    let seed = 77;
    let planted = planted_k_cover(300, 30_000, k, 300, 3);
    let inst = &planted.instance;
    let opt = planted.optimal_value as f64;

    let mut t = Table::new(
        "A3: Algorithm 3 vs arrival order (same instance, same hash seed)",
        &[
            "arrival order",
            "coverage / OPT",
            "space (edges)",
            "evictions",
        ],
    );
    let mut rows = Vec::new();
    for (name, order) in [
        ("as-generated (set-major)", ArrivalOrder::AsIs),
        ("uniform random", ArrivalOrder::Random(1)),
        ("set-grouped", ArrivalOrder::SetGrouped(2)),
        ("element-grouped", ArrivalOrder::ElementGrouped(3)),
        (
            "descending hash (adversarial)",
            ArrivalOrder::ByHashDesc(seed),
        ),
    ] {
        let mut stream = VecStream::from_instance(inst);
        order.apply(stream.edges_mut());
        let cfg = KCoverConfig::new(k, 0.25, seed).with_sizing(SketchSizing::Budget(4_000));
        let res = k_cover_streaming(&stream, &cfg);
        let ratio = inst.coverage(&res.family) as f64 / opt;
        // Re-run the sketch alone to read its counters.
        let sketch = coverage_sketch::ThresholdSketch::from_stream(
            cfg.sketch_params(inst.num_sets()),
            seed,
            &stream,
        );
        t.row(vec![
            name.to_string(),
            fmt_f(ratio, 3),
            fmt_count(res.space.peak_edges),
            fmt_count(sketch.counters().evictions),
        ]);
        rows.push(Row {
            order: name.to_string(),
            ratio,
            space_edges: res.space.peak_edges,
            evictions: sketch.counters().evictions,
        });
    }
    out.table(&t);
    out.note(
        "Ratios agree across orders (identical retained elements; only which\n\
         capped edges survive can differ). The adversarial order forces the\n\
         most evictions yet gains nothing — the eviction rule is what makes\n\
         the one-pass guarantee order-oblivious.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratios_agree_across_orders() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        let ratios: Vec<f64> = rows.iter().map(|r| r["ratio"].as_f64().unwrap()).collect();
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 0.05, "order sensitivity too high: {ratios:?}");
        // The adversarial order must show strictly more evictions than the
        // random one (it admits everything before evicting).
        let evict_adversarial = rows.last().unwrap()["evictions"].as_u64().unwrap();
        assert!(evict_adversarial > 0);
    }
}
