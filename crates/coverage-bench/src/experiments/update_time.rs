//! E9 — the `Õ(1)` update-time claim: per-edge processing cost of the
//! sketch, measured across stream lengths and budgets. (Criterion
//! microbenchmarks in `benches/` repeat this with statistical rigor; this
//! binary records the coarse numbers for EXPERIMENTS.md.)

use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::stream_uniform;
use coverage_sketch::{SketchParams, ThresholdSketch};
use coverage_stream::EdgeStream;
use serde::Serialize;

use crate::harness::{time_per, ExperimentOutput};

/// Batch size for the batched ingestion path (the parallel runner's
/// default).
const BATCH: usize = coverage_dist::parallel::DEFAULT_BATCH;

#[derive(Serialize)]
struct Row {
    edges: u64,
    budget: usize,
    ns_per_edge: f64,
    ns_per_edge_batched: f64,
    stored_edges: usize,
}

/// Run experiment E9.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E9");
    let n = 1_000;
    let mut t = Table::new(
        "E9: sketch update cost (uniform stream, n=1000, m=1e6)",
        &[
            "stream edges",
            "budget",
            "ns/edge",
            "ns/edge batched",
            "stored edges",
        ],
    );
    let mut rows = Vec::new();
    for (edges_per_set, budget) in [
        (200usize, 10_000usize),
        (200, 100_000),
        (2_000, 10_000),
        (2_000, 100_000),
    ] {
        let stream = stream_uniform(n, 1_000_000, edges_per_set, 7);
        let total = (n * edges_per_set) as u64;
        let params = SketchParams::with_budget(n, 10, 0.2, budget);
        let (sketch, ns) = time_per(total, || {
            let mut s = ThresholdSketch::new(params, 11);
            stream.for_each(&mut |e| s.update(e));
            s
        });
        let (batched, ns_batched) = time_per(total, || {
            let mut s = ThresholdSketch::new(params, 11);
            s.consume_batched(&stream, BATCH);
            s
        });
        assert_eq!(
            batched.edges_stored(),
            sketch.edges_stored(),
            "batched path must build the identical sketch"
        );
        t.row(vec![
            fmt_count(total),
            fmt_count(budget as u64),
            fmt_f(ns, 1),
            fmt_f(ns_batched, 1),
            fmt_count(sketch.edges_stored() as u64),
        ]);
        rows.push(Row {
            edges: total,
            budget,
            ns_per_edge: ns,
            ns_per_edge_batched: ns_batched,
            stored_edges: sketch.edges_stored(),
        });
    }
    out.table(&t);
    out.note(
        "Per-edge cost is independent of stream length and universe size —\n\
         one hash, one map probe, amortized O(1) heap work (each element\n\
         enters and leaves the eviction heap at most once). Larger budgets\n\
         cost a little more per edge purely through cache footprint. The\n\
         batched column feeds the same stream through for_each_batch +\n\
         update_batch (one virtual call per 4096 edges instead of one per\n\
         edge) — the hot path the parallel runner uses.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn update_cost_is_bounded() {
        let out = super::run();
        for r in out.json.as_array().unwrap() {
            let ns = r["ns_per_edge"].as_f64().unwrap();
            // Generous sanity bound (debug builds are ~20x slower than
            // release; threshold accommodates both).
            assert!(ns < 20_000.0, "update cost exploded: {ns} ns/edge");
            let batched = r["ns_per_edge_batched"].as_f64().unwrap();
            assert!(
                batched < 20_000.0,
                "batched update cost exploded: {batched} ns/edge"
            );
        }
    }
}
