//! A1 — ablating Lemma 2.4's degree cap.
//!
//! On heavy-tailed (Zipf) instances a few elements belong to most sets.
//! Without the cap, those elements monopolize the edge budget, forcing
//! the adaptive threshold `p*` far down — the sketch then contains very
//! few *distinct* elements and greedy quality collapses. The cap trades a
//! bounded per-element information loss (an ε-fraction, by the
//! probabilistic argument of Lemma 2.4) for many more sampled elements.

use coverage_algs::kcover::solve_on_sketch;
use coverage_core::offline::lazy_greedy_k_cover;
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::zipf_instance;
use coverage_sketch::{SketchParams, ThresholdSketch};
use coverage_stream::VecStream;
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    variant: String,
    degree_cap: usize,
    elements_kept: usize,
    sampling_p: f64,
    coverage: usize,
    ratio_vs_offline: f64,
}

/// Run experiment A1.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("A1");
    let n = 300;
    // Large k drives the cap far below n (cap = n·ln(1/ε)/(εk) ≈ 60 ≪
    // 300), so elements living in most sets save hundreds of edges each
    // when capped. Strong popularity skew makes such elements common.
    let k = 20;
    let inst = zipf_instance(n, 30_000, 0.3, 1.3, 3_000, 5);
    let stream = VecStream::from_instance(&inst);
    let offline = lazy_greedy_k_cover(&inst, k).coverage() as f64;

    let budget = 4_000;
    let mut t = Table::new(
        "A1: degree cap on/off (Zipf workload, n=300, k=20, budget=4000)",
        &[
            "variant",
            "cap",
            "elements kept",
            "p*",
            "true coverage",
            "vs offline",
        ],
    );
    let mut rows = Vec::new();
    for (variant, params) in [
        ("paper cap", SketchParams::with_budget(n, k, 0.3, budget)),
        (
            "no cap",
            SketchParams::with_budget(n, k, 0.3, budget).with_degree_cap(usize::MAX),
        ),
    ] {
        let sketch = ThresholdSketch::from_stream(params, 23, &stream);
        let res = solve_on_sketch(&sketch, k);
        let coverage = inst.coverage(&res.family);
        let ratio = coverage as f64 / offline;
        t.row(vec![
            variant.to_string(),
            if params.degree_cap == usize::MAX {
                "inf".into()
            } else {
                fmt_count(params.degree_cap as u64)
            },
            fmt_count(sketch.elements_stored() as u64),
            fmt_f(sketch.sampling_p(), 5),
            fmt_count(coverage as u64),
            fmt_f(ratio, 3),
        ]);
        rows.push(Row {
            variant: variant.to_string(),
            degree_cap: params.degree_cap,
            elements_kept: sketch.elements_stored(),
            sampling_p: sketch.sampling_p(),
            coverage,
            ratio_vs_offline: ratio,
        });
    }
    out.table(&t);
    out.note(
        "Without the cap, heavy elements eat the budget: far fewer distinct\n\
         elements survive (smaller p*), and solution quality drops. The cap\n\
         is what makes Õ(n) edges enough — Lemma 2.4 in action.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn cap_keeps_more_elements_and_quality() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        let capped = &rows[0];
        let uncapped = &rows[1];
        assert!(
            capped["elements_kept"].as_u64().unwrap() > uncapped["elements_kept"].as_u64().unwrap(),
            "cap must retain more distinct elements"
        );
        assert!(
            capped["ratio_vs_offline"].as_f64().unwrap()
                >= uncapped["ratio_vs_offline"].as_f64().unwrap() - 0.02,
            "cap should not hurt quality"
        );
    }
}
