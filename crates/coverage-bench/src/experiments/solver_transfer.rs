//! E10 — Theorem 2.7 is solver-agnostic.
//!
//! The theorem says *any* α-approximate solution on `H≤n` transfers to
//! `(α − 12ε)` on `G` — it never mentions greedy. This experiment runs
//! four different offline solvers on the *same* sketch and measures each
//! one's quality on the sketch and on the original input:
//!
//! * lazy greedy (`1 − 1/e`) — what Algorithm 3 uses;
//! * swap local search (`1/2` at convergence, usually much better);
//! * stochastic greedy (`1 − 1/e − ε` in expectation, cheaper);
//! * parallel greedy (identical to greedy, threaded — sanity row).
//!
//! The transfer gap (sketch-side ratio minus G-side ratio) should be
//! small and *similar across solvers*, because it is a property of the
//! sketch, not of the solver.

use coverage_core::offline::{
    lazy_greedy_k_cover, local_search_k_cover, parallel_greedy_k_cover, stochastic_greedy_k_cover,
};
use coverage_core::report::{fmt_f, Table};
use coverage_core::SetId;
use coverage_data::planted_k_cover;
use coverage_sketch::{SketchParams, ThresholdSketch};
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    solver: String,
    ratio_on_sketch: f64,
    ratio_on_g: f64,
    transfer_gap: f64,
}

/// Run experiment E10.
pub fn run() -> ExperimentOutput {
    run_sized(80, 30_000, 8, 3_000, 8_000)
}

/// Run with explicit workload dimensions.
pub fn run_sized(n: usize, m: u64, k: usize, golden: usize, budget: usize) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E10");
    let planted = planted_k_cover(n, m, k, golden, 99);
    let inst = &planted.instance;
    let opt_g = planted.optimal_value as f64;

    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(3).apply(stream.edges_mut());
    let params = SketchParams::with_budget(n, k, 0.25, budget);
    let sketch = ThresholdSketch::from_stream(params, 11, &stream);
    let content = sketch.instance();
    // Sketch-side yardstick: the best of the solvers (true sketch OPT is
    // intractable at this n; using the max keeps ratios comparable).
    type Solver<'a> = Box<dyn Fn() -> Vec<SetId> + 'a>;
    let solvers: Vec<(&str, Solver)> = vec![
        (
            "lazy greedy",
            Box::new(|| lazy_greedy_k_cover(&content, k).family()),
        ),
        (
            "local search (swap)",
            Box::new(|| local_search_k_cover(&content, k).family),
        ),
        (
            "stochastic greedy",
            Box::new(|| stochastic_greedy_k_cover(&content, k, 0.1, 5).family()),
        ),
        (
            "parallel greedy (4 threads)",
            Box::new(|| parallel_greedy_k_cover(&content, k, 4).family()),
        ),
    ];
    let families: Vec<(String, Vec<SetId>)> = solvers
        .into_iter()
        .map(|(name, f)| (name.to_string(), f()))
        .collect();
    let best_on_sketch = families
        .iter()
        .map(|(_, fam)| content.coverage(fam))
        .max()
        .unwrap_or(1)
        .max(1) as f64;

    let rows: Vec<Row> = families
        .into_iter()
        .map(|(solver, fam)| {
            let rs = content.coverage(&fam) as f64 / best_on_sketch;
            let rg = inst.coverage(&fam) as f64 / opt_g;
            Row {
                solver,
                ratio_on_sketch: rs,
                ratio_on_g: rg,
                transfer_gap: rs - rg,
            }
        })
        .collect();

    let mut t = Table::new(
        "Solver-agnostic transfer (Thm 2.7): quality on sketch vs on G",
        &["solver", "ratio on sketch", "ratio on G", "transfer gap"],
    );
    for r in &rows {
        t.row(vec![
            r.solver.clone(),
            fmt_f(r.ratio_on_sketch, 3),
            fmt_f(r.ratio_on_g, 3),
            fmt_f(r.transfer_gap, 3),
        ]);
    }
    out.note(format!(
        "workload: planted n={n}, m={m}, k={k}; sketch budget {budget} edges \
         ({} stored, p*={:.4})",
        sketch.edges_stored(),
        sketch.sampling_p()
    ));
    out.table(&t);
    out.note(
        "Reading: every solver lands within a few percent of its sketch-side\n\
         quality when evaluated on G — the sketch transfers approximation\n\
         factors wholesale, exactly as Theorem 2.7 states, independent of\n\
         which α-approximation algorithm consumes it.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn transfer_gap_is_small_for_every_solver() {
        let out = super::run_sized(30, 5_000, 4, 800, 2_500);
        let rows = out.json.as_array().expect("rows");
        assert_eq!(rows.len(), 4);
        for r in rows {
            let gap = r["transfer_gap"].as_f64().unwrap();
            assert!(
                gap.abs() < 0.25,
                "{}: transfer gap {gap}",
                r["solver"].as_str().unwrap()
            );
            assert!(r["ratio_on_g"].as_f64().unwrap() > 0.5);
        }
    }
}
