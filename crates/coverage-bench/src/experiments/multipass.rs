//! E5 — Theorem 3.4's pass/space trade-off: full set cover in `2r−1`
//! passes with the residual shrinking as `m^{3/(2+r)}`.

use coverage_algs::{set_cover_multipass, MultiPassConfig};
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::planted_set_cover;
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    r: usize,
    passes: u32,
    cover_size: usize,
    size_ratio: f64,
    residual_edges: usize,
    predicted_residual_elems: f64,
    peak_edges: u64,
    is_cover: bool,
}

/// Run experiment E5.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E5");
    let planted = planted_set_cover(200, 40_000, 10, 300, 8);
    let inst = &planted.instance;
    let m = inst.num_elements() as f64;
    let k_star = planted.optimal_value as f64;
    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(2).apply(stream.edges_mut());

    let mut t = Table::new(
        "E5: multipass set cover (n=200, m=40_000, k*=10, eps=0.5)",
        &[
            "r",
            "passes",
            "cover",
            "|S|/k*",
            "residual edges",
            "bound m^(3/(2+r))",
            "peak edges",
            "cover?",
        ],
    );
    let mut rows = Vec::new();
    for r in [1usize, 2, 3, 4, 6] {
        let cfg = MultiPassConfig::new(r, 0.5, 19)
            .with_m(inst.num_elements())
            .with_sizing(SketchSizing::Budget(4_000));
        let res = set_cover_multipass(&stream, &cfg);
        let is_cover = inst.is_cover(&res.family);
        let predicted = m.powf(3.0 / (2.0 + r as f64));
        t.row(vec![
            r.to_string(),
            res.passes.to_string(),
            res.family.len().to_string(),
            fmt_f(res.family.len() as f64 / k_star, 2),
            fmt_count(res.residual_edges as u64),
            fmt_count(predicted as u64),
            fmt_count(res.space.peak_edges),
            is_cover.to_string(),
        ]);
        rows.push(Row {
            r,
            passes: res.passes,
            cover_size: res.family.len(),
            size_ratio: res.family.len() as f64 / k_star,
            residual_edges: res.residual_edges,
            predicted_residual_elems: predicted,
            peak_edges: res.space.peak_edges,
            is_cover,
        });
    }
    out.table(&t);
    out.note(
        "r=1 is the trivial store-everything algorithm; each extra round\n\
         shrinks the stored residual, which Theorem 3.4 bounds by\n\
         m^(3/(2+r)) (rounds usually overdeliver — covering more than the\n\
         required 1-lambda fraction — so measured residuals sit well below\n\
         the bound). The cover stays within (1+eps)·ln m of k*.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rounds_cover_and_residual_shrinks() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        for r in rows {
            assert!(r["is_cover"].as_bool().unwrap());
        }
        let first = rows[0]["residual_edges"].as_u64().unwrap();
        let last = rows[rows.len() - 1]["residual_edges"].as_u64().unwrap();
        assert!(
            last < first / 4,
            "residual should shrink strongly: {first} → {last}"
        );
    }
}
