//! E3 — sketch space scales as `Õ(n)`: sweep `n` at fixed `m` with the
//! paper-shaped practical budget `c·n·ln n/ε²` and confirm the measured
//! peak tracks `n·ln n` (so `space / (n·ln n)` stays flat).

use coverage_algs::{k_cover_streaming, KCoverConfig};
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::uniform_instance;
use coverage_sketch::SketchSizing;
use coverage_stream::VecStream;
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    n: usize,
    space_edges: u64,
    per_n_log_n: f64,
}

/// Run experiment E3.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E3");
    let m = 50_000u64;
    let k = 8;
    let mut t = Table::new(
        "E3: sketch peak edges vs n at fixed m=50_000 (practical budget c·n·ln n/eps²)",
        &["n", "space (edges)", "space / (n·ln n)"],
    );
    let mut rows = Vec::new();
    for n in [100usize, 200, 400, 800, 1600] {
        let inst = uniform_instance(n, m, 400, n as u64);
        let stream = VecStream::from_instance(&inst);
        let cfg = KCoverConfig::new(k, 0.25, 3).with_sizing(SketchSizing::Practical { c: 0.05 });
        let res = k_cover_streaming(&stream, &cfg);
        let norm = res.space.peak_edges as f64 / (n as f64 * (n as f64).ln());
        t.row(vec![
            fmt_count(n as u64),
            fmt_count(res.space.peak_edges),
            fmt_f(norm, 3),
        ]);
        rows.push(Row {
            n,
            space_edges: res.space.peak_edges,
            per_n_log_n: norm,
        });
    }
    out.table(&t);
    out.note("The normalized column is ~constant: space grows as n·ln n, not with m.");
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn normalized_space_is_flat() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        let norms: Vec<f64> = rows
            .iter()
            .map(|r| r["per_n_log_n"].as_f64().unwrap())
            .collect();
        let min = norms.iter().cloned().fold(f64::MAX, f64::min);
        let max = norms.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 2.0, "n·ln n normalization not flat: {norms:?}");
    }
}
