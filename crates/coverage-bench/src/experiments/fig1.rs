//! F1 — the paper's **Figure 1**: a worked example of `Hp` (left) and
//! `H'p` (right) at `p = 0.5`.
//!
//! The figure shows a small bipartite graph where each element carries its
//! hash value; edges to elements hashing above `p` are dotted (dropped),
//! and on the right the degree cap additionally prunes edges of kept
//! elements. We reconstruct the same situation: elements are *mined* so
//! their hashes land on the deciles 0.05, 0.15, …, 0.85, every set touches
//! every element, and we render which edges survive each construction.

use coverage_core::report::Table;
use coverage_core::{CoverageInstance, Edge};
use coverage_hash::UnitHash;
use coverage_sketch::{build_hp, build_hp_prime};
use coverage_stream::VecStream;
use serde::Serialize;

use crate::harness::ExperimentOutput;

const SEED: u64 = 2017;
const P: f64 = 0.5;
const DEGREE_CAP: usize = 2;
const NUM_SETS: usize = 4;

#[derive(Serialize)]
struct ElementRecord {
    element: u64,
    hash: f64,
    kept_in_hp: bool,
    degree_in_hp: usize,
    degree_in_hp_prime: usize,
}

/// Mine element ids whose hash falls in the given decile band.
fn mine_element(h: &UnitHash, lo: f64, hi: f64, skip: u64) -> u64 {
    let mut skipped = 0;
    for key in 0..u64::MAX {
        let x = h.hash_unit_f64(key);
        if x >= lo && x < hi {
            if skipped == skip {
                return key;
            }
            skipped += 1;
        }
    }
    unreachable!("a decile band cannot be empty")
}

/// Run experiment F1.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("F1");
    let h = UnitHash::new(SEED);

    // Eight elements with hashes near 0.05, 0.15, …, 0.75 — four below
    // p=0.5 (kept), four above (dropped), mirroring the figure.
    let elements: Vec<u64> = (0..8)
        .map(|i| {
            let lo = 0.05 + 0.1 * i as f64;
            mine_element(&h, lo, lo + 0.02, 0)
        })
        .collect();

    // Every set contains every element (the figure's dense example).
    let edges: Vec<Edge> = (0..NUM_SETS as u32)
        .flat_map(|s| elements.iter().map(move |&e| Edge::new(s, e)))
        .collect();
    let stream = VecStream::new(NUM_SETS, edges);

    let hp: CoverageInstance = build_hp(&stream, P, SEED);
    let hpp: CoverageInstance = build_hp_prime(&stream, P, SEED, DEGREE_CAP);

    let mut t = Table::new(
        format!("Figure 1 reconstruction: p = {P}, degree cap = {DEGREE_CAP}, {NUM_SETS} sets"),
        &[
            "element",
            "hash h(v)",
            "in Hp?",
            "deg in Hp",
            "deg in H'p",
            "edges dropped by cap",
        ],
    );
    let mut records = Vec::new();
    for &e in &elements {
        let hash = h.hash_unit_f64(e);
        let kept = hash <= P;
        let deg_hp = hp
            .dense_index(e.into())
            .map_or(0, |d| hp.element_degrees()[d as usize] as usize);
        let deg_hpp = hpp
            .dense_index(e.into())
            .map_or(0, |d| hpp.element_degrees()[d as usize] as usize);
        t.row(vec![
            format!("e{e}"),
            format!("{hash:.3}"),
            if kept {
                "yes".into()
            } else {
                "no (dotted)".into()
            },
            deg_hp.to_string(),
            deg_hpp.to_string(),
            (deg_hp - deg_hpp).to_string(),
        ]);
        records.push(ElementRecord {
            element: e,
            hash,
            kept_in_hp: kept,
            degree_in_hp: deg_hp,
            degree_in_hp_prime: deg_hpp,
        });
    }
    out.table(&t);

    // ASCII rendering in the figure's spirit.
    let mut art = String::from("   Hp (p=0.5)                H'p (cap=2)\n");
    for (i, &e) in elements.iter().enumerate() {
        let hash = h.hash_unit_f64(e);
        let solid = hash <= P;
        let left = if solid {
            "S0 S1 S2 S3 ==== "
        } else {
            "S0 S1 S2 S3 .... "
        };
        let right = if solid { "S0 S1 ==== " } else { ".......... " };
        art.push_str(&format!("   {left}e{i} [{hash:.2}]      {right}e{i}\n"));
    }
    art.push_str("   ==== kept edges, .... dropped edges\n");
    out.note(art);
    out.note(format!(
        "Hp keeps all {} edges of the {} low-hash elements; H'p keeps only\n\
         cap·{} = {} of them. Both discard the 4 high-hash elements entirely.",
        hp.num_edges(),
        hp.num_elements(),
        hp.num_elements(),
        hpp.num_edges(),
    ));
    out.set_json(records);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig1_structure_is_correct() {
        let out = super::run();
        let recs = out.json.as_array().unwrap();
        assert_eq!(recs.len(), 8);
        let kept: Vec<bool> = recs
            .iter()
            .map(|r| r["kept_in_hp"].as_bool().unwrap())
            .collect();
        // Elements were mined in increasing hash deciles: first 4 below
        // 0.5 are kept, last 4 dropped — wait, deciles 0.05..0.45 are the
        // first 5; element 4 sits at ~0.45 < 0.5. Count the kept ones.
        assert_eq!(kept.iter().filter(|&&k| k).count(), 5);
        for r in recs {
            let hp = r["degree_in_hp"].as_u64().unwrap();
            let hpp = r["degree_in_hp_prime"].as_u64().unwrap();
            if r["kept_in_hp"].as_bool().unwrap() {
                assert_eq!(hp, 4);
                assert_eq!(hpp, 2, "cap must prune to 2");
            } else {
                assert_eq!(hp, 0);
                assert_eq!(hpp, 0);
            }
        }
    }
}
