//! E6 — Appendix D vs Section 2: the per-set `ℓ₀` baseline pays `Õ(nk)`
//! words while the `H≤n` sketch stays `Õ(n)` as `k` grows.

use coverage_algs::baselines::{l0_greedy_k_cover, L0Config};
use coverage_algs::{k_cover_streaming, KCoverConfig};
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::uniform_instance;
use coverage_sketch::SketchSizing;
use coverage_stream::VecStream;
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    k: usize,
    sketch_words: u64,
    l0_words: u64,
    sketch_coverage: usize,
    l0_coverage: usize,
}

/// Run experiment E6.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E6");
    // Sets must stay larger than the biggest KMV (t ≈ 680 at k=32) or the
    // per-set sketches saturate at the set size and the Õ(nk) growth is
    // masked.
    let n = 200;
    let inst = uniform_instance(n, 20_000, 2_000, 12);
    let stream = VecStream::from_instance(&inst);

    let mut t = Table::new(
        "E6: space vs k — H<=n (Õ(n)) against per-set l0 sketches (Õ(nk))",
        &[
            "k",
            "H<=n words",
            "l0 words",
            "l0/H ratio",
            "H coverage",
            "l0 coverage",
        ],
    );
    let mut rows = Vec::new();
    for k in [2usize, 4, 8, 16, 32] {
        let ours = k_cover_streaming(
            &stream,
            &KCoverConfig::new(k, 0.25, 3).with_sizing(SketchSizing::Budget(4_000)),
        );
        let t_kmv = L0Config::paper_t(n, k, 0.5);
        let l0 = l0_greedy_k_cover(&stream, k, &L0Config::new(t_kmv, 9));
        t.row(vec![
            k.to_string(),
            fmt_count(ours.space.total_words()),
            fmt_count(l0.space.total_words()),
            fmt_f(
                l0.space.total_words() as f64 / ours.space.total_words() as f64,
                2,
            ),
            inst.coverage(&ours.family).to_string(),
            inst.coverage(&l0.family).to_string(),
        ]);
        rows.push(Row {
            k,
            sketch_words: ours.space.total_words(),
            l0_words: l0.space.total_words(),
            sketch_coverage: inst.coverage(&ours.family),
            l0_coverage: inst.coverage(&l0.family),
        });
    }
    out.table(&t);
    out.note(
        "The l0 column grows linearly in k (t = Õ(k) words in each of the n\n\
         per-set sketches); the H<=n column does not — Appendix D's point.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn l0_grows_with_k_sketch_does_not() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        let first_l0 = rows[0]["l0_words"].as_u64().unwrap() as f64;
        let last_l0 = rows[rows.len() - 1]["l0_words"].as_u64().unwrap() as f64;
        assert!(
            last_l0 / first_l0 > 4.0,
            "l0 should grow ~k: {first_l0} → {last_l0}"
        );
        let first_h = rows[0]["sketch_words"].as_u64().unwrap() as f64;
        let last_h = rows[rows.len() - 1]["sketch_words"].as_u64().unwrap() as f64;
        assert!(
            last_h / first_h < 2.0,
            "sketch should stay flat: {first_h} → {last_h}"
        );
    }
}
