//! L1 — empirical verification of the Section 2 lemma chain.
//!
//! Theorem 2.7's proof composes Lemmas 2.2, 2.3, 2.4 and 2.6. This
//! experiment measures both sides of each claim on a moderate uniform
//! instance across several hash seeds and reports the worst case, giving
//! the reproduction link-level (not just end-to-end) evidence.

use coverage_core::report::{fmt_f, Table};
use coverage_data::uniform_instance;
use coverage_sketch::{
    check_lemma_2_2, check_lemma_2_3, check_lemma_2_4, check_lemma_2_6, check_theorem_2_7,
    SketchParams,
};
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    claim: String,
    measured: f64,
    bound: f64,
    holds: bool,
    seeds: u64,
}

/// Run experiment L1.
pub fn run() -> ExperimentOutput {
    run_sized(40, 6_000, 120, 5)
}

/// Run with explicit workload dimensions (tests shrink them).
pub fn run_sized(n: usize, m: u64, deg: usize, seeds: u64) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("L1");
    let inst = uniform_instance(n, m, deg, 4242);
    let k = 5usize;
    let eps = 0.25f64;
    let p = 0.5f64;
    let mut rows: Vec<Row> = Vec::new();

    // Lemma 2.2: estimator error vs ε·Opt_k, across seeds and families.
    {
        let mut worst = 0.0f64;
        let mut allowance = 0.0;
        let mut violations = 0usize;
        for seed in 0..seeds {
            let c = check_lemma_2_2(&inst, k, eps, p, 6, 4, seed * 101 + 7);
            worst = worst.max(c.worst_abs_err);
            allowance = c.allowance;
            violations += c.violations;
        }
        rows.push(Row {
            claim: "Lemma 2.2: |C_est - C| <= eps*Opt_k".into(),
            measured: worst,
            bound: allowance,
            holds: violations == 0,
            seeds,
        });
    }

    // Lemmas 2.3 / 2.4 / Theorem 2.7 / Lemma 2.6: worst transfer ratios.
    let mut l23_margin = f64::INFINITY;
    let mut l24_margin = f64::INFINITY;
    let mut t27_margin = f64::INFINITY;
    let mut l26_margin = f64::INFINITY;
    let mut l23 = (0.0, 0.0);
    let mut l24 = (0.0, 0.0);
    let mut t27 = (0.0, 0.0);
    let mut l26 = (0.0, 0.0);
    let cap = SketchParams::paper_degree_cap(n, k, eps);
    let params = SketchParams::with_budget(n, k, eps, 4 * n * k);
    for seed in 0..seeds {
        let c = check_lemma_2_3(&inst, k, eps, p, seed * 13 + 1);
        if c.ratio_on_target - c.guaranteed < l23_margin {
            l23_margin = c.ratio_on_target - c.guaranteed;
            l23 = (c.ratio_on_target, c.guaranteed);
        }
        let c = check_lemma_2_4(&inst, k, eps, p, cap, seed * 17 + 3);
        if c.ratio_on_target - c.guaranteed < l24_margin {
            l24_margin = c.ratio_on_target - c.guaranteed;
            l24 = (c.ratio_on_target, c.guaranteed);
        }
        let c = check_theorem_2_7(&inst, params, seed * 19 + 5);
        if c.ratio_on_target - c.guaranteed < t27_margin {
            t27_margin = c.ratio_on_target - c.guaranteed;
            t27 = (c.ratio_on_target, c.guaranteed);
        }
        let c = check_lemma_2_6(&inst, k, eps, p, seed * 23 + 9);
        let margin = c.opt_coverage as f64 - c.lower_bound;
        if margin < l26_margin {
            l26_margin = margin;
            l26 = (c.opt_coverage as f64, c.lower_bound);
        }
    }
    rows.push(Row {
        claim: "Lemma 2.3: ratio on G >= alpha - 2eps".into(),
        measured: l23.0,
        bound: l23.1,
        holds: l23_margin >= -1e-9,
        seeds,
    });
    rows.push(Row {
        claim: "Lemma 2.4: ratio on Hp >= alpha(1-eps)".into(),
        measured: l24.0,
        bound: l24.1,
        holds: l24_margin >= -1e-9,
        seeds,
    });
    rows.push(Row {
        claim: "Thm 2.7: ratio on G >= alpha - 12eps".into(),
        measured: t27.0,
        bound: t27.1,
        holds: t27_margin >= -1e-9,
        seeds,
    });
    rows.push(Row {
        claim: "Lemma 2.6: |Gamma(H'p,Opt)| >= m'p*eps*k/(2n*ln(1/eps))".into(),
        measured: l26.0,
        bound: l26.1,
        holds: l26_margin >= -1e-9,
        seeds,
    });

    let mut t = Table::new(
        "Lemma chain, worst case over seeds (measured must beat bound)",
        &["claim", "measured (worst)", "bound", "holds"],
    );
    for r in &rows {
        t.row(vec![
            r.claim.clone(),
            fmt_f(r.measured, 3),
            fmt_f(r.bound, 3),
            r.holds.to_string(),
        ]);
    }
    out.note(format!(
        "workload: uniform n={n}, m={m}, deg~{deg}; k={k}, eps={eps}, p={p}; \
         optima via greedy proxy (n > exact limit)"
    ));
    out.table(&t);
    out.note(
        "Reading: every link of Theorem 2.7's proof chain holds with margin\n\
         on concrete data — the measured transfer ratios sit far above the\n\
         worst-case bounds, as expected from conservative constants.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_lemma_holds() {
        let out = super::run_sized(24, 1_500, 60, 3);
        let rows = out.json.as_array().expect("rows");
        assert_eq!(rows.len(), 5);
        for r in rows {
            assert_eq!(
                r["holds"],
                true,
                "claim failed: {}",
                r["claim"].as_str().unwrap()
            );
        }
    }
}
