//! E11 — the weighted-elements extension (paper's future-work direction).
//!
//! Weighted coverage (`C_w(S) = Σ_{e∈∪S} w(e)`) is the extension the
//! applications in the paper's introduction actually need. Two claims are
//! measured:
//!
//! 1. **Offline**: weighted lazy greedy achieves `≥ (1 − 1/e)` of the
//!    exact weighted optimum (small instances, exact by enumeration).
//! 2. **Streaming by unit replication**: for bounded integer weights, an
//!    element of weight `w` can be replaced by `w` unit-weight copies and
//!    fed through the *unmodified* `H≤n` pipeline. The streamed family's
//!    weighted coverage should track the offline weighted greedy on the
//!    original instance.

use coverage_core::offline::{
    exact_weighted_k_cover, weighted_coverage, weighted_greedy_k_cover, ElementWeights,
};
use coverage_core::report::{fmt_f, Table};
use coverage_core::{CoverageInstance, Edge};
use coverage_data::uniform_instance;
use coverage_hash::SplitMix64;
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use coverage_algs::{k_cover_streaming, KCoverConfig};

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct OfflineRow {
    seed: u64,
    greedy_over_opt: f64,
}

#[derive(Serialize)]
struct StreamRow {
    k: usize,
    streamed_weight: u64,
    offline_weight: u64,
    ratio: f64,
}

#[derive(Serialize)]
struct Record {
    offline: Vec<OfflineRow>,
    streaming: Vec<StreamRow>,
}

/// Replicate weighted elements into unit copies: element `e` of weight
/// `w` becomes pseudo-elements `e·W + 0 … e·W + w−1` (`W` = max weight).
fn replicate(inst: &CoverageInstance, w: &ElementWeights, max_w: u64) -> CoverageInstance {
    let mut b = CoverageInstance::builder(inst.num_sets());
    for s in inst.set_ids() {
        for &d in inst.dense_set(s) {
            let base = inst.element_id(d).0 * max_w;
            for c in 0..w.get(d) {
                b.add_edge(Edge::new(s.0, base + c));
            }
        }
    }
    b.build()
}

/// Run experiment E11.
pub fn run() -> ExperimentOutput {
    run_sized(12, 200, 30, 40, 2_500, 40)
}

/// Run with explicit dimensions (small ones keep exact enumeration fast).
pub fn run_sized(
    n_small: usize,
    m_small: u64,
    deg_small: usize,
    n: usize,
    m: u64,
    deg: usize,
) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E11");
    let max_w = 8u64;

    // --- Part 1: offline guarantee vs exact optimum --------------------
    let mut offline = Vec::new();
    for seed in 1..=5u64 {
        let inst = uniform_instance(n_small, m_small, deg_small, seed);
        let mut rng = SplitMix64::new(seed * 31);
        let w = ElementWeights::from_dense(
            (0..inst.num_elements())
                .map(|_| 1 + rng.next_below(max_w))
                .collect(),
        );
        let k = 4;
        let greedy = weighted_greedy_k_cover(&inst, &w, k).covered_weight();
        let (_, opt) = exact_weighted_k_cover(&inst, &w, k);
        offline.push(OfflineRow {
            seed,
            greedy_over_opt: greedy as f64 / opt.max(1) as f64,
        });
    }

    // --- Part 2: streaming via unit replication ------------------------
    let inst = uniform_instance(n, m, deg, 4242);
    let mut rng = SplitMix64::new(7);
    let w = ElementWeights::from_dense(
        (0..inst.num_elements())
            .map(|_| 1 + rng.next_below(max_w))
            .collect(),
    );
    let replicated = replicate(&inst, &w, max_w);
    let mut streaming = Vec::new();
    for k in [2usize, 4, 8] {
        let mut stream = VecStream::from_instance(&replicated);
        ArrivalOrder::Random(k as u64).apply(stream.edges_mut());
        let cfg = KCoverConfig::new(k, 0.2, 5)
            .with_sizing(SketchSizing::Budget(replicated.num_edges() / 3 + 64));
        let res = k_cover_streaming(&stream, &cfg);
        let streamed = weighted_coverage(&inst, &w, &res.family);
        let offline_w = weighted_greedy_k_cover(&inst, &w, k).covered_weight();
        streaming.push(StreamRow {
            k,
            streamed_weight: streamed,
            offline_weight: offline_w,
            ratio: streamed as f64 / offline_w.max(1) as f64,
        });
    }

    let mut t1 = Table::new(
        "Weighted greedy vs exact optimum (offline, exact by enumeration)",
        &["seed", "greedy/OPT_w"],
    );
    for r in &offline {
        t1.row(vec![r.seed.to_string(), fmt_f(r.greedy_over_opt, 3)]);
    }
    out.note(format!(
        "weights uniform in 1..={max_w}; offline: n={n_small}, m={m_small}; \
         streaming: n={n}, m={m}, unit-replicated universe {} elements",
        replicated.num_elements()
    ));
    out.table(&t1);

    let mut t2 = Table::new(
        "Streaming weighted k-cover via unit replication through H<=n",
        &["k", "streamed C_w", "offline greedy C_w", "ratio"],
    );
    for r in &streaming {
        t2.row(vec![
            r.k.to_string(),
            r.streamed_weight.to_string(),
            r.offline_weight.to_string(),
            fmt_f(r.ratio, 3),
        ]);
    }
    out.table(&t2);
    out.note(
        "Reading: weighted greedy sits above 1−1/e ≈ 0.632 of the exact\n\
         weighted optimum, and the unit-replication reduction lets the\n\
         unmodified streaming pipeline solve weighted instances at a small\n\
         quality cost — the paper's machinery extends as its conclusion\n\
         anticipates.",
    );
    out.set_json(Record { offline, streaming });
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn weighted_guarantees_hold() {
        let out = super::run_sized(10, 120, 20, 20, 600, 25);
        let rec = &out.json;
        for r in rec["offline"].as_array().unwrap() {
            let ratio = r["greedy_over_opt"].as_f64().unwrap();
            assert!(
                ratio >= 1.0 - 1.0 / std::f64::consts::E - 1e-9,
                "offline ratio {ratio}"
            );
        }
        for r in rec["streaming"].as_array().unwrap() {
            let ratio = r["ratio"].as_f64().unwrap();
            assert!(ratio > 0.55, "streaming ratio {ratio}");
        }
    }
}
