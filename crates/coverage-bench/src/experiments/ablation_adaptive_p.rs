//! A2 — ablating Definition 2.1's *adaptive* threshold `p*`.
//!
//! The right fixed sampling rate `p` depends on the unknown `Opt_k`
//! (Lemma 2.3 needs `p ≥ 6kδ·ln n/(ε²·Opt_k)`). Guess it wrong and a
//! fixed-`p` sketch fails in one of two ways:
//!
//! * **too low** — the sample is so thin that greedy cannot even fill `k`
//!   sets with positive gain, and the Lemma 2.2 coverage estimator's
//!   relative error blows up as `1/√(C·p)`;
//! * **too high** — the sketch stores a constant fraction of the input,
//!   destroying the space bound.
//!
//! The adaptive `H≤n` rule — "smallest `p` that fills the edge budget" —
//! lands on the right rate with no knowledge of `Opt_k`.

use coverage_core::offline::lazy_greedy_k_cover;
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::planted_k_cover;
use coverage_hash::{threshold_from_p, UnitHash};
use coverage_sketch::{build_hp_prime, SketchParams, ThresholdSketch};
use coverage_stream::VecStream;
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    variant: String,
    p: f64,
    edges_stored: usize,
    family_size: usize,
    coverage_ratio: f64,
    estimate_rel_error: f64,
}

/// Estimate C(family) from a fixed-p sample, Lemma 2.2 style.
fn fixed_p_estimate(
    inst: &coverage_core::CoverageInstance,
    family: &[coverage_core::SetId],
    p: f64,
    seed: u64,
) -> f64 {
    let h = UnitHash::new(seed);
    let t = threshold_from_p(p);
    let mut covered = std::collections::HashSet::new();
    for &s in family {
        for e in inst.set_elements(s) {
            if h.hash(e.0) <= t {
                covered.insert(e.0);
            }
        }
    }
    covered.len() as f64 / p
}

/// Run experiment A2.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("A2");
    let n = 300;
    let k = 6;
    let planted = planted_k_cover(n, 40_000, k, 300, 9);
    let inst = &planted.instance;
    let stream = VecStream::from_instance(inst);
    let opt = planted.optimal_value as f64;
    let budget = 3_000;
    let seed = 41;
    let params = SketchParams::with_budget(n, k, 0.3, budget);

    let mut t = Table::new(
        "A2: adaptive p* vs fixed p (planted, n=300, k=6, budget target 3000 edges)",
        &[
            "variant",
            "p",
            "edges",
            "|family|",
            "coverage/OPT",
            "rel. est. error",
        ],
    );
    let mut rows = Vec::new();

    // Adaptive H≤n.
    let sketch = ThresholdSketch::from_stream(params, seed, &stream);
    let family = lazy_greedy_k_cover(&sketch.instance(), k).family();
    let truth = inst.coverage(&family) as f64;
    let est_err = (sketch.estimate_coverage(&family) - truth).abs() / truth;
    t.row(vec![
        "adaptive p* (H<=n)".into(),
        fmt_f(sketch.sampling_p(), 5),
        fmt_count(sketch.edges_stored() as u64),
        family.len().to_string(),
        fmt_f(truth / opt, 3),
        fmt_f(est_err, 4),
    ]);
    rows.push(Row {
        variant: "adaptive".into(),
        p: sketch.sampling_p(),
        edges_stored: sketch.edges_stored(),
        family_size: family.len(),
        coverage_ratio: truth / opt,
        estimate_rel_error: est_err,
    });
    let p_star = sketch.sampling_p();

    // Fixed-p sketches at wrong and right guesses.
    for (label, p) in [
        ("fixed p = p*/1000 (too low)", p_star / 1000.0),
        ("fixed p = p* (oracle guess)", p_star),
        ("fixed p = 30*p* (too high)", (p_star * 30.0).min(1.0)),
    ] {
        let hp = build_hp_prime(&stream, p, seed, params.degree_cap);
        let fam = lazy_greedy_k_cover(&hp, k).family();
        let truth = inst.coverage(&fam) as f64;
        let est = fixed_p_estimate(inst, &fam, p, seed);
        let err = if truth > 0.0 {
            (est - truth).abs() / truth
        } else {
            1.0
        };
        t.row(vec![
            label.into(),
            fmt_f(p, 6),
            fmt_count(hp.num_edges() as u64),
            fam.len().to_string(),
            fmt_f(truth / opt, 3),
            fmt_f(err, 4),
        ]);
        rows.push(Row {
            variant: label.into(),
            p,
            edges_stored: hp.num_edges(),
            family_size: fam.len(),
            coverage_ratio: truth / opt,
            estimate_rel_error: err,
        });
    }
    out.table(&t);
    out.note(
        "Too-low p cannot even fill k sets with positive sketch gain and its\n\
         coverage estimates are garbage (rel. error ~1/sqrt(C*p)); too-high p\n\
         stores ~30x the budget. The oracle guess matches the adaptive sketch\n\
         — but required knowing Opt_k in advance, which is exactly what\n\
         Definition 2.1's budget-driven rule avoids.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn adaptive_wins_without_knowing_opt() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        let adaptive_ratio = rows[0]["coverage_ratio"].as_f64().unwrap();
        let adaptive_edges = rows[0]["edges_stored"].as_u64().unwrap();
        let adaptive_err = rows[0]["estimate_rel_error"].as_f64().unwrap();
        let low = &rows[1];
        let oracle = &rows[2];
        let high = &rows[3];
        // Too-low p starves the greedy (family smaller than k) and/or
        // hurts quality.
        let low_starved = low["family_size"].as_u64().unwrap() < 6
            || low["coverage_ratio"].as_f64().unwrap() < adaptive_ratio - 0.05;
        assert!(low_starved, "too-low p should starve greedy: {low}");
        // …and its estimator error is far worse than the adaptive one's.
        assert!(
            low["estimate_rel_error"].as_f64().unwrap() > 5.0 * adaptive_err + 0.05,
            "too-low p should estimate poorly"
        );
        // The oracle guess ties the adaptive sketch.
        assert!((oracle["coverage_ratio"].as_f64().unwrap() - adaptive_ratio).abs() < 0.05);
        // Too-high p blows the budget.
        assert!(high["edges_stored"].as_u64().unwrap() > 10 * adaptive_edges);
    }
}
