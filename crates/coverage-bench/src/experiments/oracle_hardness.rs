//! E7 — Theorem 1.3 / Appendix A made measurable:
//!
//! 1. **k-purification success decay**: the probability that a random-
//!    query strategy finds a `Pure_ε` witness collapses as `ε²k²/n`
//!    grows, matching the `exp(−Ω(ε²k²/n))` per-query bound.
//! 2. **The punchline**: on the same gold/brass instance, greedy driven
//!    by the adversarial `(1±ε)` oracle collapses to `O(k/n)`-quality,
//!    while Algorithm 3 — which streams the *edges* instead of querying
//!    the *function* — recovers near-optimal coverage.

use coverage_algs::{k_cover_streaming, KCoverConfig};
use coverage_core::oracle_greedy_k_cover;
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_lb::purification::random_subset_strategy;
use coverage_lb::{GoldBrassInstance, PurificationInstance};
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct PurityRow {
    n: usize,
    k: usize,
    hardness: f64,
    success_rate: f64,
}

#[derive(Serialize)]
struct PunchlineRow {
    n: usize,
    k: usize,
    oracle_ratio: f64,
    oracle_queries: u64,
    streaming_ratio: f64,
    streaming_space_edges: u64,
}

#[derive(Serialize)]
struct Record {
    purification: Vec<PurityRow>,
    punchline: Vec<PunchlineRow>,
}

/// Run experiment E7.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E7");
    let eps = 0.5;

    // --- 1. success decay of random probing -----------------------------
    let mut t1 = Table::new(
        "E7a: k-purification — random-probe success vs hardness eps²k²/n (25 probes, 20 trials)",
        &["n", "k", "eps²k²/n", "success rate"],
    );
    let mut purification = Vec::new();
    let n = 900;
    for k in [6usize, 15, 30, 60, 120, 240] {
        let mut successes = 0;
        let trials = 20;
        for seed in 0..trials {
            let p = PurificationInstance::random(n, k, seed * 31 + k as u64);
            let o = p.oracle(eps);
            if random_subset_strategy(&o, n / 2, 25, seed).is_some() {
                successes += 1;
            }
        }
        let hardness = eps * eps * (k * k) as f64 / n as f64;
        let rate = successes as f64 / trials as f64;
        t1.row(vec![
            n.to_string(),
            k.to_string(),
            fmt_f(hardness, 2),
            fmt_f(rate, 2),
        ]);
        purification.push(PurityRow {
            n,
            k,
            hardness,
            success_rate: rate,
        });
    }
    out.table(&t1);

    // --- 2. oracle access vs stream access -------------------------------
    let mut t2 = Table::new(
        "E7b: same instance, two access models (gold/brass, eps=0.5)",
        &[
            "n",
            "k",
            "oracle-greedy ratio",
            "queries",
            "Alg 3 ratio",
            "Alg 3 space (edges)",
        ],
    );
    let mut punchline = Vec::new();
    for (n, k) in [(600usize, 60usize), (1200, 120)] {
        let gb = GoldBrassInstance::random(n, k, 7);
        let oracle = gb.noisy_oracle(eps);
        let via_oracle = oracle_greedy_k_cover(&oracle, k);
        let oracle_ratio = gb.true_coverage(&via_oracle) as f64 / gb.optimal_value() as f64;

        let inst = gb.to_instance();
        let mut stream = VecStream::from_instance(&inst);
        ArrivalOrder::Random(3).apply(stream.edges_mut());
        let ours = k_cover_streaming(
            &stream,
            &KCoverConfig::new(k, 0.2, 5).with_sizing(SketchSizing::Budget(20_000)),
        );
        let streaming_ratio = inst.coverage(&ours.family) as f64 / gb.optimal_value() as f64;

        t2.row(vec![
            n.to_string(),
            k.to_string(),
            fmt_f(oracle_ratio, 3),
            fmt_count(oracle.queries().max(1)),
            fmt_f(streaming_ratio, 3),
            fmt_count(ours.space.peak_edges),
        ]);
        punchline.push(PunchlineRow {
            n,
            k,
            oracle_ratio,
            oracle_queries: oracle.queries(),
            streaming_ratio,
            streaming_space_edges: ours.space.peak_edges,
        });
    }
    out.table(&t2);
    out.note(
        "E7a: success decays once eps²k²/n passes ~1 (the exp(−Ω(·)) bound).\n\
         E7b: a polynomial number of (1±eps)-oracle queries is worthless on\n\
         this instance, while the edge stream solves it in Õ(n) space —\n\
         sketching the graph beats sketching the function (Theorem 1.3).",
    );
    out.set_json(Record {
        purification,
        punchline,
    });
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn hardness_grows_success_falls_and_punchline_holds() {
        let out = super::run();
        let rec = &out.json;
        let purity = rec["purification"].as_array().unwrap();
        // Easiest regime succeeds often; hardest essentially never.
        let first = purity[0]["success_rate"].as_f64().unwrap();
        let last = purity[purity.len() - 1]["success_rate"].as_f64().unwrap();
        assert!(first > 0.5, "easy regime should succeed: {first}");
        assert!(last < 0.2, "hard regime should fail: {last}");
        for p in rec["punchline"].as_array().unwrap() {
            let o = p["oracle_ratio"].as_f64().unwrap();
            let s = p["streaming_ratio"].as_f64().unwrap();
            assert!(o < 0.45, "oracle ratio {o}");
            assert!(s > 0.6, "streaming ratio {s}");
        }
    }
}
