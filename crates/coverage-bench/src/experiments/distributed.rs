//! D1 — composable sketches across machines (the companion-paper
//! extension `[10]`): output invariance, per-machine load, and the
//! sequential-simulation vs parallel-executor wall clock as the number
//! of machines grows.

use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::planted_k_cover;
use coverage_dist::{distributed_k_cover, DistConfig, ParallelRunner};
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use crate::harness::{time_per, ExperimentOutput};

/// Threads used by the parallel executor in this experiment.
const THREADS: usize = 4;

#[derive(Serialize)]
struct Row {
    machines: usize,
    ratio: f64,
    max_machine_edges: u64,
    merged_edges: usize,
    family_fingerprint: u64,
    seq_wall_ms: f64,
    par_wall_ms: f64,
    par_partition_ms: f64,
    par_map_ms: f64,
    speedup: f64,
    families_match: bool,
}

/// Run experiment D1.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("D1");
    let k = 6;
    let planted = planted_k_cover(200, 40_000, k, 400, 6);
    let inst = &planted.instance;
    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(8).apply(stream.edges_mut());

    let mut t = Table::new(
        format!("D1: distributed k-cover, sequential simulation vs {THREADS}-thread executor (n=200, m=40_000, k=6)"),
        &[
            "machines",
            "coverage/OPT",
            "max per-machine edges",
            "merged edges",
            "family",
            "seq ms",
            "par ms",
            "speedup",
        ],
    );
    let mut rows = Vec::new();
    for machines in [1usize, 2, 4, 8, 16] {
        let cfg = DistConfig::new(machines, k, 0.3, 21).with_sizing(SketchSizing::Budget(6_000));
        let (seq, seq_ns) = time_per(1, || distributed_k_cover(&stream, &cfg));
        let runner = ParallelRunner::new(cfg, THREADS);
        let (par, par_ns) = time_per(1, || runner.run(&stream));
        let ratio = inst.coverage(&seq.family) as f64 / planted.optimal_value as f64;
        let max_edges = seq
            .per_machine
            .iter()
            .map(|r| r.peak_edges)
            .max()
            .unwrap_or(0);
        // Family fingerprint: order-sensitive hash so invariance is visible.
        let fp = seq
            .family
            .iter()
            .fold(0u64, |acc, s| coverage_hash::mix64(acc ^ s.0 as u64));
        let families_match = par.family == seq.family;
        t.row(vec![
            machines.to_string(),
            fmt_f(ratio, 3),
            fmt_count(max_edges),
            fmt_count(seq.merged_edges as u64),
            format!("{:08x}", fp >> 32),
            fmt_f(seq_ns / 1e6, 1),
            fmt_f(par_ns / 1e6, 1),
            fmt_f(seq_ns / par_ns.max(1.0), 2),
        ]);
        rows.push(Row {
            machines,
            ratio,
            max_machine_edges: max_edges,
            merged_edges: seq.merged_edges,
            family_fingerprint: fp,
            seq_wall_ms: seq_ns / 1e6,
            par_wall_ms: par_ns / 1e6,
            par_partition_ms: par.partition_ns as f64 / 1e6,
            par_map_ms: par.map_ns as f64 / 1e6,
            speedup: seq_ns / par_ns.max(1.0),
            families_match,
        });
    }
    out.table(&t);
    out.note(
        "The family fingerprint is identical for every machine count AND\n\
         between the sequential simulation and the parallel executor: merging\n\
         shard sketches reproduces the single-machine sketch exactly (the\n\
         hash-prefix property composes, and capped merges truncate\n\
         canonically). The sequential harness re-filters the stream once per\n\
         machine (O(w·|E|)), so its wall clock grows with w, while the\n\
         parallel runner partitions once and maps concurrently.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn families_invariant_and_load_splits() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        let fp0 = rows[0]["family_fingerprint"].as_u64().unwrap();
        for r in rows {
            assert_eq!(
                r["family_fingerprint"].as_u64().unwrap(),
                fp0,
                "family changed with machine count"
            );
            assert!(r["ratio"].as_f64().unwrap() > 0.9);
            assert!(
                r["families_match"].as_bool().unwrap(),
                "parallel family diverged from sequential"
            );
        }
        let one = rows[0]["max_machine_edges"].as_u64().unwrap();
        let sixteen = rows[rows.len() - 1]["max_machine_edges"].as_u64().unwrap();
        assert!(
            sixteen < one,
            "per-machine load should shrink: {one} vs {sixteen}"
        );
    }
}
