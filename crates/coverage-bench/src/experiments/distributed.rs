//! D1 — composable sketches across machines (the companion-paper
//! extension `[10]`): output invariance and per-machine load vs the
//! number of machines.

use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::planted_k_cover;
use coverage_dist::{distributed_k_cover, DistConfig};
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use crate::harness::{time_per, ExperimentOutput};

#[derive(Serialize)]
struct Row {
    machines: usize,
    ratio: f64,
    max_machine_edges: u64,
    merged_edges: usize,
    family_fingerprint: u64,
    wall_ms: f64,
}

/// Run experiment D1.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("D1");
    let k = 6;
    let planted = planted_k_cover(200, 40_000, k, 400, 6);
    let inst = &planted.instance;
    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(8).apply(stream.edges_mut());

    let mut t = Table::new(
        "D1: distributed k-cover via sketch merging (n=200, m=40_000, k=6)",
        &[
            "machines",
            "coverage/OPT",
            "max per-machine edges",
            "merged edges",
            "family",
            "wall ms",
        ],
    );
    let mut rows = Vec::new();
    for machines in [1usize, 2, 4, 8, 16] {
        let cfg = DistConfig::new(machines, k, 0.3, 21).with_sizing(SketchSizing::Budget(6_000));
        let (res, ns) = time_per(1, || distributed_k_cover(&stream, &cfg));
        let ratio = inst.coverage(&res.family) as f64 / planted.optimal_value as f64;
        let max_edges = res
            .per_machine
            .iter()
            .map(|r| r.peak_edges)
            .max()
            .unwrap_or(0);
        // Family fingerprint: order-sensitive hash so invariance is visible.
        let fp = res
            .family
            .iter()
            .fold(0u64, |acc, s| coverage_hash::mix64(acc ^ s.0 as u64));
        t.row(vec![
            machines.to_string(),
            fmt_f(ratio, 3),
            fmt_count(max_edges),
            fmt_count(res.merged_edges as u64),
            format!("{:08x}", fp >> 32),
            fmt_f(ns / 1e6, 1),
        ]);
        rows.push(Row {
            machines,
            ratio,
            max_machine_edges: max_edges,
            merged_edges: res.merged_edges,
            family_fingerprint: fp,
            wall_ms: ns / 1e6,
        });
    }
    out.table(&t);
    out.note(
        "The family fingerprint is identical for every machine count: merging\n\
         shard sketches reproduces the single-machine sketch exactly (the\n\
         hash-prefix property composes). Per-machine load is bounded by\n\
         min(sketch budget, shard size), so it starts dropping once shards\n\
         are smaller than one sketch.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn families_invariant_and_load_splits() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        let fp0 = rows[0]["family_fingerprint"].as_u64().unwrap();
        for r in rows {
            assert_eq!(
                r["family_fingerprint"].as_u64().unwrap(),
                fp0,
                "family changed with machine count"
            );
            assert!(r["ratio"].as_f64().unwrap() > 0.9);
        }
        let one = rows[0]["max_machine_edges"].as_u64().unwrap();
        let sixteen = rows[rows.len() - 1]["max_machine_edges"].as_u64().unwrap();
        assert!(
            sixteen < one,
            "per-machine load should shrink: {one} vs {sixteen}"
        );
    }
}
