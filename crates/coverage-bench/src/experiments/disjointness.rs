//! E8 — Theorem 1.2's prediction, probed: on set-disjointness-derived
//! instances, any fixed-budget one-pass structure starts failing to
//! distinguish optimum 1 from optimum 2 once its budget drops below
//! `≈ |E| = Θ(n)` edges — and is perfect above it.

use coverage_core::offline::exact_k_cover;
use coverage_core::report::{fmt_f, Table};
use coverage_lb::disjointness_instance;
use coverage_sketch::{SketchParams, ThresholdSketch};
use serde::Serialize;

use coverage_core::plot::AsciiChart;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    n: usize,
    budget_factor: f64,
    budget_edges: usize,
    accuracy: f64,
}

/// Distinguish opt 1 vs 2 from the sketch content alone.
fn predict_from_sketch(sketch: &ThresholdSketch) -> usize {
    let inst = sketch.instance();
    let (_, opt) = exact_k_cover(&inst, 1);
    opt.max(1)
}

/// Run experiment E8.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E8");
    let mut t = Table::new(
        "E8: 1-cover distinguishing accuracy vs sketch budget (DISJ instances, 40 trials)",
        &["n", "budget/n", "budget (edges)", "accuracy"],
    );
    let mut rows = Vec::new();
    for n in [128usize, 512] {
        for factor in [0.25f64, 0.5, 1.0, 1.5, 2.5] {
            let budget = (factor * n as f64) as usize;
            let trials = 40;
            let mut correct = 0;
            for trial in 0..trials {
                let intersect = trial % 2 == 0;
                let d = disjointness_instance(n, intersect, trial as u64 * 13 + n as u64);
                // k=1, tiny ε so the degree cap never binds (cap ≥ n).
                let params = SketchParams::with_budget(n, 1, 0.3, budget);
                let sketch = ThresholdSketch::from_stream(params, trial as u64, &d.stream());
                if predict_from_sketch(&sketch) == d.optimum() {
                    correct += 1;
                }
            }
            let accuracy = correct as f64 / trials as f64;
            t.row(vec![
                n.to_string(),
                fmt_f(factor, 2),
                budget.to_string(),
                fmt_f(accuracy, 2),
            ]);
            rows.push(Row {
                n,
                budget_factor: factor,
                budget_edges: budget,
                accuracy,
            });
        }
    }
    out.table(&t);
    let mut chart = AsciiChart::new(56, 10).labels("sketch budget / n", "distinguishing accuracy");
    chart.series(
        'o',
        &rows
            .iter()
            .map(|r| (r.budget_factor, r.accuracy))
            .collect::<Vec<_>>(),
    );
    out.note(chart.render());
    out.note(
        "Below ~1×n edges the sketch must drop one of the two elements and\n\
         accuracy falls toward coin-flipping; at ≥2.5×n it stores the whole\n\
         instance and is exact — the Ω(n) phase transition of Theorem 1.2.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn phase_transition_visible() {
        let out = super::run();
        let rows = out.json.as_array().unwrap();
        for r in rows {
            let factor = r["budget_factor"].as_f64().unwrap();
            let acc = r["accuracy"].as_f64().unwrap();
            if factor >= 2.5 {
                assert!(acc >= 0.95, "full budget should be exact, got {acc}");
            }
            if factor <= 0.25 {
                assert!(acc <= 0.85, "tiny budget should degrade, got {acc}");
            }
        }
    }
}
