//! E4 — Theorem 3.3's factor: set cover with λ outliers costs
//! `≤ (1+ε)·ln(1/λ)·k*` sets. Sweep λ on a planted instance with known
//! `k*` and compare measured size ratios to the bound.

use coverage_algs::{set_cover_outliers, OutlierConfig};
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::planted_set_cover;
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    lambda: f64,
    sets_used: usize,
    size_ratio: f64,
    bound: f64,
    covered_fraction: f64,
    space_edges: u64,
    verified: bool,
}

/// Run experiment E4.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("E4");
    let eps = 0.5;
    let planted = planted_set_cover(200, 20_000, 10, 250, 4);
    let inst = &planted.instance;
    let k_star = planted.optimal_value as f64;
    let mut stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(6).apply(stream.edges_mut());

    let mut t = Table::new(
        "E4: set cover with outliers (n=200, m=20_000, k*=10, eps=0.5)",
        &[
            "lambda",
            "sets",
            "|S|/k*",
            "(1+eps)ln(1/lambda)",
            "covered frac",
            "space (edges)",
            "verified",
        ],
    );
    let mut rows = Vec::new();
    for lambda in [0.3, 0.2, 0.1, 0.05, 0.02] {
        let cfg = OutlierConfig::new(lambda, eps, 31).with_sizing(SketchSizing::Budget(6_000));
        let res = set_cover_outliers(&stream, &cfg);
        let ratio = res.family.len() as f64 / k_star;
        let bound = (1.0 + eps) * (1.0 / lambda).ln();
        let frac = inst.coverage_fraction(&res.family);
        t.row(vec![
            fmt_f(lambda, 2),
            res.family.len().to_string(),
            fmt_f(ratio, 2),
            fmt_f(bound, 2),
            fmt_f(frac, 3),
            fmt_count(res.space.peak_edges),
            res.verified.to_string(),
        ]);
        rows.push(Row {
            lambda,
            sets_used: res.family.len(),
            size_ratio: ratio,
            bound,
            covered_fraction: frac,
            space_edges: res.space.peak_edges,
            verified: res.verified,
        });
    }
    out.table(&t);
    out.note(
        "Size ratios stay under the (1+eps)·ln(1/lambda) curve; covered\n\
         fractions stay ≥ 1−lambda (up to sketch slack). Space grows only\n\
         polylogarithmically as lambda shrinks (more geometric guesses).",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratios_under_bound_and_coverage_holds() {
        let out = super::run();
        for r in out.json.as_array().unwrap() {
            assert!(r["verified"].as_bool().unwrap());
            let ratio = r["size_ratio"].as_f64().unwrap();
            let bound = r["bound"].as_f64().unwrap();
            assert!(ratio <= bound * 1.3 + 0.5, "ratio {ratio} vs bound {bound}");
            let lambda = r["lambda"].as_f64().unwrap();
            let frac = r["covered_fraction"].as_f64().unwrap();
            assert!(frac >= 1.0 - lambda - 0.08, "λ={lambda}: frac {frac}");
        }
    }
}
