//! T1 — the paper's **Table 1**, regenerated empirically.
//!
//! The paper's table compares passes / approximation factor / space /
//! arrival model across prior work and the new algorithms. We run every
//! implemented algorithm on planted workloads with known optima and print
//! the *measured* counterparts of each cell.

use coverage_algs::baselines::{
    l0_greedy_k_cover, mcgregor_vu_k_cover, progressive_set_cover, saha_getoor_k_cover,
    sieve_k_cover, store_all_k_cover, store_all_set_cover, L0Config, MvConfig,
};
use coverage_algs::{
    k_cover_streaming, set_cover_multipass, set_cover_outliers, KCoverConfig, MultiPassConfig,
    OutlierConfig,
};
use coverage_core::report::{fmt_count, fmt_f, Table};
use coverage_data::{planted_k_cover, planted_set_cover};
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    problem: String,
    algorithm: String,
    passes: u32,
    measured: f64,
    space_words: u64,
    arrival: String,
}

/// Run experiment T1.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::new("T1");
    let mut rows: Vec<Row> = Vec::new();

    // ---------------- k-cover block -------------------------------------
    // A planted golden family for ground truth, but with *fat, heavily
    // overlapping* decoys so that swap/threshold heuristics actually pay
    // their approximation factors instead of coasting.
    let k = 10;
    let planted = planted_k_cover(500, 100_000, k, 9_000, 42);
    let inst = &planted.instance;
    let opt = planted.optimal_value as f64;

    let mut edge_stream = VecStream::from_instance(inst);
    ArrivalOrder::Random(7).apply(edge_stream.edges_mut());
    let mut set_stream = VecStream::from_instance(inst);
    ArrivalOrder::SetGrouped(7).apply(set_stream.edges_mut());

    let ratio = |family: &[coverage_core::SetId]| inst.coverage(family) as f64 / opt;

    let sg = saha_getoor_k_cover(&set_stream, k);
    rows.push(Row {
        problem: "k-cover".into(),
        algorithm: "Saha-Getoor [44] (1/4)".into(),
        passes: 1,
        measured: ratio(&sg.family),
        space_words: sg.space.total_words(),
        arrival: "set".into(),
    });

    let sieve = sieve_k_cover(&set_stream, k, 0.1);
    rows.push(Row {
        problem: "k-cover".into(),
        algorithm: "SieveStreaming [9] (1/2-eps)".into(),
        passes: 1,
        measured: ratio(&sieve.family),
        space_words: sieve.space.total_words(),
        arrival: "set".into(),
    });

    let l0 = l0_greedy_k_cover(
        &edge_stream,
        k,
        &L0Config::new(L0Config::paper_t(500, k, 0.5), 5),
    );
    rows.push(Row {
        problem: "k-cover".into(),
        algorithm: "l0-sketch greedy [App D]".into(),
        passes: 1,
        measured: ratio(&l0.family),
        space_words: l0.space.total_words(),
        arrival: "edge".into(),
    });

    // [36]'s universe reduction must be scaled to the optimum coverage
    // (their algorithm guesses OPT in geometric steps; we grant the
    // correct guess, its best case). With OPT-scaled buckets quality is
    // competitive but per-set profiles cost Θ(Σ min(|S|, t)) — no degree
    // cap — which is the space gap against H≤n this row exhibits.
    let mv = mcgregor_vu_k_cover(&edge_stream, k, &MvConfig::new(100_000, 13));
    rows.push(Row {
        problem: "k-cover".into(),
        algorithm: "universe hashing [36] (1-1/e-eps, oracle OPT guess)".into(),
        passes: 1,
        measured: ratio(&mv.family),
        space_words: mv.space.total_words(),
        arrival: "edge".into(),
    });

    // Budget sized to the hard instance's element degree (≈45): 250k
    // edges sample ≈5.5k of the 100k elements — Õ(n) territory, 18x below
    // store-all — which is enough to separate golden sets from decoys.
    let ours = k_cover_streaming(
        &edge_stream,
        &KCoverConfig::new(k, 0.2, 11).with_sizing(SketchSizing::Budget(250_000)),
    );
    rows.push(Row {
        problem: "k-cover".into(),
        algorithm: "H<=n sketch [Alg 3] (1-1/e-eps)".into(),
        passes: 1,
        measured: ratio(&ours.family),
        space_words: ours.space.total_words(),
        arrival: "edge".into(),
    });

    let all = store_all_k_cover(&edge_stream, k);
    rows.push(Row {
        problem: "k-cover".into(),
        algorithm: "store-all greedy (ceiling)".into(),
        passes: 1,
        measured: ratio(&all.family),
        space_words: all.space.total_words(),
        arrival: "edge".into(),
    });

    // ---------------- set-cover block ------------------------------------
    // Decoys larger than a single golden block: greedy-style algorithms
    // are lured into decoys before being forced to take every golden set
    // (each owns a private element), so measured size ratios exceed 1.
    let planted_sc = planted_set_cover(300, 50_000, 8, 9_000, 43);
    let inst_sc = &planted_sc.instance;
    let k_star = planted_sc.optimal_value as f64;
    let mut sc_stream = VecStream::from_instance(inst_sc);
    ArrivalOrder::Random(9).apply(sc_stream.edges_mut());

    let lambda = 0.1;
    let outl = set_cover_outliers(
        &sc_stream,
        &OutlierConfig::new(lambda, 0.5, 21).with_sizing(SketchSizing::Budget(8_000)),
    );
    rows.push(Row {
        problem: format!("set cover, {lambda} outliers"),
        algorithm: "H<=n bank [Alg 5] ((1+eps)ln(1/lambda))".into(),
        passes: 1,
        measured: outl.family.len() as f64 / k_star,
        space_words: outl.space.total_words(),
        arrival: "edge".into(),
    });

    let mp = set_cover_multipass(
        &sc_stream,
        &MultiPassConfig::new(3, 0.5, 23)
            .with_m(inst_sc.num_elements())
            .with_sizing(SketchSizing::Budget(8_000)),
    );
    rows.push(Row {
        problem: "set cover".into(),
        algorithm: "H<=n rounds [Alg 6] ((1+eps)ln m)".into(),
        passes: mp.passes,
        measured: mp.family.len() as f64 / k_star,
        space_words: mp.space.total_words(),
        arrival: "edge".into(),
    });

    let mut sc_grouped = VecStream::from_instance(inst_sc);
    ArrivalOrder::SetGrouped(9).apply(sc_grouped.edges_mut());
    let prog = progressive_set_cover(&sc_grouped, inst_sc.num_elements(), 3);
    rows.push(Row {
        problem: "set cover".into(),
        algorithm: "progressive greedy [18]/[13] ((p+1)m^(1/(p+1)))".into(),
        passes: 3,
        measured: prog.family.len() as f64 / k_star,
        space_words: prog.space.total_words(),
        arrival: "set".into(),
    });

    let sc_all = store_all_set_cover(&sc_stream);
    rows.push(Row {
        problem: "set cover".into(),
        algorithm: "store-all greedy (ln m)".into(),
        passes: 1,
        measured: sc_all.family.len() as f64 / k_star,
        space_words: sc_all.space.total_words(),
        arrival: "edge".into(),
    });

    let mut t = Table::new(
        "Table 1 (measured): k-cover ratio = coverage/OPT; set-cover ratio = |S|/k*",
        &[
            "problem",
            "algorithm",
            "passes",
            "measured",
            "space (words)",
            "arrival",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.problem.clone(),
            r.algorithm.clone(),
            r.passes.to_string(),
            fmt_f(r.measured, 3),
            fmt_count(r.space_words),
            r.arrival.clone(),
        ]);
    }
    out.note(format!(
        "k-cover workload: n=500, m=100_000, k={k}, |E|={} (planted OPT = m)\n\
         set-cover workload: n=300, m=50_000, k*=8, |E|={}",
        fmt_count(inst.num_edges() as u64),
        fmt_count(inst_sc.num_edges() as u64),
    ));
    out.table(&t);
    out.note(
        "Reading: the sketch matches the offline ceiling's quality in one pass\n\
         over an edge-arrival stream with far fewer stored words, while the\n\
         set-arrival baselines pay Õ(m) space for weaker factors — the\n\
         relationships Table 1 of the paper claims.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_runs_and_orders_hold() {
        let out = super::run();
        let rows = out.json.as_array().expect("rows array");
        let get = |alg: &str| -> f64 {
            rows.iter()
                .find(|r| r["algorithm"].as_str().unwrap().contains(alg))
                .unwrap()["measured"]
                .as_f64()
                .unwrap()
        };
        // Quality ordering on planted instances.
        assert!(get("Alg 3") >= get("Saha-Getoor"));
        assert!(get("Alg 3") >= 1.0 - 1.0 / std::f64::consts::E - 0.2);
        assert!(get("Saha-Getoor") >= 0.25);
        assert!(get("SieveStreaming") >= 0.4);
        // Set-cover rows report size ratios ≥ 1.
        assert!(get("Alg 5") >= 1.0);
        assert!(get("Alg 6") >= 1.0);
    }
}
