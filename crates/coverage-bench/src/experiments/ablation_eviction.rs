//! A5 — eviction-policy ablation (why Algorithm 2 evicts the max hash).
//!
//! Swap the paper's max-hash eviction for FIFO or random eviction — the
//! space bound survives, the guarantee does not. Measured on a planted
//! instance under benign and adversarial arrival orders:
//!
//! * the paper's policy retains an order-*invariant* element sample and a
//!   stable k-cover quality;
//! * FIFO/random retain order-dependent samples; under the adversarial
//!   ascending-hash order they evict exactly the low-hash prefix the
//!   estimator needs, and quality collapses.

use coverage_core::offline::lazy_greedy_k_cover;
use coverage_core::report::{fmt_f, Table};
use coverage_data::planted_k_cover;
use coverage_sketch::{AblatedSketch, EvictionPolicy, SketchParams};
use coverage_stream::{ArrivalOrder, VecStream};
use serde::Serialize;

use crate::harness::ExperimentOutput;

#[derive(Serialize)]
struct Row {
    policy: String,
    order: String,
    ratio: f64,
    jaccard_vs_paper: f64,
}

/// Run experiment A5.
pub fn run() -> ExperimentOutput {
    run_sized(60, 20_000, 6, 600, 3_000)
}

/// Run with explicit workload dimensions.
pub fn run_sized(n: usize, m: u64, k: usize, golden: usize, budget: usize) -> ExperimentOutput {
    let mut out = ExperimentOutput::new("A5");
    let planted = planted_k_cover(n, m, k, golden, 2024);
    let inst = &planted.instance;
    let opt = planted.optimal_value as f64;
    let params = SketchParams::with_budget(n, k, 0.3, budget);
    let seed = 4096;

    type Reorder = Box<dyn Fn(&mut Vec<coverage_core::Edge>)>;
    let orders: Vec<(&str, Reorder)> = vec![
        (
            "random",
            Box::new(|e: &mut Vec<coverage_core::Edge>| ArrivalOrder::Random(5).apply(e)),
        ),
        (
            "hash-descending",
            Box::new(move |e: &mut Vec<coverage_core::Edge>| {
                ArrivalOrder::ByHashDesc(seed).apply(e)
            }),
        ),
        (
            "hash-ascending (adversarial)",
            Box::new(move |e: &mut Vec<coverage_core::Edge>| {
                ArrivalOrder::ByHashDesc(seed).apply(e);
                e.reverse();
            }),
        ),
    ];
    let policies = [
        EvictionPolicy::MaxHash,
        EvictionPolicy::Fifo,
        EvictionPolicy::Random { seed: 17 },
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (oname, reorder) in &orders {
        // Paper-policy reference retained set for this order.
        let mut base = VecStream::from_instance(inst);
        reorder(base.edges_mut());
        let paper = AblatedSketch::from_stream(params, seed, EvictionPolicy::MaxHash, &base);
        let paper_keys = paper.retained_keys();
        for policy in policies {
            let sketch = AblatedSketch::from_stream(params, seed, policy, &base);
            let family = lazy_greedy_k_cover(&sketch.instance(), k).family();
            let ratio = inst.coverage(&family) as f64 / opt;
            let keys = sketch.retained_keys();
            let inter = keys
                .iter()
                .filter(|k| paper_keys.binary_search(k).is_ok())
                .count();
            let union = keys.len() + paper_keys.len() - inter;
            rows.push(Row {
                policy: policy.label().into(),
                order: oname.to_string(),
                ratio,
                jaccard_vs_paper: if union == 0 {
                    1.0
                } else {
                    inter as f64 / union as f64
                },
            });
        }
    }

    let mut t = Table::new(
        "Eviction-policy ablation: k-cover ratio and retained-set Jaccard vs paper policy",
        &[
            "policy",
            "arrival order",
            "coverage/OPT",
            "Jaccard vs max-hash",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.policy.clone(),
            r.order.clone(),
            fmt_f(r.ratio, 3),
            fmt_f(r.jaccard_vs_paper, 3),
        ]);
    }
    out.note(format!(
        "workload: planted n={n}, m={m}, k={k}, golden size {golden}; budget {budget} edges"
    ));
    out.table(&t);
    out.note(
        "Reading: max-hash keeps the identical sample under every order\n\
         (Jaccard 1.0). FIFO/random drift from it, and under the ascending-\n\
         hash adversarial order they retain an almost disjoint (high-hash)\n\
         sample — Definition 2.1's specific eviction rule is load-bearing.",
    );
    out.set_json(rows);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_policy_is_invariant_and_competitive() {
        let out = super::run_sized(30, 4_000, 4, 150, 800);
        let rows = out.json.as_array().expect("rows");
        // Paper policy: Jaccard 1.0 against itself under every order.
        for r in rows {
            if r["policy"].as_str().unwrap().contains("paper") {
                assert!((r["jaccard_vs_paper"].as_f64().unwrap() - 1.0).abs() < 1e-12);
                assert!(r["ratio"].as_f64().unwrap() > 0.5);
            }
        }
        // Under the adversarial order, fifo must diverge from the paper
        // sample.
        let fifo_adv = rows
            .iter()
            .find(|r| {
                r["policy"].as_str().unwrap() == "fifo"
                    && r["order"].as_str().unwrap().contains("adversarial")
            })
            .expect("fifo adversarial row");
        assert!(fifo_adv["jaccard_vs_paper"].as_f64().unwrap() < 0.7);
    }
}
