//! # coverage-bench
//!
//! The experiment harness: one module (and one binary) per table, figure,
//! theorem-shaped experiment, and ablation from DESIGN.md's experiment
//! index. Each experiment renders the paper-style table to stdout and
//! drops a JSON record under `target/experiments/`.
//!
//! | id | binary | paper artifact |
//! |---|---|---|
//! | T1 | `table1` | Table 1 (algorithm comparison) |
//! | F1 | `fig1` | Figure 1 (`Hp` vs `H'p` worked example) |
//! | E1 | `exp_eps_sweep` | Theorem 3.1 approximation shape |
//! | E2 | `exp_space_vs_m` | `Õ(n)` independence of `m` |
//! | E3 | `exp_space_vs_n` | `Õ(n)` scaling in `n` |
//! | E4 | `exp_outliers` | Theorem 3.3 (`(1+ε)ln(1/λ)`) |
//! | E5 | `exp_multipass` | Theorem 3.4 (pass/space trade-off) |
//! | E6 | `exp_l0_vs_sketch` | Appendix D (`Õ(nk)` vs `Õ(n)`) |
//! | E7 | `exp_oracle_hardness` | Theorem 1.3 / Appendix A |
//! | E8 | `exp_disjointness` | Theorem 1.2 / Appendix E |
//! | E9 | `exp_update_time` | `Õ(1)` update time |
//! | A1 | `exp_ablation_degcap` | Lemma 2.4's degree cap |
//! | A2 | `exp_ablation_adaptive_p` | Definition 2.1's adaptive `p*` |
//! | A3 | `exp_order_sensitivity` | arrival-order robustness |
//! | D1 | `exp_distributed` | composable sketches across machines |
//! | D2 | `exp_dynamic` | dynamic (insert/delete) vs insertion-only |
//!
//! `run_all` executes everything in sequence.
//!
//! Separately from the experiment index, `bench_smoke` is the CI gate
//! binary: it emits `BENCH_2.json` (parallel vs sequential executor),
//! `BENCH_3.json` (dynamic pipeline determinism + accuracy), and
//! `BENCH_4.json` (flat vs map-backed ingestion engine: retained-content
//! equivalence plus a ≥1.5× bank-throughput gate), exiting non-zero when
//! any gate fails. The criterion ingest comparison lives in
//! `benches/bench_ingest.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;

pub use harness::ExperimentOutput;
