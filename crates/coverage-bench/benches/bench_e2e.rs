//! End-to-end Criterion benchmarks: full Algorithm 3 / Algorithm 5 runs
//! against the store-all baseline on identical streams.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use coverage_algs::baselines::store_all_k_cover;
use coverage_algs::{k_cover_streaming, set_cover_outliers, KCoverConfig, OutlierConfig};
use coverage_data::planted_k_cover;
use coverage_sketch::SketchSizing;
use coverage_stream::{ArrivalOrder, VecStream};

fn bench_kcover_e2e(c: &mut Criterion) {
    let planted = planted_k_cover(300, 50_000, 8, 300, 3);
    let mut stream = VecStream::from_instance(&planted.instance);
    ArrivalOrder::Random(1).apply(stream.edges_mut());

    c.bench_function("alg3_kcover_n300_m50k", |b| {
        let cfg = KCoverConfig::new(8, 0.25, 5).with_sizing(SketchSizing::Budget(5_000));
        b.iter(|| black_box(k_cover_streaming(&stream, &cfg).family.len()))
    });
    c.bench_function("store_all_kcover_n300_m50k", |b| {
        b.iter(|| black_box(store_all_k_cover(&stream, 8).family.len()))
    });
}

fn bench_outliers_e2e(c: &mut Criterion) {
    let planted = coverage_data::planted_set_cover(150, 20_000, 8, 200, 5);
    let mut stream = VecStream::from_instance(&planted.instance);
    ArrivalOrder::Random(2).apply(stream.edges_mut());

    let mut group = c.benchmark_group("alg5_outliers");
    group.sample_size(10);
    for parallel in [false, true] {
        group.bench_function(if parallel { "parallel" } else { "sequential" }, |b| {
            let cfg = OutlierConfig::new(0.1, 0.5, 7)
                .with_sizing(SketchSizing::Budget(3_000))
                .with_parallel(parallel);
            b.iter(|| black_box(set_cover_outliers(&stream, &cfg).family.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kcover_e2e, bench_outliers_e2e);
criterion_main!(benches);
