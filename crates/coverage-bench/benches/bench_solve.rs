//! Criterion benchmarks for the zero-rebuild solve path: owned
//! `instance()` rebuild vs packed `csr_view()` export on a built
//! sketch, and the lazy (Minoux) engine vs the exact decremental
//! bucket-queue greedy — separately and end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coverage_core::offline::{bucket_greedy_k_cover, lazy_greedy_k_cover};
use coverage_core::{CoverageView, CsrInstance};
use coverage_data::uniform_instance;
use coverage_sketch::{SketchParams, ThresholdSketch};
use coverage_stream::VecStream;

fn built_sketch() -> ThresholdSketch {
    let inst = uniform_instance(200, 50_000, 400, 11);
    let stream = VecStream::from_instance(&inst);
    ThresholdSketch::from_stream(SketchParams::with_budget(200, 8, 0.3, 20_000), 7, &stream)
}

/// Exporting the sketch content: HashMap-remap rebuild vs counting-sort
/// CSR view over the flat store.
fn bench_export(c: &mut Criterion) {
    let sketch = built_sketch();
    let mut group = c.benchmark_group("sketch_export");
    group.bench_function("instance_rebuild", |b| {
        b.iter(|| black_box(sketch.instance().num_edges()))
    });
    group.bench_function("csr_view", |b| {
        b.iter(|| black_box(sketch.csr_view().num_edges()))
    });
    group.finish();
}

/// The greedy engines head to head on identical graphs (both run on
/// whichever representation favors them: lazy on the owned instance it
/// was written for, bucket on the packed CSR).
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_engines");
    for n in [200usize, 800] {
        let inst = uniform_instance(n, 20_000, 300, 11);
        let csr = CsrInstance::from_instance(&inst);
        let k = 20;
        group.bench_with_input(BenchmarkId::new("lazy", n), &inst, |b, inst| {
            b.iter(|| black_box(lazy_greedy_k_cover(inst, k).coverage()))
        });
        group.bench_with_input(BenchmarkId::new("bucket", n), &csr, |b, csr| {
            b.iter(|| black_box(bucket_greedy_k_cover(csr, k).coverage()))
        });
    }
    group.finish();
}

/// End to end — Algorithm 3 line 3 per query: export + greedy.
fn bench_solve_on_sketch(c: &mut Criterion) {
    let sketch = built_sketch();
    let k = 8;
    let mut group = c.benchmark_group("solve_on_sketch");
    group.bench_function("instance_plus_lazy", |b| {
        b.iter(|| black_box(lazy_greedy_k_cover(&sketch.instance(), k).coverage()))
    });
    group.bench_function("csr_view_plus_bucket", |b| {
        b.iter(|| black_box(bucket_greedy_k_cover(&sketch.csr_view(), k).coverage()))
    });
    group.finish();
}

criterion_group!(benches, bench_export, bench_engines, bench_solve_on_sketch);
criterion_main!(benches);
