//! Criterion microbenchmarks for the `H≤n` sketch update path (the E9
//! claim: `Õ(1)` per edge, independent of stream length and budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use coverage_data::stream_uniform;
use coverage_sketch::{SketchParams, ThresholdSketch};
use coverage_stream::EdgeStream;

fn bench_update_throughput(c: &mut Criterion) {
    let n = 1_000;
    let mut group = c.benchmark_group("sketch_update");
    for budget in [1_000usize, 10_000, 100_000] {
        let edges_per_set = 200;
        let total = (n * edges_per_set) as u64;
        let stream = stream_uniform(n, 1_000_000, edges_per_set, 3);
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(BenchmarkId::new("budget", budget), &budget, |b, &budget| {
            let params = SketchParams::with_budget(n, 10, 0.2, budget);
            b.iter(|| {
                let mut s = ThresholdSketch::new(params, 7);
                stream.for_each(&mut |e| s.update(e));
                black_box(s.edges_stored())
            });
        });
    }
    group.finish();
}

fn bench_update_vs_m(c: &mut Criterion) {
    // Update cost must not depend on the universe size m.
    let n = 500;
    let mut group = c.benchmark_group("sketch_update_vs_m");
    for m in [10_000u64, 10_000_000] {
        let stream = stream_uniform(n, m, 200, 5);
        group.throughput(Throughput::Elements((n * 200) as u64));
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, _| {
            let params = SketchParams::with_budget(n, 8, 0.25, 5_000);
            b.iter(|| {
                let mut s = ThresholdSketch::new(params, 9);
                stream.for_each(&mut |e| s.update(e));
                black_box(s.elements_stored())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_throughput, bench_update_vs_m);
criterion_main!(benches);
