//! Criterion benchmarks for the greedy engines: lazy (Minoux) vs naive
//! rescanning greedy, on instances shaped like sketch contents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coverage_core::offline::{
    greedy_k_cover, greedy_set_cover, lazy_greedy_k_cover, stochastic_greedy_k_cover,
};
use coverage_data::uniform_instance;

fn bench_lazy_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_kcover");
    for n in [200usize, 800] {
        let inst = uniform_instance(n, 20_000, 300, 11);
        let k = 20;
        group.bench_with_input(BenchmarkId::new("lazy", n), &inst, |b, inst| {
            b.iter(|| black_box(lazy_greedy_k_cover(inst, k).coverage()))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &inst, |b, inst| {
            b.iter(|| black_box(greedy_k_cover(inst, k).coverage()))
        });
        group.bench_with_input(BenchmarkId::new("stochastic", n), &inst, |b, inst| {
            b.iter(|| black_box(stochastic_greedy_k_cover(inst, k, 0.1, 7).coverage()))
        });
    }
    group.finish();
}

fn bench_set_cover(c: &mut Criterion) {
    let inst = uniform_instance(400, 10_000, 200, 13);
    c.bench_function("greedy_set_cover_400x10k", |b| {
        b.iter(|| black_box(greedy_set_cover(&inst).len()))
    });
}

criterion_group!(benches, bench_lazy_vs_naive, bench_set_cover);
criterion_main!(benches);
