//! Criterion microbenchmarks for the distributed path: sketch merging
//! (the reducer's inner loop), snapshot wire round-trips, and full tree
//! reductions at varying fan-in — the cost model behind the companion
//! paper's round/communication trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use coverage_core::Edge;
use coverage_dist::tree_reduce;
use coverage_sketch::{SketchParams, SketchSnapshot, ThresholdSketch};

fn build_shards(w: usize, n_sets: u32, per_set: u64, budget: usize) -> Vec<ThresholdSketch> {
    let params = SketchParams::with_budget(n_sets as usize, 8, 0.25, budget);
    let mut shards: Vec<ThresholdSketch> =
        (0..w).map(|_| ThresholdSketch::new(params, 99)).collect();
    let mut i = 0usize;
    for s in 0..n_sets {
        for e in 0..per_set {
            shards[i % w].update(Edge::new(s, e * 131 + s as u64));
            i += 1;
        }
    }
    shards
}

fn bench_pairwise_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_merge_pair");
    for budget in [2_000usize, 20_000] {
        let shards = build_shards(2, 400, 500, budget);
        group.bench_with_input(BenchmarkId::new("budget", budget), &budget, |b, _| {
            b.iter(|| {
                let mut a = shards[0].clone();
                a.merge_from(black_box(&shards[1]));
                black_box(a.edges_stored())
            })
        });
    }
    group.finish();
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_wire");
    for budget in [2_000usize, 20_000] {
        let shard = build_shards(1, 400, 500, budget).pop().unwrap();
        group.bench_with_input(BenchmarkId::new("budget", budget), &budget, |b, _| {
            b.iter(|| {
                let json = SketchSnapshot::of(black_box(&shard)).to_json();
                let back = SketchSnapshot::from_json(&json).unwrap().restore();
                black_box(back.edges_stored())
            })
        });
    }
    group.finish();
}

fn bench_tree_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_reduce_16_shards");
    group.sample_size(10);
    for fan_in in [2usize, 4, 16] {
        let shards = build_shards(16, 400, 300, 4_000);
        group.bench_with_input(BenchmarkId::new("fan_in", fan_in), &fan_in, |b, &f| {
            b.iter(|| {
                let (merged, report) = tree_reduce(shards.clone(), f);
                black_box((merged.edges_stored(), report.total_words()))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pairwise_merge,
    bench_snapshot_roundtrip,
    bench_tree_reduce
);
criterion_main!(benches);
