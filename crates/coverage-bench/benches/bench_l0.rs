//! Criterion benchmarks for the distinct-count substrates (KMV vs
//! LogLog): insert throughput and merge/estimate cost — the inner loop of
//! the Appendix D baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use coverage_hash::{KmvSketch, LogLogCounter, UnitHash};

fn bench_inserts(c: &mut Criterion) {
    let keys: Vec<u64> = (0..100_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9))
        .collect();
    let mut group = c.benchmark_group("distinct_insert");
    group.throughput(Throughput::Elements(keys.len() as u64));
    for t in [256usize, 4096] {
        group.bench_with_input(BenchmarkId::new("kmv", t), &t, |b, &t| {
            b.iter(|| {
                let mut s = KmvSketch::new(t, UnitHash::new(1));
                for &k in &keys {
                    s.insert(k);
                }
                black_box(s.estimate())
            })
        });
    }
    group.bench_function("hll_b12", |b| {
        b.iter(|| {
            let mut s = LogLogCounter::new(12, UnitHash::new(1));
            for &k in &keys {
                s.insert(k);
            }
            black_box(s.estimate())
        })
    });
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let t = 1024;
    let h = UnitHash::new(2);
    let sketches: Vec<KmvSketch> = (0..16)
        .map(|i| {
            let mut s = KmvSketch::new(t, h);
            for k in 0..20_000u64 {
                s.insert(k.wrapping_mul(31).wrapping_add(i * 1_000_000));
            }
            s
        })
        .collect();
    c.bench_function("kmv_merge_16x1024", |b| {
        b.iter(|| black_box(KmvSketch::merged(sketches.iter()).estimate()))
    });
}

criterion_group!(benches, bench_inserts, bench_merge);
criterion_main!(benches);
