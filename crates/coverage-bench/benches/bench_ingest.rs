//! Criterion microbenchmarks for the flat ingestion engine vs the
//! map-backed reference — the per-update costs ISSUE 4 removes: the
//! second key hash of the map probe, the per-element `Vec` allocation,
//! the `binary_search` + `insert` memmove, and (on the bank path)
//! per-sketch re-hashing of the one global `h`.
//!
//! The CI-gated numbers live in `bench_smoke` (`BENCH_4.json`); these
//! benches exist for local iteration on the hot loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use coverage_data::stream_uniform;
use coverage_sketch::{ReferenceSketch, SketchBank, SketchParams, ThresholdSketch};
use coverage_stream::EdgeStream;

const BATCH: usize = 4096;

/// Single sketch: flat engine (batched) vs reference (per-edge map path).
fn bench_single_engine(c: &mut Criterion) {
    let n = 400;
    let edges_per_set = 500;
    let total = (n * edges_per_set) as u64;
    let stream = stream_uniform(n, 500_000, edges_per_set, 11);
    let params = SketchParams::with_budget(n, 8, 0.25, 5_000);
    let mut group = c.benchmark_group("ingest_single");
    group.throughput(Throughput::Elements(total));
    group.bench_function(BenchmarkId::new("engine", "flat"), |b| {
        b.iter(|| {
            let mut s = ThresholdSketch::new(params, 7);
            s.consume_batched(&stream, BATCH);
            black_box(s.edges_stored())
        });
    });
    group.bench_function(BenchmarkId::new("engine", "reference"), |b| {
        b.iter(|| {
            let mut s = ReferenceSketch::new(params, 7);
            s.consume(&stream);
            black_box(s.edges_stored())
        });
    });
    group.finish();
}

/// Full bank: shared-hash flat path vs a vector of reference sketches
/// each hashing and scanning every edge itself.
fn bench_bank_engine(c: &mut Criterion) {
    let n = 200;
    let edges_per_set = 800;
    let total = (n * edges_per_set) as u64;
    let stream = stream_uniform(n, 200_000, edges_per_set, 3);
    let guesses: Vec<SketchParams> = (0..6)
        .map(|g| SketchParams::with_budget(n, 1 << g, 0.3, 1_500 + 500 * g))
        .collect();
    let mut group = c.benchmark_group("ingest_bank");
    group.throughput(Throughput::Elements(total));
    group.bench_function(BenchmarkId::new("engine", "flat_shared_hash"), |b| {
        b.iter(|| {
            let mut bank = SketchBank::new(guesses.iter().copied(), 7);
            bank.consume_batched(&stream, BATCH);
            black_box(bank.len())
        });
    });
    group.bench_function(BenchmarkId::new("engine", "reference"), |b| {
        b.iter(|| {
            let mut bank: Vec<ReferenceSketch> = guesses
                .iter()
                .map(|&p| ReferenceSketch::new(p, 7))
                .collect();
            stream.for_each_batch(BATCH, &mut |chunk| {
                for s in &mut bank {
                    s.update_batch(chunk);
                }
            });
            black_box(bank.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_single_engine, bench_bank_engine);
criterion_main!(benches);
