//! Criterion microbenchmarks for the hashing substrate: the per-edge hash
//! is the innermost operation of every streaming update, so its cost gates
//! the whole pipeline. Compares the default SplitMix64 element hash with
//! the 3-wise-independent tabulation alternative (A4's performance side),
//! plus the KMV distinct-counter update used by the ℓ₀ baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use coverage_hash::{ElementHasher, KmvSketch, TabulationHash, UnitHash};

const KEYS: u64 = 100_000;

fn bench_element_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("element_hash");
    group.throughput(Throughput::Elements(KEYS));

    let unit = UnitHash::new(42);
    group.bench_function("splitmix64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..KEYS {
                acc ^= unit.hash(black_box(k));
            }
            black_box(acc)
        })
    });

    let tab = TabulationHash::new(42);
    group.bench_function("tabulation", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..KEYS {
                acc ^= tab.hash64(black_box(k));
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_kmv_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmv_update");
    group.throughput(Throughput::Elements(KEYS));
    for t in [64usize, 1024] {
        group.bench_with_input(BenchmarkId::new("t", t), &t, |b, &t| {
            b.iter(|| {
                let mut s = KmvSketch::new(t, UnitHash::new(7));
                for k in 0..KEYS {
                    s.insert(black_box(k));
                }
                black_box(s.estimate())
            })
        });
    }
    group.finish();
}

fn bench_kmv_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmv_merge");
    for t in [64usize, 1024] {
        let mut a = KmvSketch::new(t, UnitHash::new(7));
        let mut b2 = KmvSketch::new(t, UnitHash::new(7));
        for k in 0..50_000u64 {
            a.insert(k);
            b2.insert(k + 25_000);
        }
        group.bench_with_input(BenchmarkId::new("t", t), &t, |b, _| {
            b.iter(|| {
                let mut m = a.clone();
                m.merge_from(black_box(&b2));
                black_box(m.estimate())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_element_hashes,
    bench_kmv_update,
    bench_kmv_merge
);
criterion_main!(benches);
