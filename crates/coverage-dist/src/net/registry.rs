//! The coordinator's **worker registry**: one entry per TCP connection,
//! tracking identity (id + peer address), liveness state, work in
//! flight, shards completed, and heartbeat round-trip latency.
//!
//! Liveness on a socket cannot mean "pipe EOF": a partitioned or
//! half-open link delivers no signal at all. The registry therefore
//! grades each worker by the age of its oldest unanswered heartbeat
//! probe: under `suspect_after` the worker is [`WorkerState::Live`],
//! between `suspect_after` and `dead_after` it is
//! [`WorkerState::Suspect`] (no new shards, existing job keeps its
//! deadline), and past `dead_after` it is declared
//! [`WorkerState::Dead`] — its connection is severed and its in-flight
//! shard requeued. An echo at any point before death snaps the worker
//! back to [`WorkerState::Live`] (a *recovery*, counted separately). A
//! false positive is always safe: shard jobs are self-contained and
//! `merge_from` is associative/commutative, so requeueing a shard that a
//! slow-but-healthy worker was still building cannot change the result.

use std::time::{Duration, Instant};

/// Liveness state of one registered worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerState {
    /// Connected, handshake probe sent, no echo yet — not trusted with
    /// shards until it proves it speaks the current protocol version.
    Joining,
    /// Echoing heartbeats inside the suspect threshold; eligible for
    /// shard dispatch.
    Live,
    /// Its oldest unanswered probe is older than `suspect_after`:
    /// possibly stalled, partitioned, or just slow. No new shards; an
    /// echo recovers it to [`WorkerState::Live`].
    Suspect,
    /// Declared dead (missed probes past `dead_after`, connection error,
    /// or EOF). Terminal: a worker process that comes back connects as a
    /// **new** registry entry.
    Dead,
}

impl std::fmt::Display for WorkerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerState::Joining => write!(f, "joining"),
            WorkerState::Live => write!(f, "live"),
            WorkerState::Suspect => write!(f, "suspect"),
            WorkerState::Dead => write!(f, "dead"),
        }
    }
}

/// Min/mean/max round-trip latency of answered heartbeat probes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeartbeatStats {
    /// Number of probe round-trips recorded.
    pub probes: u64,
    min_ns: u64,
    max_ns: u64,
    sum_ns: u64,
}

impl HeartbeatStats {
    /// Record one answered probe's round-trip time.
    pub fn record(&mut self, rtt: Duration) {
        let ns = rtt.as_nanos().min(u128::from(u64::MAX)) as u64;
        if self.probes == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.probes += 1;
    }

    /// Fold another worker's stats into this aggregate.
    pub fn merge(&mut self, other: &HeartbeatStats) {
        if other.probes == 0 {
            return;
        }
        if self.probes == 0 {
            *self = *other;
            return;
        }
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.probes += other.probes;
    }

    /// Fastest recorded round-trip, in nanoseconds (0 when no probe was
    /// ever answered).
    pub fn min_ns(&self) -> u64 {
        self.min_ns
    }

    /// Slowest recorded round-trip, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean round-trip, in nanoseconds (0 when no probe was answered).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.probes).unwrap_or(0)
    }
}

/// A read-only snapshot of one registry entry, surfaced on
/// [`SocketResult`](crate::net::SocketResult) so tests and operators can
/// see exactly which worker did what.
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// Registry id (connection order).
    pub id: usize,
    /// Peer address as reported by the accepted socket.
    pub addr: String,
    /// Final liveness state.
    pub state: WorkerState,
    /// Shards this worker completed (replies accepted).
    pub shards_completed: usize,
    /// Whether it connected after shard dispatch had begun (admitted
    /// mid-run — a late joiner or a rejoining worker process).
    pub late_joiner: bool,
    /// Heartbeat round-trip latency stats for this worker.
    pub rtt: HeartbeatStats,
}

/// The verdict of a liveness check against the probe-age thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Liveness {
    /// No transition.
    Unchanged,
    /// Crossed `suspect_after` (live/joining → suspect).
    TurnedSuspect,
    /// Crossed `dead_after` (→ dead); the caller must sever the
    /// connection and requeue the worker's in-flight shard.
    TurnedDead,
}

struct Entry {
    addr: String,
    state: WorkerState,
    late_joiner: bool,
    shards_completed: usize,
    jobs_in_flight: usize,
    rtt: HeartbeatStats,
    /// Oldest unanswered probe: `(nonce, sent_at)`.
    pending: Option<(u64, Instant)>,
}

/// The registry itself: entries are append-only (a rejoining worker is a
/// new entry; [`WorkerState::Dead`] is terminal), indexed by connection
/// id.
#[derive(Default)]
pub struct WorkerRegistry {
    entries: Vec<Entry>,
    suspect_transitions: usize,
    suspect_recoveries: usize,
}

impl WorkerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        WorkerRegistry::default()
    }

    /// Number of entries ever admitted (including dead ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no worker was ever admitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Admit a new connection in [`WorkerState::Joining`]; returns its
    /// id.
    pub fn admit(&mut self, addr: String, late_joiner: bool) -> usize {
        let id = self.entries.len();
        self.entries.push(Entry {
            addr,
            state: WorkerState::Joining,
            late_joiner,
            shards_completed: 0,
            jobs_in_flight: 0,
            rtt: HeartbeatStats::default(),
            pending: None,
        });
        id
    }

    /// Current state of worker `id`.
    pub fn state(&self, id: usize) -> WorkerState {
        self.entries[id].state
    }

    /// Whether `id` may be handed a new shard right now.
    pub fn dispatchable(&self, id: usize) -> bool {
        self.entries[id].state == WorkerState::Live
    }

    /// Whether `id` still counts as a cluster member (anything but
    /// dead).
    pub fn usable(&self, id: usize) -> bool {
        self.entries[id].state != WorkerState::Dead
    }

    /// Number of non-dead workers.
    pub fn usable_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.state != WorkerState::Dead)
            .count()
    }

    /// Whether `id` has an unanswered probe outstanding.
    pub fn probe_pending(&self, id: usize) -> bool {
        self.entries[id].pending.is_some()
    }

    /// Record that a probe with `nonce` was written to `id` at `at`.
    /// Only the **oldest** unanswered probe is tracked — liveness is
    /// graded on it, and no new probe is sent while one is pending.
    pub fn note_probe(&mut self, id: usize, nonce: u64, at: Instant) {
        let e = &mut self.entries[id];
        if e.pending.is_none() {
            e.pending = Some((nonce, at));
        }
    }

    /// Record a heartbeat echo from `id` at `at`. A matching nonce
    /// clears the pending probe, records its round-trip, and snaps the
    /// worker back to [`WorkerState::Live`] (counting a recovery if it
    /// was suspect). Returns the round-trip when the nonce matched.
    pub fn note_echo(&mut self, id: usize, nonce: u64, at: Instant) -> Option<Duration> {
        let e = &mut self.entries[id];
        if e.state == WorkerState::Dead {
            return None;
        }
        let (expect, sent) = e.pending?;
        if expect != nonce {
            return None;
        }
        e.pending = None;
        let rtt = at.saturating_duration_since(sent);
        e.rtt.record(rtt);
        if e.state == WorkerState::Suspect {
            self.suspect_recoveries += 1;
        }
        e.state = WorkerState::Live;
        Some(rtt)
    }

    /// Grade `id`'s liveness at `now` against the probe-age thresholds,
    /// applying (and reporting) any state transition. Callers act on
    /// [`Liveness::TurnedDead`] by severing the connection and requeuing
    /// the in-flight shard.
    pub fn check_liveness(
        &mut self,
        id: usize,
        now: Instant,
        suspect_after: Duration,
        dead_after: Duration,
    ) -> Liveness {
        let e = &mut self.entries[id];
        if e.state == WorkerState::Dead {
            return Liveness::Unchanged;
        }
        let Some((_, sent)) = e.pending else {
            return Liveness::Unchanged;
        };
        let age = now.saturating_duration_since(sent);
        if age >= dead_after {
            e.state = WorkerState::Dead;
            Liveness::TurnedDead
        } else if age >= suspect_after && e.state != WorkerState::Suspect {
            e.state = WorkerState::Suspect;
            self.suspect_transitions += 1;
            Liveness::TurnedSuspect
        } else {
            Liveness::Unchanged
        }
    }

    /// Declare `id` dead outright (connection error, EOF, reaped
    /// deadline). Idempotent.
    pub fn mark_dead(&mut self, id: usize) {
        let e = &mut self.entries[id];
        e.state = WorkerState::Dead;
        e.jobs_in_flight = 0;
        e.pending = None;
    }

    /// Record that a shard job was handed to `id`.
    pub fn job_started(&mut self, id: usize) {
        self.entries[id].jobs_in_flight += 1;
    }

    /// Record that `id` delivered an accepted reply for its shard.
    pub fn job_finished(&mut self, id: usize) {
        let e = &mut self.entries[id];
        e.jobs_in_flight = e.jobs_in_flight.saturating_sub(1);
        e.shards_completed += 1;
    }

    /// Shards completed by worker `id`.
    pub fn shards_completed(&self, id: usize) -> usize {
        self.entries[id].shards_completed
    }

    /// Times any worker crossed live→suspect.
    pub fn suspect_transitions(&self) -> usize {
        self.suspect_transitions
    }

    /// Times a suspect worker recovered to live on a late echo.
    pub fn suspect_recoveries(&self) -> usize {
        self.suspect_recoveries
    }

    /// Heartbeat RTT stats aggregated over every worker.
    pub fn aggregate_rtt(&self) -> HeartbeatStats {
        let mut agg = HeartbeatStats::default();
        for e in &self.entries {
            agg.merge(&e.rtt);
        }
        agg
    }

    /// Read-only summaries of every entry, in admission order.
    pub fn summaries(&self) -> Vec<WorkerSummary> {
        self.entries
            .iter()
            .enumerate()
            .map(|(id, e)| WorkerSummary {
                id,
                addr: e.addr.clone(),
                state: e.state,
                shards_completed: e.shards_completed,
                late_joiner: e.late_joiner,
                rtt: e.rtt,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUSPECT: Duration = Duration::from_millis(100);
    const DEAD: Duration = Duration::from_millis(400);

    #[test]
    fn missed_probes_walk_live_to_suspect_to_dead() {
        let mut reg = WorkerRegistry::new();
        let t0 = Instant::now();
        let w = reg.admit("127.0.0.1:9".into(), false);
        assert_eq!(reg.state(w), WorkerState::Joining);
        reg.note_probe(w, 1, t0);
        assert!(reg.note_echo(w, 1, t0 + Duration::from_millis(2)).is_some());
        assert_eq!(reg.state(w), WorkerState::Live);
        assert!(reg.dispatchable(w));
        // A probe nobody answers.
        reg.note_probe(w, 2, t0);
        assert_eq!(
            reg.check_liveness(w, t0 + Duration::from_millis(50), SUSPECT, DEAD),
            Liveness::Unchanged
        );
        assert_eq!(
            reg.check_liveness(w, t0 + Duration::from_millis(150), SUSPECT, DEAD),
            Liveness::TurnedSuspect
        );
        assert_eq!(reg.state(w), WorkerState::Suspect);
        assert!(!reg.dispatchable(w), "suspect workers get no new shards");
        assert!(reg.usable(w), "suspect is not dead");
        assert_eq!(
            reg.check_liveness(w, t0 + Duration::from_millis(200), SUSPECT, DEAD),
            Liveness::Unchanged,
            "suspect fires once per probe"
        );
        assert_eq!(
            reg.check_liveness(w, t0 + Duration::from_millis(500), SUSPECT, DEAD),
            Liveness::TurnedDead
        );
        assert_eq!(reg.state(w), WorkerState::Dead);
        assert_eq!(reg.usable_count(), 0);
        assert_eq!(reg.suspect_transitions(), 1);
    }

    #[test]
    fn a_late_echo_recovers_a_suspect_worker() {
        let mut reg = WorkerRegistry::new();
        let t0 = Instant::now();
        let w = reg.admit("a".into(), true);
        reg.note_probe(w, 7, t0);
        reg.check_liveness(w, t0 + Duration::from_millis(150), SUSPECT, DEAD);
        assert_eq!(reg.state(w), WorkerState::Suspect);
        let rtt = reg
            .note_echo(w, 7, t0 + Duration::from_millis(180))
            .unwrap();
        assert_eq!(rtt, Duration::from_millis(180));
        assert_eq!(reg.state(w), WorkerState::Live);
        assert_eq!(reg.suspect_recoveries(), 1);
        assert!(reg.summaries()[0].late_joiner);
    }

    #[test]
    fn dead_is_terminal_and_mismatched_nonces_are_ignored() {
        let mut reg = WorkerRegistry::new();
        let t0 = Instant::now();
        let w = reg.admit("a".into(), false);
        reg.note_probe(w, 1, t0);
        assert!(reg.note_echo(w, 99, t0).is_none(), "wrong nonce ignored");
        reg.mark_dead(w);
        assert!(reg.note_echo(w, 1, t0).is_none(), "dead workers stay dead");
        assert_eq!(
            reg.check_liveness(w, t0 + DEAD + DEAD, SUSPECT, DEAD),
            Liveness::Unchanged
        );
        assert_eq!(reg.state(w), WorkerState::Dead);
    }

    #[test]
    fn rtt_stats_track_min_mean_max_and_merge() {
        let mut a = HeartbeatStats::default();
        assert_eq!((a.min_ns(), a.mean_ns(), a.max_ns()), (0, 0, 0));
        a.record(Duration::from_nanos(100));
        a.record(Duration::from_nanos(300));
        assert_eq!((a.min_ns(), a.mean_ns(), a.max_ns()), (100, 200, 300));
        let mut b = HeartbeatStats::default();
        b.record(Duration::from_nanos(50));
        b.merge(&a);
        assert_eq!(b.probes, 3);
        assert_eq!((b.min_ns(), b.max_ns()), (50, 300));
        assert_eq!(b.mean_ns(), 150);
        let mut empty = HeartbeatStats::default();
        empty.merge(&b);
        assert_eq!(empty, b, "merging into empty copies");
    }

    #[test]
    fn job_accounting_rolls_up_into_summaries() {
        let mut reg = WorkerRegistry::new();
        let t0 = Instant::now();
        let w = reg.admit("w".into(), false);
        reg.note_probe(w, 1, t0);
        reg.note_echo(w, 1, t0 + Duration::from_millis(1));
        reg.job_started(w);
        reg.job_finished(w);
        reg.job_started(w);
        reg.job_finished(w);
        let s = &reg.summaries()[0];
        assert_eq!(s.shards_completed, 2);
        assert_eq!(s.state, WorkerState::Live);
        assert_eq!(reg.aggregate_rtt().probes, 1);
        assert_eq!(reg.shards_completed(w), 2);
    }
}
