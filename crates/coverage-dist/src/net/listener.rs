//! The socket executor: [`SocketRunner`] accepts TCP workers, streams
//! shards to them in bounded chunks, and recovers from every network
//! failure mode the fault plan can inject.
//!
//! ## Thread shape
//!
//! One **acceptor** thread polls the listener and forwards new
//! connections; each connection gets a dedicated **reader** thread
//! (frames → the shared event channel, so a stalled peer blocks its
//! reader, never the coordinator) and a dedicated **writer** thread
//! (commands → frames, so a peer that stops reading blocks its writer,
//! never the coordinator). The main loop is single-threaded and
//! event-driven, exactly like `ProcessRunner::dispatch`, waiting on
//! whichever comes first: a frame, a heartbeat tick, a job deadline, a
//! retry backoff maturing, a scheduled late spawn, or the empty-registry
//! grace deadline.
//!
//! ## Why recovery cannot change the answer
//!
//! Every shard job is self-contained (params + seed + the shard's
//! edges) and `merge_from` is associative and commutative, so a shard
//! requeued after a mid-stream connection loss — or rebuilt inline when
//! the registry empties — produces byte-identical locals. The reduce
//! consumes locals in shard order regardless of which worker built
//! them; the family is therefore bit-identical to the serial executor
//! under **any** fault schedule, which `tests/socket_execution.rs` and
//! the socket chaos leg assert.

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use coverage_core::offline::bucket_greedy_k_cover;
use coverage_core::SetId;
use coverage_sketch::{DynamicSketch, DynamicSnapshot, SketchSnapshot, ThresholdSketch};
use coverage_stream::{DynamicEdgeStream, EdgeStream};

use crate::fault::{Fault, FaultPlan};
use crate::parallel::{partition_edges, partition_updates};
use crate::proto::{read_message, write_message, Message, ProtoError};
use crate::rounds::{tree_reduce_with, RoundsReport, ShipFormat};
use crate::runner::{
    recover_and_solve, DeadlineWheel, DistConfig, RetryPolicy, RunError, WorkerCommand,
};

use super::chunk::{plan_dynamic, plan_sketch, ChunkPlan};
use super::registry::{HeartbeatStats, Liveness, WorkerRegistry, WorkerSummary};

/// Fault/recovery/registry accounting of one socket run, embedded in
/// [`SocketResult`]/[`DynSocketResult`].
#[derive(Clone, Debug, Default)]
pub struct SocketRunStats {
    /// Connections admitted to the registry over the whole run.
    pub workers_joined: usize,
    /// Of those, connections admitted after shard dispatch had begun
    /// (late joiners and rejoining worker processes).
    pub late_joiners: usize,
    /// Workers declared dead (EOF, wire error, missed heartbeats, or
    /// deadline reap).
    pub workers_lost: usize,
    /// Times a worker crossed live→suspect on missed heartbeats.
    pub suspect_transitions: usize,
    /// Times a suspect worker recovered to live on a late echo.
    pub suspect_recoveries: usize,
    /// Shard jobs requeued to survivors after their worker died
    /// mid-job (including mid-stream connection losses).
    pub shards_requeued: usize,
    /// Shards built inline in the coordinator because the registry
    /// emptied or the shard exhausted its retry allowance.
    pub shards_built_inline: usize,
    /// Workers reaped by the per-job deadline (hangs and over-deadline
    /// stalls).
    pub deadline_reaps: usize,
    /// Shard jobs re-dispatched after waiting out a backoff.
    pub retries: usize,
    /// Typed protocol faults observed on connections (corrupt frames,
    /// version mismatches, unexpected replies).
    pub proto_faults: usize,
    /// Injected `drop@N` faults: connections severed mid-stream.
    pub conn_drops_injected: usize,
    /// Injected `stall<MS>@N` faults: writes paused without closing.
    pub stalls_injected: usize,
    /// Injected `dup@N` faults: chunks delivered twice.
    pub chunk_dups_injected: usize,
    /// Total [`Message::JobChunk`] frames enqueued to workers.
    pub chunks_streamed: usize,
    /// Shards for which a chunk was acked (ingested) before the last
    /// chunk had been sent — the observable proof that chunked
    /// streaming overlapped transfer and ingest.
    pub overlap_shards: usize,
    /// Total connection bytes of worker reply frames.
    pub wire_bytes: u64,
    /// Heartbeat probe round-trip latency aggregated over every worker.
    pub heartbeat: HeartbeatStats,
    /// Per-worker registry summaries, in admission order.
    pub workers: Vec<WorkerSummary>,
}

/// Result of a [`SocketRunner`] insertion-only run.
#[derive(Clone, Debug)]
pub struct SocketResult {
    /// The selected family (identical to the serial, parallel, and
    /// process executors').
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage.
    pub estimated_coverage: f64,
    /// The merged sketch's final size (edges).
    pub merged_edges: usize,
    /// Tree-reduce round/communication accounting.
    pub rounds: RoundsReport,
    /// Registry, fault, and recovery accounting.
    pub stats: SocketRunStats,
    /// Wall-clock nanoseconds partitioning the stream.
    pub partition_ns: u64,
    /// Wall-clock nanoseconds streaming shards and collecting replies.
    pub map_ns: u64,
    /// Wall-clock nanoseconds in the reduce + solve tail.
    pub reduce_solve_ns: u64,
}

/// Result of a [`SocketRunner`] dynamic (insert/delete) run.
#[derive(Clone, Debug)]
pub struct DynSocketResult {
    /// The selected family (identical to the serial dynamic executor's).
    pub family: Vec<SetId>,
    /// Inverse-probability estimate of the family's coverage on the
    /// surviving graph.
    pub estimated_coverage: f64,
    /// The subsampling level the merged sketch decoded at.
    pub sample_level: usize,
    /// That level's sampling probability `p = 2^{−level}`.
    pub sampling_p: f64,
    /// Surviving edges recovered from the merged sketch.
    pub recovered_edges: usize,
    /// Tree-reduce round/communication accounting.
    pub rounds: RoundsReport,
    /// Registry, fault, and recovery accounting.
    pub stats: SocketRunStats,
    /// Wall-clock nanoseconds partitioning the stream.
    pub partition_ns: u64,
    /// Wall-clock nanoseconds streaming shards and collecting replies.
    pub map_ns: u64,
    /// Wall-clock nanoseconds in the reduce + recover + solve tail.
    pub reduce_solve_ns: u64,
}

/// One event delivered to the coordinator's main loop.
enum SockEvent {
    /// The acceptor took a new connection.
    Joined(TcpStream),
    /// A frame (or the typed read failure that ended the stream) from
    /// connection `0`'s reader.
    Frame(usize, Result<(Message, u64), ProtoError>),
    /// Connection `0`'s writer finished streaming shard `1`'s chunks.
    SentAll(usize, usize),
    /// Connection `0`'s writer hit an I/O error.
    WriteErr(usize),
}

/// One command to a connection's writer thread.
enum WriteCmd {
    /// Write a single control frame (heartbeat probe, shutdown).
    Frame(Message),
    /// Stream one shard: the `ChunkStart*` frame, its chunks under
    /// flow control, and optionally an injected network fault.
    Shard {
        shard: usize,
        start: Message,
        chunks: Vec<Message>,
        net_fault: Option<Fault>,
    },
    /// Exit the writer thread.
    Stop,
}

/// Coordinator-side handle on one connection (registry entry `ci`).
struct Conn {
    stream: TcpStream,
    cmd: Option<Sender<WriteCmd>>,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
    /// Chunks of the in-flight shard acked (ingested) so far — shared
    /// with the writer for flow control.
    acked: Arc<AtomicU32>,
    /// Set when the connection is being torn down, so a writer blocked
    /// in flow control or an injected stall bails out.
    gone: Arc<AtomicBool>,
    /// The shard whose reply this connection owes, if any.
    inflight: Option<usize>,
    /// Whether the writer has reported streaming every chunk of the
    /// in-flight shard.
    sent_all: bool,
    /// Chunk count of the in-flight shard.
    chunks_total: u32,
    /// Whether this shard already counted toward `overlap_shards`.
    overlap_counted: bool,
}

fn spawn_acceptor(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    tx: Sender<SockEvent>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let _ = listener.set_nonblocking(true);
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => {
                    if tx.send(SockEvent::Joined(stream)).is_err() {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    })
}

fn spawn_conn_reader(ci: usize, stream: TcpStream, tx: Sender<SockEvent>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut input = BufReader::new(stream);
        loop {
            match read_message(&mut input) {
                Ok(ok) => {
                    if tx.send(SockEvent::Frame(ci, Ok(ok))).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    let _ = tx.send(SockEvent::Frame(ci, Err(e)));
                    return;
                }
            }
        }
    })
}

/// Drain queued control frames (heartbeat probes, shutdown) so a long
/// chunk stream never starves liveness. Returns `Ok(false)` when a
/// `Stop` was drained — the caller abandons its stream and exits.
fn drain_control(
    out: &mut BufWriter<&TcpStream>,
    cmds: &Receiver<WriteCmd>,
) -> Result<bool, ProtoError> {
    loop {
        match cmds.try_recv() {
            Ok(WriteCmd::Frame(msg)) => {
                write_message(out, &msg)?;
            }
            Ok(WriteCmd::Stop) => return Ok(false),
            // The coordinator never queues a second shard while one is
            // in flight; drop it defensively rather than interleave two
            // streams.
            Ok(WriteCmd::Shard { .. }) => {}
            Err(TryRecvError::Empty) => return Ok(true),
            Err(TryRecvError::Disconnected) => return Ok(false),
        }
    }
}

/// Stream one shard's chunks under flow control, executing an injected
/// network fault mid-stream. Returns `Ok(true)` when every chunk was
/// written (the caller reports `SentAll`) and `Ok(false)` when the
/// stream was abandoned — injected drop, torn-down connection, or a
/// drained `Stop`.
#[allow(clippy::too_many_arguments)]
fn stream_shard(
    stream: &TcpStream,
    out: &mut BufWriter<&TcpStream>,
    cmds: &Receiver<WriteCmd>,
    acked: &AtomicU32,
    gone: &AtomicBool,
    window: u32,
    start: &Message,
    chunks: &[Message],
    net_fault: Option<Fault>,
) -> Result<bool, ProtoError> {
    write_message(out, start)?;
    if chunks.is_empty() && matches!(net_fault, Some(Fault::DropConn)) {
        // Even an empty shard's stream can be severed before the worker
        // replies.
        let _ = stream.shutdown(Shutdown::Both);
        return Ok(false);
    }
    for (i, chunk) in chunks.iter().enumerate() {
        if !drain_control(out, cmds)? {
            return Ok(false);
        }
        // Flow control: at most `window` unacked chunks in flight, so a
        // slow ingester applies backpressure instead of ballooning its
        // socket buffer — and so acks arriving before the last chunk is
        // sent are an honest overlap observation.
        while (i as u32) >= acked.load(Ordering::Acquire).saturating_add(window) {
            if gone.load(Ordering::Acquire) {
                return Ok(false);
            }
            if !drain_control(out, cmds)? {
                return Ok(false);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        write_message(out, chunk)?;
        if i == 0 {
            match net_fault {
                Some(Fault::DropConn) => {
                    // Sever mid-stream: the worker's build dies with the
                    // connection; the reader's EOF requeues the shard.
                    let _ = stream.shutdown(Shutdown::Both);
                    return Ok(false);
                }
                Some(Fault::Stall(ms)) => {
                    // Stop writing without closing. Heartbeat probes
                    // queue unwritten behind the stall, so the pending
                    // probe ages into the suspect threshold — the
                    // half-open-connection detector under test.
                    let mut left = ms;
                    while left > 0 && !gone.load(Ordering::Acquire) {
                        let step = left.min(10);
                        std::thread::sleep(Duration::from_millis(step));
                        left -= step;
                    }
                }
                Some(Fault::DupChunk) => {
                    // Deliver chunk 0 twice; the worker must reject the
                    // replay by index without touching its sketch.
                    write_message(out, chunk)?;
                }
                _ => {}
            }
        }
    }
    Ok(true)
}

#[allow(clippy::too_many_arguments)]
fn spawn_conn_writer(
    ci: usize,
    stream: TcpStream,
    cmds: Receiver<WriteCmd>,
    acked: Arc<AtomicU32>,
    gone: Arc<AtomicBool>,
    window: u32,
    tx: Sender<SockEvent>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut out = BufWriter::new(&stream);
        while let Ok(cmd) = cmds.recv() {
            match cmd {
                WriteCmd::Stop => return,
                WriteCmd::Frame(msg) => {
                    if write_message(&mut out, &msg).is_err() {
                        let _ = tx.send(SockEvent::WriteErr(ci));
                        return;
                    }
                }
                WriteCmd::Shard {
                    shard,
                    start,
                    chunks,
                    net_fault,
                } => match stream_shard(
                    &stream, &mut out, &cmds, &acked, &gone, window, &start, &chunks, net_fault,
                ) {
                    Ok(true) => {
                        if tx.send(SockEvent::SentAll(ci, shard)).is_err() {
                            return;
                        }
                    }
                    // Abandoned stream (injected drop / teardown): the
                    // reader-side EOF carries the news; nothing to send.
                    Ok(false) => return,
                    Err(_) => {
                        let _ = tx.send(SockEvent::WriteErr(ci));
                        return;
                    }
                },
            }
        }
    })
}

/// The TCP executor: the same map → tree-reduce → solve pipeline as
/// [`ProcessRunner`](crate::ProcessRunner), with workers on the far end
/// of real socket connections instead of parent-owned pipes.
///
/// Two deployment shapes share the implementation:
///
/// - **Loopback self-spawn** ([`SocketRunner::new`]): bind an ephemeral
///   loopback port and launch `processes` copies of the worker command
///   with `--connect ADDR` appended — the tests/bench shape.
/// - **Listen** ([`SocketRunner::listen`]): bind a given address and
///   wait for externally-started `coverage worker --connect HOST:PORT`
///   processes — the multi-host shape. Workers may connect at any
///   point; a worker joining after dispatch began is admitted mid-run
///   and handed queued shards.
///
/// Liveness is heartbeat-driven, not EOF-driven: the coordinator probes
/// every connection on a fixed cadence, and the registry grades each
/// worker by the age of its oldest unanswered probe
/// (live → suspect → dead; see [`super::registry`]). Dead workers'
/// in-flight shards are requeued to survivors through the same
/// [`RetryPolicy`] + deadline machinery as the pipe executor, and when
/// the registry empties (and stays empty past the join grace), the
/// remaining shards degrade to inline builds — the run always
/// completes, with the degradation visible in [`SocketRunStats`].
///
/// Shards travel as **chunked streams** ([`super::chunk`]): a
/// `ChunkStart*` frame, then bounded `JobChunk` frames under an ack
/// window, so workers ingest while the shard is still arriving. A
/// connection lost mid-stream requeues the whole shard — idempotent
/// because shard jobs are self-contained.
#[derive(Clone, Debug)]
pub struct SocketRunner {
    cfg: DistConfig,
    command: Option<WorkerCommand>,
    processes: usize,
    listen: String,
    fan_in: usize,
    batch: usize,
    ship: ShipFormat,
    fault_plan: FaultPlan,
    job_timeout: Duration,
    retry: RetryPolicy,
    chunk_items: usize,
    chunk_window: u32,
    heartbeat_every: Duration,
    suspect_after: Duration,
    dead_after: Duration,
    join_grace: Duration,
    late_spawns: Vec<Duration>,
}

/// Mirrors the pipe executor's defaults.
const SOCKET_DEFAULT_BATCH: usize = 1 << 12;
const SOCKET_DEFAULT_FAN_IN: usize = 4;
const SOCKET_DEFAULT_JOB_TIMEOUT: Duration = Duration::from_secs(30);
/// Items (edges or signed updates) per [`Message::JobChunk`].
const SOCKET_DEFAULT_CHUNK_ITEMS: usize = 16 * 1024;
/// Unacked chunks allowed in flight per connection.
const SOCKET_DEFAULT_CHUNK_WINDOW: u32 = 4;
/// Heartbeat probe cadence per connection.
const SOCKET_DEFAULT_HEARTBEAT_EVERY: Duration = Duration::from_millis(100);
/// Unanswered-probe age that turns a worker suspect.
const SOCKET_DEFAULT_SUSPECT_AFTER: Duration = Duration::from_millis(400);
/// Unanswered-probe age that declares a worker dead.
const SOCKET_DEFAULT_DEAD_AFTER: Duration = Duration::from_secs(3);
/// How long an empty registry waits for a (re)connection before the
/// remaining shards degrade to inline builds.
const SOCKET_DEFAULT_JOIN_GRACE: Duration = Duration::from_secs(5);

impl SocketRunner {
    /// Loopback self-spawn mode: bind an ephemeral loopback port and
    /// launch `processes ≥ 1` copies of `command` with
    /// `--connect ADDR` appended.
    pub fn new(cfg: DistConfig, command: WorkerCommand, processes: usize) -> Self {
        assert!(processes >= 1, "need at least one worker process");
        SocketRunner {
            cfg,
            command: Some(command),
            processes,
            listen: "127.0.0.1:0".to_string(),
            fan_in: SOCKET_DEFAULT_FAN_IN,
            batch: SOCKET_DEFAULT_BATCH,
            ship: ShipFormat::Binary,
            fault_plan: FaultPlan::none(),
            job_timeout: SOCKET_DEFAULT_JOB_TIMEOUT,
            retry: RetryPolicy::default(),
            chunk_items: SOCKET_DEFAULT_CHUNK_ITEMS,
            chunk_window: SOCKET_DEFAULT_CHUNK_WINDOW,
            heartbeat_every: SOCKET_DEFAULT_HEARTBEAT_EVERY,
            suspect_after: SOCKET_DEFAULT_SUSPECT_AFTER,
            dead_after: SOCKET_DEFAULT_DEAD_AFTER,
            join_grace: SOCKET_DEFAULT_JOIN_GRACE,
            late_spawns: Vec::new(),
        }
    }

    /// Listen mode: bind `addr` (e.g. `0.0.0.0:7700`) and serve
    /// externally-started `coverage worker --connect HOST:PORT`
    /// processes. No workers are spawned; if none connects within the
    /// join grace, every shard is built inline.
    pub fn listen(cfg: DistConfig, addr: impl Into<String>) -> Self {
        SocketRunner {
            cfg,
            command: None,
            processes: 0,
            listen: addr.into(),
            fan_in: SOCKET_DEFAULT_FAN_IN,
            batch: SOCKET_DEFAULT_BATCH,
            ship: ShipFormat::Binary,
            fault_plan: FaultPlan::none(),
            job_timeout: SOCKET_DEFAULT_JOB_TIMEOUT,
            retry: RetryPolicy::default(),
            chunk_items: SOCKET_DEFAULT_CHUNK_ITEMS,
            chunk_window: SOCKET_DEFAULT_CHUNK_WINDOW,
            heartbeat_every: SOCKET_DEFAULT_HEARTBEAT_EVERY,
            suspect_after: SOCKET_DEFAULT_SUSPECT_AFTER,
            dead_after: SOCKET_DEFAULT_DEAD_AFTER,
            join_grace: SOCKET_DEFAULT_JOIN_GRACE,
            late_spawns: Vec::new(),
        }
    }

    /// Override the reduce fan-in (`≥ 2`).
    pub fn with_fan_in(mut self, fan_in: usize) -> Self {
        assert!(fan_in >= 2, "fan-in must be at least 2");
        self.fan_in = fan_in;
        self
    }

    /// Override the worker update-batch size (`≥ 1`).
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1, "batch must be at least 1");
        self.batch = batch;
        self
    }

    /// Override the ship format for worker replies and the reduce.
    /// [`ShipFormat::InMemory`] cannot cross a socket and is mapped to
    /// [`ShipFormat::Binary`] for the replies.
    pub fn with_ship_format(mut self, ship: ShipFormat) -> Self {
        self.ship = ship;
        self
    }

    /// Thread a deterministic [`FaultPlan`] through the run. Worker
    /// faults (crash/hang/delay/corrupt) ride in the `ChunkStart*`
    /// frame and are executed by the worker at stream completion;
    /// network faults (drop/stall/dup) are executed coordinator-side by
    /// the connection's fault-aware writer. Each shard's fault is
    /// consumed on its first dispatch.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Override the per-job deadline (must exceed any injected stall or
    /// the stall is indistinguishable from a hang and gets reaped).
    pub fn with_job_timeout(mut self, timeout: Duration) -> Self {
        assert!(!timeout.is_zero(), "job timeout must be positive");
        self.job_timeout = timeout;
        self
    }

    /// Override the retry/backoff discipline for failed shard jobs.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        assert!(retry.max_attempts >= 1, "need at least one attempt");
        self.retry = retry;
        self
    }

    /// Override the items carried per [`Message::JobChunk`] (`≥ 1`).
    /// Smaller chunks mean earlier ingest overlap and more frames.
    pub fn with_chunk_items(mut self, items: usize) -> Self {
        assert!(items >= 1, "chunks must carry at least one item");
        self.chunk_items = items;
        self
    }

    /// Override the per-connection ack window (`≥ 1` unacked chunks).
    pub fn with_chunk_window(mut self, window: u32) -> Self {
        assert!(window >= 1, "window must be at least 1");
        self.chunk_window = window;
        self
    }

    /// Override the liveness timings: probe cadence, the unanswered
    /// probe age that turns a worker suspect, and the age that declares
    /// it dead (`every < suspect < dead`).
    pub fn with_heartbeats(mut self, every: Duration, suspect: Duration, dead: Duration) -> Self {
        assert!(
            !every.is_zero() && every < suspect && suspect < dead,
            "need probe cadence < suspect threshold < dead threshold"
        );
        self.heartbeat_every = every;
        self.suspect_after = suspect;
        self.dead_after = dead;
        self
    }

    /// How long an empty registry waits for a (re)connection before the
    /// remaining shards degrade to inline builds.
    pub fn with_join_grace(mut self, grace: Duration) -> Self {
        self.join_grace = grace;
        self
    }

    /// Schedule one extra worker process to be spawned `after` the run
    /// starts (loopback mode only) — deterministic late-joiner
    /// admission for tests and the chaos suite. May be called multiple
    /// times.
    pub fn with_late_worker_after(mut self, after: Duration) -> Self {
        self.late_spawns.push(after);
        self
    }

    /// The reply encoding actually used on the sockets.
    fn pipe_format(&self) -> ShipFormat {
        match self.ship {
            ShipFormat::Json => ShipFormat::Json,
            _ => ShipFormat::Binary,
        }
    }

    /// Bind, spawn/accept workers, and drive every shard job to a
    /// snapshot. See the module docs for the thread shape; the recovery
    /// discipline mirrors `ProcessRunner::dispatch` with liveness
    /// generalized from "pipe EOF" to heartbeat grading.
    fn dispatch<Snap>(
        &self,
        n_shards: usize,
        plan_shard: impl Fn(usize, Option<Fault>) -> ChunkPlan,
        extract: impl Fn(Message) -> Option<Snap>,
        inline: impl Fn(usize) -> Snap,
    ) -> Result<(Vec<Snap>, SocketRunStats), RunError> {
        let listener = TcpListener::bind(&self.listen)?;
        let addr = listener.local_addr()?.to_string();
        let (tx, rx) = channel::<SockEvent>();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = spawn_acceptor(listener, stop.clone(), tx.clone());

        let started = Instant::now();
        let mut children: Vec<Child> = Vec::new();
        let mut pending_spawns: Vec<Instant> = Vec::new();
        if let Some(command) = &self.command {
            let want = self.processes.min(n_shards).max(1);
            let mut spawn_err: Option<std::io::Error> = None;
            for _ in 0..want {
                match command.spawn_connected(&addr) {
                    Ok(child) => children.push(child),
                    Err(e) => spawn_err = Some(e),
                }
            }
            if children.is_empty() {
                stop.store(true, Ordering::Release);
                drop(tx);
                let _ = acceptor.join();
                return Err(RunError::Spawn(spawn_err.unwrap_or_else(|| {
                    std::io::Error::other("no worker could be spawned")
                })));
            }
            pending_spawns = self.late_spawns.iter().map(|d| started + *d).collect();
            pending_spawns.sort();
        }

        let mut faults = self.fault_plan.schedule(n_shards);
        let mut registry = WorkerRegistry::new();
        let mut conns: Vec<Conn> = Vec::new();
        let mut wheel = DeadlineWheel::new(0);
        let mut stats = SocketRunStats::default();

        let mut queue: VecDeque<usize> = (0..n_shards).collect();
        let mut ready_at: Vec<Instant> = vec![started; n_shards];
        let mut attempts: Vec<usize> = vec![0; n_shards];
        let mut snapshots: Vec<Option<Snap>> = (0..n_shards).map(|_| None).collect();
        let mut resolved = 0usize;
        let mut retries_spent = 0usize;
        let mut nonce_counter: u64 = 0x4E45_5400_0000_0000;
        let mut next_probe = started + self.heartbeat_every;
        let mut dispatch_started = false;
        // The registry starts empty; the grace clock starts now so a run
        // nobody connects to still terminates (inline).
        let mut empty_since: Option<Instant> = Some(started);

        // A shard's dispatch failed: retry after a backoff, or build it
        // inline once its attempts or the run-wide budget run out.
        macro_rules! fail_shard {
            ($shard:expr) => {{
                let shard = $shard;
                attempts[shard] += 1;
                retries_spent += 1;
                if attempts[shard] >= self.retry.max_attempts || retries_spent > self.retry.budget {
                    snapshots[shard] = Some(inline(shard));
                    stats.shards_built_inline += 1;
                    resolved += 1;
                } else {
                    stats.retries += 1;
                    stats.shards_requeued += 1;
                    ready_at[shard] = Instant::now() + self.retry.backoff_after(attempts[shard]);
                    queue.push_front(shard);
                }
            }};
        }

        // Declare a connection dead: sever it, unblock its writer, and
        // requeue whatever it owed.
        macro_rules! reap_conn {
            ($ci:expr) => {{
                let ci = $ci;
                if registry.usable(ci) {
                    stats.workers_lost += 1;
                }
                registry.mark_dead(ci);
                wheel.disarm(ci);
                conns[ci].gone.store(true, Ordering::Release);
                let _ = conns[ci].stream.shutdown(Shutdown::Both);
                conns[ci].cmd = None;
                if let Some(shard) = conns[ci].inflight.take() {
                    fail_shard!(shard);
                }
                if registry.usable_count() == 0 && empty_since.is_none() {
                    empty_since = Some(Instant::now());
                }
            }};
        }

        while resolved < n_shards {
            let now = Instant::now();

            // Late spawns whose time has come (loopback mode).
            if let Some(command) = &self.command {
                while pending_spawns.first().is_some_and(|&at| at <= now) {
                    pending_spawns.remove(0);
                    if let Ok(child) = command.spawn_connected(&addr) {
                        children.push(child);
                    }
                }
            }

            // Assign phase: every live idle connection takes the next
            // shard whose backoff has matured.
            loop {
                let now = Instant::now();
                let Some(ci) = (0..conns.len()).find(|&ci| {
                    registry.dispatchable(ci)
                        && conns[ci].inflight.is_none()
                        && conns[ci].cmd.is_some()
                }) else {
                    break;
                };
                let Some(pos) = queue.iter().position(|&s| ready_at[s] <= now) else {
                    break;
                };
                let shard = queue.remove(pos).expect("position is in range");
                // Split the shard's scheduled fault by executor: worker
                // faults ride in the ChunkStart frame; network faults
                // are executed by this side's fault-aware writer.
                let fault = faults[shard].take();
                let (worker_fault, net_fault) = match fault {
                    Some(f) if f.is_network() => (None, Some(f)),
                    f => (f, None),
                };
                match net_fault {
                    Some(Fault::DropConn) => stats.conn_drops_injected += 1,
                    Some(Fault::Stall(_)) => stats.stalls_injected += 1,
                    Some(Fault::DupChunk) => stats.chunk_dups_injected += 1,
                    _ => {}
                }
                let plan = plan_shard(shard, worker_fault);
                let chunks_total = plan.chunks.len() as u32;
                stats.chunks_streamed += plan.chunks.len();
                dispatch_started = true;
                let conn = &mut conns[ci];
                conn.acked.store(0, Ordering::Release);
                conn.sent_all = false;
                conn.chunks_total = chunks_total;
                conn.overlap_counted = false;
                let sent = conn
                    .cmd
                    .as_ref()
                    .expect("dispatchable conn has a writer")
                    .send(WriteCmd::Shard {
                        shard,
                        start: plan.start,
                        chunks: plan.chunks,
                        net_fault,
                    })
                    .is_ok();
                if sent {
                    conn.inflight = Some(shard);
                    registry.job_started(ci);
                    wheel.arm(ci, now + self.job_timeout);
                } else {
                    // Writer already gone: free requeue (no attempt
                    // spent), like a pipe write failure.
                    stats.shards_requeued += 1;
                    queue.push_front(shard);
                    reap_conn!(ci);
                }
            }

            // Probe phase: a fixed cadence per connection, one probe
            // outstanding at a time (the oldest governs liveness).
            let now = Instant::now();
            if now >= next_probe {
                next_probe = now + self.heartbeat_every;
                for ci in 0..conns.len() {
                    if !registry.usable(ci) || registry.probe_pending(ci) {
                        continue;
                    }
                    let Some(cmd) = conns[ci].cmd.as_ref() else {
                        continue;
                    };
                    nonce_counter += 1;
                    let nonce = nonce_counter;
                    if cmd
                        .send(WriteCmd::Frame(Message::Heartbeat { nonce }))
                        .is_ok()
                    {
                        registry.note_probe(ci, nonce, now);
                    } else {
                        reap_conn!(ci);
                    }
                }
            }

            // Liveness phase: grade every pending probe's age.
            for ci in 0..conns.len() {
                match registry.check_liveness(ci, now, self.suspect_after, self.dead_after) {
                    Liveness::TurnedDead => reap_conn!(ci),
                    Liveness::TurnedSuspect | Liveness::Unchanged => {}
                }
            }

            if resolved >= n_shards {
                break;
            }

            // Degradation: registry empty, nothing scheduled to join,
            // grace expired → build the rest inline.
            if registry.usable_count() == 0 && pending_spawns.is_empty() {
                let since = empty_since.get_or_insert(now);
                if now.saturating_duration_since(*since) >= self.join_grace {
                    break;
                }
            }

            // Wait phase: the next frame, or whichever timer fires
            // first. The probe cadence bounds the wait, so the loop
            // always wakes.
            let mut wake = next_probe;
            if let Some(t) = wheel.next_deadline() {
                wake = wake.min(t);
            }
            if let Some(&t) = pending_spawns.first() {
                wake = wake.min(t);
            }
            if let Some(since) = empty_since {
                if registry.usable_count() == 0 && pending_spawns.is_empty() {
                    wake = wake.min(since + self.join_grace);
                }
            }
            if (0..conns.len()).any(|ci| registry.dispatchable(ci) && conns[ci].inflight.is_none())
            {
                if let Some(t) = queue.iter().map(|&s| ready_at[s]).min() {
                    wake = wake.min(t);
                }
            }

            match rx.recv_timeout(wake.saturating_duration_since(Instant::now())) {
                Ok(SockEvent::Joined(stream)) => {
                    let peer = stream
                        .peer_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_else(|_| "unknown".to_string());
                    let _ = stream.set_nodelay(true);
                    let (Ok(rstream), Ok(wstream)) = (stream.try_clone(), stream.try_clone())
                    else {
                        continue;
                    };
                    let ci = registry.admit(peer, dispatch_started);
                    stats.workers_joined += 1;
                    if dispatch_started {
                        stats.late_joiners += 1;
                    }
                    let (cmd_tx, cmd_rx) = channel::<WriteCmd>();
                    let acked = Arc::new(AtomicU32::new(0));
                    let gone = Arc::new(AtomicBool::new(false));
                    let reader = spawn_conn_reader(ci, rstream, tx.clone());
                    let writer = spawn_conn_writer(
                        ci,
                        wstream,
                        cmd_rx,
                        acked.clone(),
                        gone.clone(),
                        self.chunk_window,
                        tx.clone(),
                    );
                    // Handshake probe: the first echo moves the worker
                    // joining → live and it becomes dispatchable.
                    nonce_counter += 1;
                    let nonce = nonce_counter;
                    let _ = cmd_tx.send(WriteCmd::Frame(Message::Heartbeat { nonce }));
                    registry.note_probe(ci, nonce, Instant::now());
                    conns.push(Conn {
                        stream,
                        cmd: Some(cmd_tx),
                        reader: Some(reader),
                        writer: Some(writer),
                        acked,
                        gone,
                        inflight: None,
                        sent_all: false,
                        chunks_total: 0,
                        overlap_counted: false,
                    });
                    empty_since = None;
                }
                Ok(SockEvent::Frame(ci, Ok((msg, bytes)))) => {
                    if !registry.usable(ci) {
                        continue; // Stale event from a reaped connection.
                    }
                    match msg {
                        Message::Heartbeat { nonce } => {
                            registry.note_echo(ci, nonce, Instant::now());
                        }
                        Message::ChunkAck { shard, index } => {
                            let conn = &mut conns[ci];
                            if conn.inflight == Some(shard as usize) {
                                conn.acked.store(index + 1, Ordering::Release);
                                if !conn.sent_all
                                    && index + 1 < conn.chunks_total
                                    && !conn.overlap_counted
                                {
                                    // Ingest demonstrably began before
                                    // the stream finished sending.
                                    conn.overlap_counted = true;
                                    stats.overlap_shards += 1;
                                }
                            }
                        }
                        msg => {
                            let inflight = conns[ci].inflight;
                            match inflight {
                                Some(shard) => match extract(msg) {
                                    Some(snap) => {
                                        if snapshots[shard].is_none() {
                                            snapshots[shard] = Some(snap);
                                            resolved += 1;
                                        }
                                        stats.wire_bytes += bytes;
                                        conns[ci].inflight = None;
                                        registry.job_finished(ci);
                                        wheel.disarm(ci);
                                    }
                                    None => {
                                        // Decoded frame, wrong species of
                                        // reply: a protocol violation.
                                        stats.proto_faults += 1;
                                        reap_conn!(ci);
                                    }
                                },
                                None => {
                                    // Unsolicited reply.
                                    stats.proto_faults += 1;
                                    reap_conn!(ci);
                                }
                            }
                        }
                    }
                }
                Ok(SockEvent::Frame(ci, Err(e))) => {
                    if !registry.usable(ci) {
                        continue;
                    }
                    if matches!(e, ProtoError::Wire(_)) {
                        // Corrupt frame or version mismatch — typed,
                        // counted, recovered.
                        stats.proto_faults += 1;
                    }
                    reap_conn!(ci);
                }
                Ok(SockEvent::SentAll(ci, shard)) => {
                    if registry.usable(ci) && conns[ci].inflight == Some(shard) {
                        conns[ci].sent_all = true;
                    }
                }
                Ok(SockEvent::WriteErr(ci)) => {
                    if registry.usable(ci) {
                        reap_conn!(ci);
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    for ci in wheel.expired(now) {
                        if !registry.usable(ci) {
                            continue;
                        }
                        // The deadline reaper: catches hung workers and
                        // over-deadline stalls.
                        stats.deadline_reaps += 1;
                        reap_conn!(ci);
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }

        // Unresolved shards — empty registry or exhausted budgets —
        // degrade to inline builds so the run still completes.
        for (shard, snap) in snapshots.iter_mut().enumerate() {
            if snap.is_none() {
                *snap = Some(inline(shard));
                stats.shards_built_inline += 1;
            }
        }

        // Wind down: stop accepting, polite shutdown to survivors, then
        // sever everything and join the threads.
        stop.store(true, Ordering::Release);
        for (ci, conn) in conns.iter().enumerate() {
            if registry.usable(ci) {
                if let Some(cmd) = conn.cmd.as_ref() {
                    let _ = cmd.send(WriteCmd::Frame(Message::Shutdown));
                    let _ = cmd.send(WriteCmd::Stop);
                }
            }
            conn.gone.store(true, Ordering::Release);
        }
        for child in &mut children {
            let _ = child.kill();
            let _ = child.wait();
        }
        for conn in &mut conns {
            conn.cmd = None;
            let _ = conn.stream.shutdown(Shutdown::Both);
            if let Some(writer) = conn.writer.take() {
                let _ = writer.join();
            }
            if let Some(reader) = conn.reader.take() {
                let _ = reader.join();
            }
        }
        drop(tx);
        let _ = acceptor.join();

        stats.suspect_transitions = registry.suspect_transitions();
        stats.suspect_recoveries = registry.suspect_recoveries();
        stats.heartbeat = registry.aggregate_rtt();
        stats.workers = registry.summaries();

        Ok((
            snapshots
                .into_iter()
                .map(|s| s.expect("every shard resolved"))
                .collect(),
            stats,
        ))
    }

    /// Run the insertion-only pipeline over TCP workers.
    ///
    /// Returns `Err` only when the listener cannot bind or (in loopback
    /// mode) not a single worker could be spawned; every failure after
    /// that is recovered per the type-level docs.
    pub fn run(&self, stream: &dyn EdgeStream) -> Result<SocketResult, RunError> {
        let cfg = &self.cfg;
        let params = cfg.sketch_params(stream.num_sets());
        let ship = self.pipe_format();

        let t0 = Instant::now();
        let shards = partition_edges(stream, cfg.machines, cfg.shard_seed(), self.batch);
        let partition_ns = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let (snapshots, stats) = self.dispatch(
            shards.len(),
            |shard, worker_fault| {
                plan_sketch(
                    shard as u32,
                    &shards[shard],
                    self.chunk_items,
                    params,
                    cfg.seed,
                    ship,
                    worker_fault,
                    self.batch,
                )
            },
            |msg| match msg {
                Message::ReplySketch { snapshot, .. } => Some(snapshot),
                _ => None,
            },
            |shard| {
                let mut s = ThresholdSketch::new(params, cfg.seed);
                for chunk in shards[shard].chunks(self.batch) {
                    s.update_batch(chunk);
                }
                SketchSnapshot::of(&s)
            },
        )?;
        let map_ns = t1.elapsed().as_nanos() as u64;

        let t2 = Instant::now();
        let locals: Vec<ThresholdSketch> = snapshots.iter().map(|s| s.restore()).collect();
        let (merged, rounds) = tree_reduce_with(locals, self.fan_in, self.ship);
        let trace = bucket_greedy_k_cover(&merged.csr_view(), cfg.k);
        let family = trace.family();
        let reduce_solve_ns = t2.elapsed().as_nanos() as u64;

        Ok(SocketResult {
            estimated_coverage: merged.estimate_coverage(&family),
            merged_edges: merged.edges_stored(),
            family,
            rounds,
            stats,
            partition_ns,
            map_ns,
            reduce_solve_ns,
        })
    }

    /// Run the dynamic (insert/delete) pipeline over TCP workers.
    ///
    /// # Panics
    ///
    /// Panics if no subsampling level of the merged sketch decodes (the
    /// sketch was sized with too few levels for the surviving edges).
    pub fn run_dynamic(&self, stream: &dyn DynamicEdgeStream) -> Result<DynSocketResult, RunError> {
        let cfg = &self.cfg;
        let params = cfg.dynamic_sketch_params(stream.num_sets());
        let ship = self.pipe_format();

        let t0 = Instant::now();
        let shards = partition_updates(stream, cfg.machines, cfg.shard_seed(), self.batch);
        let partition_ns = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let (snapshots, stats) = self.dispatch(
            shards.len(),
            |shard, worker_fault| {
                plan_dynamic(
                    shard as u32,
                    &shards[shard],
                    self.chunk_items,
                    params,
                    cfg.seed,
                    ship,
                    worker_fault,
                    self.batch,
                )
            },
            |msg| match msg {
                Message::ReplyDynamic { snapshot, .. } => Some(snapshot),
                _ => None,
            },
            |shard| {
                let mut s = DynamicSketch::new(params, cfg.seed);
                for chunk in shards[shard].chunks(self.batch) {
                    s.update_batch(chunk);
                }
                DynamicSnapshot::of(&s)
            },
        )?;
        let map_ns = t1.elapsed().as_nanos() as u64;

        let t2 = Instant::now();
        let locals: Vec<DynamicSketch> = snapshots.iter().map(|s| s.restore()).collect();
        let (merged, rounds) = tree_reduce_with(locals, self.fan_in, self.ship);
        let (family, estimated_coverage, sample) = recover_and_solve(&merged, cfg.k);
        let reduce_solve_ns = t2.elapsed().as_nanos() as u64;

        Ok(DynSocketResult {
            family,
            estimated_coverage,
            sample_level: sample.level,
            sampling_p: sample.sampling_p,
            recovered_edges: sample.edges.len(),
            rounds,
            stats,
            partition_ns,
            map_ns,
            reduce_solve_ns,
        })
    }
}
