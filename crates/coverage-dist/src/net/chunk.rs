//! Chunked shard streaming: the coordinator-side **plan** that splits a
//! shard into a `ChunkStart*` frame plus bounded [`Message::JobChunk`]
//! frames, and the worker-side [`ChunkedBuild`] state machine that
//! ingests those chunks strictly in order.
//!
//! Chunking exists to overlap partition and map: a worker starts
//! `update_batch` ingest on the first chunk instead of waiting for its
//! whole shard to arrive, and the coordinator observes the overlap
//! through [`Message::ChunkAck`] frames (an ack means *ingested*, not
//! merely received). The stream is strictly ordered — chunk `i+1` is
//! only ever ingested after chunk `i` — so the bytes fed to the sketch
//! are identical to the blob job's, and the reply snapshot is
//! bit-identical to an unchunked build by construction. A duplicated
//! chunk (the `dup@N` network fault, or a retransmitting middlebox) is
//! rejected by index without touching the sketch; a gap or a
//! chunk-count mismatch is a typed error that kills the connection
//! rather than risking a silently wrong sketch.

use coverage_core::Edge;
use coverage_sketch::{
    DynamicSketch, DynamicSketchParams, DynamicSnapshot, SketchParams, SketchSnapshot,
    ThresholdSketch, WireError,
};
use coverage_stream::SignedEdge;

use crate::fault::Fault;
use crate::proto::{ChunkPayload, Message, ProtoError};
use crate::rounds::ShipFormat;

/// A shard's job rendered as a chunked stream: the opening
/// `ChunkStart*` frame and the [`Message::JobChunk`] frames that follow
/// it, in send order.
pub struct ChunkPlan {
    /// The `ChunkStartSketch`/`ChunkStartDynamic` frame.
    pub start: Message,
    /// The `JobChunk` frames, index order.
    pub chunks: Vec<Message>,
}

fn chunk_count(items: usize, per_chunk: usize) -> u32 {
    (items.div_ceil(per_chunk.max(1))) as u32
}

/// Split an insertion-only shard into a chunked stream carrying at most
/// `per_chunk` edges per [`Message::JobChunk`]. An empty shard yields a
/// start frame with `chunks == 0` and no chunk frames.
#[allow(clippy::too_many_arguments)]
pub fn plan_sketch(
    shard: u32,
    edges: &[Edge],
    per_chunk: usize,
    params: SketchParams,
    seed: u64,
    ship: ShipFormat,
    fault: Option<Fault>,
    batch: usize,
) -> ChunkPlan {
    let per_chunk = per_chunk.max(1);
    let count = chunk_count(edges.len(), per_chunk);
    let chunks = edges
        .chunks(per_chunk)
        .enumerate()
        .map(|(i, slice)| Message::JobChunk {
            shard,
            index: i as u32,
            count,
            payload: ChunkPayload::Edges(slice.to_vec()),
        })
        .collect();
    ChunkPlan {
        start: Message::ChunkStartSketch {
            shard,
            chunks: count,
            params,
            seed,
            ship,
            fault,
            batch,
        },
        chunks,
    }
}

/// Split a dynamic shard into a chunked stream carrying at most
/// `per_chunk` signed updates per [`Message::JobChunk`].
#[allow(clippy::too_many_arguments)]
pub fn plan_dynamic(
    shard: u32,
    updates: &[SignedEdge],
    per_chunk: usize,
    params: DynamicSketchParams,
    seed: u64,
    ship: ShipFormat,
    fault: Option<Fault>,
    batch: usize,
) -> ChunkPlan {
    let per_chunk = per_chunk.max(1);
    let count = chunk_count(updates.len(), per_chunk);
    let chunks = updates
        .chunks(per_chunk)
        .enumerate()
        .map(|(i, slice)| Message::JobChunk {
            shard,
            index: i as u32,
            count,
            payload: ChunkPayload::Updates(slice.to_vec()),
        })
        .collect();
    ChunkPlan {
        start: Message::ChunkStartDynamic {
            shard,
            chunks: count,
            params,
            seed,
            ship,
            fault,
            batch,
        },
        chunks,
    }
}

enum BuildKind {
    Sketch(ThresholdSketch),
    Dynamic(DynamicSketch),
}

/// What [`ChunkedBuild::accept`] decided about one incoming chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkVerdict {
    /// The chunk was in order and has been ingested; ack it.
    Ingested,
    /// A duplicate of an already-ingested chunk (its index is behind the
    /// cursor). Dropped without touching the sketch and without an ack —
    /// re-acking a duplicate could double-advance coordinator flow
    /// control.
    DuplicateRejected,
}

/// The worker-side state of one in-progress chunked shard build:
/// sketch under construction, strict in-order cursor, and the reply
/// metadata carried by the opening `ChunkStart*` frame.
pub struct ChunkedBuild {
    shard: u32,
    count: u32,
    next: u32,
    seed: u64,
    ship: ShipFormat,
    fault: Option<Fault>,
    batch: usize,
    kind: BuildKind,
    dups_rejected: u64,
}

fn malformed(what: &'static str) -> ProtoError {
    ProtoError::Wire(WireError::Malformed(what))
}

impl ChunkedBuild {
    /// Open an insertion-only build from a
    /// [`Message::ChunkStartSketch`]'s fields.
    pub fn sketch(
        shard: u32,
        count: u32,
        params: SketchParams,
        seed: u64,
        ship: ShipFormat,
        fault: Option<Fault>,
        batch: usize,
    ) -> Self {
        ChunkedBuild {
            shard,
            count,
            next: 0,
            seed,
            ship,
            fault,
            batch,
            kind: BuildKind::Sketch(ThresholdSketch::new(params, seed)),
            dups_rejected: 0,
        }
    }

    /// Open a dynamic build from a [`Message::ChunkStartDynamic`]'s
    /// fields.
    pub fn dynamic(
        shard: u32,
        count: u32,
        params: DynamicSketchParams,
        seed: u64,
        ship: ShipFormat,
        fault: Option<Fault>,
        batch: usize,
    ) -> Self {
        ChunkedBuild {
            shard,
            count,
            next: 0,
            seed,
            ship,
            fault,
            batch,
            kind: BuildKind::Dynamic(DynamicSketch::new(params, seed)),
            dups_rejected: 0,
        }
    }

    /// The shard this build belongs to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Whether every announced chunk has been ingested.
    pub fn complete(&self) -> bool {
        self.next == self.count
    }

    /// Duplicate chunks rejected so far.
    pub fn dups_rejected(&self) -> u64 {
        self.dups_rejected
    }

    /// Feed one [`Message::JobChunk`]'s fields to the build.
    ///
    /// In-order chunks are ingested through `update_batch` in
    /// `batch`-sized sub-slices (bit-identical to the blob job's ingest
    /// order). A chunk whose index is **behind** the cursor is a
    /// duplicate: rejected, counted, sketch untouched. A chunk **ahead**
    /// of the cursor (a gap), a chunk-count mismatch, a wrong shard id,
    /// a payload-kind mismatch, or a chunk past a completed stream is a
    /// typed [`ProtoError`] — the stream is unrecoverable and the
    /// coordinator must requeue the whole shard.
    pub fn accept(
        &mut self,
        shard: u32,
        index: u32,
        count: u32,
        payload: ChunkPayload,
    ) -> Result<ChunkVerdict, ProtoError> {
        if shard != self.shard {
            return Err(malformed("chunk for a different shard"));
        }
        if count != self.count {
            return Err(malformed("chunk count mismatch within a stream"));
        }
        if index < self.next {
            self.dups_rejected += 1;
            return Ok(ChunkVerdict::DuplicateRejected);
        }
        if self.complete() || index > self.next {
            return Err(malformed("chunk gap: stream is not in order"));
        }
        let batch = self.batch.max(1);
        match (&mut self.kind, payload) {
            (BuildKind::Sketch(sketch), ChunkPayload::Edges(edges)) => {
                for sub in edges.chunks(batch) {
                    sketch.update_batch(sub);
                }
            }
            (BuildKind::Dynamic(sketch), ChunkPayload::Updates(updates)) => {
                for sub in updates.chunks(batch) {
                    sketch.update_batch(sub);
                }
            }
            _ => return Err(malformed("chunk payload kind mismatch")),
        }
        self.next += 1;
        Ok(ChunkVerdict::Ingested)
    }

    /// Close a complete build: returns the reply [`Message`] plus the
    /// fault/seed the worker must honor around writing it (mirroring the
    /// blob-job reply path). Errors if chunks are still outstanding.
    pub fn finish(self) -> Result<(Message, Option<Fault>, u64), ProtoError> {
        if !self.complete() {
            return Err(malformed("chunk stream finished early"));
        }
        let reply = match self.kind {
            BuildKind::Sketch(sketch) => Message::ReplySketch {
                snapshot: SketchSnapshot::of(&sketch),
                ship: self.ship,
            },
            BuildKind::Dynamic(sketch) => Message::ReplyDynamic {
                snapshot: DynamicSnapshot::of(&sketch),
                ship: self.ship,
            },
        };
        Ok((reply, self.fault, self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(n: u64) -> Vec<Edge> {
        (0..n)
            .map(|e| Edge::new((e % 7) as u32, e * 3 + 1))
            .collect()
    }

    fn updates(n: u64) -> Vec<SignedEdge> {
        (0..n)
            .map(|e| {
                let edge = Edge::new((e % 5) as u32, e);
                if e % 4 == 0 {
                    SignedEdge::delete(edge)
                } else {
                    SignedEdge::insert(edge)
                }
            })
            .collect()
    }

    fn drive(plan: ChunkPlan) -> ChunkedBuild {
        let mut build = match plan.start {
            Message::ChunkStartSketch {
                shard,
                chunks,
                params,
                seed,
                ship,
                fault,
                batch,
            } => ChunkedBuild::sketch(shard, chunks, params, seed, ship, fault, batch),
            Message::ChunkStartDynamic {
                shard,
                chunks,
                params,
                seed,
                ship,
                fault,
                batch,
            } => ChunkedBuild::dynamic(shard, chunks, params, seed, ship, fault, batch),
            other => panic!("not a chunk start: {other:?}"),
        };
        for msg in plan.chunks {
            match msg {
                Message::JobChunk {
                    shard,
                    index,
                    count,
                    payload,
                } => {
                    assert_eq!(
                        build.accept(shard, index, count, payload).unwrap(),
                        ChunkVerdict::Ingested
                    );
                }
                other => panic!("not a chunk: {other:?}"),
            }
        }
        build
    }

    #[test]
    fn chunked_build_matches_the_unchunked_sketch_bit_for_bit() {
        let params = SketchParams::with_budget(6, 2, 0.5, 150);
        let shard = edges(1000);
        // Uneven chunk sizes, including one that doesn't divide the batch.
        for per_chunk in [1usize, 7, 64, 999, 1000, 5000] {
            let plan = plan_sketch(
                3,
                &shard,
                per_chunk,
                params,
                42,
                ShipFormat::Binary,
                None,
                33,
            );
            let build = drive(plan);
            assert!(build.complete());
            let (reply, fault, seed) = build.finish().unwrap();
            assert_eq!(fault, None);
            assert_eq!(seed, 42);
            let mut blob = ThresholdSketch::new(params, 42);
            for sub in shard.chunks(33) {
                blob.update_batch(sub);
            }
            match reply {
                Message::ReplySketch { snapshot, .. } => {
                    assert_eq!(snapshot, SketchSnapshot::of(&blob), "per_chunk={per_chunk}");
                }
                other => panic!("wrong reply: {other:?}"),
            }
        }
    }

    #[test]
    fn chunked_dynamic_build_matches_the_unchunked_sketch() {
        let params = DynamicSketchParams::new(SketchParams::with_budget(4, 2, 0.5, 90));
        let shard = updates(700);
        let plan = plan_dynamic(0, &shard, 128, params, 9, ShipFormat::Json, None, 50);
        let (reply, _, _) = drive(plan).finish().unwrap();
        let mut blob = DynamicSketch::new(params, 9);
        for sub in shard.chunks(50) {
            blob.update_batch(sub);
        }
        match reply {
            Message::ReplyDynamic { snapshot, .. } => {
                assert_eq!(snapshot, DynamicSnapshot::of(&blob));
            }
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn duplicate_chunks_are_rejected_without_touching_the_sketch() {
        let params = DynamicSketchParams::new(SketchParams::with_budget(4, 2, 0.5, 90));
        let shard = updates(600);
        let plan = plan_dynamic(1, &shard, 100, params, 5, ShipFormat::Binary, None, 64);
        let replayed: Vec<Message> = plan.chunks.clone();
        let mut build = match plan.start {
            Message::ChunkStartDynamic {
                shard,
                chunks,
                params,
                seed,
                ship,
                fault,
                batch,
            } => ChunkedBuild::dynamic(shard, chunks, params, seed, ship, fault, batch),
            other => panic!("not a chunk start: {other:?}"),
        };
        // Deliver each chunk twice, back to back — the dup@N fault's
        // shape. A linear dynamic sketch is NOT idempotent, so if a
        // duplicate slipped through, the snapshot comparison below would
        // catch it.
        for msg in replayed {
            let Message::JobChunk {
                shard,
                index,
                count,
                payload,
            } = msg
            else {
                panic!("not a chunk");
            };
            assert_eq!(
                build.accept(shard, index, count, payload.clone()).unwrap(),
                ChunkVerdict::Ingested
            );
            assert_eq!(
                build.accept(shard, index, count, payload).unwrap(),
                ChunkVerdict::DuplicateRejected
            );
        }
        assert_eq!(build.dups_rejected(), 6);
        let (reply, _, _) = build.finish().unwrap();
        let mut blob = DynamicSketch::new(params, 5);
        for sub in shard.chunks(64) {
            blob.update_batch(sub);
        }
        match reply {
            Message::ReplyDynamic { snapshot, .. } => {
                assert_eq!(snapshot, DynamicSnapshot::of(&blob));
            }
            other => panic!("wrong reply: {other:?}"),
        }
    }

    #[test]
    fn gaps_mismatches_and_early_finish_are_typed_errors() {
        let params = SketchParams::with_budget(3, 1, 0.5, 60);
        let mk = || ChunkedBuild::sketch(2, 3, params, 1, ShipFormat::Binary, None, 16);
        let payload = || ChunkPayload::Edges(edges(10));

        // Gap: chunk 1 before chunk 0.
        assert!(mk().accept(2, 1, 3, payload()).is_err());
        // Wrong shard.
        assert!(mk().accept(9, 0, 3, payload()).is_err());
        // Count mismatch.
        assert!(mk().accept(2, 0, 4, payload()).is_err());
        // Payload kind mismatch.
        assert!(mk()
            .accept(2, 0, 3, ChunkPayload::Updates(updates(3)))
            .is_err());
        // Early finish.
        assert!(mk().finish().is_err());
        // Chunk past a completed stream.
        let mut done = ChunkedBuild::sketch(0, 1, params, 1, ShipFormat::Binary, None, 16);
        done.accept(0, 0, 1, payload()).unwrap();
        assert!(done.complete());
        assert!(done.accept(0, 1, 1, payload()).is_err());
    }

    #[test]
    fn empty_shard_plans_zero_chunks_and_finishes_immediately() {
        let params = SketchParams::with_budget(3, 1, 0.5, 60);
        let plan = plan_sketch(0, &[], 64, params, 7, ShipFormat::Binary, None, 16);
        match &plan.start {
            Message::ChunkStartSketch { chunks, .. } => assert_eq!(*chunks, 0),
            other => panic!("wrong start: {other:?}"),
        }
        assert!(plan.chunks.is_empty());
        let build = drive(plan);
        assert!(build.complete());
        let (reply, _, _) = build.finish().unwrap();
        let empty = ThresholdSketch::new(params, 7);
        match reply {
            Message::ReplySketch { snapshot, .. } => {
                assert_eq!(snapshot, SketchSnapshot::of(&empty));
            }
            other => panic!("wrong reply: {other:?}"),
        }
    }
}
