//! TCP socket workers: the distributed runtime over a transport that
//! can actually lose things.
//!
//! The pipe executor ([`crate::ProcessRunner`]) owns its workers'
//! stdin/stdout, so the only failure it ever sees is a clean EOF. Real
//! networks fail differently — silent hangs, half-open connections,
//! partitions, slow links — and this module rebuilds the same map →
//! tree-reduce → solve pipeline on primitives that survive them:
//!
//! - [`listener::SocketRunner`] — the coordinator: listens on a TCP
//!   address, accepts workers started as `coverage worker --connect
//!   HOST:PORT` (or self-spawns them on loopback), and drives the run
//!   with the same framed protocol ([`crate::proto`]) the pipes use —
//!   the CVPR framing is transport-agnostic by design.
//! - [`registry`] — the worker registry: heartbeat-probe liveness
//!   grading (joining → live → suspect → dead), per-worker RTT stats,
//!   and admission of late or rejoining workers mid-run.
//! - [`chunk`] — chunked shard streaming: bounded `JobChunk` frames
//!   with per-chunk checksums, strict in-order ingest, and duplicate
//!   rejection by chunk index, so transfer and ingest overlap.
//!
//! The determinism contract is unchanged and non-negotiable: under any
//! fault schedule — network faults (`drop@N`, `stall<MS>@N`, `dup@N`)
//! layered over worker faults (crash/hang/delay/corrupt) — the family
//! is bit-identical to the serial executor, because shard jobs are
//! self-contained and `merge_from` is associative and commutative.

pub mod chunk;
pub mod listener;
pub mod registry;

pub use chunk::{ChunkPlan, ChunkVerdict, ChunkedBuild};
pub use listener::{DynSocketResult, SocketResult, SocketRunStats, SocketRunner};
pub use registry::{HeartbeatStats, Liveness, WorkerRegistry, WorkerState, WorkerSummary};
